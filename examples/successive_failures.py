#!/usr/bin/env python3
"""Reproduce Figures 2 and 3: consistency under successive site failures.

Scenario 1 (two sites, alternating failures) shows transactions aborting
when the only up-to-date copy of an item is unreachable; scenario 2 (four
sites failing singly in succession) recovers with no aborts at all because
an up-to-date copy always survives somewhere.

Usage::

    python examples/successive_failures.py
"""

from repro.experiments import run_scenario1, run_scenario2


def main() -> None:
    s1 = run_scenario1()
    print(s1.chart())
    print(f"\nscenario 1: {s1.commits} commits, {s1.aborts} aborts "
          f"(paper: 13 aborts) — causes: {s1.abort_reasons or 'none'}")
    print(f"consistency violations: {len(s1.consistency_violations)}")

    print()
    s2 = run_scenario2()
    print(s2.chart())
    print(f"\nscenario 2: {s2.commits} commits, {s2.aborts} aborts "
          f"(paper: 0 aborts)")
    print(f"consistency violations: {len(s2.consistency_violations)}")
    print("\nFail-locks tracked the location of correct values even as they "
          "spread across sites — transaction processing continued through "
          "four successive failures (the paper's Experiment 3 conclusion).")


if __name__ == "__main__":
    main()
