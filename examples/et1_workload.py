#!/usr/bin/env python3
"""The paper's future work: repeat Experiment 2 with benchmark workloads.

Runs the Figure 1 failure/recovery scenario under the paper's uniform
workload, an ET1 (DebitCredit) mix, and a Wisconsin-style scan/update mix,
comparing the failure and recovery dynamics each produces.

Usage::

    python examples/et1_workload.py
"""

from repro.experiments.ablations import run_benchmark_workloads
from repro.experiments.report import format_table


def main() -> None:
    results = run_benchmark_workloads()
    print("Figure-1 scenario under three workloads:\n")
    print(
        format_table(
            ["workload", "peak fail-locks", "txns to recover", "copiers", "aborts"],
            [
                (r.workload, r.peak_locks, r.txns_to_recover, r.copiers, r.aborts)
                for r in results
            ],
        )
    )
    print(
        "\nET1's skew (35 hot accounts, 2 branches) concentrates writes, so "
        "branch/teller copies refresh almost immediately while rarely-"
        "touched history slots stretch the recovery tail; the Wisconsin "
        "mix's scans generate reads over cold items, so recovery leans "
        "more on copier transactions — the dependence the paper's §5 "
        "discussion predicts."
    )


if __name__ == "__main__":
    main()
