#!/usr/bin/env python3
"""The §3.2 proposal: two-step recovery with batch copier transactions.

The paper observes that the last few fail-locks take the longest to clear
(they wait for a random write to hit them) and proposes a second recovery
step: once the fail-locked fraction drops below a threshold, the
recovering site issues copier transactions in batch without waiting for
reads.  This example sweeps the threshold and shows the recovery-length /
copier-cost trade-off.

Usage::

    python examples/two_step_recovery.py
"""

from repro.experiments.ablations import run_two_step_recovery
from repro.experiments.report import format_table


def main() -> None:
    results = run_two_step_recovery(thresholds=(0.1, 0.2, 0.4, 0.8))
    print("Figure-1 scenario (site 0 recovering), by recovery policy:\n")
    print(
        format_table(
            ["policy", "batch threshold", "txns to full recovery",
             "copiers", "of which batch"],
            [
                (r.policy, r.threshold if r.policy == "two_step" else "-",
                 r.txns_to_recover, r.copiers, r.batch_copiers)
                for r in results
            ],
        )
    )
    base = results[0].txns_to_recover
    best = min(results[1:], key=lambda r: r.txns_to_recover)
    print(
        f"\nBatch copiers cut the recovery period from {base} to "
        f"{best.txns_to_recover} transactions (threshold "
        f"{best.threshold}) at the cost of {best.copiers} copier "
        "exchanges — the fault-tolerance win §3.2 argues for: a shorter "
        "window in which another failure could strand the last good copy."
    )


if __name__ == "__main__":
    main()
