#!/usr/bin/env python3
"""Quickstart: build a mini-RAID cluster, fail a site, watch it recover.

Runs the smallest interesting scenario — two sites, one failure, one
recovery — and prints the transaction outcomes, the fail-lock trajectory,
and the final consistency audit.

Usage::

    python examples/quickstart.py
"""

from repro import Cluster, FailSite, RecoverSite, Scenario, SystemConfig
from repro.workload import UniformWorkload


def main() -> None:
    # The paper's Experiment 2 configuration: 50 items, 2 sites, txns of
    # at most 5 operations.
    config = SystemConfig(db_size=50, num_sites=2, max_txn_size=5, seed=7)
    cluster = Cluster(config)

    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=60,
        until_recovered=(0,),   # keep going until site 0 is fully refreshed
        max_txns=500,
    )
    scenario.add_action(1, FailSite(0))      # before txn 1: site 0 crashes
    scenario.add_action(31, RecoverSite(0))  # before txn 31: it comes back

    metrics = cluster.run(scenario)

    print(f"transactions run : {len(metrics.txns)}")
    print(f"commits / aborts : {metrics.counters['commits']} / "
          f"{metrics.counters['aborts']}")
    print(f"copier txns      : {metrics.counters.get('copiers')}")
    print(f"control txns     : type1={metrics.counters.get('control_type1')} "
          f"type2={metrics.counters.get('control_type2')}")
    print(f"simulated time   : {cluster.now / 1000:.1f} s")

    peak = max(v for _seq, v in metrics.faillock_series(0))
    print(f"\nsite 0 fail-locks peaked at {peak}/{config.db_size} "
          f"and ended at {cluster.faillock_counts()[0]}")

    violations = cluster.audit_consistency()
    print(f"consistency audit: {'CLEAN' if not violations else violations}")


if __name__ == "__main__":
    main()
