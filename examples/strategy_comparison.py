#!/usr/bin/env python3
"""ROWAA vs strict ROWA vs quorum consensus vs primary copy.

Two views of the availability trade-off the paper's introduction frames:

1. *Simulated*: the Experiment 3 scenario-2 failure script run under each
   strategy the cluster supports, counting commits and aborts.
2. *Analytic*: closed-form read/write availability for each strategy when
   every site is independently up with probability p.

Usage::

    python examples/strategy_comparison.py
"""

from repro.experiments.ablations import run_strategy_comparison
from repro.experiments.report import format_table
from repro.replication import (
    PrimaryCopyStrategy,
    QuorumStrategy,
    RowaStrategy,
    RowaaStrategy,
)


def main() -> None:
    print("Simulated: scenario-2 failure script (4 sites failing in turn)\n")
    rows = [
        (r.strategy, r.commits, r.aborts,
         ", ".join(f"{k}={v}" for k, v in sorted(r.abort_reasons.items())) or "-")
        for r in run_strategy_comparison()
    ]
    print(format_table(["strategy", "commits", "aborts", "abort reasons"], rows))

    print("\nAnalytic: operation availability over 4 sites, site-up probability p\n")
    strategies = [
        RowaaStrategy(4),
        RowaStrategy(4),
        QuorumStrategy(4),
        PrimaryCopyStrategy(4),
    ]
    header = ["p", *(f"{s.name} read" for s in strategies),
              *(f"{s.name} write" for s in strategies)]
    table = []
    for p in (0.90, 0.95, 0.99):
        row: list[object] = [p]
        row += [f"{s.read_availability(p):.6f}" for s in strategies]
        row += [f"{s.write_availability(p):.6f}" for s in strategies]
        table.append(row)
    print(format_table(header, table))
    print(
        "\nROWAA keeps writes available whenever *any* copy survives — the "
        "availability the paper buys with fail-locks; strict ROWA loses "
        "writes to every single-site failure, quorum tolerates a minority "
        "of failures, and primary copy is hostage to one site."
    )


if __name__ == "__main__":
    main()
