#!/usr/bin/env python3
"""The "complete RAID" mode: concurrent transactions with 2PL.

Mini-RAID processed transactions serially; the paper's future work was to
re-run the protocol in the complete RAID system with concurrency control.
This example runs that extension: Poisson arrivals over a 4-site cluster
(one core per machine, 9 ms wire latency), strict two-phase locking at
every site, and a global deadlock detector that aborts the youngest
transaction in any cycle.

Usage::

    python examples/concurrent_raid.py
"""

from repro.experiments.report import format_table
from repro.system.config import SystemConfig
from repro.system.openloop import run_open_loop


def main() -> None:
    rows = []
    for rate in (1.0, 3.0, 6.0, 12.0, 24.0):
        config = SystemConfig(
            db_size=50,
            num_sites=4,
            max_txn_size=5,
            seed=42,
            concurrency_control=True,
            cores=5,               # one per site plus the driver
            wire_latency_ms=9.0,   # the paper's measured communication time
        )
        result = run_open_loop(config, txn_count=400, arrival_rate_tps=rate)
        rows.append(
            (
                f"{rate:.0f}",
                f"{result.throughput_tps:.1f}",
                f"{result.latency.mean:.0f} ms",
                f"{result.latency.p95:.0f} ms",
                result.lock_parks,
                result.deadlock_aborts,
            )
        )
    print("Open-loop sweep: 4 sites, db=50, max txn size 5, strict 2PL\n")
    print(
        format_table(
            ["arrival (tps)", "throughput (tps)", "mean latency",
             "p95 latency", "lock waits", "deadlock aborts"],
            rows,
        )
    )
    print(
        "\nBelow saturation, throughput tracks the offered load and latency "
        "stays near the serial commit time; as contention rises, lock waits "
        "queue and cross-site write-write cycles appear, resolved by the "
        "global detector at the cost of aborting the youngest transaction."
    )


if __name__ == "__main__":
    main()
