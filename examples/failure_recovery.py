#!/usr/bin/env python3
"""Reproduce Figure 1: data availability during site failure and recovery.

Runs the paper's Experiment 2 scenario (site 0 down for 100 transactions,
then recovering) and renders the fail-lock trajectory as an ASCII chart,
alongside the §3 headline numbers.

Usage::

    python examples/failure_recovery.py [seed]
"""

import sys

from repro.experiments import run_figure1


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    result = run_figure1(seed=seed)

    print(result.chart())
    report = result.report
    print()
    print(f"peak fail-locks on site 0      : {report.peak_locks}/50 "
          f"({100 * result.peak_fraction:.0f} %; paper: >90 %)")
    print(f"transactions to full recovery  : {report.txns_to_recover} "
          f"(paper: ~160)")
    print(f"copier transactions requested  : {result.copiers} (paper: 2)")
    print(f"aborted transactions           : {result.aborts} (paper: 0)")
    print("\nclearing rate (locks remaining -> txns for that bucket of 10):")
    for remaining, txns in report.clearing_buckets:
        print(f"  down to {remaining:2d} locks: {txns} txns")
    print("\nThe tail is the paper's point: the fewer fail-locks remain, the "
          "longer each takes to clear by chance writes alone — motivating "
          "the two-step (batch copier) recovery of §3.2.")


if __name__ == "__main__":
    main()
