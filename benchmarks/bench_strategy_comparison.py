"""A4 ablation: ROWAA vs strict ROWA vs quorum consensus.

Runs the scenario-2 failure script under each strategy and checks the
availability ordering the paper's introduction frames: ROWAA never aborts,
strict ROWA loses every write issued during any failure, and a majority
quorum survives single-site failures.  Also cross-checks the simulated
ordering against the closed-form availability models.
"""

from repro.experiments.ablations import run_strategy_comparison
from repro.replication import QuorumStrategy, RowaStrategy, RowaaStrategy


def test_bench_strategy_comparison(benchmark):
    results = benchmark.pedantic(run_strategy_comparison, rounds=2, iterations=1)
    by_name = {r.strategy: r for r in results}
    assert by_name["rowaa"].aborts == 0
    assert by_name["quorum"].aborts == 0      # one failure of four: majority holds
    assert by_name["rowa"].aborts > 40        # every write during a down window
    assert set(by_name["rowa"].abort_reasons) == {"write_all_blocked"}

    # Analytic cross-check at p = 0.9, n = 4.
    p = 0.9
    rowaa = RowaaStrategy(4).write_availability(p)
    quorum = QuorumStrategy(4).write_availability(p)
    rowa = RowaStrategy(4).write_availability(p)
    assert rowa < quorum < rowaa
