"""Figure 1 (paper §3): data availability during failure and recovery.

Regenerates the fail-lock trajectory of a failing-then-recovering site
(db=50, 2 sites, max txn size 5) and checks the §3 headline numbers:
>90 % of copies fail-locked at the peak, recovery on the order of 160
transactions, very few copier transactions, and a clearing rate that slows
as the locked fraction drops.
"""

from repro.experiments import run_figure1


def test_bench_figure1(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=3, iterations=1)
    assert result.peak_fraction > 0.90            # paper: "over 90%"
    assert 60 <= result.report.txns_to_recover <= 320   # paper: ~160
    assert result.copiers <= 5                    # paper: 2
    assert result.aborts == 0
    buckets = result.report.clearing_buckets
    assert buckets[-1][1] > 2 * buckets[0][1]     # the long tail
