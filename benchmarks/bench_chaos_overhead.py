"""Chaos auditor overhead: invariant checking must stay cheap.

The online auditor observes every delivered message plus every commit
application, so it sits on the simulator's hottest paths.  This bench runs
the same seeded chaos workload with the auditor attached and detached and
checks the attached run stays within a generous multiple of the detached
one — the auditor is meant to be an always-on tool, not a debug-only one.
"""

import time

from repro.chaos import run_chaos_seed

SEED = 42
TXNS = 60


def audited():
    return run_chaos_seed(SEED, txns=TXNS, audit=True)


def unaudited():
    return run_chaos_seed(SEED, txns=TXNS, audit=False)


def test_bench_chaos_audited(benchmark):
    result = benchmark.pedantic(audited, rounds=3, iterations=1)
    assert result.violations == []
    assert result.checks > 100          # the auditor actually ran


def test_bench_chaos_auditor_overhead():
    # Warm both paths once so import/JIT-cache costs don't skew either side.
    audited()
    unaudited()
    rounds = 3
    on = off = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        with_audit = audited()
        on += time.perf_counter() - start
        start = time.perf_counter()
        without_audit = unaudited()
        off += time.perf_counter() - start
    # Same seed, same faults, same schedule: auditing must not perturb the
    # simulation itself.
    assert with_audit.commits == without_audit.commits
    assert with_audit.aborts == without_audit.aborts
    assert with_audit.fault_stats.total == without_audit.fault_stats.total
    assert without_audit.checks == 0
    # Generous bound: per-message dict lookups and per-commit set algebra
    # should cost well under 3x the bare simulation.
    assert on < 3.0 * off + 0.05 * rounds, (
        f"auditor overhead too high: {on:.3f}s audited vs {off:.3f}s bare"
    )
