"""A5 ablation: announced vs timeout failure detection.

Appendix A taken literally (timeout detection) costs one aborted
transaction per failure: the first post-failure coordinator discovers the
down participant mid-phase-one, aborts, and runs the type-2 control
transaction.  The announced mode (the managing-site behaviour implied by
the paper's scenarios) shows zero such aborts.
"""

from repro.experiments.ablations import run_failure_detection


def test_bench_failure_detection(benchmark):
    results = benchmark.pedantic(run_failure_detection, rounds=2, iterations=1)
    by_mode = {r.detection: r for r in results}
    announced = by_mode["announced"]
    timeout = by_mode["timeout"]
    assert announced.aborts == 0
    # Four failures -> at most four discovery aborts (a failure found by a
    # read-only or already-announced window costs nothing).
    assert 1 <= timeout.aborts <= 4
    assert timeout.commits + timeout.aborts == announced.commits
    assert timeout.type2_controls >= 1
