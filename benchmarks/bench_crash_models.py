"""A9 ablation: warm (mini-RAID) vs cold crash model.

Mini-RAID simulated failure by muting a process, so a recovering site's
database survives and only the updates committed during the outage are
stale.  A cold crash loses the volatile database: on recovery *every* copy
is fail-locked.  This bench regenerates the comparison and checks the
expected shape — cold recovery starts from a fully stale database and
never finishes faster than warm.
"""

from repro.experiments.ablations import run_crash_models


def test_bench_crash_models(benchmark):
    results = benchmark.pedantic(run_crash_models, rounds=2, iterations=1)
    by_model = {r.model: r for r in results}
    warm = by_model["warm"]
    cold = by_model["cold"]
    assert cold.initial_stale >= 49          # everything (db=50) stale
    assert warm.initial_stale < cold.initial_stale
    assert cold.txns_to_recover >= warm.txns_to_recover * 0.8
    # Both complete.
    assert warm.txns_to_recover > 0 and cold.txns_to_recover > 0
