"""A8 ablation (paper §5 future work): the "complete RAID" concurrent mode.

The paper planned to "run this protocol in the complete RAID system and
take into account other factors such as concurrency control and
communication delays across machines".  This bench runs the open-loop
concurrent mode (strict 2PL per site, global deadlock detection, Poisson
arrivals, per-machine cores, 9 ms wire latency) across arrival rates and
checks the expected shape: throughput tracks the offered load below
saturation, latency stays bounded, and deadlock aborts grow with
contention.
"""

from repro.system.config import SystemConfig
from repro.system.openloop import run_open_loop


def sweep(rates=(2.0, 6.0, 12.0), txn_count=300):
    results = []
    for rate in rates:
        config = SystemConfig(
            db_size=50,
            num_sites=4,
            max_txn_size=5,
            seed=42,
            concurrency_control=True,
            cores=5,
            wire_latency_ms=9.0,
        )
        results.append((rate, run_open_loop(config, txn_count=txn_count,
                                            arrival_rate_tps=rate)))
    return results


def test_bench_concurrency_sweep(benchmark):
    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    by_rate = dict(results)
    low, mid, high = (by_rate[r] for r in (2.0, 6.0, 12.0))
    # Throughput tracks offered load below saturation.
    assert low.throughput_tps > 1.5
    assert mid.throughput_tps > 2.5 * low.throughput_tps * 0.8
    assert high.throughput_tps > mid.throughput_tps
    # Everything completes; only deadlock victims abort.
    for result in (low, mid, high):
        assert result.commits + result.aborts == result.txn_count
        assert result.aborts == result.deadlock_aborts
    # Contention (lock waits) grows with the arrival rate.
    assert high.lock_parks >= mid.lock_parks >= low.lock_parks
    # Latency stays bounded below saturation (no runaway queueing).
    assert high.latency.mean < 10 * low.latency.mean
