"""A6 ablation (paper §5 future work): ET1 and Wisconsin workloads.

The paper planned to repeat its experiments with the ET1 (DebitCredit) and
Wisconsin benchmarks.  This bench runs the Figure 1 scenario under all
three workloads and checks each produces a sane failure/recovery cycle.
"""

from repro.experiments.ablations import run_benchmark_workloads


def test_bench_benchmark_workloads(benchmark):
    results = benchmark.pedantic(run_benchmark_workloads, rounds=2, iterations=1)
    assert len(results) == 3
    for result in results:
        assert result.peak_locks > 10          # the failure bites
        assert result.txns_to_recover > 0      # and recovery completes
        assert result.aborts == 0
    by_name = {r.workload.split("(")[0]: r for r in results}
    assert set(by_name) == {"uniform", "et1", "wisconsin"}
