"""A1 ablation (paper §3.2 proposal): two-step recovery.

Regenerates the recovery-length comparison between the paper's measured
on-demand policy and the proposed two-step batch-copier policy, and checks
the proposal's claim: batch copiers cut the recovery tail substantially,
and more aggressively with a higher threshold.
"""

from repro.experiments.ablations import run_two_step_recovery


def test_bench_two_step_recovery(benchmark):
    results = benchmark.pedantic(
        run_two_step_recovery,
        kwargs={"thresholds": (0.1, 0.4)},
        rounds=2,
        iterations=1,
    )
    by_name = {(r.policy, r.threshold): r for r in results}
    on_demand = by_name[("on_demand", 0.0)]
    mild = by_name[("two_step", 0.1)]
    aggressive = by_name[("two_step", 0.4)]
    assert mild.txns_to_recover < on_demand.txns_to_recover
    assert aggressive.txns_to_recover < mild.txns_to_recover
    assert aggressive.batch_copiers > 0
    assert on_demand.batch_copiers == 0
