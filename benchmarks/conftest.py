"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures (or one
of the DESIGN.md ablations) through the same experiment runners the tests
and EXPERIMENTS.md use, and asserts the reproduction bands so a benchmark
run doubles as a results check.  pytest-benchmark measures the wall-clock
cost of regenerating each artifact.
"""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks are ordered by paper artifact for readable output.
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def band():
    """Tolerance helper shared by all benchmarks."""

    def check(measured, paper, tolerance=0.25):
        assert abs(measured - paper) <= tolerance * paper, (
            f"measured {measured:.1f} outside ±{tolerance:.0%} of paper "
            f"value {paper:.1f}"
        )

    return check
