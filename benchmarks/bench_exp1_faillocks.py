"""E1-T1 (paper §2.2.1): fail-lock maintenance overhead.

Regenerates the table of coordinator/participant transaction times with
and without the fail-locks code, and checks the published values.
"""

from repro.experiments import exp1


def test_bench_faillock_overhead(benchmark, band):
    result = benchmark.pedantic(
        exp1.run_faillock_overhead, kwargs={"txns": 150}, rounds=3, iterations=1
    )
    band(result.coord_without, exp1.PAPER_COORD_NO_FL, 0.20)
    band(result.coord_with, exp1.PAPER_COORD_FL, 0.20)
    band(result.part_without, exp1.PAPER_PART_NO_FL, 0.20)
    band(result.part_with, exp1.PAPER_PART_FL, 0.20)
    # The headline ratio: maintenance is a slight (~6 %) increase.
    assert 2.0 < result.coord_overhead_pct < 12.0
