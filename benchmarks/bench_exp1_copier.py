"""E1-T3 (paper §2.2.3): copier transaction overhead.

Regenerates the copier cost table: a database transaction including one
copier vs the size-matched copier-free baseline (+45 % in the paper), the
copy-request overhead at the responder (25 ms), and the clear-fail-locks
special transaction (20 ms).
"""

from repro.experiments import exp1


def test_bench_copier_overhead(benchmark, band):
    result = benchmark.pedantic(exp1.run_copier_overhead, rounds=3, iterations=1)
    band(result.copy_request_overhead, exp1.PAPER_COPY_REQUEST, 0.20)
    band(result.clear_faillocks_time, exp1.PAPER_CLEAR_FAILLOCKS, 0.20)
    # The headline: ~45 % dearer with a copier, ~30 points of it from the
    # clear-fail-locks special transactions.
    assert 30.0 < result.increase_pct < 60.0
    assert 15.0 < result.clearing_share_pct < 45.0
    assert result.samples >= 5
