"""E1-T2 (paper §2.2.2): control transaction times.

Regenerates the type-1 (recovering and operational side) and type-2
control transaction durations.
"""

from repro.experiments import exp1


def test_bench_control_overhead(benchmark, band):
    result = benchmark.pedantic(exp1.run_control_overhead, rounds=3, iterations=1)
    band(result.type1_recovering, exp1.PAPER_TYPE1_RECOVERING, 0.20)
    band(result.type1_operational, exp1.PAPER_TYPE1_OPERATIONAL, 0.20)
    band(result.type2, exp1.PAPER_TYPE2, 0.20)
    # Shape: the recovering side pays for announcements to every site plus
    # the state install, so it costs several times the responder's side.
    assert result.type1_recovering > 3 * result.type1_operational
