"""Retransmission-sublayer overhead: reliability must be cheap when
nothing is lost.

The reliable-delivery layer (sequence numbers, per-arrival transport
acks, retransmission timers) rides under every tracked message, so its
loss-free cost is pure overhead.  This bench runs the same seeded,
fault-free workload with the layer on and off and checks that (a) the
protocol outcomes are bit-for-bit unaffected — the layer is transparent
when the network behaves — and (b) the wall-clock and message-count
costs stay within generous bounds.
"""

import time

from repro.chaos import FaultPlan, build_chaos_scenario
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig

SEED = 42
TXNS = 60


def run_lossfree(with_retry_layer: bool):
    """One fault-free chaos-shaped run (crash/recover schedule only)."""
    plan = FaultPlan(
        lossy_core=with_retry_layer,
        drop_rate=0.0,
        duplicate_rate=0.0,
        delay_rate=0.0,
        reorder_rate=0.0,
    )
    config = SystemConfig(
        db_size=32,
        num_sites=4,
        seed=SEED,
        wire_latency_ms=2.0,
        reliable_delivery=with_retry_layer,
        timeouts_enabled=with_retry_layer,
    )
    cluster = Cluster(config)
    scenario = build_chaos_scenario(
        config, plan, cluster.rng.stream("chaos.schedule"), txn_count=TXNS
    )
    cluster.run(scenario)
    return cluster


def test_bench_retry_layer_on(benchmark):
    cluster = benchmark.pedantic(
        lambda: run_lossfree(True), rounds=3, iterations=1
    )
    assert cluster.metrics.counters.get("commits") > 0
    assert cluster.network.reliable is not None


def test_bench_retry_layer_off(benchmark):
    cluster = benchmark.pedantic(
        lambda: run_lossfree(False), rounds=3, iterations=1
    )
    assert cluster.metrics.counters.get("commits") > 0
    assert cluster.network.reliable is None


def test_retry_layer_is_transparent_and_cheap_without_loss():
    # Warm both paths once so import costs don't skew either side.
    run_lossfree(True)
    run_lossfree(False)
    rounds = 3
    on_s = off_s = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        with_layer = run_lossfree(True)
        on_s += time.perf_counter() - start
        start = time.perf_counter()
        without_layer = run_lossfree(False)
        off_s += time.perf_counter() - start

    # (a) Transparency: same seed, same schedule, no faults — the layer
    # must not change a single protocol outcome.
    for counter in ("commits", "aborts", "control_type2"):
        assert with_layer.metrics.counters.get(
            counter
        ) == without_layer.metrics.counters.get(counter)
    for site_on, site_off in zip(with_layer.sites, without_layer.sites):
        assert site_on.db.dump() == site_off.db.dump()
        assert site_on.faillocks.snapshot() == site_off.faillocks.snapshot()
    stats = with_layer.network.reliable.stats
    assert stats.retransmissions == 0, "retried without any loss"
    assert stats.duplicates_suppressed == 0
    assert stats.gave_up == 0

    # (b) Cost: one transport ack per tracked message is the designed
    # amplification; anything past ~2x message volume means the layer is
    # chattier than it claims.
    sent_on = with_layer.network.messages_sent
    sent_off = without_layer.network.messages_sent
    assert sent_on <= 2.2 * sent_off, (
        f"message amplification too high: {sent_on} vs {sent_off}"
    )
    # Generous wall-clock bound: sequence stamping, dedup-window lookups,
    # and timer arm/cancel per message should cost well under 3x.
    assert on_s < 3.0 * off_s + 0.05 * rounds, (
        f"retry-layer overhead too high: {on_s:.3f}s on vs {off_s:.3f}s off"
    )
