"""A11 ablation: partitions — the ROWAA anomaly vs quorum safety.

The paper's fail-locks are motivated for copies unavailable "due to site
failure or network partitioning" (§1.1), but write-all-available with
timeout failure detection is only safe when a "down" site truly stops
writing.  Under a 3-1 partition, ROWAA lets both halves commit and the
replicas diverge (the consistency audit reports violations after healing);
majority quorum keeps the minority half idle and stays consistent.
"""

from repro.experiments.ablations import run_partition_anomaly


def test_bench_partition_anomaly(benchmark):
    results = benchmark.pedantic(run_partition_anomaly, rounds=2, iterations=1)
    by_name = {r.strategy: r for r in results}
    rowaa = by_name["rowaa"]
    quorum = by_name["quorum"]
    # ROWAA stays available in both halves — and pays with divergence.
    assert rowaa.commits_during_partition > quorum.commits_during_partition
    assert rowaa.divergent_items > 0
    # Quorum sacrifices the minority half's availability for safety.
    assert quorum.aborts_during_partition > 0
    assert quorum.commits_during_partition > 0  # majority half keeps going
    assert quorum.divergent_items == 0
