"""A3 ablation (paper §5 discussion): the read/write ratio.

The paper predicts that with fewer writes, fail-locks accumulate more
slowly while a site is down, and recovery relies more on copier
transactions.  This bench regenerates the sweep and checks both trends.
"""

from repro.experiments.ablations import run_read_write_ratio


def test_bench_read_write_ratio(benchmark):
    results = benchmark.pedantic(
        run_read_write_ratio,
        kwargs={"write_probs": (0.1, 0.5, 0.7)},
        rounds=2,
        iterations=1,
    )
    by_wp = {r.write_probability: r for r in results}
    # More writes while down -> more fail-locks at the peak.
    assert by_wp[0.1].peak_locks < by_wp[0.5].peak_locks <= by_wp[0.7].peak_locks + 2
    # Fewer writes -> recovery leans more on copier transactions.
    assert by_wp[0.1].copiers >= by_wp[0.7].copiers
