"""A7 ablation (paper §3.2 proposal): type-3 control transactions.

In a partially replicated database, a site holding the last up-to-date
copy of an item can create a backup copy on a site that has none.  This
bench measures the cost of the type-3 exchange and verifies the
availability gain: after the backup, reads of the item survive the
original holder's failure.
"""

from repro.storage.catalog import ReplicationCatalog
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, Scenario
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator


class ReadItem(WorkloadGenerator):
    def __init__(self, item: int) -> None:
        self.item = item

    def generate(self, txn_seq, rng):
        return [Operation(OpKind.READ, self.item)]


class PreferSite:
    def __init__(self, site: int) -> None:
        self.site = site

    def choose(self, seq, up_sites, rng):
        return self.site if self.site in up_sites else up_sites[0]


def run_type3_scenario(with_backup: bool) -> tuple[int, float]:
    """Returns (aborts, type-3 elapsed ms or 0) for reads of item 2 after
    its sole holder (site 0) fails."""
    config = SystemConfig(db_size=3, num_sites=3, max_txn_size=2, seed=9)
    catalog = ReplicationCatalog(range(3), range(3))
    for site in range(3):
        catalog.add_copy(0, site)
        catalog.add_copy(1, site)
    catalog.add_copy(2, 0)  # item 2 lives only on site 0
    cluster = Cluster(config, catalog=catalog)
    elapsed = 0.0
    if with_backup:
        site0 = cluster.site(0)
        cluster.network.spawn(site0, lambda ctx: site0.initiate_backup(ctx, 2, 1))
        cluster.scheduler.run()
        records = [c for c in cluster.metrics.controls if c.kind == 3]
        elapsed = records[0].elapsed
    scenario = Scenario(
        workload=ReadItem(2), txn_count=5, policy=PreferSite(1)
    )
    scenario.add_action(1, FailSite(0))
    cluster.run(scenario)
    return cluster.metrics.counters.get("aborts"), elapsed


def test_bench_control_type3(benchmark):
    aborts_with, elapsed = benchmark.pedantic(
        run_type3_scenario, args=(True,), rounds=2, iterations=1
    )
    aborts_without, _ = run_type3_scenario(False)
    # Without the backup, every read of item 2 aborts once site 0 is down;
    # with it, the availability gain is total.
    assert aborts_without == 5
    assert aborts_with == 0
    # The type-3 cost is of the same order as other control transactions.
    assert 0 < elapsed < 200
