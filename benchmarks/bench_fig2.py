"""Figure 2 (paper §4.2.1): database inconsistency, scenario 1.

Two sites with alternating failures: site 1 going down during site 0's
recovery makes some items totally unavailable, so a batch of transactions
abort with "copy unavailable" (13 in the paper's run).
"""

from repro.experiments import run_scenario1


def test_bench_figure2(benchmark):
    result = benchmark.pedantic(run_scenario1, rounds=3, iterations=1)
    assert 0 < result.aborts < 30                        # paper: 13
    assert set(result.abort_reasons) == {"copy_unavailable"}
    assert result.peak(0) > 0 and result.peak(1) > 0     # both lines rise
    assert result.consistency_violations == []
    assert all(v == 0 for v in result.final_locks.values())
