"""A10 ablation: the §2.2.2 scaling claims.

The paper asserts three dependences for control-transaction costs:

* type 1 at the recovering site grows with the number of sites (one
  announcement per site);
* type 1 at the operational site is independent of the site count but
  grows with the database size (the fail-lock payload);
* type 2 is independent of the number of sites.

This bench regenerates the sweep and checks all three.
"""

from repro.experiments.ablations import run_control_scaling


def test_bench_control_scaling(benchmark):
    results = benchmark.pedantic(
        run_control_scaling,
        kwargs={"site_counts": (2, 4, 8), "db_sizes": (50, 200)},
        rounds=2,
        iterations=1,
    )
    at = {(r.num_sites, r.db_size): r for r in results}

    # Claim 1: recovering-side type 1 grows with the site count.
    assert (
        at[(2, 50)].type1_recovering
        < at[(4, 50)].type1_recovering
        < at[(8, 50)].type1_recovering
    )
    # Claim 2: operational-side type 1 is flat in sites, grows with db.
    assert at[(2, 50)].type1_operational == at[(8, 50)].type1_operational
    assert at[(2, 200)].type1_operational > 2 * at[(2, 50)].type1_operational
    # Claim 3: type 2 is independent of the site count (and of db size).
    assert at[(2, 50)].type2 == at[(8, 50)].type2 == at[(4, 200)].type2
