"""A12 ablation: submission bias during recovery.

Validates the Experiment 2 fidelity choice (DESIGN.md): the paper's "only
two copier transactions" over a ~160-transaction recovery implies the
recovering site coordinated almost nothing.  The sweep shows copier count
rising steeply with the recovering site's share of coordinations — ~0-2
copiers at a ≤5 % share (the paper's regime), an order of magnitude more
at a 50/50 split.
"""

from repro.experiments.ablations import run_submission_bias


def test_bench_submission_bias(benchmark):
    results = benchmark.pedantic(run_submission_bias, rounds=2, iterations=1)
    by_share = {r.recovering_share: r for r in results}
    assert by_share[0.0].copiers == 0
    assert by_share[0.05].copiers <= 3        # the paper's "2" regime
    assert by_share[0.5].copiers > 3 * max(by_share[0.05].copiers, 1)
    # More copier traffic shifts refreshing from writes to copiers.
    assert (
        by_share[0.5].refreshed_by_copier > by_share[0.05].refreshed_by_copier
    )
    # Every configuration fully recovers.
    assert all(r.txns_to_recover > 0 for r in results)
