"""Figure 3 (paper §4.2.2): database inconsistency, scenario 2.

Four sites failing singly in succession.  An up-to-date copy always
survives somewhere, so — the paper's key qualitative result — every
transaction commits and all four sites recover fully.
"""

from repro.experiments import run_scenario2


def test_bench_figure3(benchmark):
    result = benchmark.pedantic(run_scenario2, rounds=3, iterations=1)
    assert result.aborts == 0                            # paper: 0
    for site in range(4):
        assert result.peak(site) > 0                     # four lock pulses
    assert result.consistency_violations == []
    assert all(v == 0 for v in result.final_locks.values())
