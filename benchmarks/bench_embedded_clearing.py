"""A2 ablation (paper §2.2.3 suggestion): embed clear-fail-locks in 2PC.

The paper estimates that eliminating the clear-fail-locks special
transactions "could significantly reduce this overhead".  This bench
regenerates the copier-transaction cost under both modes and checks the
embedded mode is cheaper.
"""

from repro.experiments.ablations import run_embedded_clearing


def test_bench_embedded_clearing(benchmark):
    results = benchmark.pedantic(run_embedded_clearing, rounds=2, iterations=1)
    by_mode = {r.mode: r for r in results}
    special = by_mode["special_txn"]
    embedded = by_mode["embedded"]
    assert special.samples >= 5 and embedded.samples >= 5
    # Embedding removes the per-peer clear messages from the critical path.
    assert embedded.txn_with_copier < special.txn_with_copier - 10.0
