"""InteractiveDriver and the console shell."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.console import MiniRaidConsole
from repro.system.interactive import InteractiveDriver
from repro.txn.operations import OpKind, Operation


@pytest.fixture
def driver() -> InteractiveDriver:
    return InteractiveDriver.build(db_size=8, num_sites=3, max_txn_size=3, seed=5)


def test_submit_single_txn(driver):
    record = driver.submit_txn()
    assert record.committed
    assert record.seq == 1
    assert len(driver.metrics.txns) == 1


def test_submit_to_specific_site(driver):
    record = driver.submit_txn(site=2)
    assert record.coordinator == 2


def test_submit_explicit_ops(driver):
    record = driver.submit_txn(
        site=0, ops=[Operation(OpKind.WRITE, 3), Operation(OpKind.READ, 3)]
    )
    assert record.committed
    assert driver.cluster.site(1).db.version(3) == 1


def test_fail_and_recover_cycle(driver):
    driver.fail_site(1)
    assert driver.up_sites == [0, 2]
    for _ in range(8):
        driver.submit_txn()
    stale_before = driver.cluster.faillock_counts()[1]
    assert stale_before > 0
    driver.recover_site(1)
    assert driver.up_sites == [0, 1, 2]
    assert driver.cluster.site(1).nsv.my_session == 2


def test_submit_to_down_site_rejected(driver):
    driver.fail_site(0)
    with pytest.raises(ConfigurationError):
        driver.submit_txn(site=0)


def test_double_fail_rejected(driver):
    driver.fail_site(0)
    with pytest.raises(ConfigurationError):
        driver.fail_site(0)


def test_recover_up_site_rejected(driver):
    with pytest.raises(ConfigurationError):
        driver.recover_site(0)


def test_status_rows(driver):
    driver.fail_site(2)
    rows = driver.status()
    assert [r["site"] for r in rows] == [0, 1, 2]
    assert rows[2]["alive"] is False


def test_chart_renders_after_txns(driver):
    driver.run_txns(3)
    assert "site 0" in driver.chart()


# -- console shell ------------------------------------------------------------------


def console(driver):
    out = io.StringIO()
    shell = MiniRaidConsole(driver, stdout=out)
    return shell, out


def test_console_txn_and_status(driver):
    shell, out = console(driver)
    shell.onecmd("txn 1")
    shell.onecmd("status")
    text = out.getvalue()
    assert "txn 1 @ site 1: committed" in text
    assert "site 0: up" in text


def test_console_fail_run_recover_audit(driver):
    shell, out = console(driver)
    shell.onecmd("fail 0")
    shell.onecmd("run 5")
    shell.onecmd("recover 0")
    shell.onecmd("locks")
    shell.onecmd("audit")
    text = out.getvalue()
    assert "site 0 is down" in text
    assert "5/5 committed" in text
    assert "site 0 is up" in text
    assert "consistent" in text


def test_console_error_paths(driver):
    shell, out = console(driver)
    shell.onecmd("fail")          # missing argument
    shell.onecmd("fail x")        # not a number
    shell.onecmd("recover 0")     # already up
    text = out.getvalue()
    assert "usage: fail" in text
    assert "not a number" in text
    assert "error:" in text


def test_console_stats_and_quit(driver):
    shell, out = console(driver)
    shell.onecmd("txn")
    shell.onecmd("stats")
    assert shell.onecmd("quit") is True
    assert "commits: 1" in out.getvalue()
