"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_accepts_all_commands():
    parser = build_parser()
    for command in ("exp1", "fig1", "fig2", "fig3", "ablations", "report"):
        args = parser.parse_args([command])
        assert args.command == command
        assert callable(args.fn)


def test_seed_flag():
    args = build_parser().parse_args(["--seed", "9", "fig1"])
    assert args.seed == 9


def test_concurrent_flags():
    args = build_parser().parse_args(
        ["concurrent", "--txns", "50", "--rates", "1.5", "3.0"]
    )
    assert args.txns == 50
    assert args.rates == [1.5, 3.0]


def test_fig2_runs(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "aborts:" in out


def test_fig3_runs(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "(paper: 0)" in out


def test_fig1_runs_with_seed(capsys):
    assert main(["--seed", "7", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "txns to recover" in out


def test_report_writes_file(tmp_path, capsys):
    out_file = tmp_path / "EXP.md"
    assert main(["report", "--output", str(out_file)]) == 0
    content = out_file.read_text()
    assert "paper vs. measured" in content
    assert "Figure 1" in content
    assert "Experiment 3" in content
