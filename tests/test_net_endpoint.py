"""HandlerContext and Endpoint basics."""

import pytest

from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.latency import ConstantLatency
from repro.net.message import MessageType
from repro.net.network import Network
from repro.sim.cpu import CpuResource
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import EventScheduler


class Nop(Endpoint):
    def handle(self, ctx, msg):
        pass


@pytest.fixture
def ctx():
    sched = EventScheduler()
    net = Network(
        scheduler=sched,
        cpu=CpuResource(sched),
        rng=DeterministicRng(0),
        latency_model=ConstantLatency(0.0),
    )
    endpoint = Nop(0)
    net.register(endpoint)
    return HandlerContext(net, endpoint)


def test_charge_accumulates(ctx):
    ctx.charge(2.0)
    ctx.charge(3.5)
    assert ctx.cost == 5.5


def test_charge_rejects_negative(ctx):
    with pytest.raises(ValueError):
        ctx.charge(-1.0)


def test_after_rejects_negative(ctx):
    with pytest.raises(ValueError):
        ctx.after(-1.0, lambda c: None)


def test_send_builds_message(ctx):
    msg = ctx.send(1, MessageType.COMMIT, {"k": 1}, txn_id=7, session=2)
    assert msg.src == 0 and msg.dst == 1
    assert msg.txn_id == 7 and msg.session == 2
    assert ctx.outbox == [msg]


def test_send_default_payload_is_fresh(ctx):
    a = ctx.send(1, MessageType.COMMIT)
    b = ctx.send(1, MessageType.COMMIT)
    a.payload["x"] = 1
    assert b.payload == {}


def test_endpoint_repr_shows_state():
    endpoint = Nop(3)
    assert "up" in repr(endpoint)
    endpoint.alive = False
    assert "down" in repr(endpoint)


def test_now_reflects_scheduler(ctx):
    assert ctx.now == 0.0
