"""SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ReproError
from repro.viz.svg_chart import SvgChart, figure_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def test_render_is_valid_xml():
    chart = SvgChart(title="Figure 1")
    chart.add_series("site 0", [(0, 0), (50, 40), (100, 5)])
    root = parse(chart.render())
    assert root.tag == f"{SVG_NS}svg"


def test_series_become_polylines():
    chart = SvgChart()
    chart.add_series("a", [(0, 0), (1, 1)])
    chart.add_series("b", [(0, 1), (1, 0)])
    root = parse(chart.render())
    # Two data polylines plus two legend lines.
    polylines = root.findall(f"{SVG_NS}polyline")
    assert len(polylines) == 2
    legend_texts = [t.text for t in root.findall(f"{SVG_NS}text")]
    assert "a" in legend_texts and "b" in legend_texts


def test_title_and_axis_labels_present():
    chart = SvgChart(title="T<1>", x_label="X", y_label="Y")
    chart.add_series("s", [(0, 0), (1, 1)])
    svg = chart.render()
    assert "T&lt;1&gt;" in svg  # escaped
    assert ">X<" in svg and ">Y<" in svg


def test_points_projected_inside_plot_area():
    chart = SvgChart(width=640, height=400)
    chart.add_series("s", [(0, 0), (100, 50)])
    root = parse(chart.render())
    polyline = root.find(f"{SVG_NS}polyline")
    coords = [
        tuple(float(v) for v in pair.split(","))
        for pair in polyline.attrib["points"].split()
    ]
    for x, y in coords:
        assert 0 <= x <= 640
        assert 0 <= y <= 400


def test_deterministic_output():
    def build():
        chart = SvgChart(title="same")
        chart.add_series("s", [(0, 0), (5, 3), (10, 1)])
        return chart.render()

    assert build() == build()


def test_save_and_helper(tmp_path):
    path = tmp_path / "fig.svg"
    svg = figure_svg({"site 0": [(0.0, 0.0), (1.0, 2.0)]}, title="F", path=path)
    assert path.read_text() == svg
    parse(svg)


def test_empty_chart_still_valid():
    parse(SvgChart().render())


def test_too_small_rejected():
    with pytest.raises(ReproError):
        SvgChart(width=10, height=10)


def test_dash_patterns_cycle():
    chart = SvgChart()
    for i in range(7):
        chart.add_series(f"s{i}", [(0, 0), (1, 1)])
    svg = chart.render()
    assert 'stroke-dasharray="6,3"' in svg


def test_figure1_end_to_end(tmp_path):
    """Render the real Figure 1 data to SVG."""
    from repro.experiments import run_figure1

    result = run_figure1(seed=7)
    series = {
        f"site {s}": [(float(x), float(y)) for x, y in pts]
        for s, pts in result.series.items()
    }
    path = tmp_path / "figure1.svg"
    figure_svg(series, title="Figure 1", path=path)
    root = parse(path.read_text())
    assert len(root.findall(f"{SVG_NS}polyline")) == 2
