"""WaitsForGraph: cycle detection and victim selection."""

import pytest

from repro.errors import LockError
from repro.txn.deadlock import WaitsForGraph


def test_empty_graph_no_cycle():
    assert WaitsForGraph().find_cycle() == []


def test_chain_is_not_a_cycle():
    g = WaitsForGraph()
    g.add_waits(1, [2])
    g.add_waits(2, [3])
    assert g.find_cycle() == []


def test_two_cycle():
    g = WaitsForGraph()
    g.add_waits(1, [2])
    g.add_waits(2, [1])
    cycle = g.find_cycle()
    assert sorted(cycle) == [1, 2]


def test_three_cycle():
    g = WaitsForGraph()
    g.add_waits(1, [2])
    g.add_waits(2, [3])
    g.add_waits(3, [1])
    assert sorted(g.find_cycle()) == [1, 2, 3]


def test_cycle_found_among_noise():
    g = WaitsForGraph()
    g.add_waits(10, [11])
    g.add_waits(11, [12])
    g.add_waits(5, [6])
    g.add_waits(6, [5])
    assert sorted(g.find_cycle()) == [5, 6]


def test_self_wait_rejected():
    g = WaitsForGraph()
    with pytest.raises(LockError):
        g.add_waits(1, [1])


def test_remove_txn_breaks_cycle():
    g = WaitsForGraph()
    g.add_waits(1, [2])
    g.add_waits(2, [1])
    g.remove_txn(2)
    assert g.find_cycle() == []
    assert g.edges() == []


def test_multiple_blockers():
    g = WaitsForGraph()
    g.add_waits(1, [2, 3])
    assert g.edges() == [(1, 2), (1, 3)]


def test_victim_is_youngest():
    assert WaitsForGraph.choose_victim([3, 9, 5]) == 9


def test_victim_from_empty_cycle_rejected():
    with pytest.raises(LockError):
        WaitsForGraph.choose_victim([])


def test_deterministic_cycle_detection():
    def build():
        g = WaitsForGraph()
        g.add_waits(4, [2])
        g.add_waits(2, [4])
        g.add_waits(1, [3])
        g.add_waits(3, [1])
        return g.find_cycle()

    assert build() == build()
    # Sorted start order means the 1-3 cycle (lower ids) is found first.
    assert sorted(build()) == [1, 3]


def test_lock_manager_integration():
    """Blocked lock requests feed the graph; a real deadlock is detected."""
    from repro.txn.locks import LockManager, LockMode

    lm = LockManager()
    g = WaitsForGraph()
    lm.request(1, 0, LockMode.EXCLUSIVE)
    lm.request(2, 1, LockMode.EXCLUSIVE)
    grant = lm.request(1, 1, LockMode.EXCLUSIVE)
    assert not grant.granted
    g.add_waits(1, grant.waiting_for)
    grant = lm.request(2, 0, LockMode.EXCLUSIVE)
    assert not grant.granted
    g.add_waits(2, grant.waiting_for)
    cycle = g.find_cycle()
    assert sorted(cycle) == [1, 2]
    victim = g.choose_victim(cycle)
    assert victim == 2
    lm.release_all(victim)
    g.remove_txn(victim)
    assert g.find_cycle() == []
