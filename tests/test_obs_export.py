"""Run-artifact export: determinism, schema validity, Chrome trace shape."""

import json

import pytest

from repro.obs import (
    load_events,
    load_manifest,
    record_chaos,
    record_experiment,
    validate_events_jsonl,
    validate_run_dir,
)
from repro.obs.record import _scenario_for
from repro.obs.schema import RUN_SCHEMA_ID, validate_event
from repro.system.cluster import Cluster

ARTIFACTS = ("run.json", "events.jsonl", "trace.json")


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs") / "run"
    manifest = record_experiment("smoke", seed=42, out_dir=out)
    return out, manifest


# -- determinism --------------------------------------------------------------


def test_same_seed_exports_are_byte_identical(tmp_path, smoke_run) -> None:
    first, _ = smoke_run
    second = tmp_path / "again"
    record_experiment("smoke", seed=42, out_dir=second)
    for name in ARTIFACTS:
        assert (first / name).read_bytes() == (second / name).read_bytes(), name


def test_different_seed_diverges(tmp_path, smoke_run) -> None:
    first, _ = smoke_run
    other = tmp_path / "other"
    record_experiment("smoke", seed=43, out_dir=other)
    assert (first / "events.jsonl").read_bytes() != (
        other / "events.jsonl"
    ).read_bytes()


# -- zero interference --------------------------------------------------------


def _fingerprint(trace_on: bool):
    config, scenario = _scenario_for("smoke", 42)
    cluster = Cluster(config)
    cluster.obs.enabled = trace_on
    metrics = cluster.run(scenario)
    return (
        cluster.now,
        metrics.counters.as_dict(),
        [
            (r.txn_id, r.committed, r.finished_at, r.coordinator_elapsed)
            for r in metrics.txns
        ],
        len(cluster.obs),
    )


def test_tracing_does_not_perturb_the_simulation() -> None:
    """Identical sim-time, counters, and per-txn timings with tracing on
    and off — tracing is pure observation."""
    on = _fingerprint(trace_on=True)
    off = _fingerprint(trace_on=False)
    assert on[:3] == off[:3]
    assert on[3] > 0        # traced run captured events
    assert off[3] == 0      # disabled sink captured none


# -- schema -------------------------------------------------------------------


def test_run_dir_is_schema_valid(smoke_run) -> None:
    out, manifest = smoke_run
    assert manifest["schema"] == RUN_SCHEMA_ID
    assert validate_run_dir(out) == []
    assert validate_events_jsonl(out / "events.jsonl") == []


def test_validate_event_catches_violations() -> None:
    good = {
        "seq": 1,
        "t": 0.5,
        "kind": "msg.send",
        "site": 0,
        "txn": -1,
        "parent": 0,
        "args": {},
    }
    assert validate_event(dict(good), prev_seq=0) == []
    assert validate_event({**good, "kind": "bogus.kind"}, prev_seq=0)
    assert validate_event({**good, "parent": 7}, prev_seq=0)  # parent >= seq
    assert validate_event(dict(good), prev_seq=1)  # seq not increasing
    missing = dict(good)
    del missing["txn"]
    assert validate_event(missing, prev_seq=0)


def test_validate_run_dir_flags_tampered_stream(smoke_run, tmp_path) -> None:
    out, _ = smoke_run
    broken = tmp_path / "broken"
    broken.mkdir()
    for name in ARTIFACTS:
        (broken / name).write_bytes((out / name).read_bytes())
    lines = (broken / "events.jsonl").read_text().splitlines()
    evil = json.loads(lines[3])
    evil["parent"] = evil["seq"] + 10  # causality must point backwards
    lines[3] = json.dumps(evil, sort_keys=True, separators=(",", ":"))
    (broken / "events.jsonl").write_text("\n".join(lines) + "\n")
    assert validate_run_dir(broken)


# -- manifest & stream content ------------------------------------------------


def test_manifest_matches_stream(smoke_run) -> None:
    out, manifest = smoke_run
    events = load_events(out)
    assert manifest["events"] == len(events)
    assert load_manifest(out) == manifest
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_parents_always_precede_children(smoke_run) -> None:
    out, _ = smoke_run
    seen = set()
    for event in load_events(out):
        assert event.parent == -1 or event.parent in seen
        seen.add(event.seq)


# -- chrome trace -------------------------------------------------------------


def test_chrome_trace_structure(smoke_run) -> None:
    out, manifest = smoke_run
    trace = json.loads((out / "trace.json").read_text())
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases >= {"M", "X", "i"}  # metadata, slices, instants
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) >= len(manifest["transactions"])
    for entry in slices:
        assert entry["dur"] >= 0
        assert entry["ts"] >= 0
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert "site fail" in instants and "site recover" in instants


# -- chaos recording ----------------------------------------------------------


def test_chaos_recording_exports_and_validates(tmp_path) -> None:
    out = tmp_path / "chaos"
    manifest = record_chaos(3, out_dir=out, txns=20, lossy_core=True)
    assert manifest["scenario"] == "chaos-lossy"
    assert validate_run_dir(out) == []
    kinds = {e.kind.value for e in load_events(out)}
    assert "msg.send" in kinds and "txn.end" in kinds
