"""Property tests over randomized failure/recovery scripts.

The paper's invariant — fail-locks exactly track which copies are out of
date, so the system returns to consistency — must hold for *any* script of
failures and recoveries, not just the three the paper ran.  Hypothesis
generates scripts; the cluster must (a) finish, (b) pass the consistency
audit, and (c) account for every transaction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.costs import CostModel
from repro.system.scenario import FailSite, RecoverSite, Scenario
from repro.workload.uniform import UniformWorkload


@st.composite
def failure_scripts(draw):
    """A legal script over 3 sites and up to 30 transactions.

    Legality: never fail the last up site (the managing site cannot submit
    with everyone down), never fail a down site, never recover an up site,
    and end with at least one recovery so locks can clear.
    """
    num_sites = 3
    up = {0, 1, 2}
    actions: list[tuple[int, object]] = []
    seq = 1
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        seq += draw(st.integers(min_value=1, max_value=6))
        do_fail = draw(st.booleans())
        if do_fail and len(up) > 1:
            victim = draw(st.sampled_from(sorted(up)))
            up.discard(victim)
            actions.append((seq, FailSite(victim)))
        elif len(up) < num_sites:
            down = sorted(set(range(num_sites)) - up)
            riser = draw(st.sampled_from(down))
            up.add(riser)
            actions.append((seq, RecoverSite(riser)))
    # Bring everyone back at the end.
    seq += 2
    for site in sorted(set(range(num_sites)) - up):
        actions.append((seq, RecoverSite(site)))
        seq += 1
    total = seq + draw(st.integers(min_value=5, max_value=15))
    return actions, total


@settings(max_examples=20, deadline=None)
@given(script=failure_scripts(), seed=st.integers(min_value=0, max_value=9999))
def test_any_failure_script_ends_consistent(script, seed):
    actions, total = script
    config = SystemConfig(
        db_size=8, num_sites=3, max_txn_size=3, seed=seed, costs=CostModel.free()
    )
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=total,
    )
    for before, action in actions:
        scenario.add_action(before, action)
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    # (a) it finished (run() raises on stall); (b) consistency holds:
    assert cluster.audit_consistency() == []
    # (c) every transaction is accounted for.
    assert metrics.counters["commits"] + metrics.counters["aborts"] == total
    # (d) survivor fail-lock tables agree with each other.
    up_sites = [s for s in cluster.sites if s.alive]
    for site in up_sites[1:]:
        assert site.faillocks == up_sites[0].faillocks


@settings(max_examples=10, deadline=None)
@given(script=failure_scripts(), seed=st.integers(min_value=0, max_value=9999))
def test_any_failure_script_under_timeout_detection(script, seed):
    from repro.system.config import FailureDetection

    actions, total = script
    config = SystemConfig(
        db_size=8,
        num_sites=3,
        max_txn_size=3,
        seed=seed,
        costs=CostModel.free(),
        detection=FailureDetection.TIMEOUT,
    )
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=total,
    )
    for before, action in actions:
        scenario.add_action(before, action)
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    assert cluster.audit_consistency() == []
    assert metrics.counters["commits"] + metrics.counters["aborts"] == total
