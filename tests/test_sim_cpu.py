"""CpuResource: serialization on one core, parallelism on many."""

import pytest

from repro.errors import SimulationError
from repro.sim.cpu import CpuResource
from repro.sim.scheduler import EventScheduler


def test_single_core_serializes_work():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=1)
    done = []
    cpu.execute(10.0, lambda: done.append(sched.now))
    cpu.execute(5.0, lambda: done.append(sched.now))
    sched.run()
    # Second job starts only when the first completes: 10 then 15.
    assert done == [10.0, 15.0]


def test_two_cores_run_in_parallel():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=2)
    done = []
    cpu.execute(10.0, lambda: done.append(sched.now))
    cpu.execute(5.0, lambda: done.append(sched.now))
    sched.run()
    assert sorted(done) == [5.0, 10.0]


def test_work_submitted_later_starts_at_now():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=1)
    done = []
    sched.schedule(100.0, lambda: cpu.execute(1.0, lambda: done.append(sched.now)))
    sched.run()
    assert done == [101.0]


def test_zero_duration_work_completes_immediately():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=1)
    done = []
    cpu.execute(0.0, lambda: done.append(sched.now))
    sched.run()
    assert done == [0.0]


def test_rejects_negative_duration():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=1)
    with pytest.raises(SimulationError):
        cpu.execute(-1.0, lambda: None)


def test_rejects_zero_cores():
    with pytest.raises(SimulationError):
        CpuResource(EventScheduler(), cores=0)


def test_accounting():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=1)
    cpu.execute(3.0, lambda: None)
    cpu.execute(4.0, lambda: None)
    sched.run()
    assert cpu.busy_ms == 7.0
    assert cpu.jobs == 2
    assert cpu.utilization() == pytest.approx(1.0)


def test_utilization_with_idle_time():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=1)
    sched.schedule(90.0, lambda: cpu.execute(10.0, lambda: None))
    sched.run()
    assert cpu.utilization() == pytest.approx(0.1)


def test_least_loaded_core_chosen():
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=2)
    done = []
    cpu.execute(10.0, lambda: done.append(("long", sched.now)))
    cpu.execute(1.0, lambda: done.append(("short1", sched.now)))
    cpu.execute(1.0, lambda: done.append(("short2", sched.now)))
    sched.run()
    # The third job lands on the core freed at t=1, not behind the 10ms job.
    assert ("short2", 2.0) in done
