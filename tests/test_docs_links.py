"""Markdown link checking: every internal link and anchor must resolve.

Covers all tracked ``*.md`` files: relative-path links must point at
existing files (with existing heading anchors when a ``#fragment`` is
given), and same-document ``#anchor`` links must match a heading.
External ``http(s)``/``mailto`` links are not fetched.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

# Imported reference material (paper extractions, issue text) is not ours
# to fix; the link check covers the documentation this repo authors.
_IMPORTED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

MARKDOWN_FILES = sorted(
    p
    for p in list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
    if p.is_file() and p.name not in _IMPORTED
)

# [text](target) — excluding images' src handled identically, so keep them.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)|\!\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _strip_code_blocks(text: str) -> list[str]:
    lines, fenced = [], False
    for line in text.splitlines():
        if _CODE_FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            lines.append(line)
    return lines


def _github_anchor(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, dash spaces."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    heading = heading.lower().strip()
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in _strip_code_blocks(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        base = _github_anchor(match.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


def _links_of(path: Path) -> list[str]:
    links = []
    for line in _strip_code_blocks(path.read_text(encoding="utf-8")):
        for match in _LINK.finditer(line):
            links.append(match.group(1) or match.group(2))
    return links


def test_markdown_corpus_found() -> None:
    names = {p.name for p in MARKDOWN_FILES}
    assert {"README.md", "ARCHITECTURE.md", "OBSERVABILITY.md",
            "PROTOCOL.md"} <= names


@pytest.mark.parametrize(
    "md", MARKDOWN_FILES, ids=[str(p.relative_to(REPO)) for p in MARKDOWN_FILES]
)
def test_internal_links_resolve(md: Path) -> None:
    problems = []
    for link in _links_of(md):
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = link.partition("#")
        if not target:  # same-document anchor
            if fragment and fragment not in _anchors_of(md):
                problems.append(f"#{fragment}: no such heading in {md.name}")
            continue
        resolved = (md.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{link}: {target} does not exist")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors_of(resolved):
                problems.append(
                    f"{link}: no heading anchors to #{fragment} "
                    f"in {resolved.name}"
                )
    assert not problems, "\n".join(problems)
