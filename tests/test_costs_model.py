"""Cost-model behaviour in the running system."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.costs import CostModel

from conftest import make_scenario, run_cluster


def test_scaled_costs_scale_run_time():
    def total_time(factor):
        config = SystemConfig(
            db_size=10, num_sites=3, max_txn_size=4, seed=3,
            costs=CostModel().scaled(factor),
        )
        cluster = run_cluster(config, make_scenario(config, 20))
        return cluster.now

    base = total_time(1.0)
    double = total_time(2.0)
    assert double == pytest.approx(2 * base, rel=0.01)


def test_free_costs_run_in_zero_time():
    config = SystemConfig(
        db_size=10, num_sites=3, max_txn_size=4, seed=3, costs=CostModel.free()
    )
    cluster = run_cluster(config, make_scenario(config, 20))
    assert cluster.now == 0.0
    assert cluster.metrics.counters["commits"] == 20


def test_multicore_is_never_slower():
    def total_time(cores):
        config = SystemConfig(
            db_size=10, num_sites=4, max_txn_size=4, seed=3, cores=cores
        )
        cluster = run_cluster(config, make_scenario(config, 30))
        return cluster.now

    single = total_time(1)
    multi = total_time(5)
    assert multi <= single


def test_wire_latency_adds_time_without_cpu():
    def run_with(latency):
        config = SystemConfig(
            db_size=10, num_sites=3, max_txn_size=4, seed=3,
            wire_latency_ms=latency,
        )
        cluster = run_cluster(config, make_scenario(config, 10))
        return cluster.now, cluster.cpu.busy_ms

    t0, busy0 = run_with(0.0)
    t1, busy1 = run_with(20.0)
    assert t1 > t0
    assert busy1 == pytest.approx(busy0)  # latency is not CPU work


def test_message_costs_flow_to_cpu_accounting():
    config = SystemConfig(db_size=10, num_sites=3, max_txn_size=4, seed=3)
    cluster = run_cluster(config, make_scenario(config, 10))
    delivered = cluster.network.messages_delivered
    # Every delivered message cost at least send+recv on the CPU.
    assert cluster.cpu.busy_ms >= delivered * config.costs.communication_cost * 0.9
