"""LockManager: strict 2PL grant/queue/release semantics."""

import pytest

from repro.errors import LockError
from repro.txn.locks import LockManager, LockMode


@pytest.fixture
def lm() -> LockManager:
    return LockManager()


S, X = LockMode.SHARED, LockMode.EXCLUSIVE


def test_compatibility_matrix():
    assert S.compatible_with(S)
    assert not S.compatible_with(X)
    assert not X.compatible_with(S)
    assert not X.compatible_with(X)


def test_shared_locks_coexist(lm):
    assert lm.request(1, 0, S).granted
    assert lm.request(2, 0, S).granted
    assert set(lm.holders_of(0)) == {1, 2}


def test_exclusive_blocks_shared(lm):
    assert lm.request(1, 0, X).granted
    grant = lm.request(2, 0, S)
    assert not grant.granted
    assert grant.waiting_for == (1,)


def test_rerequest_is_idempotent(lm):
    lm.request(1, 0, S)
    assert lm.request(1, 0, S).granted
    assert lm.grants == 1


def test_x_holder_may_read(lm):
    lm.request(1, 0, X)
    assert lm.request(1, 0, S).granted


def test_upgrade_sole_holder(lm):
    lm.request(1, 0, S)
    assert lm.request(1, 0, X).granted
    assert lm.holders_of(0)[1] is X


def test_upgrade_with_other_readers_waits(lm):
    lm.request(1, 0, S)
    lm.request(2, 0, S)
    grant = lm.request(1, 0, X)
    assert not grant.granted
    assert grant.waiting_for == (2,)


def test_release_grants_next_in_fifo(lm):
    lm.request(1, 0, X)
    lm.request(2, 0, X)
    lm.request(3, 0, X)
    granted = lm.release_all(1)
    assert granted == {0: [2]}
    assert lm.holders_of(0) == {2: X}


def test_release_grants_shared_batch(lm):
    lm.request(1, 0, X)
    lm.request(2, 0, S)
    lm.request(3, 0, S)
    granted = lm.release_all(1)
    assert granted == {0: [2, 3]}


def test_shared_batch_stops_at_exclusive(lm):
    lm.request(1, 0, X)
    lm.request(2, 0, S)
    lm.request(3, 0, X)
    lm.request(4, 0, S)
    granted = lm.release_all(1)
    # FIFO: the S is granted, then the X blocks the rest.
    assert granted == {0: [2]}
    assert lm.waiters_of(0) == [3, 4]


def test_no_queue_jumping(lm):
    lm.request(1, 0, X)
    lm.request(2, 0, X)   # queued
    grant = lm.request(3, 0, S)  # compatible with nothing queued? must queue
    assert not grant.granted
    assert 2 in grant.waiting_for


def test_release_removes_queued_requests(lm):
    lm.request(1, 0, X)
    lm.request(2, 0, X)
    lm.release_all(2)  # waiter gives up
    assert lm.waiters_of(0) == []
    lm.release_all(1)
    assert lm.holders_of(0) == {}


def test_upgrade_granted_on_release(lm):
    lm.request(1, 0, S)
    lm.request(2, 0, S)
    lm.request(1, 0, X)  # queued upgrade
    granted = lm.release_all(2)
    assert granted == {0: [1]}
    assert lm.holders_of(0)[1] is X


def test_held_by(lm):
    lm.request(1, 0, S)
    lm.request(1, 5, X)
    assert lm.held_by(1) == [0, 5]


def test_verify_integrity_catches_violation(lm):
    lm.request(1, 0, X)
    # Corrupt the table directly to prove the checker works.
    lm._table[0].holders[2] = S
    with pytest.raises(LockError):
        lm.verify_integrity()


def test_release_all_multiple_items(lm):
    lm.request(1, 0, X)
    lm.request(1, 1, X)
    lm.request(2, 0, S)
    lm.request(2, 1, S)
    granted = lm.release_all(1)
    assert granted == {0: [2], 1: [2]}
