"""Cluster integration: failure, fail-locks, recovery (the paper's core)."""

import pytest

from repro.core.sessions import SiteState
from repro.net.message import MessageType
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, FixedSite, RecoverSite, Scenario, Weighted
from repro.workload.uniform import UniformWorkload

from conftest import make_scenario, run_cluster


def failure_scenario(config, txn_count=40, fail_at=1, recover_at=21, site=0, **kw):
    scenario = make_scenario(config, txn_count, **kw)
    scenario.add_action(fail_at, FailSite(site))
    scenario.add_action(recover_at, RecoverSite(site))
    return scenario


def test_survivors_keep_committing(small_config):
    cluster = run_cluster(small_config, failure_scenario(small_config))
    assert cluster.metrics.counters["commits"] == 40
    assert cluster.metrics.counters["aborts"] == 0


def test_failed_site_receives_nothing(small_config):
    cluster = Cluster(small_config)
    scenario = make_scenario(small_config, 10)
    scenario.add_action(1, FailSite(2))
    cluster.run(scenario)
    # Site 2 saw the MGR_FAIL and nothing else.
    assert len(cluster.site(2).db.log) == 0


def test_faillocks_set_for_down_site(small_config):
    cluster = Cluster(small_config)
    scenario = make_scenario(small_config, 20)
    scenario.add_action(1, FailSite(2))
    metrics = cluster.run(scenario)
    locks = cluster.faillock_counts()
    assert locks[2] > 0
    assert locks[0] == locks[1] == 0
    # The down site's copy really is stale.
    assert cluster.audit_consistency() == []


def test_survivor_tables_agree(small_config):
    cluster = Cluster(small_config)
    scenario = make_scenario(small_config, 25)
    scenario.add_action(1, FailSite(2))
    cluster.run(scenario)
    assert cluster.site(0).faillocks == cluster.site(1).faillocks


def test_recovery_installs_state_and_session(small_config):
    cluster = run_cluster(small_config, failure_scenario(small_config, site=2))
    site = cluster.site(2)
    assert site.alive
    assert site.nsv.my_session == 2  # new session after one recovery
    # Everyone agrees it is up with session 2.
    for other in cluster.sites:
        assert other.nsv.state_of(2) is SiteState.UP
        assert other.nsv.session_of(2) == 2


def test_recovered_site_fully_refreshed(small_config):
    config = small_config
    scenario = failure_scenario(config, txn_count=30, site=2)
    scenario.until_recovered = (2,)
    scenario.max_txns = 500
    cluster = run_cluster(config, scenario)
    assert cluster.faillock_counts()[2] == 0
    dumps = [site.db.dump() for site in cluster.sites]
    assert dumps[0] == dumps[1] == dumps[2]


def test_faillocks_cleared_by_writes(small_config):
    """During recovery, committed writes refresh the recovered site."""
    cluster = run_cluster(small_config, failure_scenario(small_config, site=1))
    site = cluster.site(1)
    assert site.recovery.stats.refreshed_by_write > 0


def test_type1_control_messages_flow(small_config):
    cluster = run_cluster(small_config, failure_scenario(small_config, site=1))
    trace = cluster.network.trace
    assert trace.count(mtype=MessageType.RECOVERY_ANNOUNCE) >= 2
    assert trace.count(mtype=MessageType.RECOVERY_STATE) == 1
    assert cluster.metrics.counters["control_type1"] >= 1


def test_repeated_fail_recover_increments_session(small_config):
    scenario = make_scenario(small_config, 30)
    scenario.add_action(1, FailSite(0))
    scenario.add_action(11, RecoverSite(0))
    scenario.add_action(16, FailSite(0))
    scenario.add_action(26, RecoverSite(0))
    cluster = run_cluster(small_config, scenario)
    assert cluster.site(0).nsv.my_session == 3


def test_two_site_total_failover(paper2_config):
    """Site 0 down, then site 1 down while 0 recovers (scenario-1 shape)."""
    scenario = make_scenario(paper2_config, 60)
    scenario.add_action(1, FailSite(0))
    scenario.add_action(21, RecoverSite(0))
    scenario.add_action(21, FailSite(1))
    scenario.add_action(41, RecoverSite(1))
    cluster = run_cluster(paper2_config, scenario)
    # Some aborts are expected (items whose only good copy was on site 1).
    metrics = cluster.metrics
    assert metrics.counters["commits"] + metrics.counters["aborts"] == 60
    assert cluster.audit_consistency() == []


def test_abort_when_no_good_copy(paper2_config):
    """A read of an item whose only up-to-date copy is down must abort."""
    scenario = make_scenario(paper2_config, 120)
    scenario.add_action(1, FailSite(0))
    scenario.add_action(41, RecoverSite(0))
    scenario.add_action(41, FailSite(1))
    cluster = run_cluster(paper2_config, scenario)
    aborted = cluster.metrics.aborted
    assert aborted, "expected at least one copy-unavailable abort"
    assert all(t.abort_reason.value == "copy_unavailable" for t in aborted)


def test_manager_waits_for_recovery(small_config):
    """The transaction after a RecoverSite action starts only after the
    type-1 control transaction completes."""
    cluster = Cluster(small_config)
    scenario = failure_scenario(small_config, txn_count=25, site=1)
    metrics = cluster.run(scenario)
    type1 = [c for c in metrics.controls if c.kind == 1 and c.role == "recovering"]
    assert len(type1) == 1
    txn21 = next(t for t in metrics.txns if t.seq == 21)
    assert txn21.submitted_at >= type1[0].finished_at


def test_write_value_provenance(small_config):
    """Committed values encode their writing transaction (auditability)."""
    from repro.site.coordinator import write_value

    cluster = run_cluster(small_config, make_scenario(small_config, 15))
    for site in cluster.sites:
        for item_id, data in site.db.dump().items():
            value, version = data
            if version > 0:
                writer = site.db.log.for_item(item_id)[-1].txn_id
                assert value == write_value(writer, item_id)
                # Versions are strictly increasing per item (commit-point
                # stamps from the logical clock).
                versions = [r.new_version for r in site.db.log.for_item(item_id)]
                assert versions == sorted(versions)
                assert len(set(versions)) == len(versions)
