"""ASCII chart rendering."""

import pytest

from repro.errors import ReproError
from repro.viz.ascii_chart import AsciiChart, render_series


def test_render_contains_series_glyphs():
    chart = AsciiChart(width=40, height=10, title="T")
    chart.add_series("a", [(0, 0), (10, 5), (20, 10)])
    chart.add_series("b", [(0, 10), (20, 0)])
    out = chart.render()
    assert "T" in out
    assert "o a" in out and "* b" in out
    assert "o" in out and "*" in out


def test_render_empty():
    assert "(no data)" in AsciiChart(title="empty").render()


def test_axis_labels_present():
    chart = AsciiChart(width=30, height=8, x_label="Transactions")
    chart.add_series("s", [(1, 0), (100, 50)])
    out = chart.render()
    assert "Transactions" in out
    assert "1" in out and "100" in out
    assert "50" in out  # y max label


def test_points_land_on_expected_rows():
    chart = AsciiChart(width=11, height=11)
    chart.add_series("s", [(0, 0), (10, 10)])
    lines = chart.render().splitlines()
    grid = [line.split("|", 1)[1] for line in lines if "|" in line]
    assert grid[0][10] == "o"     # top-right = max
    assert grid[10][0] == "o"     # bottom-left = min


def test_too_small_rejected():
    with pytest.raises(ReproError):
        AsciiChart(width=5, height=2)


def test_render_series_helper():
    out = render_series({"x": [(0.0, 1.0), (1.0, 2.0)]}, title="H")
    assert "H" in out
    assert "x" in out


def test_constant_series_does_not_crash():
    out = render_series({"flat": [(0.0, 0.0), (5.0, 0.0)]})
    assert "|" in out
