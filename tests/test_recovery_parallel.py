"""repro.recovery: partition planner, parallel scheduler, recovery-window
edges (flapping, partition mid-recovery, donor crash mid-fan-out), and
the experiment/report/bench stack."""

import pytest

from repro.chaos.faults import FaultPlan
from repro.chaos.runner import run_seed_sweep
from repro.check import CheckConfig, explore
from repro.core.copier import choose_copier_source
from repro.core.recovery import RecoveryPolicy
from repro.recovery import plan_partitions
from repro.recovery.experiment import run_recovery_cell, run_recovery_matrix
from repro.recovery.report import (
    RECOVERY_SCHEMA,
    build_recovery_report,
    render_recovery_text,
    validate_recovery_report,
    write_recovery_report,
)
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite, Scenario, Weighted
from repro.workload.uniform import UniformWorkload

from conftest import make_scenario, run_cluster


def parallel_config(**kw):
    defaults = dict(
        db_size=12,
        num_sites=4,
        max_txn_size=4,
        seed=7,
        cores=5,
        cold_recovery=True,
        recovery_policy=RecoveryPolicy.PARALLEL,
    )
    defaults.update(kw)
    return SystemConfig(**defaults)


# -- partition planner ---------------------------------------------------------


def _fresh_planner(num_sites=4):
    config = SystemConfig(db_size=12, num_sites=num_sites, seed=1)
    return Cluster(config).site(0).planner


def test_plan_partitions_balances_across_donors():
    planner = _fresh_planner()
    shards = plan_partitions(planner, range(12), exclude=(0,))
    assert sorted(shards) == [1, 2, 3]
    assert sorted(len(v) for v in shards.values()) == [4, 4, 4]
    covered = sorted(i for items in shards.values() for i in items)
    assert covered == list(range(12))
    for items in shards.values():
        assert items == sorted(items)


def test_plan_partitions_respects_exclude():
    planner = _fresh_planner()
    shards = plan_partitions(planner, range(12), exclude=(0, 1, 2))
    assert sorted(shards) == [3]
    assert shards[3] == list(range(12))


def test_plan_partitions_max_donors_defers_rather_than_overcommits():
    planner = _fresh_planner()
    shards = plan_partitions(planner, range(12), exclude=(0,), max_donors=2)
    assert len(shards) == 2
    # Under full replication every deferred-eligible item still fits an
    # opened donor, so nothing is actually dropped here.
    assert sum(len(v) for v in shards.values()) == 12


def test_plan_partitions_no_donor_items_absent():
    planner = _fresh_planner()
    shards = plan_partitions(planner, range(12), exclude=(0, 1, 2, 3))
    assert shards == {}


def test_plan_partitions_is_deterministic():
    planner = _fresh_planner()
    first = plan_partitions(planner, range(12), exclude=(0,))
    second = plan_partitions(planner, range(12), exclude=(0,))
    assert first == second


# -- donor spreading (satellite: choose_copier_source) -------------------------


def test_choose_copier_source_default_elects_lowest():
    planner = _fresh_planner()
    chosen = choose_copier_source(planner, [0, 1, 2])
    assert all(s == 1 or s >= 0 for s in chosen.values())
    baseline = {item: planner.up_to_date_source(item) for item in [0, 1, 2]}
    assert chosen == baseline


def test_choose_copier_source_spread_rotates_by_item_id():
    planner = _fresh_planner()
    chosen = choose_copier_source(planner, list(range(8)), spread=True)
    donors = planner.up_to_date_sources(0)
    for item, site in chosen.items():
        assert site == donors[item % len(donors)]
    assert len(set(chosen.values())) > 1


def test_spread_flag_default_off_in_config():
    assert SystemConfig().spread_copier_sources is False


def test_spread_run_stays_consistent():
    config = parallel_config(
        recovery_policy=RecoveryPolicy.ON_DEMAND,
        cold_recovery=False,
        spread_copier_sources=True,
    )
    scenario = make_scenario(config, 20)
    scenario.add_action(3, FailSite(1))
    scenario.add_action(8, RecoverSite(1))
    scenario.until_recovered = (1,)
    scenario.max_txns = 1000
    cluster = run_cluster(config, scenario)
    assert cluster.audit_consistency() == []
    assert cluster.faillock_counts()[1] == 0


# -- parallel recovery end to end ----------------------------------------------


def test_parallel_recovery_completes_and_converges():
    config = parallel_config()
    scenario = make_scenario(config, 20)
    scenario.add_action(3, FailSite(0))
    scenario.add_action(8, RecoverSite(0))
    scenario.until_recovered = (0,)
    scenario.max_txns = 1000
    cluster = run_cluster(config, scenario)
    assert cluster.audit_consistency() == []
    assert cluster.faillock_counts()[0] == 0
    stats = cluster.site(0).recovery.stats
    assert stats.complete
    assert stats.batch_copier_requests > 1  # fan-out, not one batch chain


def test_parallel_uses_multiple_donors():
    cell = run_recovery_cell("parallel", 4, 32, seed=11)
    sequential = run_recovery_cell("two_step", 4, 32, seed=11)
    assert cell.recovery_ms < sequential.recovery_ms


def test_parallel_beats_two_step_at_four_donors():
    sequential = run_recovery_cell("two_step", 4, 64)
    parallel = run_recovery_cell("parallel", 4, 64)
    assert sequential.recovery_ms / parallel.recovery_ms >= 1.5


def test_donor_crash_mid_fanout_replans_and_completes():
    # Site 0 recovers in parallel; one donor dies in the same slot, i.e.
    # genuinely inside the recovery period with shards in flight.  The
    # scheduler must bounce, re-plan to the surviving donors, and still
    # clear every fail-lock.
    config = parallel_config(num_sites=5, cores=6, db_size=16)
    weights = {0: 0.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=12,
        policy=Weighted(weights),
        until_recovered=(0,),
        max_txns=1000,
    )
    scenario.until_recovered = (0, 3)
    scenario.add_action(2, FailSite(0))
    scenario.add_action(5, RecoverSite(0))
    scenario.add_action(5, FailSite(3))  # donor dies mid-fan-out
    scenario.add_action(9, RecoverSite(3))
    cluster = run_cluster(config, scenario)
    assert cluster.faillock_counts()[0] == 0
    assert cluster.site(0).recovery.stats.complete
    assert cluster.audit_consistency() == []


def test_flapping_site_interrupts_then_completes_recovery():
    config = parallel_config()
    scenario = make_scenario(config, 16)
    scenario.add_action(2, FailSite(0))
    scenario.add_action(5, RecoverSite(0))
    scenario.add_action(5, FailSite(0))  # re-fail inside the period
    scenario.add_action(10, RecoverSite(0))
    scenario.until_recovered = (0,)
    scenario.max_txns = 1000
    cluster = run_cluster(config, scenario)
    records = cluster.metrics.recoveries
    assert [r.interrupted for r in records] == [True, False]
    assert records[0].site_id == 0
    assert records[0].policy == "parallel"
    assert records[0].finished_at == -1.0
    assert records[1].elapsed > 0
    assert cluster.metrics.counters.get("recovery_periods") == 2
    assert cluster.metrics.counters.get("recovery_periods_interrupted") == 1
    assert cluster.audit_consistency() == []


# -- chaos presets -------------------------------------------------------------


def test_correlated_preset_is_clean_and_interrupts_nothing_by_default():
    report = run_seed_sweep(range(5), plan=FaultPlan.correlated(), txns=40)
    assert report.dirty_seeds == []
    assert report.stalled_seeds == []
    assert sum(r.recovery_periods for r in report.results) > 0


def test_flapping_preset_is_clean_and_interrupts_recoveries():
    report = run_seed_sweep(range(5), plan=FaultPlan.flapping(), txns=40)
    assert report.dirty_seeds == []
    assert report.stalled_seeds == []
    assert sum(r.interrupted_recoveries for r in report.results) > 0


def test_partition_recovery_preset_is_clean():
    report = run_seed_sweep(
        range(5), plan=FaultPlan.partition_recovery(), txns=40
    )
    assert report.dirty_seeds == []
    assert report.stalled_seeds == []


def test_preset_describe_lines_are_distinct():
    descriptions = {
        FaultPlan.correlated().describe(),
        FaultPlan.flapping().describe(),
        FaultPlan.partition_recovery().describe(),
        FaultPlan().describe(),
    }
    assert len(descriptions) == 4


def test_classic_plan_is_not_a_recovery_scenario():
    assert not FaultPlan().recovery_scenario
    assert FaultPlan.correlated().recovery_scenario
    assert FaultPlan.flapping().recovery_scenario
    assert FaultPlan.partition_recovery().recovery_scenario


def test_preset_sweeps_replay_byte_identically():
    for plan in (FaultPlan.correlated(), FaultPlan.flapping(),
                 FaultPlan.partition_recovery()):
        first = run_seed_sweep(range(2), plan=plan, txns=30)
        second = run_seed_sweep(range(2), plan=plan, txns=30)
        assert first.results == second.results


# -- repro.check under the parallel policy -------------------------------------


def test_check_explores_parallel_recovery_clean():
    result = explore(
        CheckConfig(txns=2, recovery_policy="parallel"), max_runs=40
    )
    assert result.violation is None


def test_check_explores_flapping_budget_clean():
    result = explore(
        CheckConfig(
            txns=3,
            recovery_policy="parallel",
            max_crashes=2,
            max_recoveries=2,
        ),
        max_runs=40,
    )
    assert result.violation is None


def test_check_schedule_files_roundtrip_recovery_policy():
    config = CheckConfig(recovery_policy="parallel")
    assert CheckConfig.from_dict(config.to_dict()) == config
    # Old schedule files (no key) load with the byte-identical default.
    legacy = {k: v for k, v in config.to_dict().items()
              if k != "recovery_policy"}
    assert CheckConfig.from_dict(legacy).recovery_policy == "on_demand"


# -- experiment / report / bench ----------------------------------------------


def test_recovery_cell_measures_full_stale_set():
    cell = run_recovery_cell("parallel", 2, 16)
    assert cell.initial_stale == 16
    assert cell.recovery_ms > 0
    assert cell.refreshed_by_copier + cell.refreshed_by_write >= 16


def test_recovery_cell_rejects_bad_shapes():
    with pytest.raises(Exception):
        run_recovery_cell("parallel", 0, 16)
    with pytest.raises(Exception):
        run_recovery_cell("parallel", 2, 0)


def test_recovery_report_builds_validates_and_is_deterministic(tmp_path):
    cells = run_recovery_matrix(
        donor_counts=(2, 4), stale_sizes=(16,), seed=5
    )
    doc = build_recovery_report(cells, seed=5)
    assert doc["schema"] == RECOVERY_SCHEMA
    assert validate_recovery_report(doc) == []
    assert doc["speedup"]["min_at_4plus_donors"] is not None
    text = render_recovery_text(doc)
    assert "speedup" in text
    path_a = write_recovery_report(doc, tmp_path / "a.json")
    again = build_recovery_report(
        run_recovery_matrix(donor_counts=(2, 4), stale_sizes=(16,), seed=5),
        seed=5,
    )
    path_b = write_recovery_report(again, tmp_path / "b.json")
    assert path_a.read_bytes() == path_b.read_bytes()


def test_recovery_report_validation_catches_corruption():
    cells = run_recovery_matrix(donor_counts=(2,), stale_sizes=(16,), seed=5)
    doc = build_recovery_report(cells, seed=5)
    doc["cells"][0]["recovery_ms"] = -1.0
    assert any("not positive" in p for p in validate_recovery_report(doc))
    doc2 = build_recovery_report(cells, seed=5)
    doc2["schema"] = "bogus"
    assert any("schema" in p for p in validate_recovery_report(doc2))


def test_recovery_bench_gate_logic():
    from repro.recovery.bench import (
        check_recovery_regression,
        validate_recovery_bench_doc,
    )

    doc = {
        "schema": "repro.bench.recovery/1",
        "quick": True,
        "seed": 42,
        "gate": {
            "donors": 4, "stale_items": 64,
            "two_step_ms": 1000.0, "parallel_ms": 500.0,
            "speedup": 2.0, "min_speedup": 1.5,
        },
        "throughput": {"events": 1000, "wall_s": 0.1,
                       "events_per_sec": 10000.0},
    }
    assert validate_recovery_bench_doc(doc) == []
    slow = {**doc, "gate": {**doc["gate"], "speedup": 1.2}}
    assert any("floor" in p for p in validate_recovery_bench_doc(slow))
    drifted = {**doc, "gate": {**doc["gate"], "parallel_ms": 501.0}}
    assert any(
        "drifted" in p for p in check_recovery_regression(doc, drifted)
    )
    regressed = {
        **doc,
        "throughput": {**doc["throughput"], "events_per_sec": 5000.0},
    }
    assert any(
        "below committed" in p
        for p in check_recovery_regression(doc, regressed)
    )
    assert check_recovery_regression(doc, doc) == []


def test_committed_bench_recovery_artifact_is_valid():
    import json
    from pathlib import Path

    from repro.recovery.bench import validate_recovery_bench_doc

    artifact = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"
    doc = json.loads(artifact.read_text())
    assert validate_recovery_bench_doc(doc) == []
    assert doc["gate"]["speedup"] >= 1.5


def test_committed_recovery_report_meets_acceptance():
    import json
    from pathlib import Path

    artifact = (
        Path(__file__).resolve().parents[1] / "figures" / "recovery_time.json"
    )
    doc = json.loads(artifact.read_text())
    assert validate_recovery_report(doc) == []
    assert doc["speedup"]["min_at_4plus_donors"] >= 1.5


# -- metrics surfacing ---------------------------------------------------------


def test_recovery_periods_csv_exports_records():
    from repro.analysis.export import recovery_periods_csv

    config = parallel_config()
    scenario = make_scenario(config, 16)
    scenario.add_action(3, FailSite(0))
    scenario.add_action(8, RecoverSite(0))
    scenario.until_recovered = (0,)
    scenario.max_txns = 1000
    cluster = run_cluster(config, scenario)
    rows = recovery_periods_csv(cluster.metrics)
    assert rows[0][0] == "site_id"
    assert len(rows) >= 2
    body = rows[1]
    assert body[0] == "0"
    assert body[1] == "parallel"
    assert body[10] == "0"  # not interrupted


def test_soak_report_gains_recoveries_only_for_non_default_policy():
    from repro.soak import SoakConfig, build_report, run_soak

    base = dict(txns=120, rate_tps=40.0, db_size=32, exemplars=0, seed=9)
    default_doc = build_report(run_soak(SoakConfig(**base)))
    assert "recoveries" not in default_doc
    assert "recovery_policy" not in default_doc["config"]
    parallel_doc = build_report(
        run_soak(SoakConfig(recovery_policy="parallel", **base))
    )
    assert parallel_doc["config"]["recovery_policy"] == "parallel"
    assert isinstance(parallel_doc["recoveries"], list)
    assert parallel_doc["recoveries"], "fault cycle should close a period"
    record = parallel_doc["recoveries"][0]
    assert record["policy"] == "parallel"
    assert record["initial_stale"] > 0


# -- CLI surface ---------------------------------------------------------------


def test_cli_recovery_writes_valid_report(tmp_path, capsys):
    import json

    from repro.cli import main

    out = tmp_path / "recovery.json"
    svg = tmp_path / "recovery.svg"
    rc = main(
        ["recovery", "--donors", "2", "4", "--stale", "16",
         "--out", str(out), "--svg", str(svg)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert validate_recovery_report(doc) == []
    assert svg.read_text().startswith("<svg")
    captured = capsys.readouterr()
    assert "speedup" in captured.out


def test_cli_chaos_recovery_modes_exit_zero(capsys):
    from repro.cli import main

    for mode in ("correlated", "flapping", "partition-recovery"):
        rc = main(["chaos", "--mode", mode, "--seeds", "2", "--txns", "30"])
        assert rc == 0, mode
        assert "recovery:" in capsys.readouterr().out


def test_cli_soak_trace_exemplars_roundtrip(tmp_path, capsys):
    from repro.cli import main
    from repro.obs import validate_run_dir

    out = tmp_path / "soakrun"
    rc = main(
        ["--seed", "7", "soak", "run", "--txns", "80", "--rate", "40",
         "--exemplars", "4", "--recovery-policy", "two_step",
         "--trace-exemplars", str(out)]
    )
    assert rc == 0
    assert validate_run_dir(out) == []
    captured = capsys.readouterr()
    assert "repro trace show" in captured.out
    import json

    exemplars = json.loads((out / "exemplars.json").read_text())
    assert exemplars["txns"] == sorted(exemplars["txns"])
    assert exemplars["txns"]
