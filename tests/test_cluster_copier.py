"""Cluster integration: copier transactions and clear-fail-locks notices."""

import pytest

from repro.net.message import MessageType
from repro.system.cluster import Cluster
from repro.system.config import ClearNoticeMode, SystemConfig
from repro.system.scenario import FailSite, RecoverSite, Scenario, Weighted
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator

from conftest import make_scenario, run_cluster


class Scripted(WorkloadGenerator):
    """Plays back a fixed list of op lists, then read-only filler."""

    def __init__(self, scripts: dict[int, list[Operation]], filler_item: int = 0):
        self.scripts = scripts
        self.filler_item = filler_item

    def generate(self, txn_seq, rng):
        if txn_seq in self.scripts:
            return self.scripts[txn_seq]
        return [Operation(OpKind.READ, self.filler_item)]


def copier_setup(mode=ClearNoticeMode.SPECIAL_TXN):
    """3 sites; site 2 misses a write of item 5, recovers, then coordinates
    a transaction that reads item 5 — forcing exactly one copier."""
    config = SystemConfig(
        db_size=10, num_sites=3, max_txn_size=4, seed=5, clear_notice_mode=mode
    )
    scripts = {
        2: [Operation(OpKind.WRITE, 5)],            # while site 2 is down
        4: [Operation(OpKind.READ, 5)],             # at recovered site 2
    }
    scenario = Scenario(
        workload=Scripted(scripts),
        txn_count=5,
        policy=ScriptedPolicy({4: 2, 5: 2}),
    )
    scenario.add_action(1, FailSite(2))
    scenario.add_action(4, RecoverSite(2))
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    return cluster, metrics


class ScriptedPolicy:
    """Submit transaction ``seq`` to ``sites[seq]``, default site 0."""

    def __init__(self, sites: dict[int, int]):
        self.sites = sites

    def choose(self, seq, up_sites, rng):
        want = self.sites.get(seq, 0)
        return want if want in up_sites else up_sites[0]


def test_copier_refreshes_stale_read():
    cluster, metrics = copier_setup()
    assert metrics.counters["copiers"] == 1
    assert metrics.counters["commits"] == 5
    # The read saw the refreshed value, and the copy is installed locally.
    assert cluster.site(2).db.version(5) == 1  # one committed write
    assert cluster.site(2).db.log.for_item(5)[-1].txn_id == -1  # via copier
    assert cluster.faillock_counts()[2] == 0


def test_copier_messages_flow():
    cluster, _metrics = copier_setup()
    trace = cluster.network.trace
    assert trace.count(mtype=MessageType.COPY_REQ) == 1
    assert trace.count(mtype=MessageType.COPY_RESP) == 1
    # Special transactions to the two peers.
    assert trace.count(mtype=MessageType.CLEAR_FAILLOCKS) == 2


def test_copier_clears_faillock_everywhere():
    cluster, _metrics = copier_setup()
    for site in cluster.sites:
        assert not site.faillocks.is_locked(5, 2)


def test_embedded_mode_sends_no_special_txn():
    """Embedded clears ride the next phase-1 this site coordinates."""
    config = SystemConfig(
        db_size=10, num_sites=3, max_txn_size=4, seed=5,
        clear_notice_mode=ClearNoticeMode.EMBEDDED,
    )
    scripts = {
        2: [Operation(OpKind.WRITE, 5)],                        # site 2 down
        4: [Operation(OpKind.READ, 5)],                         # copier at 2
        5: [Operation(OpKind.WRITE, 1)],                        # carries clears
    }
    scenario = Scenario(
        workload=Scripted(scripts),
        txn_count=5,
        policy=ScriptedPolicy({4: 2, 5: 2}),
    )
    scenario.add_action(1, FailSite(2))
    scenario.add_action(4, RecoverSite(2))
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    trace = cluster.network.trace
    assert trace.count(mtype=MessageType.CLEAR_FAILLOCKS) == 0
    assert metrics.counters["copiers"] == 1
    # After txn 5's phase one, the clears have propagated everywhere.
    for site in cluster.sites:
        assert not site.faillocks.is_locked(5, 2)


def test_copier_recorded_in_metrics():
    _cluster, metrics = copier_setup()
    assert len(metrics.copiers) == 1
    record = metrics.copiers[0]
    assert record.requester == 2
    assert record.items == 1
    assert record.elapsed > 0
    txn = next(t for t in metrics.txns if t.copiers_requested == 1)
    assert txn.seq == 4
    assert txn.clear_notices_sent == 2


def test_copier_denied_aborts():
    """If the copier source itself is stale, the transaction aborts."""
    config = SystemConfig(db_size=6, num_sites=2, max_txn_size=3, seed=5)
    scripts = {
        2: [Operation(OpKind.WRITE, 3)],   # site 1 writes while 0 down
        4: [Operation(OpKind.READ, 3)],    # site 0 reads after recovery...
    }
    scenario = Scenario(
        workload=Scripted(scripts),
        txn_count=4,
        policy=ScriptedPolicy({4: 0}),
    )
    scenario.add_action(1, FailSite(0))
    scenario.add_action(4, RecoverSite(0))
    # ... but before txn 4 we also fail site 1, the only good copy.
    scenario.add_action(4, FailSite(1))
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    aborted = metrics.aborted
    assert len(aborted) == 1
    assert aborted[0].abort_reason.value == "copy_unavailable"


def test_batch_copiers_under_two_step_policy():
    from repro.core.recovery import RecoveryPolicy

    config = SystemConfig(
        db_size=10,
        num_sites=2,
        max_txn_size=4,
        seed=5,
        recovery_policy=RecoveryPolicy.TWO_STEP,
        batch_threshold=1.0,   # batch immediately on recovery
        batch_size=3,
    )
    scenario = make_scenario(config, 30)
    scenario.add_action(1, FailSite(0))
    scenario.add_action(21, RecoverSite(0))
    cluster = run_cluster(config, scenario)
    metrics = cluster.metrics
    assert metrics.counters.get("batch_copiers") > 0
    assert cluster.faillock_counts()[0] == 0
    assert cluster.audit_consistency() == []


def test_batch_copier_source_failure_does_not_stall_recovery():
    """Two-step recovery keeps going when a batch-copier source dies."""
    from repro.core.recovery import RecoveryPolicy
    from repro.system.config import FailureDetection

    config = SystemConfig(
        db_size=10,
        num_sites=3,
        max_txn_size=4,
        seed=6,
        detection=FailureDetection.TIMEOUT,
        recovery_policy=RecoveryPolicy.TWO_STEP,
        batch_threshold=1.0,
        batch_size=2,
    )
    from repro.workload.uniform import UniformWorkload

    cluster = Cluster(config)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=40,
        policy=ScriptedPolicy({}),  # everything at site 0
    )
    scenario.add_action(1, FailSite(2))
    scenario.add_action(15, RecoverSite(2))
    # The batch copiers run from site 2; fail one potential source (site 1)
    # right after recovery begins so an in-flight batch request can bounce.
    scenario.add_action(16, FailSite(1))
    metrics = cluster.run(scenario)
    # The run completes (no stall) and site 2 still drains its fail-locks
    # from the surviving source.
    assert metrics.counters["commits"] > 0
    assert cluster.site(2).alive
