"""The session-number guard: status changes detected mid-transaction."""

import pytest

from repro.net.message import MessageType
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FixedSite, Scenario
from repro.txn.operations import OpKind, Operation
from repro.txn.transaction import AbortReason
from repro.workload.base import WorkloadGenerator


class OneWrite(WorkloadGenerator):
    def generate(self, txn_seq, rng):
        return [Operation(OpKind.WRITE, 1)]


def build():
    config = SystemConfig(db_size=4, num_sites=3, max_txn_size=2, seed=2)
    cluster = Cluster(config)
    scenario = Scenario(workload=OneWrite(), txn_count=1, policy=FixedSite(0))
    return cluster, scenario


def test_stale_coordinator_session_is_nacked():
    """A participant that perceives a newer session for the coordinator
    refuses phase one; the transaction aborts with SESSION_CHANGED."""
    cluster, scenario = build()
    # Site 1 believes coordinator 0 has already moved to session 5 (e.g. a
    # recovery announcement the ghost coordinator predates).
    cluster.site(1).nsv.mark_up(0, session=5)
    metrics = cluster.run(scenario)
    txn = metrics.txns[0]
    assert not txn.committed
    assert txn.abort_reason is AbortReason.SESSION_CHANGED
    assert cluster.network.trace.count(mtype=MessageType.VOTE_NACK) == 1
    # Nothing was committed anywhere.
    for site in cluster.sites:
        assert site.db.version(1) == 0


def test_newer_coordinator_session_is_adopted():
    """A participant behind on announcements learns the new session from
    the phase-one message and proceeds normally."""
    cluster, scenario = build()
    # Coordinator 0 is actually on session 3; participant 1 still thinks 1.
    cluster.site(0).nsv.mark_up(0, session=3)
    metrics = cluster.run(scenario)
    assert metrics.txns[0].committed
    assert cluster.site(1).nsv.session_of(0) == 3
    assert cluster.site(2).nsv.session_of(0) == 3


def test_matching_sessions_commit_normally():
    cluster, scenario = build()
    metrics = cluster.run(scenario)
    assert metrics.txns[0].committed
    assert cluster.network.trace.count(mtype=MessageType.VOTE_NACK) == 0


def test_nack_discards_other_participants_staging():
    """When one participant NACKs, the other (which staged) gets an ABORT
    and discards its buffered updates."""
    cluster, scenario = build()
    cluster.site(1).nsv.mark_up(0, session=5)
    cluster.run(scenario)
    assert cluster.site(2).participant.staged_txns == []
    assert not cluster.site(2).db.has_staged(1)
    assert cluster.audit_consistency() == []
