"""repro.obs core: event types and the ring-buffered TraceSink."""

from repro.obs import EventKind, TraceEvent, TraceSink
from repro.obs.events import KIND_BY_VALUE


# -- events -------------------------------------------------------------------


def test_event_wire_roundtrip() -> None:
    event = TraceEvent(
        seq=3,
        t=12.5,
        kind=EventKind.MSG_SEND,
        site=1,
        txn=7,
        parent=2,
        args={"mtype": "commit", "dst": 0},
    )
    wire = event.to_wire()
    assert wire["kind"] == "msg.send"
    back = TraceEvent.from_wire(wire)
    assert back.to_wire() == wire


def test_every_kind_has_unique_wire_value() -> None:
    assert len(KIND_BY_VALUE) == len(EventKind)
    for kind in EventKind:
        assert KIND_BY_VALUE[kind.value] is kind


def test_describe_is_single_line() -> None:
    event = TraceEvent(seq=1, t=0.0, kind=EventKind.TXN_BEGIN, site=0, txn=1)
    assert "\n" not in event.describe()
    assert "txn.begin" in event.describe()


# -- sink ---------------------------------------------------------------------


def test_disabled_sink_records_nothing_and_returns_minus_one() -> None:
    sink = TraceSink()
    assert not sink.enabled
    ref = sink.emit(1.0, EventKind.TXN_BEGIN, site=0, txn=1)
    assert ref == -1
    assert len(sink) == 0
    assert sink.dropped_events == 0


def test_enabled_sink_assigns_dense_seq_and_returns_it() -> None:
    sink = TraceSink(enabled=True)
    a = sink.emit(1.0, EventKind.TXN_BEGIN, site=0, txn=1)
    b = sink.emit(2.0, EventKind.TXN_END, site=0, txn=1, elapsed=1.0)
    assert (a, b) == (0, 1)
    events = list(sink)
    assert [e.seq for e in events] == [0, 1]
    assert events[1].args["elapsed"] == 1.0


def test_parent_defaults_to_current_scope() -> None:
    sink = TraceSink(enabled=True)
    root = sink.emit(0.0, EventKind.MSG_RECV, site=0)
    sink.scope = root
    child = sink.emit(0.0, EventKind.TXN_BEGIN, site=0, txn=1)
    sink.scope = -1
    orphan = sink.emit(1.0, EventKind.TXN_END, site=0, txn=1)
    events = {e.seq: e for e in sink}
    assert events[child].parent == root
    assert events[orphan].parent == -1


def test_explicit_parent_overrides_scope() -> None:
    sink = TraceSink(enabled=True)
    sink.scope = 99
    ref = sink.emit(0.0, EventKind.MSG_DROP, site=1, parent=5)
    assert next(iter(sink)).parent == 5
    assert ref == 0


def test_ring_buffer_evicts_oldest() -> None:
    sink = TraceSink(capacity=4, enabled=True)
    for i in range(10):
        sink.emit(float(i), EventKind.TXN_BEGIN, site=0, txn=i)
    assert len(sink) == 4
    assert sink.dropped_events == 6
    assert [e.txn for e in sink] == [6, 7, 8, 9]  # newest survive


def test_for_txn_and_count_filters() -> None:
    sink = TraceSink(enabled=True)
    sink.emit(0.0, EventKind.TXN_BEGIN, site=0, txn=1)
    sink.emit(1.0, EventKind.TXN_BEGIN, site=1, txn=2)
    sink.emit(2.0, EventKind.TXN_END, site=0, txn=1)
    assert [e.kind for e in sink.for_txn(1)] == [
        EventKind.TXN_BEGIN,
        EventKind.TXN_END,
    ]
    assert sink.count(EventKind.TXN_BEGIN) == 2
    assert sink.count(EventKind.TXN_END) == 1


def test_clear_discards_events_but_keeps_seq_monotonic() -> None:
    sink = TraceSink(capacity=2, enabled=True)
    for i in range(5):
        sink.emit(float(i), EventKind.TXN_BEGIN, site=0, txn=i)
    sink.clear()
    assert len(sink) == 0
    assert sink.dropped_events == 0
    # seq keeps running so post-clear events never collide with old refs
    assert sink.emit(9.0, EventKind.TXN_END, site=0, txn=9) == 5
