"""Streaming aggregation layer (repro.metrics.streaming).

StreamingStats is checked against the exact batch statistics it
replaces; the reservoir, windowed series, and sink are checked for the
determinism and bounded-memory contracts the soak engine relies on.
"""

import math
import random
import statistics

import pytest

from repro.metrics.records import TxnRecord
from repro.metrics.streaming import (
    LatencyDigest,
    ReservoirSample,
    StreamingStats,
    StreamingTxnSink,
    Window,
    WindowedSeries,
)
from repro.txn.transaction import AbortReason


@pytest.fixture
def rng() -> random.Random:
    return random.Random(9001)


# -- StreamingStats -----------------------------------------------------------


def test_streaming_stats_matches_exact_moments(rng):
    values = [rng.uniform(-50.0, 200.0) for _ in range(2500)]
    stats = StreamingStats()
    for v in values:
        stats.add(v)
    assert stats.count == len(values)
    assert stats.mean == pytest.approx(statistics.fmean(values))
    assert stats.stddev == pytest.approx(statistics.pstdev(values))
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


def test_streaming_stats_empty_and_singleton():
    stats = StreamingStats()
    assert stats.count == 0
    assert stats.variance == 0.0
    stats.add(7.0)
    assert stats.mean == 7.0
    assert stats.variance == 0.0  # population variance undefined-as-zero


def test_streaming_stats_merge_matches_combined_feed(rng):
    a_values = [rng.gauss(10.0, 3.0) for _ in range(700)]
    b_values = [rng.gauss(90.0, 15.0) for _ in range(1300)]
    a = StreamingStats()
    for v in a_values:
        a.add(v)
    b = StreamingStats()
    for v in b_values:
        b.add(v)
    a.merge(b)
    combined = a_values + b_values
    assert a.count == len(combined)
    assert a.mean == pytest.approx(statistics.fmean(combined))
    assert a.stddev == pytest.approx(statistics.pstdev(combined))
    assert a.minimum == min(combined)
    assert a.maximum == max(combined)


def test_streaming_stats_merge_with_empty_sides():
    filled = StreamingStats()
    for v in (1.0, 2.0, 3.0):
        filled.add(v)
    # empty.merge(filled) adopts, filled.merge(empty) is a no-op.
    empty = StreamingStats()
    empty.merge(filled)
    assert empty.count == 3 and empty.mean == pytest.approx(2.0)
    before = (filled.count, filled.mean, filled.variance)
    filled.merge(StreamingStats())
    assert (filled.count, filled.mean, filled.variance) == before


# -- LatencyDigest ------------------------------------------------------------


def test_latency_digest_summary_fields(rng):
    digest = LatencyDigest(rel_err=0.01)
    values = [rng.uniform(1.0, 500.0) for _ in range(3000)]
    for v in values:
        digest.add(v)
    summary = digest.to_summary()
    assert summary.count == len(values)
    assert summary.mean == pytest.approx(statistics.fmean(values))
    assert summary.minimum == min(values)
    assert summary.maximum == max(values)
    ordered = sorted(values)
    # Sketch-backed percentiles honor the documented relative-error bound.
    assert summary.median == pytest.approx(ordered[len(ordered) // 2], rel=0.05)
    assert summary.p95 == pytest.approx(
        ordered[math.floor(0.95 * (len(ordered) - 1))], rel=0.05
    )


def test_latency_digest_empty_summary_is_zeroed():
    summary = LatencyDigest().to_summary()
    assert summary.count == 0
    assert summary.mean == 0.0
    assert summary.p95 == 0.0


# -- ReservoirSample ----------------------------------------------------------


def test_reservoir_never_exceeds_k(rng):
    reservoir = ReservoirSample(10, rng)
    for i in range(500):
        reservoir.offer(i)
    assert len(reservoir) == 10
    assert reservoir.seen == 500
    assert all(0 <= item < 500 for item in reservoir.items)
    assert len(set(reservoir.items)) == 10  # distinct inputs stay distinct


def test_reservoir_keeps_everything_under_k(rng):
    reservoir = ReservoirSample(10, rng)
    for i in range(7):
        reservoir.offer(i)
    assert reservoir.items == list(range(7))


def test_reservoir_is_deterministic_per_seed():
    runs = []
    for _ in range(2):
        reservoir = ReservoirSample(5, random.Random(123))
        for i in range(300):
            reservoir.offer(i)
        runs.append(list(reservoir.items))
    assert runs[0] == runs[1]
    other = ReservoirSample(5, random.Random(124))
    for i in range(300):
        other.offer(i)
    assert other.items != runs[0]


def test_reservoir_k_zero_counts_but_keeps_nothing(rng):
    reservoir = ReservoirSample(0, rng)
    for i in range(50):
        reservoir.offer(i)
    assert len(reservoir) == 0
    assert reservoir.seen == 50


def test_reservoir_rejects_negative_k(rng):
    with pytest.raises(ValueError):
        ReservoirSample(-1, rng)


# -- WindowedSeries -----------------------------------------------------------


def test_windows_are_contiguous_across_quiet_spans():
    series = WindowedSeries(100.0)
    series.note_arrival(50.0)
    series.note_arrival(950.0)  # windows 1..8 are quiet but must exist
    assert len(series) == 10
    assert [w.index for w in series.windows] == list(range(10))
    assert [w.start_ms for w in series.windows] == [i * 100.0 for i in range(10)]
    assert series.windows[0].arrivals == 1
    assert all(w.arrivals == 0 for w in series.windows[1:9])
    assert series.windows[9].arrivals == 1


def test_window_done_and_availability():
    series = WindowedSeries(100.0)
    series.note_done(10.0, committed=True, latency_ms=5.0)
    series.note_done(20.0, committed=True, latency_ms=7.0)
    series.note_done(30.0, committed=False, latency_ms=None)
    window = series.windows[0]
    assert window.done == 3
    assert window.availability == pytest.approx(2.0 / 3.0)
    assert window.latency.count == 2  # None latency not aggregated
    assert window.latency.mean == pytest.approx(6.0)


def test_empty_window_availability_is_none():
    assert Window(0, 0.0).availability is None


def test_on_open_fires_once_per_window_in_order():
    opened = []
    series = WindowedSeries(50.0, on_open=lambda w: opened.append(w.index))
    series.note_arrival(175.0)  # creates windows 0..3 at once
    series.note_arrival(20.0)  # window 0 already exists: no new callback
    assert opened == [0, 1, 2, 3]


def test_windowed_series_rejects_bad_width():
    with pytest.raises(ValueError):
        WindowedSeries(0.0)


# -- StreamingTxnSink ---------------------------------------------------------


def _record(txn_id, committed, submitted_at, finished_at,
            reason=AbortReason.NONE, size=3):
    return TxnRecord(
        txn_id=txn_id,
        seq=txn_id,
        coordinator=txn_id % 4,
        committed=committed,
        abort_reason=reason,
        size=size,
        items_read=size - 1,
        items_written=1,
        submitted_at=submitted_at,
        finished_at=finished_at,
        coordinator_elapsed=finished_at - submitted_at,
    )


def test_sink_aggregates_without_retaining_records():
    sink = StreamingTxnSink(window_ms=100.0)
    latencies = []
    for i in range(40):
        committed = i % 4 != 0
        start = i * 25.0
        latency = 10.0 + i
        if committed:
            latencies.append(latency)
        reason = AbortReason.NONE if committed else AbortReason.PARTICIPANT_TIMEOUT
        sink(_record(i, committed, start, start + latency, reason=reason))
    assert sink.latency_all.count == 40
    assert sink.latency_committed.count == len(latencies)
    assert sink.latency_committed.stats.mean == pytest.approx(
        statistics.fmean(latencies)
    )
    assert sink.abort_count("participant_timeout") == 10
    assert sink.abort_count("copy_unavailable") == 0
    assert sink.commit_sizes.count == len(latencies)
    # Nothing record-shaped is retained anywhere on the sink.
    assert not hasattr(sink, "records")


def test_sink_exemplars_are_bounded_and_compact():
    sink = StreamingTxnSink(
        window_ms=100.0, exemplar_k=5, exemplar_rng=random.Random(7)
    )
    for i in range(100):
        sink(_record(i, committed=True, submitted_at=i * 10.0,
                     finished_at=i * 10.0 + 4.0))
    assert len(sink.exemplars) == 5
    assert sink.exemplars.seen == 100
    exemplar = sink.exemplars.items[0]
    assert set(exemplar) == {
        "txn", "coordinator", "committed", "abort_reason", "size",
        "submitted_at", "latency_ms",
    }
    assert exemplar["abort_reason"] is None  # NONE renders as null


def test_sink_requires_rng_when_sampling():
    with pytest.raises(ValueError):
        StreamingTxnSink(exemplar_k=5)


def test_sink_arrivals_and_completions_land_in_their_windows():
    sink = StreamingTxnSink(window_ms=100.0)
    sink.note_arrival(10.0)
    sink.note_arrival(110.0)
    sink(_record(1, committed=True, submitted_at=10.0, finished_at=230.0))
    windows = sink.windows.windows
    assert [w.arrivals for w in windows] == [1, 1, 0]
    assert [w.commits for w in windows] == [0, 0, 1]
