"""Larger-configuration smoke tests: the system scales past paper sizes."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.costs import CostModel
from repro.system.scenario import FailSite, RecoverSite

from conftest import make_scenario, run_cluster


def test_eight_sites_five_hundred_items():
    config = SystemConfig(
        db_size=500,
        num_sites=8,
        max_txn_size=10,
        seed=1,
        costs=CostModel.free(),
    )
    scenario = make_scenario(config, 120)
    scenario.add_action(10, FailSite(3))
    scenario.add_action(60, RecoverSite(3))
    cluster = run_cluster(config, scenario)
    assert cluster.metrics.counters["commits"] == 120
    assert cluster.audit_consistency() == []


def test_many_failures_many_sites():
    config = SystemConfig(
        db_size=100,
        num_sites=6,
        max_txn_size=6,
        seed=2,
        costs=CostModel.free(),
    )
    scenario = make_scenario(config, 150)
    # Rolling failures over five of the six sites.
    for index, site in enumerate(range(5)):
        scenario.add_action(10 + 20 * index, FailSite(site))
        scenario.add_action(25 + 20 * index, RecoverSite(site))
    cluster = run_cluster(config, scenario)
    assert cluster.audit_consistency() == []
    metrics = cluster.metrics
    assert metrics.counters["commits"] + metrics.counters["aborts"] == 150
    # Two type-1 records per recovery (recovering + responder roles).
    assert len(metrics.control_times(1, "recovering")) == 5
    assert len(metrics.control_times(1, "operational")) == 5


def test_big_recovery_state_transfer():
    """Type-1 cost scales with database size without breaking anything."""
    config = SystemConfig(db_size=1000, num_sites=2, max_txn_size=5, seed=3)
    scenario = make_scenario(config, 30)
    scenario.add_action(2, FailSite(1))
    scenario.add_action(20, RecoverSite(1))
    cluster = run_cluster(config, scenario)
    type1 = [c for c in cluster.metrics.controls if c.kind == 1]
    assert type1
    # With 1000 items the install dominates: much more than the paper's
    # 190 ms at 50 items.
    recovering = [c for c in type1 if c.role == "recovering"]
    assert recovering[0].elapsed > 1000
