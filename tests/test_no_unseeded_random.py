"""Determinism guard: all randomness flows through the seeded sim RNG.

Every experiment claims exact replay from a single seed.  That claim dies
the moment any module grabs the global ``random`` module (or instantiates
its own unseeded generator), so this test greps the source tree: outside
``repro.sim`` — where the one blessed ``import random`` lives — no module
may import ``random``.  Consumers annotate with
:data:`repro.sim.rng.RandomStream` and receive an injected, seeded stream.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# Matches both plain imports and from-imports of the stdlib module, at any
# indentation (a function-local import is just as unseeded).
FORBIDDEN = re.compile(r"^\s*(import random\b|from random\s+import)", re.M)


def test_src_tree_exists() -> None:
    assert SRC.is_dir(), f"source tree not found at {SRC}"


def test_no_unseeded_random_outside_sim() -> None:
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative.parts[0] == "sim":
            continue
        if FORBIDDEN.search(path.read_text(encoding="utf-8")):
            offenders.append(str(relative))
    assert not offenders, (
        "unseeded `import random` outside repro.sim (use "
        f"repro.sim.rng.RandomStream and dependency injection): {offenders}"
    )


def test_sim_rng_is_the_blessed_importer() -> None:
    """The alias consumers depend on actually exists where claimed."""
    import random

    from repro.sim.rng import RandomStream

    assert RandomStream is random.Random
