"""ManagingSite driver behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite, Scenario
from repro.workload.uniform import UniformWorkload

from conftest import make_scenario, run_cluster


def test_txn_records_numbered_sequentially(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 12))
    assert [t.seq for t in cluster.metrics.txns] == list(range(1, 13))
    assert [t.txn_id for t in cluster.metrics.txns] == list(range(1, 13))


def test_faillock_sample_per_txn(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 12))
    samples = cluster.metrics.faillock_samples
    assert [s.seq for s in samples] == list(range(1, 13))
    assert all(s.time > 0 for s in samples)


def test_zero_txn_scenario_finishes_immediately(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 0))
    assert cluster.manager.finished
    assert cluster.metrics.txns == []


def test_max_txns_caps_until_recovered(small_config):
    scenario = make_scenario(small_config, 5)
    scenario.add_action(1, FailSite(2))
    # Site 2 never recovers, so until_recovered can never be satisfied;
    # max_txns must stop the run.
    scenario.until_recovered = (2,)
    scenario.max_txns = 20
    cluster = run_cluster(small_config, scenario)
    assert len(cluster.metrics.txns) == 20


def test_until_recovered_extends_past_txn_count(small_config):
    scenario = make_scenario(small_config, 10)
    scenario.add_action(1, FailSite(2))
    scenario.add_action(8, RecoverSite(2))
    scenario.until_recovered = (2,)
    scenario.max_txns = 500
    cluster = run_cluster(small_config, scenario)
    assert len(cluster.metrics.txns) >= 10
    assert cluster.faillock_counts()[2] == 0


def test_believed_up_tracks_actions(small_config):
    cluster = Cluster(small_config)
    scenario = make_scenario(small_config, 10)
    scenario.add_action(3, FailSite(1))
    scenario.add_action(7, RecoverSite(1))
    cluster.run(scenario)
    assert cluster.manager.up_sites == [0, 1, 2]
    coords = {t.seq: t.coordinator for t in cluster.metrics.txns}
    # While site 1 was down (txns 3-6), it never coordinated.
    for seq in range(3, 7):
        assert coords[seq] != 1


def test_on_finish_callback(small_config):
    cluster = Cluster(small_config)
    called = []
    cluster.manager.on_finish = lambda: called.append(True)
    cluster.run(make_scenario(small_config, 3))
    assert called == [True]


def test_second_scenario_rejected_while_running(small_config):
    cluster = Cluster(small_config)
    cluster.manager.run(make_scenario(small_config, 3))
    with pytest.raises(ConfigurationError):
        cluster.manager.run(make_scenario(small_config, 3))


def test_sequential_scenarios_on_same_cluster(small_config):
    """A finished cluster can run a follow-up scenario."""
    cluster = Cluster(small_config)
    cluster.run(make_scenario(small_config, 5))
    cluster.run(make_scenario(small_config, 5))
    assert len(cluster.metrics.txns) == 10
    # Transaction ids keep increasing across scenarios.
    assert [t.txn_id for t in cluster.metrics.txns] == list(range(1, 11))
