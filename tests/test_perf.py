"""repro.perf: parallel executor determinism + the benchmark harness.

The load-bearing property is the first test: a parallel sweep is *equal*
to a serial one — full dataclass equality over every per-seed result,
not a statistical resemblance.  Everything else (bench schema, the CI
regression gate, CLI wiring) rides on top of that.
"""

import json

from repro.chaos import FaultPlan, run_seed_sweep
from repro.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA,
    check_regression,
    run_simcore_bench,
    run_sweep_bench,
    validate_simcore_doc,
    validate_sweep_doc,
)
from repro.perf.parallel import parallel_map, run_parallel_seed_sweep


# -- parallel executor -------------------------------------------------------


def test_parallel_map_serial_fallback():
    assert parallel_map(str, range(5)) == ["0", "1", "2", "3", "4"]
    assert parallel_map(str, range(5), jobs=1) == ["0", "1", "2", "3", "4"]


def test_parallel_map_preserves_input_order():
    assert parallel_map(str, range(8), jobs=3) == [str(i) for i in range(8)]


def test_parallel_sweep_identical_to_serial():
    serial = run_seed_sweep(range(42, 46), txns=20)
    parallel = run_seed_sweep(range(42, 46), txns=20, jobs=3)
    assert parallel.seeds == serial.seeds
    # Full dataclass equality: commits, aborts, sim time, fault counts,
    # violations, events_fired — everything.
    assert parallel.results == serial.results
    assert all(r.events_fired > 0 for r in serial.results)


def test_parallel_sweep_lossy_core_identical():
    # The retransmission + timeout layers are the most timing-entangled
    # code paths; they too must replay identically across processes.
    plan = FaultPlan.lossy()
    serial = run_seed_sweep(range(7, 10), txns=15, plan=plan)
    parallel = run_seed_sweep(range(7, 10), txns=15, plan=plan, jobs=2)
    assert parallel.results == serial.results


def test_run_parallel_seed_sweep_direct():
    report = run_parallel_seed_sweep(range(42, 44), txns=10, jobs=2)
    assert report.seeds == [42, 43]
    assert not report.mutated


# -- benchmark harness -------------------------------------------------------


def test_simcore_bench_schema():
    doc = run_simcore_bench(quick=True)
    assert validate_simcore_doc(doc) == []
    assert doc["quick"] is True
    for entry in doc["presets"].values():
        assert entry["speedup"] > 0


def test_sweep_bench_schema_and_determinism():
    doc = run_sweep_bench(quick=True, jobs=2)
    assert validate_sweep_doc(doc) == []
    assert doc["identical"] is True
    assert doc["jobs"] == 2


def _simcore_doc(events_per_sec):
    return {
        "schema": BENCH_SCHEMA,
        "kind": "simcore",
        "quick": True,
        "presets": {
            name: {
                "events": 1000,
                "wall_s": 1000 / eps,
                "events_per_sec": eps,
                "peak_rss_kb": 50000,
                "baseline_events_per_sec": eps / 2,
                "speedup": 2.0,
            }
            for name, eps in events_per_sec.items()
        },
    }


def test_check_regression_flags_only_big_drops():
    committed = _simcore_doc(
        {"concurrent": 100.0, "chaos": 100.0, "serial": 100.0}
    )
    fine = _simcore_doc({"concurrent": 80.0, "chaos": 71.0, "serial": 400.0})
    assert check_regression(committed, fine, tolerance=0.30) == []
    regressed = _simcore_doc(
        {"concurrent": 60.0, "chaos": 100.0, "serial": 100.0}
    )
    problems = check_regression(committed, regressed, tolerance=0.30)
    assert len(problems) == 1
    # The failure must name the preset AND the metric, with both numbers.
    assert problems[0].startswith("preset 'concurrent': metric events_per_sec")
    assert "40%" in problems[0]
    assert "fresh 60" in problems[0] and "committed 100" in problems[0]


def test_check_regression_names_missing_preset():
    committed = _simcore_doc(
        {"concurrent": 100.0, "chaos": 100.0, "serial": 100.0}
    )
    partial = _simcore_doc({"concurrent": 100.0, "chaos": 100.0, "serial": 100.0})
    del partial["presets"]["serial"]
    problems = check_regression(committed, partial, tolerance=0.30)
    assert problems == [
        "preset 'serial': metric events_per_sec missing from fresh measurement"
    ]


def test_validate_simcore_rejects_garbage():
    assert validate_simcore_doc([]) == ["expected a JSON object"]
    doc = _simcore_doc({"concurrent": 100.0, "chaos": 100.0, "serial": 100.0})
    doc["presets"]["chaos"]["events"] = 0
    assert any("chaos.events" in p for p in validate_simcore_doc(doc))
    del doc["presets"]["serial"]
    assert any("serial: missing" in p for p in validate_simcore_doc(doc))


def test_validate_sweep_rejects_divergence():
    doc = run_sweep_bench(quick=True, jobs=2)
    doc["identical"] = False
    assert any("diverged" in p for p in validate_sweep_doc(doc))


# -- experiment replication fan-out ------------------------------------------


def test_replicate_parallel_matches_serial():
    from repro.experiments import repeats

    serial = repeats.replicate_scenario2(seeds=(1, 2))
    parallel = repeats.replicate_scenario2(seeds=(1, 2), jobs=2)
    assert parallel.values == serial.values


# -- CLI wiring --------------------------------------------------------------


def test_cli_bench_write_then_check(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--quick", "--write"]) == 0
    doc = json.loads((tmp_path / "BENCH_simcore.json").read_text())
    assert validate_simcore_doc(doc) == []
    sweep = json.loads((tmp_path / "BENCH_sweep.json").read_text())
    assert validate_sweep_doc(sweep) == []
    # A fresh measurement against the artifact just written cannot have
    # regressed beyond tolerance.
    assert main(["bench", "--quick", "--check"]) == 0
    capsys.readouterr()


def test_cli_bench_check_missing_artifact(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--quick", "--check"]) == 1
    assert "BENCH_simcore.json" in capsys.readouterr().err


def test_cli_chaos_jobs(capsys):
    assert main(["chaos", "--seeds", "2", "--txns", "10", "--jobs", "2"]) == 0
    assert "seeds" in capsys.readouterr().out


def test_cli_profile_flag(capsys):
    assert main(["--profile", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out
    assert "function calls" in out
