"""repro.perf: the persistent pool, parallel determinism, and the bench.

The load-bearing property is the first test: a parallel sweep is *equal*
to a serial one — full dataclass equality over every per-seed result,
not a statistical resemblance — and it holds through the *persistent*
worker pool, across pool reuse, for every sweep kind (chaos, lossy-core,
soak) and for parallel ``repro.check`` frontier expansion.  Everything
else (bench schema, the CI regression gates, CLI wiring) rides on top.
"""

import dataclasses
import json
import os

import pytest

from repro.chaos import FaultPlan, run_seed_sweep
from repro.check.explorer import explore_parallel
from repro.check.runner import CheckConfig
from repro.cli import main
from repro.soak.engine import SoakConfig, run_soak
from repro.soak.report import build_report
from repro.perf.bench import (
    BENCH_SCHEMA,
    check_parallel_floor,
    check_regression,
    run_simcore_bench,
    run_sweep_bench,
    validate_simcore_doc,
    validate_sweep_doc,
)
from repro.perf.parallel import (
    parallel_map,
    run_parallel_seed_sweep,
    run_parallel_soak_sweep,
)
from repro.perf.pool import WorkerPoolError, pool_stats, shutdown_pool


# -- parallel executor -------------------------------------------------------


def test_parallel_map_serial_fallback():
    assert parallel_map(str, range(5)) == ["0", "1", "2", "3", "4"]
    assert parallel_map(str, range(5), jobs=1) == ["0", "1", "2", "3", "4"]


def test_parallel_map_preserves_input_order():
    assert parallel_map(str, range(8), jobs=3) == [str(i) for i in range(8)]


def test_parallel_sweep_identical_to_serial():
    serial = run_seed_sweep(range(42, 46), txns=20)
    parallel = run_seed_sweep(range(42, 46), txns=20, jobs=3)
    assert parallel.seeds == serial.seeds
    # Full dataclass equality: commits, aborts, sim time, fault counts,
    # violations, events_fired — everything.
    assert parallel.results == serial.results
    assert all(r.events_fired > 0 for r in serial.results)


def test_parallel_sweep_lossy_core_identical():
    # The retransmission + timeout layers are the most timing-entangled
    # code paths; they too must replay identically across processes.
    plan = FaultPlan.lossy()
    serial = run_seed_sweep(range(7, 10), txns=15, plan=plan)
    parallel = run_seed_sweep(range(7, 10), txns=15, plan=plan, jobs=2)
    assert parallel.results == serial.results


def test_run_parallel_seed_sweep_direct():
    report = run_parallel_seed_sweep(range(42, 44), txns=10, jobs=2)
    assert report.seeds == [42, 43]
    assert not report.mutated


# -- persistent worker pool --------------------------------------------------


def _kill_worker(_item):
    os._exit(1)  # simulate a hard worker death (segfault/OOM-kill class)


def test_pool_reused_across_sweeps():
    shutdown_pool()
    run_seed_sweep(range(42, 44), txns=10, jobs=2)
    before = pool_stats()
    run_seed_sweep(range(50, 52), txns=10, jobs=2)
    after = pool_stats()
    assert before["alive"] and after["alive"]
    # Second sweep dispatched more chunks through the *same* pool: no
    # re-fork, no re-import — the whole point of keeping it persistent.
    assert after["pools_created"] == before["pools_created"]
    assert after["chunks_dispatched"] > before["chunks_dispatched"]


def test_soak_sweep_parallel_matches_serial():
    config = SoakConfig(txns=300, rate_tps=40.0)
    serial = [
        build_report(run_soak(dataclasses.replace(config, seed=seed)))
        for seed in (3, 4)
    ]
    parallel = run_parallel_soak_sweep([3, 4], config, jobs=2)
    assert parallel == serial


def test_worker_crash_surfaces_clear_error():
    with pytest.raises(WorkerPoolError) as excinfo:
        parallel_map(_kill_worker, range(4), jobs=2)
    assert "call" in str(excinfo.value)
    # The broken pool was torn down, so the next dispatch transparently
    # builds a fresh one instead of failing forever.
    assert parallel_map(str, range(4), jobs=2) == ["0", "1", "2", "3"]


def test_explore_parallel_deterministic_merge():
    config = CheckConfig(sites=2, db_size=4, txns=2, max_branch=2)
    first = explore_parallel(config, max_runs=12, max_depth=12, jobs=2)
    second = explore_parallel(config, max_runs=12, max_depth=12, jobs=2)
    # Merged fingerprint set, stats, and counterexample are a pure
    # function of (config, budgets, jobs) — worker timing must not leak.
    assert first.fingerprints == second.fingerprints
    assert first.fingerprints
    assert first.counterexample == second.counterexample
    assert first.stats == second.stats


# -- benchmark harness -------------------------------------------------------


def test_simcore_bench_schema():
    doc = run_simcore_bench(quick=True)
    assert validate_simcore_doc(doc) == []
    assert doc["quick"] is True
    for entry in doc["presets"].values():
        assert entry["speedup"] > 0


def test_sweep_bench_schema_and_determinism():
    doc = run_sweep_bench(quick=True, jobs=2)
    assert validate_sweep_doc(doc) == []
    assert doc["identical"] is True
    assert doc["jobs"] == 2
    # Warm vs cold: the headline wall is the warm-pool one; the cold wall
    # (pool creation charged) rides along as an additive field.
    assert doc["parallel_wall_s"] == doc["parallel_warm_wall_s"]
    assert doc["parallel_cold_wall_s"] > 0
    assert doc["cold_speedup"] > 0
    assert doc["cpus"] >= 1
    # Additive fields are validated when present...
    bad = dict(doc)
    bad["parallel_cold_wall_s"] = -1.0
    assert any("parallel_cold_wall_s" in p for p in validate_sweep_doc(bad))
    # ...but an older artifact without them still reads clean.
    old = {k: v for k, v in doc.items() if "cold" not in k and "warm" not in k}
    del old["cpus"]
    assert validate_sweep_doc(old) == []


def _simcore_doc(events_per_sec):
    return {
        "schema": BENCH_SCHEMA,
        "kind": "simcore",
        "quick": True,
        "presets": {
            name: {
                "events": 1000,
                "wall_s": 1000 / eps,
                "events_per_sec": eps,
                "peak_rss_kb": 50000,
                "baseline_events_per_sec": eps / 2,
                "speedup": 2.0,
            }
            for name, eps in events_per_sec.items()
        },
    }


def test_check_regression_flags_only_big_drops():
    committed = _simcore_doc(
        {"concurrent": 100.0, "chaos": 100.0, "serial": 100.0}
    )
    fine = _simcore_doc({"concurrent": 80.0, "chaos": 71.0, "serial": 400.0})
    assert check_regression(committed, fine, tolerance=0.30) == []
    regressed = _simcore_doc(
        {"concurrent": 60.0, "chaos": 100.0, "serial": 100.0}
    )
    problems = check_regression(committed, regressed, tolerance=0.30)
    assert len(problems) == 1
    # The failure must name the preset AND the metric, with both numbers.
    assert problems[0].startswith("preset 'concurrent': metric events_per_sec")
    assert "40%" in problems[0]
    assert "fresh 60" in problems[0] and "committed 100" in problems[0]


def test_check_regression_names_missing_preset():
    committed = _simcore_doc(
        {"concurrent": 100.0, "chaos": 100.0, "serial": 100.0}
    )
    partial = _simcore_doc({"concurrent": 100.0, "chaos": 100.0, "serial": 100.0})
    del partial["presets"]["serial"]
    problems = check_regression(committed, partial, tolerance=0.30)
    assert problems == [
        "preset 'serial': metric events_per_sec missing from fresh measurement"
    ]


def test_validate_simcore_rejects_garbage():
    assert validate_simcore_doc([]) == ["expected a JSON object"]
    doc = _simcore_doc({"concurrent": 100.0, "chaos": 100.0, "serial": 100.0})
    doc["presets"]["chaos"]["events"] = 0
    assert any("chaos.events" in p for p in validate_simcore_doc(doc))
    del doc["presets"]["serial"]
    assert any("serial: missing" in p for p in validate_simcore_doc(doc))


def test_validate_sweep_rejects_divergence():
    doc = run_sweep_bench(quick=True, jobs=2)
    doc["identical"] = False
    assert any("diverged" in p for p in validate_sweep_doc(doc))


def _sweep_doc(speedup, jobs=2, cpus=2):
    return {"jobs": jobs, "cpus": cpus, "speedup": speedup}


def test_parallel_floor_gated_on_hardware():
    committed = _sweep_doc(1.5)
    # One core, or a serial run: a >1x speedup is physically impossible,
    # so the gate must report nothing rather than fail unconditionally.
    assert check_parallel_floor(committed, _sweep_doc(0.9, cpus=1)) == []
    assert check_parallel_floor(committed, _sweep_doc(0.9, jobs=1)) == []


def test_parallel_floor_names_numbers():
    committed = _sweep_doc(1.61)
    problems = check_parallel_floor(committed, _sweep_doc(0.95))
    assert len(problems) == 1
    assert "0.95x" in problems[0]   # fresh speedup
    assert "1.2x" in problems[0]    # the floor
    assert "1.61x" in problems[0]   # committed speedup, for contrast
    assert check_parallel_floor(committed, _sweep_doc(1.4)) == []


# -- experiment replication fan-out ------------------------------------------


def test_replicate_parallel_matches_serial():
    from repro.experiments import repeats

    serial = repeats.replicate_scenario2(seeds=(1, 2))
    parallel = repeats.replicate_scenario2(seeds=(1, 2), jobs=2)
    assert parallel.values == serial.values


# -- CLI wiring --------------------------------------------------------------


def test_cli_bench_write_then_check(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--quick", "--write"]) == 0
    doc = json.loads((tmp_path / "BENCH_simcore.json").read_text())
    assert validate_simcore_doc(doc) == []
    sweep = json.loads((tmp_path / "BENCH_sweep.json").read_text())
    assert validate_sweep_doc(sweep) == []
    # A fresh measurement against the artifact just written cannot have
    # regressed beyond tolerance.
    assert main(["bench", "--quick", "--check"]) == 0
    capsys.readouterr()


def test_cli_bench_check_missing_artifact(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--quick", "--check"]) == 1
    assert "BENCH_simcore.json" in capsys.readouterr().err


def test_cli_chaos_jobs(capsys):
    assert main(["chaos", "--seeds", "2", "--txns", "10", "--jobs", "2"]) == 0
    assert "seeds" in capsys.readouterr().out


def test_cli_profile_flag(capsys):
    assert main(["--profile", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out
    assert "function calls" in out
