"""Cluster integration: ROWA / quorum baselines and detection modes."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import CopyControlStrategy, FailureDetection, SystemConfig
from repro.system.scenario import FailSite, FixedSite, RecoverSite, Scenario
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator

from conftest import make_scenario, run_cluster


class OneOp(WorkloadGenerator):
    """Every transaction is the same single operation."""

    def __init__(self, op: Operation):
        self.op = op

    def generate(self, txn_seq, rng):
        return [self.op]


def config_with(strategy, **kw):
    return SystemConfig(
        db_size=10, num_sites=4, max_txn_size=4, seed=3, strategy=strategy, **kw
    )


# -- strict ROWA --------------------------------------------------------------------


def test_rowa_commits_when_all_up():
    config = config_with(CopyControlStrategy.ROWA)
    cluster = run_cluster(config, make_scenario(config, 20))
    assert cluster.metrics.counters["commits"] == 20


def test_rowa_blocks_writes_during_failure():
    config = config_with(CopyControlStrategy.ROWA)
    scenario = Scenario(
        workload=OneOp(Operation(OpKind.WRITE, 1)), txn_count=10
    )
    scenario.add_action(1, FailSite(3))
    scenario.add_action(6, RecoverSite(3))
    cluster = run_cluster(config, scenario)
    metrics = cluster.metrics
    assert metrics.counters["aborts"] == 5
    assert all(
        t.abort_reason.value == "write_all_blocked" for t in metrics.aborted
    )
    assert metrics.counters["commits"] == 5


def test_rowa_reads_survive_failure():
    config = config_with(CopyControlStrategy.ROWA)
    scenario = Scenario(workload=OneOp(Operation(OpKind.READ, 1)), txn_count=10)
    scenario.add_action(1, FailSite(3))
    cluster = run_cluster(config, scenario)
    assert cluster.metrics.counters["commits"] == 10


# -- quorum consensus ------------------------------------------------------------------


def test_quorum_commits_with_majority():
    config = config_with(CopyControlStrategy.QUORUM)
    scenario = make_scenario(config, 20)
    scenario.add_action(1, FailSite(3))   # 3 of 4 up: majority holds
    cluster = run_cluster(config, scenario)
    assert cluster.metrics.counters["aborts"] == 0


def test_quorum_aborts_below_majority():
    config = config_with(CopyControlStrategy.QUORUM)
    scenario = make_scenario(config, 10)
    scenario.add_action(1, FailSite(2))
    scenario.add_action(1, FailSite(3))   # 2 of 4: below majority (3)
    cluster = run_cluster(config, scenario)
    metrics = cluster.metrics
    assert metrics.counters["commits"] == 0
    assert all(
        t.abort_reason.value == "quorum_unavailable" for t in metrics.aborted
    )


def test_quorum_reads_resolve_newest_version():
    """A recovered site's stale copy is overridden by peer versions."""
    config = SystemConfig(
        db_size=4, num_sites=3, max_txn_size=2, seed=3,
        strategy=CopyControlStrategy.QUORUM,
    )

    class Script(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            if txn_seq == 2:
                return [Operation(OpKind.WRITE, 1)]
            return [Operation(OpKind.READ, 1)]

    class Policy:
        def choose(self, seq, up_sites, rng):
            return 2 if seq >= 4 and 2 in up_sites else up_sites[0]

    scenario = Scenario(workload=Script(), txn_count=4, policy=Policy())
    scenario.add_action(1, FailSite(2))      # site 2 misses the write
    scenario.add_action(4, RecoverSite(2))   # comes back with a stale copy
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    assert metrics.counters["commits"] == 4
    # Under quorum there are no fail-locks/copiers; the read at site 2 must
    # still have returned the newest value, learned from the vote answers.
    from repro.site.coordinator import write_value

    txn4 = [t for t in metrics.txns if t.seq == 4][0]
    assert txn4.committed
    # The coordinator's merged read is not directly recorded; verify via
    # the participant-version mechanism: site 2's local copy was stale.
    assert cluster.site(2).db.version(1) == 0
    # ... and the up-to-date sites have the write.
    assert cluster.site(0).db.version(1) == 1


# -- timeout detection ----------------------------------------------------------------


def test_timeout_detection_aborts_first_txn_then_recovers():
    config = SystemConfig(
        db_size=10, num_sites=3, max_txn_size=4, seed=3,
        detection=FailureDetection.TIMEOUT,
    )
    scenario = Scenario(
        workload=OneOp(Operation(OpKind.WRITE, 1)),
        txn_count=10,
        policy=FixedSite(0),
    )
    scenario.add_action(3, FailSite(2))
    cluster = run_cluster(config, scenario)
    metrics = cluster.metrics
    # Exactly one abort: the first write after the silent failure.
    assert metrics.counters["aborts"] == 1
    assert metrics.aborted[0].abort_reason.value == "participant_failed"
    assert metrics.aborted[0].seq == 3
    # A type-2 control transaction was triggered by the discovery.
    assert metrics.counters["control_type2"] >= 1
    # Everything after commits against the surviving site.
    assert metrics.counters["commits"] == 9


def test_timeout_detection_consistency_preserved():
    config = SystemConfig(
        db_size=10, num_sites=3, max_txn_size=4, seed=3,
        detection=FailureDetection.TIMEOUT,
    )
    scenario = make_scenario(config, 30)
    scenario.add_action(5, FailSite(1))
    scenario.add_action(20, RecoverSite(1))
    cluster = run_cluster(config, scenario)
    assert cluster.audit_consistency() == []
