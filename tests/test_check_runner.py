"""repro.check runner: choice points, decision vectors, determinism."""

import pytest

from repro.check import CheckConfig, run_schedule
from repro.errors import CheckError
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import RoundRobin, Scenario
from repro.workload.uniform import UniformWorkload


def _plain_run(config: CheckConfig):
    """The same system with no hooks installed at all."""
    sys_config = SystemConfig(
        db_size=config.db_size,
        num_sites=config.sites,
        seed=config.seed,
        wire_latency_ms=2.0,
    )
    cluster = Cluster(sys_config)
    scenario = Scenario(
        workload=UniformWorkload(sys_config.item_ids, sys_config.max_txn_size),
        txn_count=config.txns,
        policy=RoundRobin(),
    )
    cluster.run(scenario)
    return cluster


def test_empty_vector_is_the_unperturbed_run():
    # The identity everything else rests on: all hooks installed + the
    # empty decision vector == no hooks at all, event for event.
    config = CheckConfig()
    steered = run_schedule(config, [])
    plain = _plain_run(config)
    assert steered.events_fired == plain.scheduler.fired
    assert steered.commits == plain.metrics.counters.get("commits")
    assert steered.aborts == plain.metrics.counters.get("aborts")
    assert steered.sim_time_ms == plain.now
    assert steered.clean
    # Choice points were consulted but all defaulted.
    assert steered.decisions
    assert all(d.chosen == 0 for d in steered.decisions)


def test_same_vector_same_run():
    # Bit-level determinism within one process: decisions (including the
    # state fingerprints at each choice point) and outcomes are equal.
    config = CheckConfig()
    first = run_schedule(config, [1, 0, 1])
    second = run_schedule(config, [1, 0, 1])
    assert first.decisions == second.decisions
    assert first.events_fired == second.events_fired
    assert first.commits == second.commits
    assert first.sim_time_ms == second.sim_time_ms


def test_stale_advice_degrades_to_defaults():
    # Vectors are advice: entries out of range for a point's arity and
    # entries past the run's last choice point become alternative 0, so
    # ANY integer vector is a well-defined run.
    config = CheckConfig()
    baseline = run_schedule(config, [])
    absurd = run_schedule(config, [99, -3, 0, 0, 0, 0, 0, 0, 0, 0, 7, 12])
    assert absurd.events_fired == baseline.events_fired
    assert absurd.chosen == []  # everything executed as default


def test_steering_changes_the_schedule():
    config = CheckConfig()
    baseline = run_schedule(config, [])
    deviated = run_schedule(config, [1])
    assert deviated.decisions[0].chosen == 1
    assert deviated.chosen == [1]
    # A fault choice at the first boundary genuinely perturbs the run.
    assert deviated.events_fired != baseline.events_fired


def test_choice_points_record_kind_arity_and_labels():
    result = run_schedule(CheckConfig(), [])
    kinds = {d.kind for d in result.decisions}
    assert kinds <= {"order", "fate", "fault"}
    assert "fault" in kinds  # explore_faults default on
    for decision in result.decisions:
        assert decision.arity >= 2  # degenerate points are never recorded
        assert len(decision.labels) == decision.arity
        assert decision.fingerprint  # state hash attached
    fault = next(d for d in result.decisions if d.kind == "fault")
    assert fault.labels[0].endswith("no fault")
    assert "crash site" in fault.labels[1]


def test_fault_budget_and_min_up_respected():
    # max_crashes=1: after one crash no further crash options appear, and
    # with min_up=2 of 3 sites no second site may go down anyway.
    config = CheckConfig(min_up=2, max_recoveries=0, txns=4)
    result = run_schedule(config, [1, 1, 1, 1, 1, 1])
    crash_choices = [
        d for d in result.decisions if d.kind == "fault" and d.chosen != 0
    ]
    assert len(crash_choices) == 1


def test_mutation_plus_crash_violates_faillock_coverage():
    dirty = run_schedule(CheckConfig(mutate=True), [1])
    assert not dirty.clean
    assert dirty.violations[0].invariant == "faillock-coverage"
    # The same schedule against the CORRECT protocol is clean: the
    # violation is the mutation's, not the checker's.
    clean = run_schedule(CheckConfig(), [1])
    assert clean.clean


def test_fate_choices_offer_droppable_messages():
    # Fates only appear for conservatively-droppable message types, and
    # chosen drops stay within max_drops.
    config = CheckConfig(explore_fates=True, max_drops=1, txns=4)
    result = run_schedule(config, [1])  # crash -> ABORT/CLEAR traffic
    fates = [d for d in result.decisions if d.kind == "fate"]
    for decision in fates:
        assert decision.arity == 2
        assert decision.labels[0].startswith("deliver ")
        assert decision.labels[1].startswith("drop ")


def test_tracing_does_not_perturb_decisions():
    from repro.obs.sink import TraceSink

    config = CheckConfig(mutate=True)
    untraced = run_schedule(config, [1])
    traced = run_schedule(config, [1], trace=TraceSink(enabled=True))
    assert traced.decisions == untraced.decisions
    assert traced.events_fired == untraced.events_fired


def test_signatures_are_hashable_and_time_free():
    config = CheckConfig()
    sys_config = SystemConfig(
        db_size=config.db_size,
        num_sites=config.sites,
        seed=config.seed,
        wire_latency_ms=2.0,
    )
    cluster = Cluster(sys_config)
    scenario = Scenario(
        workload=UniformWorkload(sys_config.item_ids, sys_config.max_txn_size),
        txn_count=2,
        policy=RoundRobin(),
    )
    cluster.run(scenario)
    for site in cluster.sites:
        signature = site.signature()
        hash(signature)  # must be hashable all the way down
        # No floats anywhere: times are exactly what signatures exclude.
        def flat(value):
            if isinstance(value, tuple):
                for inner in value:
                    yield from flat(inner)
            else:
                yield value
        assert not any(isinstance(v, float) for v in flat(signature))
    hash(cluster.manager.signature())


def test_check_config_roundtrips_through_dict():
    config = CheckConfig(sites=4, mutate=True, explore_fates=True, max_drops=2)
    assert CheckConfig.from_dict(config.to_dict()) == config
    # Unknown keys (schema evolution) are ignored, not fatal.
    data = config.to_dict()
    data["future_field"] = 1
    assert CheckConfig.from_dict(data) == config


def test_shrink_rejects_clean_schedule():
    from repro.check import shrink

    with pytest.raises(CheckError):
        shrink(CheckConfig(), [])
