"""The soak engine end to end (repro.soak).

A short smoke soak covers the full path — load shape, fault injection,
streaming sink, report build/validate, byte-determinism.  The crash/REDO
unit tests pin the 2PC stable-log semantics the soak's consistency audit
depends on: a coordinator that crashed mid-phase-2 must replay its own
logged commit at recovery (see the `slow` regression at the bottom for
the schedule that catches it end to end).
"""

import json
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.site.coordinator import CoordinatorRole
from repro.soak import SoakConfig, run_soak
from repro.soak.report import build_report, render_soak_text, validate_soak_report
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.txn.transaction import Transaction
from repro.txn.twophase import CommitPhase, CoordinatorState


def smoke_config(**overrides) -> SoakConfig:
    base = dict(seed=3, txns=600, rate_tps=40.0)
    base.update(overrides)
    return SoakConfig(**base)


@pytest.fixture(scope="module")
def smoke_report() -> dict:
    return build_report(run_soak(smoke_config()))


# -- the smoke run ------------------------------------------------------------


def test_smoke_report_validates_clean(smoke_report):
    assert validate_soak_report(smoke_report) == []


def test_smoke_totals_are_consistent(smoke_report):
    totals = smoke_report["totals"]
    assert totals["txns"] == 600
    assert totals["commits"] + totals["aborts"] == totals["txns"]
    assert totals["lost"] > 0  # the crash stranded in-flight transactions
    assert totals["lost"] == smoke_report["fault"]["lost_txns"]
    # Lost transactions surface as coordinator_failed aborts.
    assert (
        totals["abort_reasons"].get("coordinator_failed", 0) >= totals["lost"]
    )


def test_smoke_shows_dip_and_recovery(smoke_report):
    """The report's headline claim: availability dips when the site
    fails and returns to the pre-fail baseline after recovery."""
    fault = smoke_report["fault"]
    availability = smoke_report["availability"]
    assert fault["failed_at_ms"] is not None
    assert fault["recover_done_ms"] > fault["recover_at_ms"]
    assert availability["baseline"] is not None
    assert availability["dip"] < availability["baseline"]
    assert fault["failed_at_ms"] <= availability["dip_t_ms"]
    assert availability["recovered"] is True
    assert availability["time_to_baseline_ms"] > 0


def test_smoke_windows_span_the_run(smoke_report):
    series = smoke_report["windows"]["series"]
    assert len(series) >= 8
    assert series[0]["t_ms"] == 0.0
    assert sum(w["arrivals"] for w in series) == 600
    # Gauge snapshots were taken at each window roll.
    assert any(w["in_flight"] > 0 for w in series)
    assert any(w["faillocks"] > 0 for w in series)  # while the site was down


def test_smoke_exemplars_are_sorted_and_bounded(smoke_report):
    exemplars = smoke_report["exemplars"]
    assert 0 < len(exemplars) <= smoke_report["config"]["exemplars"]
    txn_ids = [e["txn"] for e in exemplars]
    assert txn_ids == sorted(txn_ids)


def test_same_seed_is_byte_identical(smoke_report):
    again = build_report(run_soak(smoke_config()))
    assert json.dumps(again) == json.dumps(smoke_report)


def test_render_text_mentions_fault_and_charts(smoke_report):
    text = render_soak_text(smoke_report)
    assert "fault: site 2 failed" in text
    assert "availability per window" in text
    assert "latency p95 per window" in text
    assert "time (ms)" in text


def test_no_fault_run_has_no_dip_analysis():
    doc = build_report(run_soak(smoke_config(txns=200, fail_site=None)))
    assert validate_soak_report(doc) == []
    assert doc["fault"] is None
    assert doc["availability"]["baseline"] is None
    assert doc["availability"]["overall"] is not None


# -- config -------------------------------------------------------------------


def test_config_validation_rejects_bad_knobs():
    for bad in (
        dict(txns=0),
        dict(rate_tps=0.0),
        dict(window_ms=0.0),
        dict(max_windows=4),
        dict(exemplars=-1),
        dict(fail_site=9),
        dict(shape="sawtooth"),
    ):
        with pytest.raises(ConfigurationError):
            SoakConfig(**bad).validate()
    with pytest.raises(ConfigurationError):
        SoakConfig(workload="hot-cold").build_workload(
            SoakConfig().system_config()
        )
    with pytest.raises(ConfigurationError):
        SoakConfig(detection="oracle").system_config()


def test_benchmark_mixes_are_soak_selectable():
    from repro.workload.shapes import DebitCreditWorkload, WisconsinMixWorkload

    cfg = SoakConfig(workload="debitcredit")
    assert isinstance(cfg.build_workload(cfg.system_config()), DebitCreditWorkload)
    cfg = SoakConfig(workload="wisconsin", read_fraction=0.4)
    wisconsin = cfg.build_workload(cfg.system_config())
    assert isinstance(wisconsin, WisconsinMixWorkload)
    assert wisconsin.scan_fraction == 0.4


@pytest.mark.parametrize("workload", ["debitcredit", "wisconsin"])
def test_benchmark_mixes_deterministic(workload):
    config = smoke_config(txns=300, workload=workload)
    first = run_soak(config)
    assert first.txns > 0
    # Same seed, same config: the report (windows, exemplars, totals)
    # must replay byte-for-byte.
    assert build_report(run_soak(config)) == build_report(first)


def test_effective_window_widens_for_long_runs():
    short = SoakConfig(txns=600, rate_tps=40.0)
    assert short.effective_window_ms() == short.window_ms
    long_run = SoakConfig(txns=1_000_000, rate_tps=25.0, max_windows=240)
    est = long_run.estimated_duration_ms()
    widened = long_run.effective_window_ms()
    assert widened > long_run.window_ms
    assert est / widened <= 240


def test_fault_schedule_defaults_and_ordering():
    config = SoakConfig(txns=600, rate_tps=40.0)
    site, fail_at, recover_at = config.fault_schedule()
    assert site == config.fail_site
    assert 0 < fail_at < recover_at
    assert SoakConfig(fail_site=None).fault_schedule() is None
    with pytest.raises(ConfigurationError):
        SoakConfig(fail_at_ms=5000.0, recover_at_ms=4000.0).fault_schedule()


# -- coordinator crash log / REDO ---------------------------------------------


@pytest.fixture
def crashed_site():
    cluster = Cluster(SystemConfig(seed=1, num_sites=3, db_size=8))
    return cluster.sites[0]


def test_crash_logs_phase2_decisions_and_redo_replays_them(crashed_site):
    coordinator = crashed_site.coordinator
    db = crashed_site.db
    # Mid-phase-2: commit record is on the stable log (force-written
    # before the COMMITs went out), local apply had not happened yet.
    committing = CoordinatorState(
        txn=Transaction(txn_id=50, ops=[]),
        phase=CommitPhase.COMMITTING,
        updates=[(3, 555, db.version(3))],
        commit_version=7,
    )
    # Phase 1 and execution: presumed abort, nothing survives the crash.
    voting = CoordinatorState(
        txn=Transaction(txn_id=51, ops=[]),
        phase=CommitPhase.VOTING,
        updates=[(4, 666, db.version(4))],
        commit_version=8,
    )
    executing = CoordinatorState(txn=Transaction(txn_id=52, ops=[]))
    coordinator.active.update({50: committing, 51: voting, 52: executing})

    coordinator.crash_reset()
    assert coordinator.active == {}
    assert coordinator._decided.get(50) == ("committed", 7)
    assert 51 not in coordinator._decided
    assert 52 not in coordinator._decided
    assert coordinator._redo_pending == {50: [(3, 555, 7)]}
    assert db.version(3) < 7  # nothing applied yet: REDO is recovery's job

    replayed = coordinator.redo_after_crash(SimpleNamespace(now=123.0))
    assert replayed == 1
    assert db.read(3) == 555
    assert db.version(3) == 7
    assert coordinator._redo_pending == {}


def test_redo_is_idempotent_against_newer_copies(crashed_site):
    """If a survivor's copier already refreshed the item past the logged
    version, REDO must not regress it (install_copy refuses)."""
    coordinator = crashed_site.coordinator
    db = crashed_site.db
    db.apply_write(txn_id=90, item_id=3, value=999, version=9, time=50.0)
    coordinator._redo_pending[50] = [(3, 555, 7)]
    assert coordinator.redo_after_crash(SimpleNamespace(now=123.0)) == 1
    assert db.read(3) == 999
    assert db.version(3) == 9


def test_decision_log_cap_evicts_oldest(crashed_site):
    coordinator = crashed_site.coordinator
    participant = crashed_site.participant
    for role in (coordinator, participant):
        role.decision_log_cap = 4
        for txn_id in range(10):
            role._note_decided(txn_id, ("committed", txn_id))
        assert len(role._decided) == 4
        assert sorted(role._decided) == [6, 7, 8, 9]  # newest survive
    # Unbounded (the experiments' default) keeps everything.
    coordinator.decision_log_cap = None
    for txn_id in range(10, 40):
        coordinator._note_decided(txn_id, ("aborted", -1))
    assert len(coordinator._decided) == 34


# -- the schedule that needs REDO, end to end ---------------------------------


@pytest.mark.slow
def test_redo_regression_seed42(monkeypatch):
    """seed=42/txns=2000 reliably crashes a coordinator mid-phase-2.
    Without the REDO pass the run fails its consistency audit (the
    crashed coordinator's own copy goes stale with no fail-lock); with
    it, the run is clean.  The monkeypatched half proves the schedule
    still exercises the window — if it stops failing, the regression
    test has gone stale."""
    config = lambda: SoakConfig(seed=42, txns=2000)
    result = run_soak(config())
    assert validate_soak_report(build_report(result)) == []

    monkeypatch.setattr(CoordinatorRole, "redo_after_crash", lambda self, ctx: 0)
    with pytest.raises(SimulationError, match="consistency violated"):
        run_soak(config())
