"""Experiment runner options beyond the defaults."""

import pytest

from repro.experiments import run_figure1, run_scenario1
from repro.workload.et1 import Et1Workload
from repro.workload.readwrite import ReadWriteWorkload


def test_figure1_with_custom_workload():
    workload = Et1Workload(list(range(50)))
    result = run_figure1(seed=3, workload=workload)
    assert result.report.peak_locks > 10
    assert result.report.txns_to_recover > 0


def test_figure1_recovering_share_zero_means_no_copiers():
    result = run_figure1(seed=3, recovering_share=0.0)
    assert result.copiers == 0
    assert result.report.txns_to_recover > 0


def test_figure1_shorter_down_window():
    short = run_figure1(seed=3, down_txns=20)
    long = run_figure1(seed=3, down_txns=100)
    assert short.report.peak_locks < long.report.peak_locks


def test_figure1_respects_max_txns_cap():
    result = run_figure1(seed=3, max_txns=120)
    assert result.total_txns == 120


def test_scenario1_settle_flag():
    unsettled = run_scenario1(seed=3, settle=False)
    settled = run_scenario1(seed=3, settle=True)
    assert len(settled.metrics.txns) >= len(unsettled.metrics.txns)
    assert all(v == 0 for v in settled.final_locks.values())


def test_figure1_read_heavy_workload_needs_more_copiers():
    balanced = run_figure1(seed=5, recovering_share=0.3)
    read_heavy = run_figure1(
        seed=5,
        recovering_share=0.3,
        workload=ReadWriteWorkload(list(range(50)), 5, write_probability=0.15),
    )
    # The §5 prediction again, through the figure-1 runner.
    assert read_heavy.copiers >= balanced.copiers
