"""RowaaPlanner: read plans and write sets."""

import pytest

from repro.core.faillocks import FailLockTable
from repro.core.rowaa import ReadSource, RowaaPlanner
from repro.core.sessions import NominalSessionVector
from repro.storage.catalog import ReplicationCatalog


@pytest.fixture
def parts():
    sites = [0, 1, 2]
    items = list(range(4))
    nsv = NominalSessionVector(owner=0, site_ids=sites)
    locks = FailLockTable(site_ids=sites, item_ids=items)
    catalog = ReplicationCatalog.fully_replicated(items, sites)
    planner = RowaaPlanner(0, nsv, locks, catalog)
    return nsv, locks, catalog, planner


def test_local_read_when_clean(parts):
    _nsv, _locks, _cat, planner = parts
    plan = planner.plan_read(1)
    assert plan.source is ReadSource.LOCAL


def test_copier_needed_when_locally_locked(parts):
    _nsv, locks, _cat, planner = parts
    locks.set_lock(1, 0)
    plan = planner.plan_read(1)
    assert plan.source is ReadSource.COPIER_NEEDED
    assert plan.site_id == 1  # lowest up-to-date operational peer


def test_copier_source_skips_locked_peers(parts):
    _nsv, locks, _cat, planner = parts
    locks.set_lock(1, 0)
    locks.set_lock(1, 1)
    assert planner.plan_read(1).site_id == 2


def test_unavailable_when_no_good_copy_reachable(parts):
    nsv, locks, _cat, planner = parts
    locks.set_lock(1, 0)
    locks.set_lock(1, 1)
    nsv.mark_down(2)
    assert planner.plan_read(1).source is ReadSource.UNAVAILABLE


def test_unavailable_when_all_others_down(parts):
    nsv, locks, _cat, planner = parts
    locks.set_lock(1, 0)
    nsv.mark_down(1)
    nsv.mark_down(2)
    assert planner.plan_read(1).source is ReadSource.UNAVAILABLE


def test_remote_read_without_local_copy():
    sites = [0, 1]
    items = [0]
    nsv = NominalSessionVector(owner=0, site_ids=sites)
    locks = FailLockTable(site_ids=sites, item_ids=items)
    catalog = ReplicationCatalog(items, sites)
    catalog.add_copy(0, 1)  # only site 1 holds item 0
    planner = RowaaPlanner(0, nsv, locks, catalog)
    plan = planner.plan_read(0)
    assert plan.source is ReadSource.REMOTE
    assert plan.site_id == 1


def test_write_sites_excludes_down(parts):
    nsv, _locks, _cat, planner = parts
    nsv.mark_down(1)
    assert planner.write_sites(2) == [0, 2]


def test_participants_for_writes(parts):
    nsv, _locks, _cat, planner = parts
    nsv.mark_down(2)
    assert planner.participants_for([0, 1]) == [1]


def test_participants_empty_when_alone(parts):
    nsv, _locks, _cat, planner = parts
    nsv.mark_down(1)
    nsv.mark_down(2)
    assert planner.participants_for([0]) == []


def test_up_to_date_source_can_include_owner(parts):
    _nsv, _locks, _cat, planner = parts
    assert planner.up_to_date_source(0, exclude_owner=False) == 0
