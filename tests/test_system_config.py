"""SystemConfig and CostModel validation."""

import pytest

from repro.errors import ConfigurationError
from repro.system.config import SystemConfig
from repro.system.costs import CostModel


def test_defaults_are_paper_experiment1():
    config = SystemConfig()
    assert config.db_size == 50
    assert config.num_sites == 4
    assert config.max_txn_size == 10
    config.validate()


def test_site_and_item_ids():
    config = SystemConfig(num_sites=3, db_size=5)
    assert config.site_ids == [0, 1, 2]
    assert config.manager_id == 3
    assert config.item_ids == [0, 1, 2, 3, 4]


def test_paper_presets():
    assert SystemConfig.paper_experiment2().num_sites == 2
    assert SystemConfig.paper_experiment2().max_txn_size == 5
    assert SystemConfig.paper_experiment3_scenario2().num_sites == 4
    assert SystemConfig.paper_experiment3_scenario2().max_txn_size == 5


@pytest.mark.parametrize(
    "kwargs",
    [
        {"db_size": 0},
        {"num_sites": 0},
        {"max_txn_size": 0},
        {"write_probability": 1.5},
        {"batch_threshold": -0.1},
        {"batch_size": 0},
        {"cores": 0},
        {"wire_latency_ms": -1.0},
        {"failure_detect_delay_ms": -1.0},
    ],
)
def test_validation_rejects(kwargs):
    with pytest.raises(ConfigurationError):
        SystemConfig(**kwargs).validate()


def test_cost_model_communication_is_nine_ms():
    assert CostModel().communication_cost == pytest.approx(9.0)


def test_cost_model_rejects_negative():
    with pytest.raises(ConfigurationError):
        CostModel(msg_send_cost=-1.0)


def test_cost_model_scaled():
    doubled = CostModel().scaled(2.0)
    assert doubled.communication_cost == pytest.approx(18.0)
    assert doubled.op_execute_cost == pytest.approx(CostModel().op_execute_cost * 2)


def test_cost_model_free_is_all_zero():
    free = CostModel.free()
    assert free.communication_cost == 0.0
    assert free.control1_format_cost(50) == 0.0


def test_cost_model_size_dependent_costs_grow():
    costs = CostModel()
    assert costs.control1_format_cost(100) > costs.control1_format_cost(50)
    assert costs.control1_install_cost(100) > costs.control1_install_cost(50)
    assert costs.copy_response_cost(3) > costs.copy_response_cost(1)
    assert costs.faillock_maintenance_cost(4, 4) == pytest.approx(
        4 * 4 * costs.faillock_bit_cost
    )
