"""LogicalClock: monotone ticks and Lamport witnessing."""

from repro.sim.logical import LogicalClock


def test_ticks_are_strictly_increasing():
    clock = LogicalClock()
    stamps = [clock.tick() for _ in range(5)]
    assert stamps == [1, 2, 3, 4, 5]
    assert clock.now == 5


def test_custom_start():
    clock = LogicalClock(start=10)
    assert clock.tick() == 11


def test_witness_advances():
    clock = LogicalClock()
    clock.witness(7)
    assert clock.now == 7
    assert clock.tick() == 8


def test_witness_never_regresses():
    clock = LogicalClock(start=9)
    clock.witness(3)
    assert clock.now == 9
