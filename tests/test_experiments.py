"""Experiment runners reproduce the paper's results (shape and bands).

These are the headline assertions of the reproduction: each runner must
land within a tolerance band of the published value, or match the
qualitative claim exactly (who aborts, what clears, which direction a
trend runs).
"""

import pytest

from repro.experiments import (
    run_control_overhead,
    run_copier_overhead,
    run_faillock_overhead,
    run_figure1,
    run_scenario1,
    run_scenario2,
)
from repro.experiments import exp1


def within(measured, paper, tolerance=0.25):
    return abs(measured - paper) <= tolerance * paper


@pytest.fixture(scope="module")
def faillock_result():
    return run_faillock_overhead()


@pytest.fixture(scope="module")
def control_result():
    return run_control_overhead()


@pytest.fixture(scope="module")
def copier_result():
    return run_copier_overhead()


@pytest.fixture(scope="module")
def figure1():
    return run_figure1()


@pytest.fixture(scope="module")
def scenario1():
    return run_scenario1()


@pytest.fixture(scope="module")
def scenario2():
    return run_scenario2()


# -- Experiment 1 --------------------------------------------------------------


def test_e1t1_absolute_bands(faillock_result):
    r = faillock_result
    assert within(r.coord_without, exp1.PAPER_COORD_NO_FL, 0.15)
    assert within(r.coord_with, exp1.PAPER_COORD_FL, 0.15)
    assert within(r.part_without, exp1.PAPER_PART_NO_FL, 0.15)
    assert within(r.part_with, exp1.PAPER_PART_FL, 0.15)


def test_e1t1_overhead_is_slight(faillock_result):
    """The paper's conclusion: fail-lock maintenance is a slight increase."""
    assert 2.0 < faillock_result.coord_overhead_pct < 12.0
    assert 2.0 < faillock_result.part_overhead_pct < 12.0


def test_e1t2_control_bands(control_result):
    assert within(control_result.type1_recovering, exp1.PAPER_TYPE1_RECOVERING, 0.15)
    assert within(control_result.type1_operational, exp1.PAPER_TYPE1_OPERATIONAL, 0.15)
    assert within(control_result.type2, exp1.PAPER_TYPE2, 0.15)


def test_e1t2_type1_recovering_costs_more_than_operational(control_result):
    assert control_result.type1_recovering > 3 * control_result.type1_operational


def test_e1t3_copier_increase_near_45_pct(copier_result):
    assert 30.0 < copier_result.increase_pct < 60.0


def test_e1t3_micro_overheads(copier_result):
    assert copier_result.copy_request_overhead == pytest.approx(25.0, abs=3)
    assert copier_result.clear_faillocks_time == pytest.approx(20.0, abs=3)


def test_e1t3_clearing_share_near_30_points(copier_result):
    assert 15.0 < copier_result.clearing_share_pct < 45.0


def test_e1t3_has_samples(copier_result):
    assert copier_result.samples >= 5


# -- Experiment 2 / Figure 1 -----------------------------------------------------


def test_figure1_peak_over_90_pct(figure1):
    assert figure1.peak_fraction > 0.90


def test_figure1_recovers_same_order_as_paper(figure1):
    assert 60 <= figure1.report.txns_to_recover <= 320  # paper: ~160


def test_figure1_few_copiers(figure1):
    assert figure1.copiers <= 5  # paper: 2


def test_figure1_no_aborts(figure1):
    assert figure1.aborts == 0


def test_figure1_clearing_rate_slows(figure1):
    """The paper's key observation: early buckets clear much faster than
    the last one."""
    buckets = figure1.report.clearing_buckets
    assert len(buckets) >= 3
    first = buckets[0][1]
    last = buckets[-1][1]
    assert last > 2 * first


def test_figure1_site1_never_locked(figure1):
    assert all(v == 0 for _s, v in figure1.series[1])


# -- Experiment 3 / Figures 2-3 -----------------------------------------------------


def test_scenario1_has_copy_unavailable_aborts(scenario1):
    assert scenario1.aborts > 0          # paper: 13
    assert scenario1.aborts < 30
    assert set(scenario1.abort_reasons) == {"copy_unavailable"}


def test_scenario1_both_sites_locked_at_some_point(scenario1):
    assert scenario1.peak(0) > 0
    assert scenario1.peak(1) > 0


def test_scenario1_ends_consistent(scenario1):
    assert scenario1.consistency_violations == []
    assert all(v == 0 for v in scenario1.final_locks.values())


def test_scenario2_no_aborts(scenario2):
    assert scenario2.aborts == 0         # paper: 0


def test_scenario2_each_site_locked_in_turn(scenario2):
    for site in range(4):
        assert scenario2.peak(site) > 0


def test_scenario2_ends_consistent(scenario2):
    assert scenario2.consistency_violations == []
    assert all(v == 0 for v in scenario2.final_locks.values())


def test_scenario2_lock_windows_follow_failures(scenario2):
    """Site k's fail-locks rise only during its down window."""
    for site, window_start in ((0, 1), (1, 26), (2, 51), (3, 76)):
        before = [v for s, v in scenario2.series[site] if s < window_start]
        assert all(v == 0 for v in before)


def test_charts_render(figure1, scenario1, scenario2):
    for result in (figure1, scenario1, scenario2):
        out = result.chart()
        assert "site 0" in out
