"""Replication strategy predicates and analytic availability."""

import pytest

from repro.errors import ConfigurationError
from repro.replication import (
    PrimaryCopyStrategy,
    QuorumStrategy,
    RowaStrategy,
    RowaaStrategy,
)


def test_rowaa_available_with_one_site():
    s = RowaaStrategy(4)
    assert s.can_read({2})
    assert s.can_write({2})
    assert not s.can_write(set())


def test_rowa_write_needs_all():
    s = RowaStrategy(4)
    assert s.can_read({0})
    assert s.can_write({0, 1, 2, 3})
    assert not s.can_write({0, 1, 2})


def test_quorum_majority_default():
    s = QuorumStrategy(4)
    assert s.read_quorum == 3 and s.write_quorum == 3
    assert s.can_write({0, 1, 2})
    assert not s.can_write({0, 1})


def test_quorum_custom_rw():
    s = QuorumStrategy(5, read_quorum=2, write_quorum=4)
    assert s.can_read({0, 1})
    assert not s.can_read({0})
    assert s.can_write({0, 1, 2, 3})


def test_quorum_rejects_non_intersecting():
    with pytest.raises(ConfigurationError):
        QuorumStrategy(4, read_quorum=2, write_quorum=2)  # r+w <= n
    with pytest.raises(ConfigurationError):
        QuorumStrategy(5, read_quorum=4, write_quorum=2)  # 2w <= n


def test_primary_copy_write_needs_primary():
    s = PrimaryCopyStrategy(3, primary=1)
    assert s.can_write({1})
    assert not s.can_write({0, 2})
    assert s.can_read({0})


def test_primary_out_of_range():
    with pytest.raises(ConfigurationError):
        PrimaryCopyStrategy(3, primary=3)


# -- analytic availability ---------------------------------------------------------


def test_rowaa_availability_dominates_rowa():
    p = 0.9
    rowaa = RowaaStrategy(4)
    rowa = RowaStrategy(4)
    assert rowaa.write_availability(p) > rowa.write_availability(p)
    assert rowaa.read_availability(p) == rowa.read_availability(p)


def test_rowa_write_availability_is_p_to_the_n():
    s = RowaStrategy(3)
    assert s.write_availability(0.9) == pytest.approx(0.9**3)


def test_rowaa_availability_closed_form():
    # 1 - (1-p)^n: at least one site up.
    s = RowaaStrategy(4)
    p = 0.8
    assert s.write_availability(p) == pytest.approx(1 - (1 - p) ** 4)


def test_primary_write_availability_is_p():
    assert PrimaryCopyStrategy(5).write_availability(0.93) == pytest.approx(0.93)


def test_quorum_availability_between_rowa_and_rowaa():
    p = 0.9
    quorum = QuorumStrategy(5).write_availability(p)
    assert RowaStrategy(5).write_availability(p) < quorum
    assert quorum < RowaaStrategy(5).write_availability(p)


def test_availability_at_extremes():
    for strategy in (RowaaStrategy(4), RowaStrategy(4), QuorumStrategy(4)):
        assert strategy.write_availability(1.0) == pytest.approx(1.0)
        assert strategy.write_availability(0.0) == pytest.approx(0.0)


def test_bad_probability_rejected():
    with pytest.raises(ConfigurationError):
        RowaaStrategy(2).read_availability(1.5)


def test_names():
    assert RowaaStrategy(2).name == "rowaa"
    assert QuorumStrategy(3).name == "quorum"
