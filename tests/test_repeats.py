"""Multi-seed stability of the headline results.

The reproduction's claims must hold across seeds, not on one lucky draw.
These run the experiments over several seeds and assert the paper-shaped
bands on the *distribution*.
"""

import pytest

from repro.experiments.repeats import (
    Replicated,
    replicate_faillock_overhead,
    replicate_figure1,
    replicate_scenario1,
    replicate_scenario2,
)

SEEDS = tuple(range(1, 7))


@pytest.fixture(scope="module")
def figure1_stats():
    return replicate_figure1(seeds=SEEDS)


def test_replicated_statistics_helpers():
    r = Replicated("x", [1.0, 2.0, 3.0])
    assert r.mean == 2.0
    assert r.low == 1.0 and r.high == 3.0
    assert r.ci95_half_width > 0
    assert "x:" in str(r)


def test_figure1_peak_stable_above_90pct(figure1_stats):
    peaks = figure1_stats["peak_pct"]
    assert peaks.low > 88.0          # every seed peaks high
    assert peaks.mean > 92.0


def test_figure1_recovery_band(figure1_stats):
    recoveries = figure1_stats["txns_to_recover"]
    # Paper: ~160.  Coupon-collector variance is wide, but the mean must
    # land in the same regime.
    assert 60 <= recoveries.mean <= 320
    assert recoveries.low > 30


def test_figure1_copiers_always_few(figure1_stats):
    assert figure1_stats["copiers"].high <= 6   # paper: 2
    assert figure1_stats["aborts"].high == 0


def test_scenario1_aborts_always_present():
    aborts = replicate_scenario1(seeds=SEEDS)
    assert aborts.low >= 1            # the mechanism always bites
    assert aborts.high <= 30          # and stays in the paper's regime
    assert 3 <= aborts.mean <= 20     # paper's draw: 13


def test_scenario2_never_aborts():
    aborts = replicate_scenario2(seeds=SEEDS)
    assert aborts.high == 0.0         # structural, not statistical


def test_faillock_overhead_stable():
    stats = replicate_faillock_overhead(seeds=tuple(range(1, 4)))
    assert 3.0 < stats["coord_pct"].mean < 10.0
    assert 3.0 < stats["part_pct"].mean < 10.0
    # Tight across seeds: the overhead is mechanical, not noisy.
    assert stats["coord_pct"].high - stats["coord_pct"].low < 5.0
