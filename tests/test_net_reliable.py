"""repro.net.reliable: retransmission, dedup, ordering, give-up.

The reliable-delivery sublayer must turn the chaos layer's lossy physical
network back into the exactly-once, in-order transport the protocol
assumes — without changing what the endpoints observe on a loss-free run.
"""

import pytest

from repro.chaos import FaultInjector, FaultPlan, build_chaos_scenario
from repro.errors import ConfigurationError
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.latency import ConstantLatency
from repro.net.message import Message, MessageType
from repro.net.network import MessageFate, Network
from repro.net.reliable import ReliableDelivery, RetransmitPolicy
from repro.sim.cpu import CpuResource
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import EventScheduler
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig


class Recorder(Endpoint):
    """Test endpoint: records deliveries and failure notices."""

    def __init__(self, site_id: int) -> None:
        super().__init__(site_id)
        self.received: list[Message] = []
        self.failures: list[Message] = []

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        self.received.append(msg)

    def on_delivery_failed(self, ctx: HandlerContext, msg: Message) -> None:
        self.failures.append(msg)


def build_net(policy=None, latency=1.0):
    sched = EventScheduler()
    net = Network(
        scheduler=sched,
        cpu=CpuResource(sched, cores=1),
        rng=DeterministicRng(1),
        latency_model=ConstantLatency(latency),
        msg_send_cost=0.5,
        msg_recv_cost=0.5,
    )
    net.reliable = ReliableDelivery(net, policy)
    a, b = Recorder(0), Recorder(1)
    net.register(a)
    net.register(b)
    return sched, net, a, b


class DropMatching:
    """Interposer that silently drops messages matching a predicate."""

    def __init__(self, pred, limit=None):
        self.pred = pred
        self.limit = limit
        self.dropped = 0

    def intercept(self, msg):
        if self.pred(msg) and (self.limit is None or self.dropped < self.limit):
            self.dropped += 1
            return MessageFate(drop=True, silent=True)
        return None


# -- policy -------------------------------------------------------------------


def test_policy_validates() -> None:
    with pytest.raises(ConfigurationError):
        RetransmitPolicy(rto_ms=0.0).validate()
    with pytest.raises(ConfigurationError):
        RetransmitPolicy(backoff=0.5).validate()
    with pytest.raises(ConfigurationError):
        RetransmitPolicy(rto_max_ms=1.0).validate()
    with pytest.raises(ConfigurationError):
        RetransmitPolicy(max_retries=0).validate()
    RetransmitPolicy().validate()


def test_policy_backoff_is_exponential_and_capped() -> None:
    policy = RetransmitPolicy(rto_ms=10.0, backoff=2.0, rto_max_ms=35.0)
    assert policy.rto_for_attempt(1) == 10.0
    assert policy.rto_for_attempt(2) == 20.0
    assert policy.rto_for_attempt(3) == 35.0  # capped, not 40
    assert policy.rto_for_attempt(9) == 35.0


# -- loss-free behavior -------------------------------------------------------


def test_lossless_channel_delivers_once_and_drains() -> None:
    sched, net, a, b = build_net()
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.COMMIT, {}, txn_id=7))
    sched.run()
    assert [m.mtype for m in b.received] == [MessageType.COMMIT]
    assert net.reliable.in_flight == 0  # acked, timer cancelled
    assert net.reliable.stats.retransmissions == 0
    assert net.reliable.stats.acks_sent == 1


def test_sequence_numbers_are_per_channel() -> None:
    sched, net, a, b = build_net()
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.COMMIT, {}))
    net.spawn(b, lambda ctx: ctx.send(0, MessageType.COMMIT, {}))
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.ABORT, {}))
    sched.run()
    assert [m.seq for m in b.received] == [0, 1]  # channel 0->1
    assert [m.seq for m in a.received] == [0]     # channel 1->0


# -- the dedup property (satellite): every type, double delivery --------------


@pytest.mark.parametrize(
    "mtype", [m for m in MessageType if m is not MessageType.NET_ACK]
)
def test_double_delivery_is_invisible_for_every_type(mtype) -> None:
    """Delivering any single message twice leaves receiver state and
    delivery metrics identical to a single delivery: the second arrival is
    suppressed by the dedup window, never surfaced to the endpoint."""
    sched, net, a, b = build_net()
    net.spawn(a, lambda ctx: ctx.send(1, mtype, {"k": 1}, txn_id=3))
    sched.run()
    assert len(b.received) == 1
    first = b.received[0]
    snapshot = (first.mtype, first.seq, dict(first.payload))
    delivered_before = net.messages_delivered

    # A duplicate of the exact same transmission arrives again.
    clone = Message(
        src=first.src, dst=first.dst, mtype=first.mtype,
        payload=dict(first.payload), txn_id=first.txn_id,
        session=first.session, seq=first.seq,
    )
    net._transmit(clone, sched.now)
    sched.run()

    assert len(b.received) == 1, f"{mtype}: duplicate reached the endpoint"
    assert (first.mtype, first.seq, dict(first.payload)) == snapshot
    assert net.reliable.stats.duplicates_suppressed == 1
    # The duplicate was re-acked (lost-ack tolerance) but never delivered:
    # the only new delivery is the transport ack itself.
    assert net.reliable.stats.acks_sent == 2
    assert net.messages_delivered == delivered_before + 1
    assert net.messages_undeliverable == 1  # the suppressed duplicate


# -- loss recovery ------------------------------------------------------------


def test_silent_drop_is_recovered_by_retransmission() -> None:
    policy = RetransmitPolicy(rto_ms=10.0, max_retries=4)
    sched, net, a, b = build_net(policy)
    net.interposer = DropMatching(
        lambda m: m.mtype is MessageType.COMMIT, limit=1
    )
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.COMMIT, {}, txn_id=5))
    sched.run()
    assert [m.mtype for m in b.received] == [MessageType.COMMIT]
    assert net.reliable.stats.retransmissions == 1
    assert a.failures == []  # the loss was never surfaced as a failure


def test_retry_cap_reports_destination_unreachable() -> None:
    policy = RetransmitPolicy(rto_ms=5.0, max_retries=3)
    sched, net, a, b = build_net(policy)
    net.interposer = DropMatching(lambda m: m.mtype is MessageType.COMMIT)
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.COMMIT, {}, txn_id=5))
    sched.run()
    assert b.received == []
    assert net.reliable.stats.retransmissions == 2  # attempts 2..max_retries
    assert net.reliable.stats.gave_up == 1
    assert [m.mtype for m in a.failures] == [MessageType.COMMIT]
    assert net.reliable.in_flight == 0


def test_out_of_order_arrivals_are_reordered() -> None:
    """An early arrival is parked until the gap fills, then both deliver
    in sequence order."""
    sched, net, a, b = build_net(RetransmitPolicy(rto_ms=30.0))
    net.interposer = DropMatching(
        lambda m: m.mtype is MessageType.COMMIT, limit=1
    )
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.COMMIT, {}, txn_id=1))
    net.spawn(a, lambda ctx: ctx.send(1, MessageType.ABORT, {}, txn_id=2))
    sched.run()
    # ABORT (seq 1) arrived first but waited for the retransmitted COMMIT.
    assert [m.mtype for m in b.received] == [
        MessageType.COMMIT, MessageType.ABORT
    ]
    assert net.reliable.stats.buffered_out_of_order == 1


def test_cancel_at_window_head_releases_buffered_successors() -> None:
    """Regression: a bounced message (destination down) must not wedge the
    channel — skipping its slot releases traffic already buffered behind
    it."""
    sched, net, a, b = build_net()
    r = net.reliable
    m0 = Message(src=0, dst=1, mtype=MessageType.COMMIT)
    m1 = Message(src=0, dst=1, mtype=MessageType.RECOVERY_STATE)
    r.track(m0)
    r.track(m1)
    # m1 arrives early and is parked behind the gap at seq 0.
    deliverable, status = r.on_arrival(m1)
    assert status == "held" and deliverable == []
    # m0 bounces (its destination was down when it was sent).
    r.cancel(m0)
    sched.run()
    assert [m.mtype for m in b.received] == [MessageType.RECOVERY_STATE]


def test_transport_acks_and_manager_traffic_are_untracked() -> None:
    sched, net, a, b = build_net()
    ack = Message(src=0, dst=1, mtype=MessageType.NET_ACK, payload={"seq": 0})
    assert not net.reliable.tracks(ack)
    net.partition_exempt.add(2)
    mgr = Message(src=2, dst=1, mtype=MessageType.MGR_SUBMIT_TXN)
    assert not net.reliable.tracks(mgr)
    assert net.reliable.tracks(Message(src=0, dst=1, mtype=MessageType.COMMIT))


# -- end-to-end: duplicating everything changes nothing -----------------------


def _run_lossy_cluster(duplicate_rate: float):
    plan = FaultPlan(
        lossy_core=True,
        drop_rate=0.0,
        duplicate_rate=duplicate_rate,
        delay_rate=0.0,
        reorder_rate=0.0,
    )
    config = SystemConfig(
        db_size=16,
        num_sites=4,
        seed=9,
        wire_latency_ms=2.0,
        reliable_delivery=True,
        timeouts_enabled=True,
    )
    cluster = Cluster(config)
    injector = FaultInjector(plan, cluster.rng.stream("chaos.faults"))
    cluster.network.interposer = injector
    scenario = build_chaos_scenario(
        config, plan, cluster.rng.stream("chaos.schedule"), txn_count=30
    )
    cluster.run(scenario)
    return cluster, injector


def test_duplicating_every_message_leaves_outcomes_identical() -> None:
    """The cluster-level dedup property: a run where EVERY message (2PC
    traffic, recovery state, acks, everything) is delivered twice ends in
    exactly the state of the run with no duplication at all."""
    base, _ = _run_lossy_cluster(duplicate_rate=0.0)
    noisy, injector = _run_lossy_cluster(duplicate_rate=1.0)
    assert injector.stats.duplicated > 100, "chaos duplicated almost nothing"
    dup_types = {k.split(":", 1)[1] for k in injector.stats.by_type}
    assert {"commit", "vote_req", "vote_ack", "net_ack"} <= dup_types
    assert noisy.network.reliable.stats.duplicates_suppressed > 0
    for site_a, site_b in zip(base.sites, noisy.sites):
        assert site_a.db.dump() == site_b.db.dump()
        assert site_a.faillocks.snapshot() == site_b.faillocks.snapshot()
    for counter in ("commits", "aborts"):
        assert base.metrics.counters.get(counter) == noisy.metrics.counters.get(
            counter
        )
    assert base.audit_consistency() == []
    assert noisy.audit_consistency() == []
