"""Type-1 responder failover: the designated responder is down."""

import pytest

from repro.core.sessions import SiteState
from repro.net.message import MessageType
from repro.system.cluster import Cluster
from repro.system.config import FailureDetection, SystemConfig
from repro.system.scenario import FailSite, RecoverSite

from conftest import make_scenario, run_cluster


def test_recovery_retries_next_candidate():
    """Sites 0 and 1 are down; when site 0 recovers it asks site 1 first
    (its stale NSV still believes 1 up under TIMEOUT detection), gets a
    bounce, marks 1 down, and obtains state from site 2 instead."""
    config = SystemConfig(
        db_size=8,
        num_sites=3,
        max_txn_size=3,
        seed=6,
        detection=FailureDetection.TIMEOUT,
    )
    cluster = Cluster(config)
    scenario = make_scenario(config, 20)
    scenario.add_action(2, FailSite(0))
    scenario.add_action(4, FailSite(1))
    scenario.add_action(10, RecoverSite(0))
    cluster.run(scenario)
    site0 = cluster.site(0)
    assert site0.alive
    assert site0.nsv.is_operational(0)
    # It learned site 1 is down during the retry.
    assert site0.nsv.state_of(1) is SiteState.DOWN
    # A RECOVERY_STATE did arrive (from site 2).
    state_msgs = [
        e
        for e in cluster.network.trace.entries
        if e.mtype is MessageType.RECOVERY_STATE and e.delivered
    ]
    assert state_msgs and state_msgs[-1].src == 2


def test_solo_recovery_when_every_peer_is_down():
    """The last standing site fails and recovers with no peers: it comes
    back solo with its own state."""
    config = SystemConfig(
        db_size=8,
        num_sites=2,
        max_txn_size=3,
        seed=6,
        detection=FailureDetection.TIMEOUT,
    )
    cluster = Cluster(config)
    scenario = make_scenario(config, 16)
    scenario.add_action(2, FailSite(1))
    # Site 0 (now alone) keeps processing; later site 1 recovers; then site
    # 0 fails and recovers while... instead simplest: recover 1, fail 0,
    # then recover 0 while 1 is also down.
    scenario.add_action(6, FailSite(0))
    scenario.add_action(6, RecoverSite(1))
    scenario.add_action(10, FailSite(1))
    scenario.add_action(10, RecoverSite(0))
    cluster.run(scenario)
    site0 = cluster.site(0)
    assert site0.alive
    assert site0.nsv.is_operational(0)
    assert site0.nsv.state_of(1) is SiteState.DOWN


def test_single_site_system_fail_recover():
    config = SystemConfig(db_size=5, num_sites=1, max_txn_size=2, seed=6)
    cluster = Cluster(config)
    scenario = make_scenario(config, 10)
    # Fail and immediately recover (a one-site system has no survivor to
    # process transactions during the outage).
    scenario.add_action(3, FailSite(0))
    scenario.add_action(3, RecoverSite(0))
    metrics = cluster.run(scenario)
    assert metrics.counters["commits"] == 10
    assert cluster.site(0).nsv.my_session == 2
