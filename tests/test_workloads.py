"""Workload generators."""

import random

import pytest

from repro.errors import WorkloadError
from repro.txn.operations import OpKind
from repro.workload.et1 import Et1Workload
from repro.workload.hotset import ZipfHotSetWorkload
from repro.workload.readwrite import ReadWriteWorkload
from repro.workload.shapes import DebitCreditWorkload, WisconsinMixWorkload
from repro.workload.uniform import UniformWorkload
from repro.workload.wisconsin import WisconsinWorkload


@pytest.fixture
def rng() -> random.Random:
    return random.Random(77)


ITEMS = list(range(50))


def test_uniform_respects_bounds(rng):
    wl = UniformWorkload(ITEMS, max_txn_size=5)
    for seq in range(100):
        ops = wl.generate(seq, rng)
        assert 1 <= len(ops) <= 5
        assert all(op.item_id in ITEMS for op in ops)


def test_uniform_covers_item_space(rng):
    wl = UniformWorkload(ITEMS, max_txn_size=10)
    touched = set()
    for seq in range(300):
        touched.update(op.item_id for op in wl.generate(seq, rng))
    assert len(touched) == len(ITEMS)


def test_uniform_validation():
    with pytest.raises(WorkloadError):
        UniformWorkload([], 5)
    with pytest.raises(WorkloadError):
        UniformWorkload(ITEMS, 0)


def test_readwrite_ratio(rng):
    wl = ReadWriteWorkload(ITEMS, max_txn_size=8, write_probability=0.2)
    ops = [op for seq in range(500) for op in wl.generate(seq, rng)]
    writes = sum(1 for op in ops if op.is_write)
    assert 0.15 < writes / len(ops) < 0.25


def test_readwrite_validation():
    with pytest.raises(WorkloadError):
        ReadWriteWorkload(ITEMS, 5, write_probability=2.0)


def test_zipf_skews_to_low_ranks(rng):
    wl = ZipfHotSetWorkload(ITEMS, max_txn_size=4, skew=1.5)
    counts = {}
    for seq in range(2000):
        for op in wl.generate(seq, rng):
            counts[op.item_id] = counts.get(op.item_id, 0) + 1
    # The first-ranked item must dominate the median item.
    median_item = ITEMS[len(ITEMS) // 2]
    assert counts.get(ITEMS[0], 0) > 5 * counts.get(median_item, 1)


def test_zipf_zero_skew_roughly_uniform(rng):
    wl = ZipfHotSetWorkload(ITEMS, max_txn_size=4, skew=0.0)
    counts = dict.fromkeys(ITEMS, 0)
    for seq in range(3000):
        for op in wl.generate(seq, rng):
            counts[op.item_id] += 1
    values = sorted(counts.values())
    assert values[0] > 0
    assert values[-1] < 3 * values[0]


def test_zipf_cold_accesses(rng):
    cold = list(range(100, 110))
    wl = ZipfHotSetWorkload(
        ITEMS, max_txn_size=4, cold_items=cold, cold_probability=0.5
    )
    touched = set()
    for seq in range(300):
        touched.update(op.item_id for op in wl.generate(seq, rng))
    assert touched & set(cold)


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        ZipfHotSetWorkload([], 5)
    with pytest.raises(WorkloadError):
        ZipfHotSetWorkload(ITEMS, 5, cold_probability=0.5)  # no cold items


def test_et1_shape(rng):
    wl = Et1Workload(ITEMS)
    ops = wl.generate(1, rng)
    assert len(ops) == 7
    kinds = [op.kind for op in ops]
    assert kinds == [
        OpKind.READ, OpKind.WRITE,   # account
        OpKind.READ, OpKind.WRITE,   # teller
        OpKind.READ, OpKind.WRITE,   # branch
        OpKind.WRITE,                # history
    ]
    # Each touched item belongs to its region.
    assert ops[0].item_id in wl.accounts
    assert ops[2].item_id in wl.tellers
    assert ops[4].item_id in wl.branches
    assert ops[6].item_id in wl.history


def test_et1_regions_are_disjoint():
    wl = Et1Workload(ITEMS)
    regions = [set(wl.accounts), set(wl.tellers), set(wl.branches), set(wl.history)]
    union = set().union(*regions)
    assert len(union) == sum(len(r) for r in regions)
    assert union == set(ITEMS)


def test_et1_too_small_rejected():
    with pytest.raises(WorkloadError):
        Et1Workload(list(range(4)))


def test_wisconsin_mixes_scans_and_updates(rng):
    wl = WisconsinWorkload(ITEMS, scan_length=5, update_count=2, scan_fraction=0.5)
    saw_scan = saw_update = False
    for seq in range(100):
        ops = wl.generate(seq, rng)
        if all(op.is_read for op in ops):
            saw_scan = True
            items = [op.item_id for op in ops]
            assert items == list(range(items[0], items[0] + 5))  # contiguous
        else:
            saw_update = True
            assert any(op.is_write for op in ops)
    assert saw_scan and saw_update


def test_wisconsin_validation():
    with pytest.raises(WorkloadError):
        WisconsinWorkload(ITEMS, scan_length=0)
    with pytest.raises(WorkloadError):
        WisconsinWorkload(ITEMS, scan_length=51)
    with pytest.raises(WorkloadError):
        WisconsinWorkload(ITEMS, update_count=0)


def test_describe_strings():
    assert "uniform" in UniformWorkload(ITEMS, 5).describe()
    assert "et1" in Et1Workload(ITEMS).describe()
    assert "wisconsin" in WisconsinWorkload(ITEMS).describe()
    assert "zipf" in ZipfHotSetWorkload(ITEMS, 5).describe()


# -- soak-selectable benchmark mixes (shapes.py presets) ---------------------


def _op_trace(wl, seed, n=100):
    stream = random.Random(seed)
    return [
        [(op.kind, op.item_id) for op in wl.generate(seq, stream)]
        for seq in range(n)
    ]


def test_debitcredit_partitions_and_shape(rng):
    wl = DebitCreditWorkload(list(range(200)))
    assert (wl.branches, wl.tellers, wl.accounts) == (2, 18, 180)
    for seq in range(200):
        ops = wl.generate(seq, rng)
        assert len(ops) == 3
        assert all(op.is_write for op in ops)
        # Disjoint partitions: the three items are always distinct, and
        # the branch write lands in the tiny hot set at the front.
        assert len({op.item_id for op in ops}) == 3
        assert ops[2].item_id < wl.branches


def test_debitcredit_hierarchy_is_pure_function(rng):
    # Same account ⇒ same teller and branch, across transactions.
    wl = DebitCreditWorkload(list(range(200)))
    seen = {}
    for seq in range(300):
        account, teller, branch = (op.item_id for op in wl.generate(seq, rng))
        assert seen.setdefault(account, (teller, branch)) == (teller, branch)


def test_debitcredit_determinism():
    wl = DebitCreditWorkload(list(range(150)))
    assert _op_trace(wl, seed=9) == _op_trace(wl, seed=9)
    assert _op_trace(wl, seed=9) != _op_trace(wl, seed=10)


def test_debitcredit_too_small_rejected():
    with pytest.raises(WorkloadError):
        DebitCreditWorkload([1, 2])


def test_wisconsin_mix_preset_configuration(rng):
    wl = WisconsinMixWorkload(ITEMS, max_txn_size=5, read_fraction=0.7)
    assert wl.scan_length == 5
    assert wl.update_count == 1
    assert wl.scan_fraction == 0.7
    kinds = {
        "scan" if all(op.is_read for op in wl.generate(seq, rng)) else "update"
        for seq in range(200)
    }
    assert kinds == {"scan", "update"}
    # Scan length is capped by the item space, not just max_txn_size.
    tiny = WisconsinMixWorkload(ITEMS[:3], max_txn_size=5)
    assert tiny.scan_length == 3


def test_wisconsin_mix_determinism():
    wl = WisconsinMixWorkload(ITEMS, max_txn_size=5)
    assert _op_trace(wl, seed=3) == _op_trace(wl, seed=3)
    assert _op_trace(wl, seed=3) != _op_trace(wl, seed=4)
