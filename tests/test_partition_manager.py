"""PartitionManager edge cases: overlap rejection, re-partition, implicit
group membership."""

import pytest

from repro.errors import NetworkError
from repro.net.partition import PartitionManager


def test_overlapping_groups_rejected() -> None:
    manager = PartitionManager()
    with pytest.raises(NetworkError):
        manager.partition([[0, 1], [1, 2]])


def test_overlap_rejection_leaves_manager_unpartitioned() -> None:
    manager = PartitionManager()
    with pytest.raises(NetworkError):
        manager.partition([[0], [0]])
    assert not manager.active
    assert manager.connected(0, 1)


def test_heal_then_repartition() -> None:
    manager = PartitionManager()
    manager.partition([[0, 1], [2, 3]])
    assert manager.connected(0, 1)
    assert not manager.connected(1, 2)
    manager.heal()
    assert not manager.active
    assert manager.connected(1, 2)
    # A fresh split takes effect cleanly after the heal.
    manager.partition([[0, 2], [1, 3]])
    assert manager.connected(0, 2)
    assert not manager.connected(0, 1)
    assert not manager.connected(2, 3)


def test_repartition_replaces_previous_split() -> None:
    """Installing a new partition discards the old one entirely."""
    manager = PartitionManager()
    manager.partition([[0], [1, 2]])
    manager.partition([[0, 1], [2]])
    assert manager.connected(0, 1)   # separated before, together now
    assert not manager.connected(1, 2)


def test_unlisted_sites_share_the_implicit_group() -> None:
    manager = PartitionManager()
    manager.partition([[0, 1]])
    # Sites 2 and 3 appear in no group: they form the implicit extra group.
    assert manager.connected(2, 3)
    assert manager.group_of(2) == -1
    assert manager.group_of(3) == -1
    # ...but are cut off from every listed group.
    assert not manager.connected(0, 2)
    assert not manager.connected(1, 3)


def test_self_connectivity_survives_any_split() -> None:
    manager = PartitionManager()
    manager.partition([[0], [1]])
    assert manager.connected(0, 0)
    assert manager.connected(1, 1)
    assert manager.connected(5, 5)   # even unlisted sites reach themselves
