"""Partial replication: routing, remote reads, and the audit invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.storage.catalog import ReplicationCatalog
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.costs import CostModel
from repro.system.scenario import Scenario
from repro.workload.uniform import UniformWorkload

from conftest import make_scenario


@st.composite
def catalogs(draw):
    """A random catalog over 3 sites and 6 items, every item held
    somewhere."""
    items, sites = range(6), range(3)
    catalog = ReplicationCatalog(items, sites)
    for item in items:
        holders = draw(
            st.sets(st.sampled_from(list(sites)), min_size=1, max_size=3)
        )
        for site in holders:
            catalog.add_copy(item, site)
    return catalog


@settings(max_examples=15, deadline=None)
@given(catalog=catalogs(), seed=st.integers(min_value=0, max_value=999))
def test_random_partial_catalogs_commit_and_stay_consistent(catalog, seed):
    config = SystemConfig(
        db_size=6, num_sites=3, max_txn_size=3, seed=seed, costs=CostModel.free()
    )
    cluster = Cluster(config, catalog=catalog)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=30,
    )
    metrics = cluster.run(scenario)
    # No failures: everything commits, whatever the replica placement.
    assert metrics.counters["commits"] == 30
    assert cluster.audit_consistency() == []
    # Writes landed exactly on the holders.
    for item in catalog.item_ids:
        holders = catalog.holders(item)
        newest = max(cluster.site(s).db.version(item) for s in holders)
        for site_id in holders:
            assert cluster.site(site_id).db.version(item) == newest
        for site_id in set(range(3)) - holders:
            assert item not in cluster.site(site_id).db


def test_remote_read_returns_current_value():
    """A coordinator with no copy of an item reads it remotely and sees
    the latest committed value."""
    from repro.txn.operations import OpKind, Operation
    from repro.workload.base import WorkloadGenerator

    items, sites = range(2), range(2)
    catalog = ReplicationCatalog(items, sites)
    catalog.add_copy(0, 0)
    catalog.add_copy(0, 1)
    catalog.add_copy(1, 1)  # item 1 only on site 1

    class Script(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            if txn_seq == 1:
                return [Operation(OpKind.WRITE, 1)]
            return [Operation(OpKind.READ, 1)]

    class Policy:
        def choose(self, seq, up_sites, rng):
            return 1 if seq == 1 else 0  # write at holder, read at non-holder

    config = SystemConfig(db_size=2, num_sites=2, max_txn_size=2, seed=4)
    cluster = Cluster(config, catalog=catalog)
    metrics = cluster.run(
        Scenario(workload=Script(), txn_count=2, policy=Policy())
    )
    assert metrics.counters["commits"] == 2
    read_txn = metrics.txns[1]
    assert read_txn.committed
    # The remote read used a COPY_REQ exchange.
    from repro.net.message import MessageType

    assert cluster.network.trace.count(
        mtype=MessageType.COPY_REQ, txn_id=read_txn.txn_id
    ) == 1


def test_remote_read_unavailable_when_holder_down():
    from repro.net.message import MessageType
    from repro.system.scenario import FailSite
    from repro.txn.operations import OpKind, Operation
    from repro.workload.base import WorkloadGenerator

    items, sites = range(2), range(2)
    catalog = ReplicationCatalog(items, sites)
    catalog.add_copy(0, 0)
    catalog.add_copy(0, 1)
    catalog.add_copy(1, 1)

    class ReadOne(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.READ, 1)]

    class ToSite0:
        def choose(self, seq, up_sites, rng):
            return 0

    config = SystemConfig(db_size=2, num_sites=2, max_txn_size=2, seed=4)
    cluster = Cluster(config, catalog=catalog)
    scenario = Scenario(workload=ReadOne(), txn_count=1, policy=ToSite0())
    scenario.add_action(1, FailSite(1))
    metrics = cluster.run(scenario)
    assert metrics.aborted[0].abort_reason.value == "copy_unavailable"
