"""Property-based tests (hypothesis) on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faillocks import FailLockTable
from repro.core.sessions import NominalSessionVector, SiteState
from repro.metrics.stats import mean, median, percentile, stddev
from repro.replication import QuorumStrategy, RowaStrategy, RowaaStrategy
from repro.sim.scheduler import EventScheduler
from repro.txn.deadlock import WaitsForGraph
from repro.txn.locks import LockManager, LockMode


SITES = st.integers(min_value=0, max_value=3)
ITEMS = st.integers(min_value=0, max_value=9)


# -- fail-lock table ------------------------------------------------------------


@given(st.lists(st.tuples(st.booleans(), ITEMS, SITES), max_size=60))
def test_faillock_count_matches_bits(ops):
    """count_for / locked_items_for / total_locks always agree with a
    straightforward model of the bit matrix."""
    table = FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(10))
    model: set[tuple[int, int]] = set()
    for is_set, item, site in ops:
        if is_set:
            table.set_lock(item, site)
            model.add((item, site))
        else:
            table.clear_lock(item, site)
            model.discard((item, site))
    for site in range(4):
        expected = sorted(i for i, s in model if s == site)
        assert table.locked_items_for(site) == expected
        assert table.count_for(site) == len(expected)
    assert table.total_locks() == len(model)


@given(st.lists(st.tuples(ITEMS, SITES), max_size=40))
def test_faillock_snapshot_install_roundtrip(locks):
    table = FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(10))
    for item, site in locks:
        table.set_lock(item, site)
    clone = FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(10))
    clone.install(table.snapshot())
    assert clone == table


@given(
    st.lists(ITEMS, min_size=1, max_size=10, unique=True),
    st.sets(SITES, max_size=3),
)
def test_update_on_commit_partitions_bits(written, down_sites):
    """After commit maintenance, written items are locked for exactly the
    non-UP sites."""
    table = FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(10))
    nsv = NominalSessionVector(owner=0, site_ids=[0, 1, 2, 3])
    for site in down_sites:
        if site != 0:
            nsv.mark_down(site)
    table.update_on_commit(written, nsv)
    for item in written:
        for site in range(4):
            expected = nsv.state_of(site) is not SiteState.UP
            assert table.is_locked(item, site) == expected


# -- scheduler ordering -----------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
def test_scheduler_fires_in_nondecreasing_time(delays):
    sched = EventScheduler()
    fired = []
    for delay in delays:
        sched.schedule(delay, lambda: fired.append(sched.now))
    sched.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- lock manager invariant -----------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["s", "x", "release"]),
            st.integers(min_value=1, max_value=5),   # txn
            ITEMS,
        ),
        max_size=80,
    )
)
def test_lock_manager_never_violates_compatibility(ops):
    lm = LockManager()
    for action, txn, item in ops:
        if action == "release":
            lm.release_all(txn)
        else:
            mode = LockMode.SHARED if action == "s" else LockMode.EXCLUSIVE
            lm.request(txn, item, mode)
        lm.verify_integrity()


@given(st.lists(st.tuples(st.integers(1, 6), st.integers(1, 6)), max_size=30))
def test_waits_for_graph_cycle_iff_model_cycle(edges):
    """find_cycle() agrees with a brute-force reachability check."""
    graph = WaitsForGraph()
    model: set[tuple[int, int]] = set()
    for a, b in edges:
        if a == b:
            continue
        graph.add_waits(a, [b])
        model.add((a, b))

    def reachable(start, goal):
        seen, stack = set(), [start]
        while stack:
            node = stack.pop()
            for x, y in model:
                if x == node and y not in seen:
                    if y == goal:
                        return True
                    seen.add(y)
                    stack.append(y)
        return False

    has_cycle = any(reachable(b, a) for a, b in model)
    cycle = graph.find_cycle()
    assert bool(cycle) == has_cycle
    if cycle:
        # The returned cycle is a real cycle in the model.
        for i, node in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            assert (node, nxt) in model


# -- statistics ------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_stats_bounds(values):
    eps = 1e-6  # float summation can exceed max() by an ulp or two
    assert min(values) - eps <= mean(values) <= max(values) + eps
    assert min(values) <= median(values) <= max(values)
    assert stddev(values) >= 0
    assert min(values) <= percentile(values, 50) <= max(values)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
    st.floats(min_value=0, max_value=100),
)
def test_percentile_monotone_in_p(values, p):
    lower = percentile(values, max(0.0, p - 10))
    assert percentile(values, p) >= lower - 1e-9


# -- replication availability ------------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=7))
def test_rowaa_dominates_everything(p, n):
    rowaa = RowaaStrategy(n).write_availability(p)
    rowa = RowaStrategy(n).write_availability(p)
    assert rowaa >= rowa - 1e-12
    if n >= 3:
        quorum = QuorumStrategy(n).write_availability(p)
        assert rowa - 1e-12 <= quorum <= rowaa + 1e-12


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_availability_monotone_in_p(p1, p2):
    lo, hi = sorted((p1, p2))
    s = QuorumStrategy(5)
    assert s.write_availability(lo) <= s.write_availability(hi) + 1e-12


# -- end-to-end property: consistency invariant under random failure scripts -------------


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_at=st.integers(min_value=1, max_value=10),
    down_for=st.integers(min_value=1, max_value=10),
    site=st.integers(min_value=0, max_value=2),
)
def test_random_failure_scripts_preserve_consistency(seed, fail_at, down_for, site):
    """For any single fail/recover script, the run completes, the audit
    passes, and fail-locks exactly track staleness."""
    from repro.system.cluster import Cluster
    from repro.system.config import SystemConfig
    from repro.system.costs import CostModel
    from repro.system.scenario import FailSite, RecoverSite, Scenario
    from repro.workload.uniform import UniformWorkload

    config = SystemConfig(
        db_size=8, num_sites=3, max_txn_size=3, seed=seed, costs=CostModel.free()
    )
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=fail_at + down_for + 10,
    )
    scenario.add_action(fail_at, FailSite(site))
    scenario.add_action(fail_at + down_for, RecoverSite(site))
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    assert cluster.audit_consistency() == []
    assert metrics.counters["commits"] + metrics.counters["aborts"] == (
        fail_at + down_for + 10
    )
