"""Scenario scripting and submission policies."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.system.scenario import (
    FailSite,
    FixedSite,
    HealNetwork,
    PartitionNetwork,
    RecoverSite,
    RoundRobin,
    Scenario,
    UniformRandom,
    Weighted,
)
from repro.workload.uniform import UniformWorkload


@pytest.fixture
def rng() -> random.Random:
    return random.Random(4)


def make_scenario(**kw) -> Scenario:
    defaults = dict(workload=UniformWorkload([0, 1], 2), txn_count=10)
    defaults.update(kw)
    return Scenario(**defaults)


def test_add_action_accumulates():
    scenario = make_scenario()
    scenario.add_action(5, FailSite(0)).add_action(5, RecoverSite(1))
    assert scenario.actions[5] == [FailSite(0), RecoverSite(1)]


def test_add_action_rejects_bad_seq():
    with pytest.raises(ConfigurationError):
        make_scenario().add_action(0, FailSite(0))


def test_validate_rejects_bad_counts():
    with pytest.raises(ConfigurationError):
        make_scenario(txn_count=-1).validate()
    with pytest.raises(ConfigurationError):
        make_scenario(txn_count=10, max_txns=5).validate()


def test_actions_are_value_objects():
    assert FailSite(1) == FailSite(1)
    assert PartitionNetwork(groups=((0,), (1,))) == PartitionNetwork(
        groups=((0,), (1,))
    )
    assert HealNetwork() == HealNetwork()


# -- policies ----------------------------------------------------------------------


def test_fixed_site(rng):
    policy = FixedSite(2)
    assert policy.choose(1, [0, 1, 2], rng) == 2
    with pytest.raises(ConfigurationError):
        policy.choose(2, [0, 1], rng)


def test_round_robin_cycles(rng):
    policy = RoundRobin()
    picks = [policy.choose(i, [0, 1, 2], rng) for i in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_adapts_to_membership(rng):
    policy = RoundRobin()
    policy.choose(1, [0, 1], rng)
    assert policy.choose(2, [5], rng) == 5


def test_uniform_random_covers_all(rng):
    policy = UniformRandom()
    picks = {policy.choose(i, [0, 1, 2], rng) for i in range(100)}
    assert picks == {0, 1, 2}


def test_weighted_respects_weights(rng):
    policy = Weighted({0: 0.05, 1: 0.95})
    picks = [policy.choose(i, [0, 1], rng) for i in range(1000)]
    share0 = picks.count(0) / len(picks)
    assert 0.01 < share0 < 0.12


def test_weighted_renormalizes_over_up_sites(rng):
    policy = Weighted({0: 0.05, 1: 0.95})
    # Site 1 down: all weight flows to site 0.
    assert all(policy.choose(i, [0], rng) == 0 for i in range(20))


def test_weighted_falls_back_when_no_weighted_site_up(rng):
    policy = Weighted({0: 1.0})
    assert policy.choose(1, [1, 2], rng) in (1, 2)


def test_weighted_rejects_bad_weights():
    with pytest.raises(ConfigurationError):
        Weighted({})
    with pytest.raises(ConfigurationError):
        Weighted({0: -1.0})
