"""Cold recovery: a crash that loses the site's volatile database."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite

from conftest import make_scenario, run_cluster


def cold_config(**kw):
    defaults = dict(
        db_size=10, num_sites=3, max_txn_size=4, seed=21, cold_recovery=True
    )
    defaults.update(kw)
    return SystemConfig(**defaults)


def test_crash_wipes_database():
    config = cold_config()
    cluster = Cluster(config)
    scenario = make_scenario(config, 10)
    scenario.add_action(5, FailSite(2))
    cluster.run(scenario)
    assert all(v == 0 for v, _ver in cluster.site(2).db.dump().values())
    assert len(cluster.site(2).db.log) == 0


def test_every_copy_faillocked_on_cold_recovery():
    config = cold_config()
    cluster = Cluster(config)
    scenario = make_scenario(config, 12)
    scenario.add_action(5, FailSite(2))
    scenario.add_action(10, RecoverSite(2))
    metrics = cluster.run(scenario)
    # At the moment of recovery (before txn 10's writes), all 10 items were
    # locked; find the sample right after recovery.
    sample = next(s for s in metrics.faillock_samples if s.seq == 10)
    assert sample.locks_per_site[2] >= config.db_size - metrics.txns[9].items_written


def test_cold_recovery_completes_and_is_consistent():
    config = cold_config()
    scenario = make_scenario(config, 20)
    scenario.add_action(3, FailSite(1))
    scenario.add_action(8, RecoverSite(1))
    scenario.until_recovered = (1,)
    scenario.max_txns = 1000
    cluster = run_cluster(config, scenario)
    assert cluster.faillock_counts()[1] == 0
    assert cluster.audit_consistency() == []
    dumps = [site.db.dump() for site in cluster.sites]
    assert dumps[0] == dumps[1] == dumps[2]


def test_warm_recovery_unaffected_by_flag_off():
    config = cold_config(cold_recovery=False)
    cluster = Cluster(config)
    scenario = make_scenario(config, 12)
    scenario.add_action(5, FailSite(2))
    scenario.add_action(10, RecoverSite(2))
    metrics = cluster.run(scenario)
    sample = next(s for s in metrics.faillock_samples if s.seq == 10)
    # Warm: only the items written during the outage are stale (< all).
    assert sample.locks_per_site[2] < config.db_size


def test_cold_recovery_takes_longer_than_warm():
    def recovery_length(cold: bool) -> int:
        config = cold_config(db_size=20, num_sites=2, cold_recovery=cold, seed=31)
        scenario = make_scenario(config, 10)
        scenario.add_action(3, FailSite(1))
        scenario.add_action(8, RecoverSite(1))
        scenario.until_recovered = (1,)
        scenario.max_txns = 2000
        cluster = run_cluster(config, scenario)
        return len(cluster.metrics.txns)

    assert recovery_length(True) > recovery_length(False)


def test_cold_recovered_site_denied_as_copier_source():
    """A freshly cold-recovered site cannot serve copies — everything it
    holds is fail-locked, so the planner never picks it as a source."""
    config = cold_config(num_sites=3)
    cluster = Cluster(config)
    scenario = make_scenario(config, 12)
    scenario.add_action(3, FailSite(2))
    scenario.add_action(10, RecoverSite(2))
    cluster.run(scenario)
    planner = cluster.site(0).planner
    # Any item still stale on site 2 must not name site 2 as a source.
    for item in cluster.site(0).faillocks.locked_items_for(2):
        assert planner.up_to_date_source(item) != 2
