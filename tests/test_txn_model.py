"""Operations, transaction lifecycle, and 2PC bookkeeping."""

import random

import pytest

from repro.errors import ProtocolError, TransactionError, WorkloadError
from repro.txn.operations import OpKind, Operation, random_transaction_ops
from repro.txn.transaction import AbortReason, Transaction, TxnStatus
from repro.txn.twophase import CommitPhase, CoordinatorState


def txn(ops=None, txn_id=1):
    if ops is None:
        ops = [Operation(OpKind.READ, 0), Operation(OpKind.WRITE, 1)]
    return Transaction(txn_id=txn_id, ops=ops)


# -- operations ----------------------------------------------------------------


def test_operation_kind_predicates():
    assert Operation(OpKind.READ, 0).is_read
    assert Operation(OpKind.WRITE, 0).is_write


def test_random_ops_respect_bounds():
    rng = random.Random(5)
    for _ in range(200):
        ops = random_transaction_ops(rng, list(range(10)), max_ops=5)
        assert 1 <= len(ops) <= 5
        assert all(0 <= op.item_id < 10 for op in ops)


def test_random_ops_equal_read_write_probability():
    rng = random.Random(5)
    kinds = []
    for _ in range(500):
        kinds += [op.kind for op in random_transaction_ops(rng, [0], max_ops=3)]
    writes = sum(1 for k in kinds if k is OpKind.WRITE)
    assert 0.4 < writes / len(kinds) < 0.6


def test_random_ops_write_probability_extremes():
    rng = random.Random(5)
    all_reads = random_transaction_ops(rng, [0, 1], 10, write_probability=0.0)
    assert all(op.is_read for op in all_reads)
    all_writes = random_transaction_ops(rng, [0, 1], 10, write_probability=1.0)
    assert all(op.is_write for op in all_writes)


def test_random_ops_validation():
    rng = random.Random(5)
    with pytest.raises(WorkloadError):
        random_transaction_ops(rng, [], 5)
    with pytest.raises(WorkloadError):
        random_transaction_ops(rng, [0], 0)
    with pytest.raises(WorkloadError):
        random_transaction_ops(rng, [0], 5, write_probability=1.5)


# -- transaction ---------------------------------------------------------------------


def test_distinct_items_first_touch_order():
    t = txn(
        [
            Operation(OpKind.WRITE, 3),
            Operation(OpKind.READ, 1),
            Operation(OpKind.WRITE, 3),
            Operation(OpKind.WRITE, 0),
            Operation(OpKind.READ, 1),
        ]
    )
    assert t.write_items == [3, 0]
    assert t.read_items == [1]
    assert t.size == 5


def test_commit_transition():
    t = txn()
    t.submitted_at = 1.0
    t.mark_committed(5.0)
    assert t.status is TxnStatus.COMMITTED
    assert t.is_done
    assert t.elapsed == 4.0


def test_abort_transition():
    t = txn()
    t.mark_aborted(AbortReason.COPY_UNAVAILABLE, 3.0)
    assert t.status is TxnStatus.ABORTED
    assert t.abort_reason is AbortReason.COPY_UNAVAILABLE


def test_double_finish_rejected():
    t = txn()
    t.mark_committed(1.0)
    with pytest.raises(TransactionError):
        t.mark_aborted(AbortReason.NONE, 2.0)
    with pytest.raises(TransactionError):
        t.mark_committed(2.0)


def test_elapsed_unfinished_is_negative():
    assert txn().elapsed == -1.0


# -- 2PC coordinator state ----------------------------------------------------------


def test_vote_then_commit_flow():
    state = CoordinatorState(txn=txn())
    state.begin_voting([1, 2])
    assert state.phase is CommitPhase.VOTING
    assert not state.record_vote(1)
    assert state.record_vote(2)
    state.begin_commit()
    assert state.phase is CommitPhase.COMMITTING
    assert not state.record_commit_ack(2)
    assert state.record_commit_ack(1)
    state.finish()
    assert state.phase is CommitPhase.DONE


def test_commit_before_all_votes_rejected():
    state = CoordinatorState(txn=txn())
    state.begin_voting([1, 2])
    state.record_vote(1)
    with pytest.raises(ProtocolError):
        state.begin_commit()


def test_vote_out_of_phase_rejected():
    state = CoordinatorState(txn=txn())
    with pytest.raises(ProtocolError):
        state.record_vote(1)


def test_drop_participant_unblocks():
    state = CoordinatorState(txn=txn())
    state.begin_voting([1, 2])
    state.record_vote(1)
    state.drop_participant(2)
    assert not state.pending_votes
    assert state.participants == [1]


def test_empty_participant_set():
    state = CoordinatorState(txn=txn())
    state.begin_voting([])
    state.begin_commit()
    assert not state.pending_commit_acks
