"""Reproducibility: identical configs produce identical runs."""

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite

from conftest import make_scenario


def run_once(seed=31):
    config = SystemConfig(db_size=20, num_sites=3, max_txn_size=5, seed=seed)
    scenario = make_scenario(config, 40)
    scenario.add_action(5, FailSite(1))
    scenario.add_action(25, RecoverSite(1))
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    return cluster, metrics


def fingerprint(cluster, metrics):
    return (
        cluster.now,
        [(t.seq, t.coordinator, t.committed, t.coordinator_elapsed)
         for t in metrics.txns],
        [(s.seq, tuple(sorted(s.locks_per_site.items())))
         for s in metrics.faillock_samples],
        [site.db.dump() for site in cluster.sites],
        cluster.network.messages_sent,
    )


def test_same_seed_identical_runs():
    a = fingerprint(*run_once())
    b = fingerprint(*run_once())
    assert a == b


def test_different_seed_differs():
    a = fingerprint(*run_once(seed=31))
    b = fingerprint(*run_once(seed=32))
    assert a != b


def test_message_trace_identical():
    c1, _ = run_once()
    c2, _ = run_once()
    t1 = [(e.mtype, e.src, e.dst, e.send_time, e.deliver_time, e.delivered)
          for e in c1.network.trace.entries]
    t2 = [(e.mtype, e.src, e.dst, e.send_time, e.deliver_time, e.delivered)
          for e in c2.network.trace.entries]
    assert t1 == t2


def test_experiment_runners_are_deterministic():
    from repro.experiments import run_scenario2

    a = run_scenario2(seed=7, settle=False)
    b = run_scenario2(seed=7, settle=False)
    assert a.series == b.series
    assert a.aborts == b.aborts
