"""Control transaction type 3: backup copies under partial replication."""

import pytest

from repro.errors import ProtocolError
from repro.net.message import MessageType
from repro.storage.catalog import ReplicationCatalog
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import Scenario
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator


def partial_cluster():
    """3 sites; item 0 everywhere, item 1 only on sites 0 and 1, item 2
    only on site 0."""
    config = SystemConfig(db_size=3, num_sites=3, max_txn_size=2, seed=9)
    catalog = ReplicationCatalog(range(3), range(3))
    for site in range(3):
        catalog.add_copy(0, site)
    catalog.add_copy(1, 0)
    catalog.add_copy(1, 1)
    catalog.add_copy(2, 0)
    return Cluster(config, catalog=catalog)


def test_partial_catalog_shapes_databases():
    cluster = partial_cluster()
    assert cluster.site(0).db.item_ids == [0, 1, 2]
    assert cluster.site(1).db.item_ids == [0, 1]
    assert cluster.site(2).db.item_ids == [0]


def test_type3_creates_backup_copy():
    cluster = partial_cluster()
    site0 = cluster.site(0)
    site0.db.apply_write(5, 2, 555, 5, time=0.0)
    cluster.network.spawn(site0, lambda ctx: site0.initiate_backup(ctx, 2, 2))
    cluster.scheduler.run()
    assert cluster.catalog.holds(2, 2)
    assert cluster.site(2).db.read(2) == 555
    assert cluster.site(2).db.version(2) == 5
    assert cluster.network.trace.count(mtype=MessageType.CREATE_COPY) == 1
    assert cluster.metrics.counters["control_type3"] == 1


def test_type3_duration_recorded():
    cluster = partial_cluster()
    site0 = cluster.site(0)
    cluster.network.spawn(site0, lambda ctx: site0.initiate_backup(ctx, 2, 1))
    cluster.scheduler.run()
    records = [c for c in cluster.metrics.controls if c.kind == 3]
    assert len(records) == 1
    assert records[0].elapsed > 0


def test_type3_rejects_existing_holder():
    cluster = partial_cluster()
    site0 = cluster.site(0)
    errors = []

    def go(ctx):
        try:
            site0.initiate_backup(ctx, 1, 1)  # site 1 already holds item 1
        except ProtocolError as exc:
            errors.append(exc)

    cluster.network.spawn(site0, go)
    cluster.scheduler.run()
    assert errors


def test_drop_backup_copy():
    cluster = partial_cluster()
    site0 = cluster.site(0)
    cluster.network.spawn(site0, lambda ctx: site0.initiate_backup(ctx, 2, 2))
    cluster.scheduler.run()
    cluster.site(2).drop_backup_copy(2)
    assert not cluster.catalog.holds(2, 2)
    assert 2 not in cluster.site(2).db


def test_partial_replication_transactions_route_writes_to_holders():
    cluster = partial_cluster()

    class WriteItem1(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.WRITE, 1)]

    metrics = cluster.run(Scenario(workload=WriteItem1(), txn_count=3))
    assert metrics.counters["commits"] == 3
    # Site 2 holds no copy of item 1, so it never participates.
    assert len(cluster.site(2).db.log) == 0
    assert cluster.site(0).db.version(1) == 3
    assert cluster.site(1).db.version(1) == 3
