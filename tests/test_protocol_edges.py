"""Protocol robustness edges: stale/duplicate/unexpected messages."""

import pytest

from repro.errors import ProtocolError
from repro.net.endpoint import HandlerContext
from repro.net.message import Message, MessageType
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig


@pytest.fixture
def cluster():
    return Cluster(SystemConfig(db_size=4, num_sites=3, max_txn_size=2, seed=1))


def deliver(cluster, site, mtype, payload=None, txn_id=1, src=0):
    """Hand-deliver a message to a site's handler within an activation."""
    msg = Message(src=src, dst=site.site_id, mtype=mtype,
                  payload=payload or {}, txn_id=txn_id)
    cluster.network.spawn(site, lambda ctx: site.handle(ctx, msg))
    cluster.scheduler.run()


def test_unexpected_message_type_raises(cluster):
    site = cluster.site(0)
    msg = Message(src=1, dst=0, mtype=MessageType.MGR_TXN_DONE, txn_id=1)
    errors = []

    def go(ctx: HandlerContext) -> None:
        try:
            site.handle(ctx, msg)
        except ProtocolError as exc:
            errors.append(exc)

    cluster.network.spawn(site, go)
    cluster.scheduler.run()
    assert errors


def test_stale_vote_ack_ignored(cluster):
    """A VOTE_ACK for a transaction the coordinator no longer tracks is
    dropped without side effects."""
    site = cluster.site(0)
    deliver(cluster, site, MessageType.VOTE_ACK, txn_id=999, src=1)
    assert site.coordinator.active == {}


def test_stale_commit_ack_ignored(cluster):
    site = cluster.site(0)
    deliver(cluster, site, MessageType.COMMIT_ACK, txn_id=999, src=1)
    assert site.coordinator.active == {}


def test_stale_copy_resp_ignored(cluster):
    site = cluster.site(0)
    deliver(
        cluster, site, MessageType.COPY_RESP,
        payload={"copies": [(0, 5, 3)]}, txn_id=999, src=1,
    )
    # Nothing installed: the value stays initial.
    assert site.db.read(0) == 0


def test_commit_for_unstaged_txn_still_acked(cluster):
    """A COMMIT without prior staging (should not happen serially) is
    acknowledged so the coordinator does not hang."""
    site = cluster.site(1)
    deliver(cluster, site, MessageType.COMMIT, txn_id=55, src=0)
    acks = [
        e for e in cluster.network.trace.entries
        if e.mtype is MessageType.COMMIT_ACK and e.txn_id == 55
    ]
    assert len(acks) == 1


def test_abort_without_staging_is_noop(cluster):
    site = cluster.site(1)
    deliver(cluster, site, MessageType.ABORT, txn_id=55, src=0)
    assert site.participant.staged_txns == []


def test_clear_notice_for_unlocked_items_is_noop(cluster):
    site = cluster.site(1)
    deliver(
        cluster, site, MessageType.CLEAR_FAILLOCKS,
        payload={"site": 0, "items": [0, 1]}, src=0,
    )
    assert site.faillocks.total_locks() == 0


def test_duplicate_recovery_announce_is_idempotent(cluster):
    site = cluster.site(1)
    payload = {"site": 2, "session": 2, "respond": 0}
    deliver(cluster, site, MessageType.RECOVERY_ANNOUNCE, payload=payload, src=2)
    deliver(cluster, site, MessageType.RECOVERY_ANNOUNCE, payload=payload, src=2)
    assert site.nsv.session_of(2) == 2
    assert site.nsv.is_operational(2)


def test_copy_request_for_unheld_item_denied():
    from repro.storage.catalog import ReplicationCatalog

    config = SystemConfig(db_size=2, num_sites=2, max_txn_size=2, seed=1)
    catalog = ReplicationCatalog(range(2), range(2))
    catalog.add_copy(0, 0)
    catalog.add_copy(0, 1)
    catalog.add_copy(1, 0)  # item 1 only on site 0
    cluster = Cluster(config, catalog=catalog)
    site1 = cluster.site(1)
    deliver(
        cluster, site1, MessageType.COPY_REQ, payload={"items": [1]}, src=0
    )
    denied = [
        e for e in cluster.network.trace.entries
        if e.mtype is MessageType.COPY_DENIED
    ]
    assert len(denied) == 1
