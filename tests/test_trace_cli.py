"""The ``repro trace`` subcommand group, end to end."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded smoke run, shared by the read-only commands."""
    out = tmp_path_factory.mktemp("cli") / "run"
    assert main(["trace", "record", "--exp", "smoke", "--out", str(out)]) == 0
    return out


def test_parser_wires_trace_subcommands() -> None:
    parser = build_parser()
    for argv in (
        ["trace", "record", "--exp", "1", "--out", "x"],
        ["trace", "show", "5", "--dir", "x", "--tree"],
        ["trace", "list", "--dir", "x"],
        ["trace", "cat", "--dir", "x", "--kind", "msg.drop", "--limit", "3"],
        ["trace", "diff", "a", "b"],
        ["trace", "validate", "--dir", "x"],
    ):
        args = parser.parse_args(argv)
        assert callable(args.fn)


def test_record_writes_all_artifacts(recorded, capsys) -> None:
    for name in ("run.json", "events.jsonl", "trace.json"):
        assert (recorded / name).is_file()


def test_record_rejects_unknown_preset(capsys) -> None:
    with pytest.raises(SystemExit):
        main(["trace", "record", "--exp", "99", "--out", "nowhere"])


def test_validate_accepts_recorded_run(recorded, capsys) -> None:
    assert main(["trace", "validate", "--dir", str(recorded)]) == 0
    assert "schema-valid" in capsys.readouterr().out


def test_validate_fails_on_schema_violation(recorded, tmp_path, capsys) -> None:
    broken = tmp_path / "broken"
    broken.mkdir()
    for name in ("run.json", "events.jsonl", "trace.json"):
        (broken / name).write_bytes((recorded / name).read_bytes())
    lines = (broken / "events.jsonl").read_text().splitlines()
    bad = json.loads(lines[0])
    bad["kind"] = "not.a.kind"
    lines[0] = json.dumps(bad, sort_keys=True, separators=(",", ":"))
    (broken / "events.jsonl").write_text("\n".join(lines) + "\n")
    assert main(["trace", "validate", "--dir", str(broken)]) == 1
    assert "SCHEMA:" in capsys.readouterr().out


def test_list_prints_every_transaction(recorded, capsys) -> None:
    assert main(["trace", "list", "--dir", str(recorded)]) == 0
    out = capsys.readouterr().out
    manifest = json.loads((recorded / "run.json").read_text())
    assert f"seed={manifest['seed']}" in out
    for row in manifest["transactions"]:
        assert f"\n{row['txn']:>5} " in out


def test_show_prints_phase_attributed_timeline(recorded, capsys) -> None:
    manifest = json.loads((recorded / "run.json").read_text())
    txn = manifest["transactions"][0]["txn"]
    assert main(["trace", "show", str(txn), "--dir", str(recorded)]) == 0
    out = capsys.readouterr().out
    assert f"txn {txn}" in out
    assert "elapsed" in out and "segments:" in out


def test_show_tree_prints_causal_events(recorded, capsys) -> None:
    manifest = json.loads((recorded / "run.json").read_text())
    txn = manifest["transactions"][0]["txn"]
    assert main(
        ["trace", "show", str(txn), "--dir", str(recorded), "--tree"]
    ) == 0
    out = capsys.readouterr().out
    assert "events:" in out
    assert "txn.begin" in out


def test_show_unknown_txn_lists_known_ones(recorded, capsys) -> None:
    assert main(["trace", "show", "424242", "--dir", str(recorded)]) == 0
    out = capsys.readouterr().out
    assert "no complete timeline" in out


def test_cat_filters_by_kind_and_respects_limit(recorded, capsys) -> None:
    assert main(
        [
            "trace", "cat", "--dir", str(recorded),
            "--kind", "txn.begin", "--limit", "3",
        ]
    ) == 0
    out = capsys.readouterr().out.strip().splitlines()
    body = [line for line in out if not line.startswith("...")]
    assert 0 < len(body) <= 3
    assert all("txn.begin" in line for line in body)


def test_diff_identical_and_divergent_runs(recorded, tmp_path, capsys) -> None:
    twin = tmp_path / "twin"
    assert main(["trace", "record", "--exp", "smoke", "--out", str(twin)]) == 0
    assert main(["trace", "diff", str(recorded), str(twin)]) == 0
    assert "identical" in capsys.readouterr().out

    other = tmp_path / "other"
    assert main(
        ["--seed", "43", "trace", "record", "--exp", "smoke", "--out", str(other)]
    ) == 0
    assert main(["trace", "diff", str(recorded), str(other)]) == 1
    out = capsys.readouterr().out
    assert "divergence" in out or "counts differ" in out


def test_chaos_record_via_cli(tmp_path, capsys) -> None:
    out = tmp_path / "chaos"
    assert main(
        [
            "trace", "record", "--chaos-seed", "3", "--txns", "15",
            "--lossy-core", "--out", str(out),
        ]
    ) == 0
    assert "chaos-lossy" in capsys.readouterr().out
    assert main(["trace", "validate", "--dir", str(out)]) == 0
