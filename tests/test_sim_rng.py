"""DeterministicRng: reproducibility and stream independence."""

import pytest

from repro.errors import SimulationError
from repro.sim.rng import DeterministicRng


def test_same_seed_same_sequence():
    a = DeterministicRng(7).stream("workload")
    b = DeterministicRng(7).stream("workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRng(7).stream("workload")
    b = DeterministicRng(8).stream("workload")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_streams_are_independent():
    rng = DeterministicRng(7)
    first = [rng.stream("a").random() for _ in range(5)]
    # Drawing from stream "b" must not perturb stream "a".
    rng2 = DeterministicRng(7)
    rng2.stream("b").random()
    second = [rng2.stream("a").random() for _ in range(5)]
    assert first == second


def test_stream_is_cached():
    rng = DeterministicRng(7)
    assert rng.stream("x") is rng.stream("x")


def test_distinct_names_distinct_sequences():
    rng = DeterministicRng(7)
    a = [rng.stream("a").random() for _ in range(5)]
    b = [rng.stream("b").random() for _ in range(5)]
    assert a != b


def test_spawn_derives_child():
    child1 = DeterministicRng(7).spawn("site0")
    child2 = DeterministicRng(7).spawn("site0")
    assert child1.seed == child2.seed
    assert child1.stream("s").random() == child2.stream("s").random()


def test_rejects_non_int_seed():
    with pytest.raises(SimulationError):
        DeterministicRng("nope")  # type: ignore[arg-type]
