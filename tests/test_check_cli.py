"""The `repro check` CLI: explore / replay / shrink / stats / selftest."""

import json

from repro.cli import build_parser, main


def test_parser_accepts_check_subcommands():
    parser = build_parser()
    for sub in ("explore", "replay", "shrink", "stats", "selftest"):
        extra = (
            ["--file", "x.json"] if sub in ("replay", "shrink", "stats") else []
        )
        args = parser.parse_args(["check", sub, *extra])
        assert args.command == "check"
        assert callable(args.fn)


def test_explore_clean_config_exits_zero(capsys):
    assert main(["check", "explore", "--txns", "2", "--max-runs", "30"]) == 0
    out = capsys.readouterr().out
    assert "no violation found" in out
    assert "runs:" in out


def test_explore_mutated_finds_and_writes_schedule(tmp_path, capsys):
    schedule = tmp_path / "found.json"
    code = main(
        [
            "check",
            "explore",
            "--mutate",
            "--max-runs",
            "60",
            "--out",
            str(schedule),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0  # mutate mode: success IS finding the planted bug
    assert "counterexample" in out
    assert "faillock-coverage" in out
    assert schedule.exists()

    # stats renders the saved file.
    assert main(["check", "stats", "--file", str(schedule)]) == 0
    stats_out = capsys.readouterr().out
    assert "repro.check/1" in stats_out
    assert "faillock-coverage" in stats_out

    # shrink minimizes in place (to --out here) and replay confirms.
    small = tmp_path / "small.json"
    assert (
        main(
            ["check", "shrink", "--file", str(schedule), "--out", str(small)]
        )
        == 0
    )
    shrink_out = capsys.readouterr().out
    assert "shrunk" in shrink_out
    assert main(["check", "replay", "--file", str(small)]) == 0
    replay_out = capsys.readouterr().out
    assert "replay matches the recorded run" in replay_out


def test_replay_flags_divergence(tmp_path, capsys):
    schedule = tmp_path / "tampered.json"
    assert (
        main(
            [
                "check",
                "explore",
                "--mutate",
                "--max-runs",
                "60",
                "--out",
                str(schedule),
            ]
        )
        == 0
    )
    capsys.readouterr()
    doc = json.loads(schedule.read_text())
    doc["observed"]["events_fired"] += 1  # recorded run can't match now
    schedule.write_text(json.dumps(doc))
    assert main(["check", "replay", "--file", str(schedule)]) == 1
    captured = capsys.readouterr()
    assert "DIVERGED" in captured.err
    assert "events_fired" in captured.err


def test_replay_rejects_garbage_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    assert main(["check", "replay", "--file", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_explore_rejects_unknown_choice_kind(capsys):
    try:
        main(["check", "explore", "--explore", "order,quantum"])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover - the parse must fail
        raise AssertionError("unknown choice kind accepted")
    assert "unknown choice kinds" in capsys.readouterr().err


def test_selftest_end_to_end(tmp_path, capsys):
    # The acceptance gate: re-introduce the PR-1 mutation, explore, find,
    # shrink, export via repro.obs, replay the export, all within a small
    # budget.  CI runs this same command as its check smoke job.
    out_dir = tmp_path / "selftest"
    assert main(["check", "selftest", "--out", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "selftest passed" in out
    assert (out_dir / "schedule.json").exists()
    assert (out_dir / "run.json").exists()
    manifest = json.loads((out_dir / "run.json").read_text())
    assert manifest["violations"]
