"""Online quantile estimators (repro.metrics.sketch).

The QuantileSketch error contract, as documented on the class: for any
percentile p, the estimate lies in ``[lo * (1 - rel_err), hi * (1 + rel_err)]``
where lo/hi are the order statistics at the floor/ceiling of the rank
``p/100 * (n - 1)``.  These tests check that contract property-style
across distribution shapes, plus the exact-merge property the streaming
layer relies on.
"""

import math
import random

import pytest

from repro.metrics.sketch import P2Quantile, QuantileSketch
from repro.metrics.stats import percentile

PERCENTILES = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0]


def order_stat_bounds(values, p):
    """(lo, hi): the order statistics bracketing rank p/100 * (n-1)."""
    ordered = sorted(values)
    rank = p / 100.0 * (len(ordered) - 1)
    return ordered[math.floor(rank)], ordered[math.ceil(rank)]


def assert_within_contract(sketch, values, rel_err):
    for p in PERCENTILES:
        lo, hi = order_stat_bounds(values, p)
        estimate = sketch.quantile(p)
        assert lo * (1.0 - rel_err) <= estimate <= hi * (1.0 + rel_err), (
            f"p{p}: estimate {estimate} outside "
            f"[{lo * (1 - rel_err)}, {hi * (1 + rel_err)}]"
        )


def build(values, rel_err=0.01):
    sketch = QuantileSketch(rel_err=rel_err)
    for v in values:
        sketch.add(v)
    return sketch


@pytest.fixture
def rng() -> random.Random:
    return random.Random(4242)


def test_uniform_within_bounds(rng):
    values = [rng.uniform(1.0, 1000.0) for _ in range(5000)]
    assert_within_contract(build(values), values, 0.01)


def test_heavy_tail_within_bounds(rng):
    # Zipf-like: many small latencies, a long tail of large ones.
    values = [1.0 + rng.paretovariate(1.2) for _ in range(5000)]
    assert_within_contract(build(values), values, 0.01)


def test_bimodal_within_bounds(rng):
    # Two latency modes (fast local commits vs timeout-delayed ones).
    # The sketch never interpolates across the empty gap: every estimate
    # still lands within the order-statistic bounds, which at the mode
    # boundary span the gap.
    values = [
        rng.uniform(5.0, 10.0) if rng.random() < 0.7
        else rng.uniform(400.0, 500.0)
        for _ in range(4000)
    ]
    assert_within_contract(build(values), values, 0.01)


def test_constant_within_bounds():
    values = [123.456] * 1000
    sketch = build(values)
    assert_within_contract(sketch, values, 0.01)
    assert sketch.minimum == sketch.maximum == 123.456


def test_coarser_rel_err_still_honors_its_own_bound(rng):
    values = [rng.expovariate(0.01) + 0.5 for _ in range(3000)]
    assert_within_contract(build(values, rel_err=0.05), values, 0.05)


def test_tracks_count_total_min_max(rng):
    values = [rng.uniform(0.5, 50.0) for _ in range(500)]
    sketch = build(values)
    assert sketch.count == len(values)
    assert sketch.total == pytest.approx(sum(values))
    assert sketch.minimum == min(values)
    assert sketch.maximum == max(values)


def test_zero_values_occupy_zero_bucket():
    sketch = QuantileSketch()
    for _ in range(10):
        sketch.add(0.0)
    sketch.add(100.0)
    assert sketch.quantile(50.0) == 0.0
    assert sketch.quantile(100.0) == pytest.approx(100.0, rel=0.01)


def test_rejects_negative_values_and_bad_args():
    sketch = QuantileSketch()
    with pytest.raises(ValueError):
        sketch.add(-1.0)
    with pytest.raises(ValueError):
        QuantileSketch(rel_err=0.0)
    sketch.add(1.0)
    with pytest.raises(ValueError):
        sketch.quantile(101.0)


def test_empty_sketch_quantile_is_zero():
    assert QuantileSketch().quantile(50.0) == 0.0


# -- merge properties ---------------------------------------------------------


def test_merge_equals_direct_feed(rng):
    """Bucket counts are additive, so merging two sketches gives exactly
    the sketch of the concatenated stream — not just approximately."""
    a_values = [rng.uniform(1.0, 100.0) for _ in range(800)]
    b_values = [rng.uniform(50.0, 5000.0) for _ in range(800)]
    merged = build(a_values).merge(build(b_values))
    direct = build(a_values + b_values)
    for p in PERCENTILES:
        assert merged.quantile(p) == direct.quantile(p)
    assert merged.count == direct.count


def test_merge_is_associative(rng):
    """(a + b) + c and a + (b + c) agree on every quantile query."""
    chunks = [
        [rng.uniform(1.0, 10.0) for _ in range(300)],
        [rng.paretovariate(1.5) for _ in range(300)],
        [rng.uniform(100.0, 200.0) for _ in range(300)],
    ]
    a, b, c = (build(chunk) for chunk in chunks)
    left = a.copy().merge(b.copy()).merge(c.copy())
    right = a.copy().merge(b.copy().merge(c.copy()))
    for p in PERCENTILES:
        assert left.quantile(p) == right.quantile(p)
    assert left.count == right.count
    assert left.minimum == right.minimum
    assert left.maximum == right.maximum


def test_merge_rejects_mismatched_rel_err():
    with pytest.raises(ValueError):
        QuantileSketch(rel_err=0.01).merge(QuantileSketch(rel_err=0.02))


def test_copy_is_independent():
    sketch = build([1.0, 2.0, 3.0])
    clone = sketch.copy()
    clone.add(1000.0)
    assert sketch.count == 3
    assert clone.count == 4


# -- P2 (per-window p95) ------------------------------------------------------


def test_p2_exact_under_five_samples():
    est = P2Quantile(0.5)
    for v in (5.0, 1.0, 3.0):
        est.add(v)
    assert est.value() == 3.0


def test_p2_tracks_uniform_p95(rng):
    est = P2Quantile(0.95)
    values = [rng.uniform(0.0, 100.0) for _ in range(2000)]
    for v in values:
        est.add(v)
    # P2 is a five-marker heuristic: generous tolerance, not the sketch
    # contract.
    assert est.value() == pytest.approx(percentile(values, 95.0), rel=0.15)


def test_p2_rejects_bad_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)
