"""Streaming measurement path of the open-loop driver.

``run_open_loop(keep_records=False)`` must change only the measurement
pipeline — the simulation under it is identical — so every discrete
outcome matches the record-keeping run exactly and only the sketch-backed
latency percentiles carry an (documented, bounded) approximation.
"""

import math

import pytest

from repro.metrics.stats import percentile
from repro.system.config import SystemConfig
from repro.system.openloop import run_open_loop

TXNS = 150


@pytest.fixture(scope="module")
def paired_runs():
    config = lambda: SystemConfig(concurrency_control=True)
    exact = run_open_loop(config(), txn_count=TXNS, keep_records=True)
    streaming = run_open_loop(config(), txn_count=TXNS, keep_records=False)
    return exact, streaming


def test_streaming_run_matches_exact_outcomes(paired_runs):
    exact, streaming = paired_runs
    assert streaming.txn_count == exact.txn_count
    assert streaming.commits == exact.commits
    assert streaming.aborts == exact.aborts
    assert streaming.deadlock_aborts == exact.deadlock_aborts
    assert streaming.deadlocks_detected == exact.deadlocks_detected
    assert streaming.elapsed_ms == exact.elapsed_ms
    assert streaming.events_fired == exact.events_fired
    assert streaming.lock_parks == exact.lock_parks


def test_streaming_run_retains_no_records(paired_runs):
    exact, streaming = paired_runs
    assert len(exact.records) == TXNS
    assert streaming.records == []


def test_streaming_latency_moments_are_exact(paired_runs):
    exact, streaming = paired_runs
    assert streaming.latency.count == exact.latency.count
    assert streaming.latency.mean == pytest.approx(exact.latency.mean)
    assert streaming.latency.stddev == pytest.approx(exact.latency.stddev)
    assert streaming.latency.minimum == exact.latency.minimum
    assert streaming.latency.maximum == exact.latency.maximum


def test_streaming_percentiles_within_sketch_bounds(paired_runs):
    """Median/p95 come from the sketch: bounded by the order statistics
    around the rank, widened by the sketch's 1% relative error."""
    exact, streaming = paired_runs
    latencies = sorted(t.elapsed for t in exact.records if t.committed)
    for p, estimate in ((50.0, streaming.latency.median),
                        (95.0, streaming.latency.p95)):
        rank = p / 100.0 * (len(latencies) - 1)
        lo = latencies[math.floor(rank)]
        hi = latencies[math.ceil(rank)]
        assert lo * 0.99 <= estimate <= hi * 1.01
        # And close to the exact interpolated percentile in absolute terms.
        assert estimate == pytest.approx(percentile(latencies, p), rel=0.05)


def test_streaming_run_is_deterministic():
    config = lambda: SystemConfig(concurrency_control=True)
    a = run_open_loop(config(), txn_count=60, keep_records=False)
    b = run_open_loop(config(), txn_count=60, keep_records=False)
    assert (a.commits, a.aborts, a.elapsed_ms) == (b.commits, b.aborts, b.elapsed_ms)
    assert a.latency == b.latency
