"""SiteLockService and GlobalDeadlockDetector unit behaviour."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.deadlock import GlobalDeadlockDetector
from repro.txn.locks import LockMode


def make_site():
    config = SystemConfig(
        db_size=6, num_sites=2, max_txn_size=3, seed=1, concurrency_control=True
    )
    cluster = Cluster(config)
    return cluster, cluster.site(0)


def test_fast_path_runs_synchronously():
    cluster, site = make_site()
    ran = []
    cluster.network.spawn(
        site,
        lambda ctx: site.lock_service.acquire(
            ctx, 1, [(0, LockMode.EXCLUSIVE)], lambda c: ran.append("now")
        ),
    )
    cluster.scheduler.run()
    assert ran == ["now"]
    assert site.lock_service.parks == 0
    assert site.lock_service.manager.held_by(1) == [0]


def test_conflict_parks_then_resumes_on_release():
    cluster, site = make_site()
    order = []

    def txn1(ctx):
        site.lock_service.acquire(
            ctx, 1, [(0, LockMode.EXCLUSIVE)], lambda c: order.append("t1")
        )

    def txn2(ctx):
        site.lock_service.acquire(
            ctx, 2, [(0, LockMode.EXCLUSIVE)], lambda c: order.append("t2")
        )

    def release1(ctx):
        site.lock_service.release(ctx, 1)

    cluster.network.spawn(site, txn1)
    cluster.network.spawn(site, txn2, delay=1.0)
    cluster.network.spawn(site, release1, delay=10.0)
    cluster.scheduler.run()
    assert order == ["t1", "t2"]
    assert site.lock_service.parks == 1
    assert site.lock_service.manager.held_by(2) == [0]


def test_multi_item_acquisition_in_order():
    cluster, site = make_site()
    granted = []
    cluster.network.spawn(
        site,
        lambda ctx: site.lock_service.acquire(
            ctx,
            1,
            [(3, LockMode.SHARED), (1, LockMode.EXCLUSIVE)],
            lambda c: granted.append(site.lock_service.manager.held_by(1)),
        ),
    )
    cluster.scheduler.run()
    assert granted == [[1, 3]]


def test_cancel_drops_parked_request():
    cluster, site = make_site()
    ran = []

    def txn1(ctx):
        site.lock_service.acquire(ctx, 1, [(0, LockMode.EXCLUSIVE)], lambda c: None)

    def txn2(ctx):
        site.lock_service.acquire(
            ctx, 2, [(0, LockMode.EXCLUSIVE)], lambda c: ran.append("t2")
        )

    cluster.network.spawn(site, txn1)
    cluster.network.spawn(site, txn2, delay=1.0)
    cluster.network.spawn(site, lambda ctx: site.lock_service.cancel(ctx, 2), delay=5.0)
    cluster.network.spawn(site, lambda ctx: site.lock_service.release(ctx, 1), delay=10.0)
    cluster.scheduler.run()
    assert ran == []  # the cancelled continuation never fires
    assert site.lock_service.manager.holders_of(0) == {}


# -- detector ---------------------------------------------------------------------


class _FakeCtx:
    """block()/abort hooks only need a context-shaped object."""

    def charge(self, ms):
        pass


def test_detector_per_site_waits():
    det = GlobalDeadlockDetector()
    ctx = _FakeCtx()
    det.block(ctx, 0, 1, (2,))
    det.block(ctx, 1, 1, (3,))
    assert det.edges() == [(1, 2), (1, 3)]
    # Unblocking at site 0 keeps the wait at site 1 (the earlier bug).
    det.unblock(0, 1)
    assert det.edges() == [(1, 3)]
    det.unblock(1, 1)
    assert det.edges() == []


def test_detector_finds_cross_site_cycle():
    det = GlobalDeadlockDetector()
    ctx = _FakeCtx()
    aborted = []
    det.register(1, lambda c: aborted.append(1))
    det.register(2, lambda c: aborted.append(2))
    det.block(ctx, 0, 1, (2,))
    assert det.deadlocks_found == 0
    det.block(ctx, 1, 2, (1,))
    assert det.deadlocks_found == 1
    assert aborted == [2]  # youngest in the cycle
    # The victim's state is gone.
    assert (2, 1) not in det.edges()


def test_detector_forget_clears_everything():
    det = GlobalDeadlockDetector()
    ctx = _FakeCtx()
    det.register(5, lambda c: None)
    det.block(ctx, 0, 5, (6,))
    det.forget(5)
    assert det.edges() == []


def test_detector_ignores_self_waits():
    det = GlobalDeadlockDetector()
    det.block(_FakeCtx(), 0, 1, (1,))
    assert det.edges() == []


def test_detector_victim_without_hook_is_tolerated():
    det = GlobalDeadlockDetector()
    ctx = _FakeCtx()
    det.block(ctx, 0, 1, (2,))
    det.block(ctx, 0, 2, (1,))  # cycle; victim 2 has no hook
    assert det.deadlocks_found == 1
    assert det.victims == [2]
