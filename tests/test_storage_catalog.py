"""ReplicationCatalog: full and partial replication bookkeeping."""

import pytest

from repro.errors import StorageError
from repro.storage.catalog import ReplicationCatalog


def test_fully_replicated():
    catalog = ReplicationCatalog.fully_replicated(range(3), range(4))
    assert catalog.is_fully_replicated()
    assert catalog.holders(0) == {0, 1, 2, 3}
    assert catalog.items_on(2) == [0, 1, 2]


def test_empty_catalog_not_full():
    catalog = ReplicationCatalog(range(2), range(2))
    assert not catalog.is_fully_replicated()
    assert catalog.holders(0) == set()


def test_add_and_remove_copy():
    catalog = ReplicationCatalog(range(2), range(3))
    catalog.add_copy(0, 1)
    catalog.add_copy(0, 2)
    assert catalog.holds(1, 0)
    catalog.remove_copy(0, 1)
    assert not catalog.holds(1, 0)
    assert catalog.holds(2, 0)


def test_cannot_remove_last_copy():
    catalog = ReplicationCatalog(range(1), range(2))
    catalog.add_copy(0, 0)
    with pytest.raises(StorageError):
        catalog.remove_copy(0, 0)


def test_remove_nonholder_rejected():
    catalog = ReplicationCatalog.fully_replicated(range(1), range(2))
    catalog2 = ReplicationCatalog(range(1), range(2))
    with pytest.raises(StorageError):
        catalog2.remove_copy(0, 1)


def test_add_unknown_site_rejected():
    catalog = ReplicationCatalog(range(1), range(2))
    with pytest.raises(StorageError):
        catalog.add_copy(0, 99)


def test_unknown_item_rejected():
    catalog = ReplicationCatalog(range(1), range(2))
    with pytest.raises(StorageError):
        catalog.holders(5)
    with pytest.raises(StorageError):
        catalog.holds(0, 5)


def test_holders_returns_copy():
    catalog = ReplicationCatalog.fully_replicated(range(1), range(2))
    holders = catalog.holders(0)
    holders.clear()
    assert catalog.holders(0) == {0, 1}
