"""First-class Zipf selection (repro.workload.zipf).

ZipfGenerator replaced the linear CDF scan inside ZipfHotSetWorkload; the
draw-for-draw equivalence test here is what makes that refactor safe for
seeded reproducibility.
"""

import random
from bisect import bisect_left
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.txn.operations import OpKind
from repro.workload.hotset import ZipfHotSetWorkload
from repro.workload.zipf import ZipfGenerator, ZipfWorkload


def linear_scan_pick_index(cdf, point):
    """The original linear CDF scan ZipfGenerator replaced."""
    for index, threshold in enumerate(cdf):
        if point <= threshold:
            return index
    return len(cdf) - 1


@pytest.fixture
def picker_rng() -> random.Random:
    return random.Random(31337)


def test_pick_index_matches_linear_scan(picker_rng):
    zipf = ZipfGenerator(list(range(200)), skew=0.9)
    for _ in range(5000):
        point = picker_rng.random()
        bisected = min(bisect_left(zipf._cdf, point), len(zipf) - 1)
        assert bisected == linear_scan_pick_index(zipf._cdf, point)


def test_pick_index_at_cdf_boundary_points():
    zipf = ZipfGenerator([10, 20, 30, 40], skew=1.0)

    class FixedDraw:
        def __init__(self, value):
            self.value = value

        def random(self):
            return self.value

    # A draw exactly on a CDF threshold selects that rank (<= semantics,
    # matching the scan); a draw of 1.0 clamps to the last rank even if
    # rounding left cdf[-1] fractionally below 1.0.
    for rank, threshold in enumerate(zipf._cdf):
        assert zipf.pick_index(FixedDraw(threshold)) == rank
    assert zipf.pick_index(FixedDraw(1.0)) == len(zipf) - 1
    assert zipf.pick_index(FixedDraw(0.0)) == 0


def test_pick_is_deterministic_per_seed():
    zipf = ZipfGenerator(list(range(50)), skew=0.8)
    rng_a, rng_b = random.Random(7), random.Random(7)
    assert [zipf.pick(rng_a) for _ in range(200)] == [
        zipf.pick(rng_b) for _ in range(200)
    ]
    # One draw per pick: the streams stay in lockstep the whole way.
    assert rng_a.getstate() == rng_b.getstate()


def test_higher_skew_concentrates_on_top_ranks(picker_rng):
    items = list(range(100))
    draws = 20_000
    top_share = {}
    for skew in (0.0, 0.8, 1.5):
        zipf = ZipfGenerator(items, skew)
        rng = random.Random(11)
        counts = Counter(zipf.pick_index(rng) for _ in range(draws))
        top_share[skew] = sum(counts[i] for i in range(10)) / draws
    # skew=0 is uniform: top-10 share ~10%; more skew -> more concentrated.
    assert top_share[0.0] == pytest.approx(0.10, abs=0.02)
    assert top_share[0.0] < top_share[0.8] < top_share[1.5]


def test_zero_skew_is_uniform_over_items(picker_rng):
    zipf = ZipfGenerator([5, 6, 7, 8], skew=0.0)
    counts = Counter(zipf.pick(picker_rng) for _ in range(8000))
    for item in (5, 6, 7, 8):
        assert counts[item] / 8000 == pytest.approx(0.25, abs=0.03)


def test_generator_rejects_bad_args():
    with pytest.raises(WorkloadError):
        ZipfGenerator([], skew=1.0)
    with pytest.raises(WorkloadError):
        ZipfGenerator([1, 2], skew=-0.1)


def test_hotset_workload_draws_through_promoted_generator():
    """ZipfHotSetWorkload delegates to ZipfGenerator: the same seeded
    stream produces the same items whether picked via the workload's
    hot path or via an identically-configured generator."""
    hot = [3, 1, 4, 1, 5][:4]  # arbitrary ranked order
    workload = ZipfHotSetWorkload(hot, max_txn_size=1, skew=1.2,
                                  write_probability=0.0)
    standalone = ZipfGenerator(hot, skew=1.2)
    rng_a, rng_b = random.Random(2024), random.Random(2024)
    for seq in range(300):
        ops = workload.generate(seq, rng_a)
        rng_b.randint(1, 1)  # mirror the workload's size draw
        expected = standalone.pick(rng_b)
        rng_b.random()  # mirror the workload's read/write draw
        assert len(ops) == 1
        assert ops[0].item_id == expected
        assert ops[0].kind is OpKind.READ


# -- ZipfWorkload -------------------------------------------------------------


def test_zipf_workload_ops_within_bounds(picker_rng):
    items = list(range(40, 90))
    workload = ZipfWorkload(items, max_txn_size=6, skew=0.8)
    for seq in range(200):
        ops = workload.generate(seq, picker_rng)
        assert 1 <= len(ops) <= 6
        for op in ops:
            assert op.item_id in set(items)
            assert op.kind in (OpKind.READ, OpKind.WRITE)


def test_zipf_workload_is_deterministic():
    items = list(range(30))
    make = lambda: ZipfWorkload(items, max_txn_size=4, skew=1.0)
    rng_a, rng_b = random.Random(777), random.Random(777)
    ops_a = [make().generate(i, rng_a) for i in range(50)]
    ops_b = [make().generate(i, rng_b) for i in range(50)]
    assert [
        [(o.kind, o.item_id) for o in txn] for txn in ops_a
    ] == [[(o.kind, o.item_id) for o in txn] for txn in ops_b]


def test_zipf_workload_rejects_bad_args():
    with pytest.raises(WorkloadError):
        ZipfWorkload([1], max_txn_size=0)
    with pytest.raises(WorkloadError):
        ZipfWorkload([1], max_txn_size=2, write_probability=1.5)


def test_zipf_workload_describe_names_shape():
    workload = ZipfWorkload(list(range(10)), max_txn_size=3, skew=0.8)
    assert "zipf-all" in workload.describe()
    assert "skew=0.8" in workload.describe()
