"""The "complete RAID" concurrent mode: 2PL, deadlock detection, open loop."""

import pytest

from repro.errors import ConfigurationError
from repro.system.config import SystemConfig
from repro.system.openloop import run_open_loop
from repro.txn.operations import OpKind, Operation
from repro.txn.transaction import AbortReason
from repro.workload.base import WorkloadGenerator
from repro.workload.uniform import UniformWorkload


def concurrent_config(**kw):
    defaults = dict(
        db_size=20,
        num_sites=3,
        max_txn_size=4,
        seed=42,
        concurrency_control=True,
    )
    defaults.update(kw)
    return SystemConfig(**defaults)


def test_requires_concurrency_flag():
    with pytest.raises(ConfigurationError):
        run_open_loop(SystemConfig(), txn_count=5, arrival_rate_tps=1.0)


def test_all_txns_complete():
    result = run_open_loop(concurrent_config(), txn_count=100, arrival_rate_tps=5.0)
    assert result.commits + result.aborts == 100


def test_consistency_survives_concurrency():
    """run_open_loop audits internally; a clean return is the assertion —
    replicas agree item-by-item after hundreds of interleaved commits."""
    result = run_open_loop(
        concurrent_config(seed=7), txn_count=200, arrival_rate_tps=10.0
    )
    assert result.commits > 0


def test_only_deadlocks_abort():
    result = run_open_loop(concurrent_config(), txn_count=150, arrival_rate_tps=10.0)
    assert result.aborts == result.deadlock_aborts
    for record in result.records:
        if not record.committed:
            assert record.abort_reason is AbortReason.LOCK_DEADLOCK


def test_low_rate_behaves_serially():
    """At a trickle arrival rate there is no contention: no parks, no
    deadlocks, every transaction commits."""
    result = run_open_loop(
        concurrent_config(db_size=50), txn_count=50, arrival_rate_tps=0.5
    )
    assert result.commits == 50
    assert result.deadlock_aborts == 0
    assert result.lock_parks == 0


def test_contention_produces_waits_and_deadlocks():
    """A tiny hot set under high arrival rate must generate lock waits and
    at least one deadlock-victim abort."""
    result = run_open_loop(
        concurrent_config(db_size=4, seed=3), txn_count=150, arrival_rate_tps=40.0
    )
    assert result.lock_parks > 0
    assert result.deadlock_aborts > 0
    assert result.commits > 0


def test_throughput_tracks_arrival_below_saturation():
    config = concurrent_config(db_size=50, num_sites=4, cores=5, wire_latency_ms=9.0)
    slow = run_open_loop(config, txn_count=200, arrival_rate_tps=2.0)
    config2 = concurrent_config(db_size=50, num_sites=4, cores=5, wire_latency_ms=9.0)
    fast = run_open_loop(config2, txn_count=200, arrival_rate_tps=6.0)
    assert fast.throughput_tps > 2 * slow.throughput_tps
    # Latency should not explode below saturation.
    assert fast.latency.mean < 3 * slow.latency.mean


def test_deterministic():
    a = run_open_loop(concurrent_config(), txn_count=120, arrival_rate_tps=15.0)
    b = run_open_loop(concurrent_config(), txn_count=120, arrival_rate_tps=15.0)
    assert a.commits == b.commits
    assert a.deadlock_aborts == b.deadlock_aborts
    assert a.elapsed_ms == b.elapsed_ms
    assert a.latency.mean == b.latency.mean


def test_write_hotspot_serializes():
    """Every transaction writes the same item through the SAME coordinator:
    strict 2PL queues them at that site's lock table, so all commit with
    zero deadlocks, versions are monotone, and replicas agree.

    (From *different* coordinators, same-item hot writes are the classic
    distributed write-write deadlock — covered by the contention test.)
    """

    class HotWrite(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.WRITE, 0)]

    from repro.system.cluster import Cluster
    from repro.system.deadlock import GlobalDeadlockDetector
    from repro.system.openloop import OpenLoopManager

    config = concurrent_config(seed=5)
    cluster = Cluster(config)
    detector = GlobalDeadlockDetector()
    for site in cluster.sites:
        site.lock_service.detector = detector
    manager = OpenLoopManager(cluster)
    cluster.network.replace_endpoint(manager)
    manager.launch(
        HotWrite(), 40, arrival_rate_tps=50.0, site_chooser=lambda seq, rng: 0
    )
    cluster.scheduler.run()
    assert manager.finished
    assert cluster.metrics.counters["commits"] == 40
    assert detector.deadlocks_found == 0
    for site in cluster.sites:
        assert len(site.db.log.for_item(0)) == 40
        versions = [r.new_version for r in site.db.log.for_item(0)]
        assert versions == sorted(versions)
    # All replicas identical.
    dumps = [site.db.dump() for site in cluster.sites]
    assert dumps[0] == dumps[1] == dumps[2]


def test_read_write_cycle_deadlock_resolved():
    """Construct a guaranteed cross-site deadlock: two transactions that
    write each other's read sets in opposite orders, arriving at different
    coordinators simultaneously."""

    class Crossed(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            if txn_seq % 2 == 1:
                return [Operation(OpKind.WRITE, 0), Operation(OpKind.WRITE, 1)]
            return [Operation(OpKind.WRITE, 1), Operation(OpKind.WRITE, 0)]

    result = run_open_loop(
        concurrent_config(db_size=2, seed=11),
        workload=Crossed(),
        txn_count=60,
        arrival_rate_tps=60.0,
    )
    assert result.commits + result.aborts == 60
    assert result.commits > 0
    # Whatever deadlocked was resolved (no stall), and nothing else aborted.
    assert result.aborts == result.deadlock_aborts


def test_deadlock_retries_recover_lost_commits():
    """With retries enabled, deadlock victims are resubmitted and most
    eventually commit; without retries they are simply lost."""
    base = dict(db_size=4, seed=3)
    no_retry = run_open_loop(
        concurrent_config(**base), txn_count=150, arrival_rate_tps=40.0
    )
    with_retry = run_open_loop(
        concurrent_config(**base),
        txn_count=150,
        arrival_rate_tps=40.0,
        deadlock_retries=3,
    )
    assert no_retry.deadlock_aborts > 0
    assert with_retry.retries > 0
    assert with_retry.commits > no_retry.commits
    # Every logical transaction reached a terminal state.
    assert with_retry.commits + with_retry.aborts - with_retry.retries == 150


def test_retries_preserve_consistency():
    result = run_open_loop(
        concurrent_config(db_size=4, seed=9),
        txn_count=120,
        arrival_rate_tps=40.0,
        deadlock_retries=5,
    )
    # run_open_loop audits internally; additionally the retry accounting
    # must balance.
    assert result.commits + result.aborts == 120 + result.retries
