"""Statistics, counters, collector, and availability analysis."""

import pytest

from repro.metrics.availability import availability_of
from repro.metrics.collector import MetricsCollector
from repro.metrics.counters import CounterSet
from repro.metrics.records import ControlRecord, FailLockSample, TxnRecord
from repro.metrics.stats import mean, median, percentile, stddev, summarize
from repro.txn.transaction import AbortReason


# -- stats ---------------------------------------------------------------------


def test_mean_median_basic():
    assert mean([1, 2, 3]) == 2.0
    assert median([1, 2, 3, 100]) == 2.5
    assert median([5]) == 5


def test_empty_inputs_are_zero():
    assert mean([]) == 0.0
    assert median([]) == 0.0
    assert stddev([]) == 0.0
    assert percentile([], 50) == 0.0
    assert summarize([]).count == 0


def test_stddev():
    assert stddev([2, 2, 2]) == 0.0
    assert stddev([0, 10]) == pytest.approx(5.0)


def test_percentile_interpolates():
    values = [0, 10, 20, 30, 40]
    assert percentile(values, 0) == 0
    assert percentile(values, 100) == 40
    assert percentile(values, 50) == 20
    assert percentile(values, 25) == 10
    assert percentile(values, 12.5) == pytest.approx(5.0)


def test_percentile_validates_range():
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_summarize():
    s = summarize([1, 2, 3, 4])
    assert s.count == 4
    assert s.mean == 2.5
    assert s.minimum == 1 and s.maximum == 4


# -- counters --------------------------------------------------------------------


def test_counters_incr_and_get():
    c = CounterSet()
    assert c.incr("x") == 1
    assert c.incr("x", 4) == 5
    assert c["x"] == 5
    assert c["missing"] == 0


def test_counters_reject_negative():
    with pytest.raises(ValueError):
        CounterSet().incr("x", -1)


def test_counters_reset_and_dict():
    c = CounterSet()
    c.incr("a")
    assert c.as_dict() == {"a": 1}
    c.reset()
    assert c["a"] == 0


# -- collector ---------------------------------------------------------------------


def make_txn(seq, committed=True, copiers=0, coord_elapsed=100.0):
    return TxnRecord(
        txn_id=seq,
        seq=seq,
        coordinator=0,
        committed=committed,
        abort_reason=AbortReason.NONE if committed else AbortReason.COPY_UNAVAILABLE,
        size=3,
        items_read=1,
        items_written=1,
        submitted_at=0.0,
        finished_at=coord_elapsed,
        coordinator_elapsed=coord_elapsed,
        copiers_requested=copiers,
    )


def test_collector_txn_accounting():
    c = MetricsCollector()
    c.record_txn(make_txn(1))
    c.record_txn(make_txn(2, committed=False))
    assert c.counters["txns"] == 2
    assert c.counters["commits"] == 1
    assert c.counters["aborts"] == 1
    assert len(c.committed) == 1
    assert c.abort_count() == 1


def test_collector_coordinator_time_filters():
    c = MetricsCollector()
    c.record_txn(make_txn(1, copiers=0, coord_elapsed=100))
    c.record_txn(make_txn(2, copiers=1, coord_elapsed=250))
    assert c.coordinator_times() == [100, 250]
    assert c.coordinator_times(with_copiers=True) == [250]
    assert c.coordinator_times(with_copiers=False) == [100]


def test_collector_participant_staging():
    c = MetricsCollector()
    c.note_participant(5, 1, 90.0)
    c.note_participant(5, 2, 95.0)
    assert c.pop_participants(5) == {1: 90.0, 2: 95.0}
    assert c.pop_participants(5) == {}


def test_collector_control_times():
    c = MetricsCollector()
    c.record_control(ControlRecord(1, 0, "recovering", 0.0, 190.0))
    c.record_control(ControlRecord(1, 1, "operational", 0.0, 50.0))
    c.record_control(ControlRecord(2, 1, "operational", 10.0, 78.0))
    assert c.control_times(1) == [190.0, 50.0]
    assert c.control_times(1, "recovering") == [190.0]
    assert c.control_times(2) == [68.0]
    assert c.counters["control_type1"] == 2


def test_collector_faillock_series():
    c = MetricsCollector()
    c.record_faillock_sample(FailLockSample(seq=1, time=0.0, locks_per_site={0: 3, 1: 0}))
    c.record_faillock_sample(FailLockSample(seq=2, time=1.0, locks_per_site={0: 5, 1: 1}))
    assert c.faillock_series(0) == [(1, 3), (2, 5)]
    assert c.faillock_series(1) == [(1, 0), (2, 1)]


# -- availability analysis -----------------------------------------------------------


def samples(values):
    return [
        FailLockSample(seq=i + 1, time=float(i), locks_per_site={0: v})
        for i, v in enumerate(values)
    ]


def test_availability_peak_and_recovery():
    # Rise to 30, plateau, then decay to zero.
    series = [10, 20, 30, 30, 25, 15, 5, 0, 0]
    report = availability_of(samples(series), 0, db_size=50)
    assert report.peak_locks == 30
    assert report.peak_seq == 4          # end of the plateau
    assert report.recovery_end_seq == 8
    assert report.txns_to_recover == 4
    assert report.min_availability == pytest.approx(1 - 30 / 50)
    assert report.recovered


def test_availability_no_failure():
    report = availability_of(samples([0, 0, 0]), 0, db_size=50)
    assert report.peak_locks == 0
    assert report.min_availability == 1.0


def test_availability_unrecovered():
    report = availability_of(samples([10, 20, 20, 18]), 0, db_size=50)
    assert not report.recovered
    assert report.txns_to_recover == -1


def test_availability_clearing_buckets():
    series = [20, 20, 12, 9, 5, 0]
    report = availability_of(samples(series), 0, db_size=50, bucket=10)
    # Bucket edges at 10 and 0 locks remaining.
    remaining = [r for r, _t in report.clearing_buckets]
    assert remaining == [10, 0]


def test_availability_empty_samples():
    report = availability_of([], 0, db_size=50)
    assert report.peak_locks == 0
    assert not report.recovered
