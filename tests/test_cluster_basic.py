"""Cluster integration: healthy-path transaction processing."""

import pytest

from repro.net.message import MessageType
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FixedSite, RoundRobin

from conftest import make_scenario, run_cluster


def test_all_commit_when_healthy(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 50))
    assert cluster.metrics.counters["commits"] == 50
    assert cluster.metrics.counters["aborts"] == 0


def test_replicas_agree_after_run(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 50))
    dumps = [site.db.dump() for site in cluster.sites]
    assert dumps[0] == dumps[1] == dumps[2]
    assert cluster.audit_consistency() == []


def test_no_faillocks_without_failures(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 30))
    assert cluster.faillock_counts() == {0: 0, 1: 0, 2: 0}


def test_writes_reach_every_site(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 20))
    committed = cluster.metrics.committed
    total_written = sum(t.items_written for t in committed)
    assert total_written > 0
    # Every committed write appears in every site's redo log.
    for site in cluster.sites:
        logged = sum(
            len(site.db.log.for_txn(t.txn_id)) for t in committed
        )
        assert logged == total_written


def test_read_only_txn_commits_without_participants(small_config):
    from repro.txn.operations import OpKind, Operation
    from repro.workload.base import WorkloadGenerator

    class ReadOnly(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.READ, 0)]

    from repro.system.scenario import Scenario

    cluster = Cluster(small_config)
    metrics = cluster.run(Scenario(workload=ReadOnly(), txn_count=3))
    assert metrics.counters["commits"] == 3
    # No phase-1/phase-2 messages at all.
    assert cluster.network.trace.count(mtype=MessageType.VOTE_REQ) == 0
    assert cluster.network.trace.count(mtype=MessageType.COMMIT) == 0


def test_write_txn_message_shape(small_config):
    """A 3-site write transaction is 2 VOTE_REQ + 2 acks + 2 COMMIT + 2 acks."""
    from repro.txn.operations import OpKind, Operation
    from repro.workload.base import WorkloadGenerator
    from repro.system.scenario import Scenario

    class OneWrite(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.WRITE, 1)]

    cluster = Cluster(small_config)
    cluster.run(Scenario(workload=OneWrite(), txn_count=1, policy=FixedSite(0)))
    trace = cluster.network.trace
    assert trace.count(mtype=MessageType.VOTE_REQ, txn_id=1) == 2
    assert trace.count(mtype=MessageType.VOTE_ACK, txn_id=1) == 2
    assert trace.count(mtype=MessageType.COMMIT, txn_id=1) == 2
    assert trace.count(mtype=MessageType.COMMIT_ACK, txn_id=1) == 2


def test_coordinator_times_recorded(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 10))
    for record in cluster.metrics.committed:
        assert record.coordinator_elapsed > 0
        # Two participants per committed write transaction.
        if record.items_written:
            assert len(record.participant_elapsed) == 2
            assert all(v > 0 for v in record.participant_elapsed.values())


def test_round_robin_policy_spreads(small_config):
    scenario = make_scenario(small_config, 9, policy=RoundRobin())
    cluster = run_cluster(small_config, scenario)
    coords = [t.coordinator for t in cluster.metrics.txns]
    assert coords == [0, 1, 2, 0, 1, 2, 0, 1, 2]


def test_single_site_cluster_works():
    config = SystemConfig(db_size=5, num_sites=1, max_txn_size=3, seed=1)
    cluster = run_cluster(config, make_scenario(config, 10))
    assert cluster.metrics.counters["commits"] == 10


def test_simulated_time_advances(small_config):
    cluster = run_cluster(small_config, make_scenario(small_config, 10))
    assert cluster.now > 0
    finishes = [t.finished_at for t in cluster.metrics.txns]
    assert finishes == sorted(finishes)  # serial processing


def test_observer_site_is_lowest_alive(small_config):
    cluster = Cluster(small_config)
    assert cluster.observer_site().site_id == 0
    cluster.site(0).alive = False
    assert cluster.observer_site().site_id == 1


def test_zero_cost_config_still_correct(free_config):
    cluster = run_cluster(free_config, make_scenario(free_config, 30))
    assert cluster.metrics.counters["commits"] == 30
    assert cluster.audit_consistency() == []
