"""Counterexample replay: schedule files, cross-process byte stability.

The hard guarantee under test (satellite of the repro.check issue): a
shrunk schedule file replayed in two FRESH processes fires the same
events, flags the same violation, and exports byte-identical obs
artifacts.  Anything process-local leaking into a fingerprint, a
signature, or an export (builtin ``hash``, ``Message.msg_id``, wall
clocks, memory addresses) breaks this test.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import (
    CheckConfig,
    build_schedule_doc,
    explore,
    load_schedule,
    run_schedule,
    save_schedule,
    shrink,
)
from repro.errors import CheckError

_REPO = Path(__file__).resolve().parent.parent


def _make_shrunk_schedule(path: Path) -> dict:
    """Explore the mutated system, shrink, save — the CI selftest flow."""
    config = CheckConfig(mutate=True)
    found = explore(config, max_runs=60)
    assert found.found
    small = shrink(config, found.counterexample)
    doc = build_schedule_doc(config, small.vector, small.run, note="test")
    save_schedule(path, doc)
    return doc


def _replay(schedule: Path, export_dir: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "check",
            "replay",
            "--file",
            str(schedule),
            "--export",
            str(export_dir),
        ],
        cwd=_REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_shrunk_schedule_replays_identically_across_processes(tmp_path):
    schedule = tmp_path / "counterexample.json"
    doc = _make_shrunk_schedule(schedule)
    assert doc["observed"]["violations"], "schedule must record the violation"

    runs = []
    for name in ("first", "second"):
        export_dir = tmp_path / name
        proc = _replay(schedule, export_dir)
        assert proc.returncode == 0, proc.stderr
        assert "replay matches the recorded run" in proc.stdout
        assert "DIVERGED" not in proc.stderr
        runs.append((proc, export_dir))

    (first_proc, first_dir), (second_proc, second_dir) = runs
    # Same console story (minus the export-path line, which names the dir)...
    assert first_proc.stdout.split("\n", 1)[1] == (
        second_proc.stdout.split("\n", 1)[1]
    )
    # ...and byte-identical artifacts, file for file.
    names = sorted(p.name for p in first_dir.iterdir())
    assert names == ["events.jsonl", "run.json", "schedule.json", "trace.json"]
    assert names == sorted(p.name for p in second_dir.iterdir())
    for name in names:
        assert (first_dir / name).read_bytes() == (
            second_dir / name
        ).read_bytes(), f"{name} differs between fresh processes"

    # The export embeds the violation and the recorded schedule round-trips.
    manifest = json.loads((first_dir / "run.json").read_text())
    assert any(
        v["invariant"] == "faillock-coverage" for v in manifest["violations"]
    )
    exported = load_schedule(first_dir / "schedule.json")
    assert exported["decisions"] == doc["decisions"]

    # The in-process view agrees with what the subprocesses reported.
    replayed = run_schedule(
        CheckConfig.from_dict(doc["config"]), doc["decisions"]
    )
    assert f"{replayed.events_fired} events" in first_proc.stdout


def test_schedule_file_round_trips_and_is_byte_deterministic(tmp_path):
    config = CheckConfig(mutate=True, txns=4)
    result = run_schedule(config, [1])
    doc = build_schedule_doc(config, [1], result, note="round trip")

    first, second = tmp_path / "a.json", tmp_path / "b.json"
    save_schedule(first, doc)
    save_schedule(second, build_schedule_doc(config, [1], result, note="round trip"))
    assert first.read_bytes() == second.read_bytes()

    loaded = load_schedule(first)
    assert loaded["decisions"] == [1]
    assert CheckConfig.from_dict(loaded["config"]) == config
    assert loaded["observed"]["events_fired"] == result.events_fired
    assert loaded["observed"]["violations"][0]["invariant"] == (
        "faillock-coverage"
    )


def test_load_schedule_rejects_malformed_files(tmp_path):
    bad_schema = tmp_path / "bad_schema.json"
    bad_schema.write_text(
        json.dumps({"schema": "repro.check/999", "config": {}, "decisions": []})
    )
    bad_decisions = tmp_path / "bad_decisions.json"
    bad_decisions.write_text(
        json.dumps(
            {
                "schema": "repro.check/1",
                "config": {},
                "decisions": ["one", "two"],
            }
        )
    )
    not_json = tmp_path / "not_json.json"
    not_json.write_text("{nope")
    for path in (bad_schema, bad_decisions, not_json, tmp_path / "absent.json"):
        with pytest.raises(CheckError):
            load_schedule(path)
