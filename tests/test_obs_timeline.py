"""Causal timelines: phase attribution must partition the measured window."""

import math

import pytest

from repro.obs import build_timelines, derive_txn_summaries
from repro.obs.events import EventKind
from repro.obs.record import _scenario_for
from repro.obs.timeline import (
    PHASE_COMMIT,
    PHASE_COPIER,
    PHASE_ORDER,
    build_timeline,
)
from repro.system.cluster import Cluster


@pytest.fixture(scope="module")
def traced_run():
    """One traced Experiment-1-shaped run: cluster metrics + events."""
    config, scenario = _scenario_for("1", 42)
    cluster = Cluster(config)
    cluster.obs.enabled = True
    metrics = cluster.run(scenario)
    return metrics, list(cluster.obs)


def test_every_transaction_gets_a_timeline(traced_run) -> None:
    metrics, events = traced_run
    timelines = build_timelines(events)
    assert set(timelines) == {r.txn_id for r in metrics.txns}


def test_phase_sums_equal_recorded_elapsed(traced_run) -> None:
    """The attribution invariant: phases partition [txn.begin, txn.end],
    which are the exact instants coordinator_elapsed is computed from."""
    metrics, events = traced_run
    timelines = build_timelines(events)
    for record in metrics.txns:
        timeline = timelines[record.txn_id]
        phase_sum = sum(span.duration for span in timeline.phases)
        assert math.isclose(phase_sum, timeline.elapsed, abs_tol=1e-9)
        assert math.isclose(
            timeline.elapsed, record.coordinator_elapsed, abs_tol=1e-9
        )


def test_phases_are_contiguous_and_ordered(traced_run) -> None:
    _metrics, events = traced_run
    for timeline in build_timelines(events).values():
        spans = timeline.phases
        assert spans[0].start == timeline.begin
        assert spans[-1].end == timeline.end
        for prev, cur in zip(spans, spans[1:]):
            assert prev.end == cur.start
        for span in spans:
            assert span.phase in PHASE_ORDER


def test_copier_transactions_show_a_copier_phase(traced_run) -> None:
    """Exp 1's recovered-coordinator reads must surface as copier time."""
    _metrics, events = traced_run
    copier_txns = {
        e.txn for e in events if e.kind is EventKind.COPIER_BEGIN
    }
    assert copier_txns  # the preset is built to exercise copiers
    timelines = build_timelines(events)
    for txn in copier_txns:
        totals = timelines[txn].phase_totals()
        assert totals.get(PHASE_COPIER, 0.0) > 0.0


def test_committed_transactions_marked_and_reasons_absent(traced_run) -> None:
    metrics, events = traced_run
    timelines = build_timelines(events)
    for record in metrics.txns:
        timeline = timelines[record.txn_id]
        assert timeline.committed is record.committed
        assert timeline.coordinator == record.coordinator
        if record.committed:
            assert not timeline.abort_reason


def test_full_two_phase_commits_attribute_commit_time(traced_run) -> None:
    _metrics, events = traced_run
    phase2_txns = {e.txn for e in events if e.kind is EventKind.PHASE2_BEGIN}
    timelines = build_timelines(events)
    assert phase2_txns
    for txn in phase2_txns:
        assert timelines[txn].phase_totals().get(PHASE_COMMIT, 0.0) > 0.0


def test_derived_summaries_match_metrics_records(traced_run) -> None:
    """derive_txn_summaries is a pure function of the trace; it must agree
    with the metrics pipeline's independently-recorded rows."""
    metrics, events = traced_run
    by_txn = {row["txn"]: row for row in derive_txn_summaries(events)}
    assert len(by_txn) == len(metrics.txns)
    for record in metrics.txns:
        row = by_txn[record.txn_id]
        assert row["coordinator"] == record.coordinator
        assert row["committed"] is record.committed
        assert math.isclose(
            row["coordinator_elapsed"], record.coordinator_elapsed, abs_tol=1e-9
        )


def test_incomplete_transaction_has_no_timeline() -> None:
    """A begin without an end (e.g. in-flight at capture time) is skipped."""
    from repro.obs import TraceSink

    sink = TraceSink(enabled=True)
    sink.emit(1.0, EventKind.TXN_BEGIN, site=0, txn=1, size=3)
    assert build_timeline(list(sink)) is None
