"""RecoveryManager: lifecycle, bookkeeping, two-step policy."""

import pytest

from repro.core.faillocks import FailLockTable
from repro.core.recovery import RecoveryManager, RecoveryPolicy


def make(policy=RecoveryPolicy.ON_DEMAND, threshold=0.2, batch_size=5, stale=()):
    locks = FailLockTable(site_ids=[0, 1], item_ids=range(10))
    for item in stale:
        locks.set_lock(item, 0)
    manager = RecoveryManager(
        owner=0,
        faillocks=locks,
        policy=policy,
        batch_threshold=threshold,
        batch_size=batch_size,
    )
    return locks, manager


def test_begin_records_initial_stale():
    _locks, manager = make(stale=[1, 2, 3])
    manager.begin(time=10.0)
    assert manager.in_recovery
    assert manager.stats.initial_stale == 3
    assert manager.stale_count == 3
    assert manager.stale_items() == [1, 2, 3]
    assert manager.stale_fraction() == pytest.approx(0.3)


def test_begin_with_nothing_stale_completes_immediately():
    _locks, manager = make()
    manager.begin(time=5.0)
    assert not manager.in_recovery
    assert manager.stats.complete
    assert manager.stats.finished_at == 5.0


def test_completion_when_locks_clear():
    locks, manager = make(stale=[4])
    manager.begin(time=0.0)
    locks.clear_lock(4, 0)
    manager.note_refreshed_by_write(1, time=7.0)
    assert not manager.in_recovery
    assert manager.stats.finished_at == 7.0
    assert manager.stats.refreshed_by_write == 1


def test_copier_bookkeeping():
    locks, manager = make(stale=[1, 2])
    manager.begin(time=0.0)
    manager.note_copier_request()
    manager.note_copier_request(batch=True)
    locks.clear_lock(1, 0)
    locks.clear_lock(2, 0)
    manager.note_refreshed_by_copier(2, time=3.0)
    assert manager.stats.copier_requests == 2
    assert manager.stats.batch_copier_requests == 1
    assert manager.stats.refreshed_by_copier == 2
    assert manager.stats.complete


def test_on_demand_never_wants_batch():
    _locks, manager = make(stale=[1])
    manager.begin(time=0.0)
    assert not manager.wants_batch_copier()


def test_two_step_waits_for_threshold():
    locks, manager = make(policy=RecoveryPolicy.TWO_STEP, threshold=0.2,
                          stale=[0, 1, 2, 3, 4])
    manager.begin(time=0.0)
    assert manager.stale_fraction() == 0.5
    assert not manager.wants_batch_copier()  # 50% > 20% threshold
    for item in (0, 1, 2):
        locks.clear_lock(item, 0)
    manager.note_refreshed_by_write(3, time=1.0)
    assert manager.stale_fraction() == 0.2
    assert manager.wants_batch_copier()


def test_two_step_stops_when_done():
    locks, manager = make(policy=RecoveryPolicy.TWO_STEP, threshold=1.0, stale=[1])
    manager.begin(time=0.0)
    assert manager.wants_batch_copier()
    locks.clear_lock(1, 0)
    manager.note_refreshed_by_copier(1, time=1.0)
    assert not manager.wants_batch_copier()


def test_next_batch_respects_size():
    _locks, manager = make(policy=RecoveryPolicy.TWO_STEP, threshold=1.0,
                           batch_size=2, stale=[5, 1, 3])
    manager.begin(time=0.0)
    assert manager.next_batch() == [1, 3]


def test_validation():
    locks = FailLockTable(site_ids=[0], item_ids=range(2))
    with pytest.raises(ValueError):
        RecoveryManager(0, locks, batch_threshold=1.5)
    with pytest.raises(ValueError):
        RecoveryManager(0, locks, batch_size=0)
