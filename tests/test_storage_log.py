"""RedoLog specifics not covered by the database tests."""

from repro.storage.log import RedoLog


def test_lsns_are_dense_and_ordered():
    log = RedoLog()
    for i in range(5):
        record = log.append(
            txn_id=i, item_id=0, old_value=i, new_value=i + 1,
            old_version=i, new_version=i + 1, time=float(i),
        )
        assert record.lsn == i + 1
    assert [r.lsn for r in log.records] == [1, 2, 3, 4, 5]


def test_filters():
    log = RedoLog()
    log.append(1, 0, 0, 10, 0, 1, 0.0)
    log.append(1, 1, 0, 11, 0, 1, 1.0)
    log.append(2, 0, 10, 20, 1, 2, 2.0)
    assert len(log.for_txn(1)) == 2
    assert len(log.for_item(0)) == 2
    assert log.for_item(0)[-1].new_value == 20
    assert len(log) == 3


def test_records_capture_before_and_after_images():
    log = RedoLog()
    record = log.append(7, 3, old_value=5, new_value=9, old_version=2,
                        new_version=3, time=4.5)
    assert (record.old_value, record.new_value) == (5, 9)
    assert (record.old_version, record.new_version) == (2, 3)
    assert record.time == 4.5


def test_empty_log_queries():
    log = RedoLog()
    assert log.for_txn(1) == []
    assert log.for_item(1) == []
    assert len(log) == 0


def test_capacity_bounds_retained_records_but_lsns_keep_counting():
    log = RedoLog(capacity=3)
    records = [
        log.append(i, 0, i, i + 1, i, i + 1, float(i)) for i in range(10)
    ]
    # Every append still gets a dense lsn (the returned record is real)...
    assert [r.lsn for r in records] == list(range(1, 11))
    # ...but only the first `capacity` records are retained; the rest are
    # dropped and tallied, like the message trace.
    assert len(log) == 3
    assert log.dropped_records == 7


def test_unbounded_log_drops_nothing():
    log = RedoLog()
    for i in range(50):
        log.append(i, 0, i, i + 1, i, i + 1, float(i))
    assert len(log) == 50
    assert log.dropped_records == 0
