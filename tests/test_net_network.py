"""Network delivery semantics: activations, FIFO, down sites, partitions."""

import pytest

from repro.errors import NetworkError, UnknownSiteError
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.latency import ConstantLatency
from repro.net.message import Message, MessageType
from repro.net.network import Network
from repro.sim.cpu import CpuResource
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import EventScheduler


class Recorder(Endpoint):
    """Test endpoint: records deliveries and failure notices."""

    def __init__(self, site_id: int) -> None:
        super().__init__(site_id)
        self.received: list[tuple[float, Message]] = []
        self.failures: list[Message] = []
        self.handler_cost = 0.0

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        self.received.append((ctx.now, msg))
        if self.handler_cost:
            ctx.charge(self.handler_cost)

    def on_delivery_failed(self, ctx: HandlerContext, msg: Message) -> None:
        self.failures.append(msg)


def build_net(cores=1, latency=0.0, send=4.5, recv=4.5):
    sched = EventScheduler()
    cpu = CpuResource(sched, cores=cores)
    net = Network(
        scheduler=sched,
        cpu=cpu,
        rng=DeterministicRng(1),
        latency_model=ConstantLatency(latency),
        msg_send_cost=send,
        msg_recv_cost=recv,
    )
    a, b = Recorder(0), Recorder(1)
    net.register(a)
    net.register(b)
    return sched, net, a, b


def send_from(net, endpoint, dst, mtype=MessageType.COMMIT, payload=None, txn=1):
    net.spawn(endpoint, lambda ctx: ctx.send(dst, mtype, payload or {}, txn_id=txn))


def test_basic_delivery():
    sched, net, a, b = build_net()
    send_from(net, a, 1)
    sched.run()
    assert len(b.received) == 1
    assert b.received[0][1].src == 0


def test_send_cost_delays_release():
    sched, net, a, b = build_net(send=4.5, recv=4.5)
    send_from(net, a, 1)
    sched.run()
    # Sender activation costs 4.5 (one send); delivery is immediate
    # (zero latency); the message arrives at t=4.5.
    deliver_time, _msg = b.received[0]
    assert deliver_time == pytest.approx(4.5)


def test_one_communication_costs_nine_ms_of_cpu():
    sched, net, a, b = build_net()
    send_from(net, a, 1)
    sched.run()
    assert net.cpu.busy_ms == pytest.approx(9.0)  # 4.5 send + 4.5 recv


def test_fifo_per_channel():
    sched, net, a, b = build_net()

    def burst(ctx):
        for i in range(5):
            ctx.send(1, MessageType.COMMIT, {"i": i}, txn_id=i)

    net.spawn(a, burst)
    sched.run()
    order = [msg.payload["i"] for _t, msg in b.received]
    assert order == [0, 1, 2, 3, 4]


def test_down_site_drops_and_notifies_sender():
    sched, net, a, b = build_net()
    b.alive = False
    send_from(net, a, 1)
    sched.run()
    assert b.received == []
    assert len(a.failures) == 1
    assert net.messages_undeliverable == 1


def test_mgr_recover_reaches_down_site():
    sched, net, a, b = build_net()
    b.alive = False
    send_from(net, a, 1, mtype=MessageType.MGR_RECOVER)
    sched.run()
    assert len(b.received) == 1


def test_partition_blocks_and_notifies():
    sched, net, a, b = build_net()
    net.partitions.partition([[0], [1]])
    send_from(net, a, 1)
    sched.run()
    assert b.received == []
    assert len(a.failures) == 1


def test_heal_restores_delivery():
    sched, net, a, b = build_net()
    net.partitions.partition([[0], [1]])
    net.partitions.heal()
    send_from(net, a, 1)
    sched.run()
    assert len(b.received) == 1


def test_unknown_destination_raises():
    sched, net, a, b = build_net()
    send_from(net, a, 99)
    with pytest.raises(UnknownSiteError):
        sched.run()


def test_duplicate_registration_rejected():
    sched, net, a, b = build_net()
    with pytest.raises(NetworkError):
        net.register(Recorder(0))


def test_handler_charge_delays_outgoing():
    sched, net, a, b = build_net()
    b.handler_cost = 100.0

    class Replier(Recorder):
        def handle(self, ctx: HandlerContext, msg: Message) -> None:
            super().handle(ctx, msg)
            ctx.send(0, MessageType.COMMIT_ACK, {})

    replier = Replier(2)
    net.register(replier)
    net.spawn(a, lambda ctx: ctx.send(2, MessageType.COMMIT, {}))
    sched.run()
    # a's ack arrives after replier's recv(4.5) + send(4.5) charges.
    ack_time = a.received[0][0]
    assert ack_time == pytest.approx(4.5 + 9.0)


def test_timer_runs_as_new_activation():
    sched, net, a, b = build_net()
    fired = []

    def start(ctx):
        ctx.after(50.0, lambda ctx2: fired.append(ctx2.now))

    net.spawn(a, start)
    sched.run()
    assert fired == [50.0]


def test_on_done_runs_at_activation_end():
    sched, net, a, b = build_net()
    ends = []

    def start(ctx):
        ctx.charge(25.0)
        ctx.on_done(lambda: ends.append(sched.now))

    net.spawn(a, start)
    sched.run()
    assert ends == [25.0]


def test_wire_latency_applies():
    sched, net, a, b = build_net(latency=9.0, send=0.0, recv=0.0)
    send_from(net, a, 1)
    sched.run()
    assert b.received[0][0] == pytest.approx(9.0)


def test_message_counters():
    sched, net, a, b = build_net()
    send_from(net, a, 1)
    sched.run()
    assert net.messages_sent == 1
    assert net.messages_delivered == 1
    assert net.trace.count(delivered=True) == 1


def test_failure_notice_ignored_for_dead_sender():
    sched, net, a, b = build_net()
    b.alive = False

    def send_then_die(ctx):
        ctx.send(1, MessageType.COMMIT, {})
        ctx.on_done(lambda: setattr(a, "alive", False))

    net.spawn(a, send_then_die)
    sched.run()
    assert a.failures == []  # dead senders get no notices


def test_replace_endpoint_swaps_handler():
    sched, net, a, b = build_net()
    replacement = Recorder(1)
    net.replace_endpoint(replacement)
    send_from(net, a, 1)
    sched.run()
    assert len(replacement.received) == 1
    assert b.received == []


def test_replace_endpoint_requires_existing_address():
    sched, net, a, b = build_net()
    with pytest.raises(UnknownSiteError):
        net.replace_endpoint(Recorder(42))
