"""FailLockTable: the bit-map semantics of §1.1/§1.2."""

import pytest

from repro.core.faillocks import FailLockTable
from repro.core.sessions import NominalSessionVector
from repro.errors import FailLockError


@pytest.fixture
def table() -> FailLockTable:
    return FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(5))


@pytest.fixture
def nsv() -> NominalSessionVector:
    return NominalSessionVector(owner=0, site_ids=[0, 1, 2, 3])


def test_initially_unlocked(table):
    assert table.total_locks() == 0
    assert not table.is_locked(0, 0)
    assert table.count_for(2) == 0


def test_set_and_clear(table):
    table.set_lock(3, 2)
    assert table.is_locked(3, 2)
    assert not table.is_locked(3, 1)
    table.clear_lock(3, 2)
    assert not table.is_locked(3, 2)


def test_set_is_idempotent(table):
    table.set_lock(1, 1)
    table.set_lock(1, 1)
    assert table.count_for(1) == 1


def test_clear_unset_is_noop(table):
    table.clear_lock(0, 0)
    assert table.total_locks() == 0


def test_locked_items_for(table):
    table.set_lock(4, 1)
    table.set_lock(2, 1)
    table.set_lock(2, 3)
    assert table.locked_items_for(1) == [2, 4]
    assert table.locked_items_for(3) == [2]
    assert table.count_for(1) == 2


def test_up_to_date_sites(table):
    table.set_lock(2, 1)
    assert table.up_to_date_sites(2) == [0, 2, 3]


def test_mask_is_bitmap(table):
    table.set_lock(0, 0)
    table.set_lock(0, 2)
    assert table.mask(0) == 0b0101


def test_unknown_item_and_site(table):
    with pytest.raises(FailLockError):
        table.set_lock(99, 0)
    with pytest.raises(FailLockError):
        table.set_lock(0, 99)


def test_update_on_commit_sets_for_down_clears_for_up(table, nsv):
    nsv.mark_down(2)
    table.set_lock(1, 3)  # stale lock for an UP site: must be re-cleared
    table.update_on_commit([1], nsv)
    assert table.is_locked(1, 2)       # down site missed the update
    assert not table.is_locked(1, 3)   # up site re-cleared (paper §1.2)
    assert not table.is_locked(1, 0)


def test_update_on_commit_only_touches_written_items(table, nsv):
    nsv.mark_down(1)
    table.update_on_commit([0, 2], nsv)
    assert table.is_locked(0, 1)
    assert table.is_locked(2, 1)
    assert not table.is_locked(1, 1)


def test_update_on_commit_treats_recovering_as_missed(table, nsv):
    nsv.mark_recovering(3, 2)
    table.update_on_commit([0], nsv)
    assert table.is_locked(0, 3)


def test_snapshot_and_install(table):
    table.set_lock(1, 2)
    other = FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(5))
    other.set_lock(4, 0)  # will be overwritten by install
    other.install(table.snapshot())
    assert other == table
    assert not other.is_locked(4, 0)


def test_install_rejects_unknown_items(table):
    other = FailLockTable(site_ids=[0, 1], item_ids=range(2))
    with pytest.raises(FailLockError):
        table.install(other.snapshot() | {77: 1})


def test_merge_is_union(table):
    other = FailLockTable(site_ids=[0, 1, 2, 3], item_ids=range(5))
    table.set_lock(0, 1)
    other.set_lock(0, 2)
    table.merge(other.snapshot())
    assert table.is_locked(0, 1)
    assert table.is_locked(0, 2)


def test_add_item(table):
    table.add_item(50)
    table.set_lock(50, 0)
    assert table.is_locked(50, 0)
    with pytest.raises(FailLockError):
        table.add_item(50)


def test_total_locks_counts_bits(table):
    table.set_lock(0, 0)
    table.set_lock(0, 1)
    table.set_lock(3, 2)
    assert table.total_locks() == 3


def test_update_with_recipients_exact_sets(table):
    table.set_lock(1, 0)  # stale knowledge: will be overwritten exactly
    ops = table.update_with_recipients({1: [0, 2]})
    assert ops == 4
    assert not table.is_locked(1, 0)
    assert table.is_locked(1, 1)
    assert not table.is_locked(1, 2)
    assert table.is_locked(1, 3)


def test_update_with_recipients_multiple_items(table):
    table.update_with_recipients({0: [0, 1, 2, 3], 2: [3]})
    assert table.mask(0) == 0
    assert table.up_to_date_sites(2) == [3]


def test_update_with_recipients_validates_item(table):
    with pytest.raises(FailLockError):
        table.update_with_recipients({99: [0]})
