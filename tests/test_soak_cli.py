"""The soak and bench --soak command-line surface.

In-process ``main([...])`` invocations with a small run; the heavy
flatness benchmark itself is not run here (it spawns subprocesses), only
its document validation and rendering.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.perf.soakbench import (
    RSS_FLATNESS_RATIO,
    SCALE,
    TRACED_FLATNESS_RATIO,
    render_soak_bench,
    validate_soak_bench_doc,
)

SMALL = ["soak", "run", "--txns", "300", "--rate", "40"]


def test_parser_soak_run_flags():
    args = build_parser().parse_args(
        ["--seed", "9", "soak", "run", "--txns", "500", "--rate", "30",
         "--shape", "diurnal", "--peak", "60", "--workload", "storm",
         "--storm-every-ms", "2000", "--detection", "announced",
         "--fail-at-ms", "4000", "--recover-at-ms", "8000"]
    )
    assert args.seed == 9
    assert (args.txns, args.rate, args.shape, args.peak) == (500, 30.0, "diurnal", 60.0)
    assert (args.workload, args.storm_every_ms) == ("storm", 2000.0)
    assert args.detection == "announced"
    assert (args.fail_at_ms, args.recover_at_ms) == (4000.0, 8000.0)
    assert callable(args.fn)


def test_parser_rejects_unknown_shape_and_workload():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["soak", "run", "--shape", "sawtooth"])
    with pytest.raises(SystemExit):
        parser.parse_args(["soak", "run", "--workload", "hot-cold"])
    with pytest.raises(SystemExit):
        parser.parse_args(["soak"])  # subcommand required


def test_soak_run_prints_report(capsys):
    assert main(["--seed", "3", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "soak: 300 txns" in out
    assert "availability per window" in out


def test_soak_run_writes_and_validates_roundtrip(tmp_path, capsys):
    report = tmp_path / "soak.json"
    assert main(["--seed", "3", *SMALL, "--out", str(report)]) == 0
    doc = json.loads(report.read_text())
    assert doc["schema"] == "repro.soak/1"
    assert doc["totals"]["txns"] == 300
    capsys.readouterr()
    assert main(["soak", "validate", "--file", str(report)]) == 0
    assert "valid soak report" in capsys.readouterr().out


def test_soak_run_same_seed_same_bytes(tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert main(["--seed", "7", *SMALL, "--out", str(first)]) == 0
    assert main(["--seed", "7", *SMALL, "--out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_soak_run_writes_svg(tmp_path):
    svg = tmp_path / "soak.svg"
    assert main(["--seed", "3", *SMALL, "--svg", str(svg)]) == 0
    content = svg.read_text()
    assert content.startswith("<svg")
    assert "availability" in content


def test_soak_run_no_fail_flag(tmp_path):
    report = tmp_path / "nofail.json"
    assert main(["--seed", "3", *SMALL, "--no-fail", "--out", str(report)]) == 0
    doc = json.loads(report.read_text())
    assert doc["fault"] is None
    assert doc["config"]["fail_site"] is None


def test_soak_validate_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "repro.soak/1", "totals": {}}))
    assert main(["soak", "validate", "--file", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


# -- bench --soak document ----------------------------------------------------


def fake_bench_doc(**overrides):
    short = {"txns": 1000, "commits": 900, "events": 50_000,
             "wall_s": 2.0, "peak_rss_kb": 30_000, "traced_peak_kb": 1500.0}
    long_run = dict(short, txns=1000 * SCALE, commits=900 * SCALE,
                    wall_s=40.0, traced_peak_kb=1800.0)
    doc = {
        "schema": "repro.bench/1",
        "kind": "soak",
        "quick": True,
        "seed": 42,
        "scale": SCALE,
        "short": short,
        "long": long_run,
        "rss_ratio": 1.0,
        "traced_ratio": 1.2,
        "rss_allowed": RSS_FLATNESS_RATIO,
        "traced_allowed": TRACED_FLATNESS_RATIO,
        "flat": True,
    }
    doc.update(overrides)
    return doc


def test_bench_doc_validates_clean():
    assert validate_soak_bench_doc(fake_bench_doc()) == []


def test_bench_doc_flags_problems():
    assert any(
        "flat" in p for p in validate_soak_bench_doc(fake_bench_doc(flat=False))
    )
    assert any(
        "long.txns" in p
        for p in validate_soak_bench_doc(
            fake_bench_doc(long=dict(fake_bench_doc()["long"], txns=123))
        )
    )
    assert validate_soak_bench_doc({"schema": "repro.bench/1", "kind": "exp1"})
    missing = fake_bench_doc()
    del missing["short"]
    assert any("short" in p for p in validate_soak_bench_doc(missing))


def test_bench_render_names_the_verdict():
    text = render_soak_bench(fake_bench_doc())
    assert "FLAT" in text
    assert "scale 20x" in text
    not_flat = render_soak_bench(fake_bench_doc(flat=False))
    assert "NOT FLAT" in not_flat


def test_parser_bench_soak_flag():
    args = build_parser().parse_args(["bench", "--quick", "--soak"])
    assert args.quick is True
    assert args.soak is True
