"""Failures injected *during* the commit protocol (Appendix A edge cases).

The managing site only acts between transactions, so these tests kill
sites directly via scheduler events timed to land between specific
protocol messages — the cases Appendix A spells out:

* participant dies before acking phase one  -> transaction aborts;
* participant dies after acking phase one   -> commit completes among the
  survivors and a type-2 control transaction announces the failure.
"""

import pytest

from repro.net.message import MessageType
from repro.system.cluster import Cluster
from repro.system.config import FailureDetection, SystemConfig
from repro.system.scenario import FixedSite, Scenario
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator


class OneWrite(WorkloadGenerator):
    def generate(self, txn_seq, rng):
        return [Operation(OpKind.WRITE, 1)]


def build(seed=1):
    config = SystemConfig(
        db_size=5,
        num_sites=3,
        max_txn_size=2,
        seed=seed,
        detection=FailureDetection.TIMEOUT,
    )
    cluster = Cluster(config)
    scenario = Scenario(workload=OneWrite(), txn_count=3, policy=FixedSite(0))
    return cluster, scenario


def kill_when(cluster, site_id, mtype, nth=1):
    """Mark ``site_id`` dead the instant the ``nth`` ``mtype`` message is
    recorded in the trace (polled every simulated 0.1 ms)."""
    site = cluster.site(site_id)

    def poll():
        if cluster.network.trace.count(mtype=mtype) >= nth:
            site.alive = False
            return
        cluster.scheduler.schedule(0.1, poll)

    cluster.scheduler.schedule(0.0, poll)


def test_participant_dies_before_vote_ack():
    """Site 2 dies as phase one starts: its VOTE_REQ bounces, the
    transaction aborts, and a type-2 control transaction runs."""
    cluster, scenario = build()
    # Kill site 2 while the coordinator is still processing the submitted
    # transaction (after MGR_SUBMIT delivery, before phase one leaves).
    kill_when(cluster, 2, MessageType.MGR_SUBMIT_TXN, nth=1)
    metrics = cluster.run(scenario)
    txn1 = metrics.txns[0]
    assert not txn1.committed
    assert txn1.abort_reason.value == "participant_failed"
    # Survivors learned via type 2 and later transactions commit.
    assert metrics.counters.get("control_type2") >= 1
    assert metrics.txns[1].committed and metrics.txns[2].committed
    assert cluster.site(0).nsv.down_sites() == [2]


def test_participant_dies_after_vote_ack():
    """Site 2 dies after acking phase one: Appendix A commits anyway among
    the survivors ("if commit ack not received ... run control type 2"
    but the data items still commit)."""
    cluster, scenario = build()
    # Both participants ack (2 VOTE_ACKs), then kill site 2 before COMMIT.
    kill_when(cluster, 2, MessageType.VOTE_ACK, nth=2)
    metrics = cluster.run(scenario)
    txn1 = metrics.txns[0]
    assert txn1.committed
    # The write reached the survivor and the coordinator, not the corpse.
    assert cluster.site(0).db.version(1) >= 1
    assert cluster.site(1).db.version(1) >= 1
    assert cluster.site(2).db.version(1) == 0
    # The corpse's copy is fail-locked.
    assert cluster.site(0).faillocks.is_locked(1, 2)
    assert metrics.counters.get("control_type2") >= 1


def test_all_participants_die_coordinator_commits_alone():
    cluster, scenario = build()
    kill_when(cluster, 1, MessageType.VOTE_ACK, nth=2)
    kill_when(cluster, 2, MessageType.VOTE_ACK, nth=2)
    metrics = cluster.run(scenario)
    assert metrics.txns[0].committed
    assert cluster.site(0).db.version(1) >= 1
    assert cluster.site(0).faillocks.is_locked(1, 1)
    assert cluster.site(0).faillocks.is_locked(1, 2)


def test_consistency_after_midflight_failure():
    cluster, scenario = build()
    kill_when(cluster, 2, MessageType.VOTE_ACK, nth=2)
    cluster.run(scenario)
    assert cluster.audit_consistency() == []


def test_timeout_mode_regression_stale_views():
    """Regression for two timeout-detection bugs hypothesis found:

    1. A participant with a stale session vector must not re-clear a down
       site's fail-lock bits at commit (fixed by recipient-based
       maintenance).
    2. A recovering site must not skip type-1 responder candidates its own
       stale vector marks down — they may have recovered meanwhile (fixed
       by bounce-driven candidate advancement).
    """
    from repro.system.config import SystemConfig
    from repro.system.cluster import Cluster
    from repro.system.costs import CostModel
    from repro.system.scenario import RecoverSite, Scenario
    from repro.system.scenario import FailSite as FS
    from repro.workload.uniform import UniformWorkload

    config = SystemConfig(
        db_size=8, num_sites=3, max_txn_size=3, seed=0,
        costs=CostModel.free(), detection=FailureDetection.TIMEOUT,
    )
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=14,
    )
    for before, action in [
        (2, FS(2)), (3, FS(0)), (4, RecoverSite(2)),
        (5, FS(1)), (7, RecoverSite(0)), (8, RecoverSite(1)),
    ]:
        scenario.add_action(before, action)
    cluster = Cluster(config)
    cluster.run(scenario)
    assert cluster.audit_consistency() == []
