"""Timeout-driven 2PC termination: vote timeouts, COMMIT retransmission,
and cooperative resolution of blocked transactions.

These are the cases the bare protocol cannot survive — a lost phase-1
request, a lost commit indication, a coordinator that dies between
sending COMMIT and everyone hearing it — exercised with targeted silent
drops and mid-protocol crashes rather than randomized chaos.
"""

import pytest

from repro.errors import SimulationError
from repro.net.message import MessageType
from repro.net.network import MessageFate
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FixedSite, Scenario
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator


class OneWrite(WorkloadGenerator):
    def generate(self, txn_seq, rng):
        return [Operation(OpKind.WRITE, 1)]


class DropMatching:
    """Interposer that silently drops messages matching a predicate."""

    def __init__(self, pred, limit=None):
        self.pred = pred
        self.limit = limit
        self.dropped = 0

    def intercept(self, msg):
        if self.pred(msg) and (self.limit is None or self.dropped < self.limit):
            self.dropped += 1
            return MessageFate(drop=True, silent=True)
        return None


def build(txns=3, seed=1):
    """Three sites, timeouts on (fast, test-sized), transport-level
    retransmission OFF so each test controls loss outcomes exactly."""
    config = SystemConfig(
        db_size=5,
        num_sites=3,
        max_txn_size=2,
        seed=seed,
        wire_latency_ms=1.0,
        timeouts_enabled=True,
        vote_timeout_ms=50.0,
        commit_retry_ms=50.0,
        status_inquiry_ms=120.0,
    )
    cluster = Cluster(config)
    scenario = Scenario(workload=OneWrite(), txn_count=txns, policy=FixedSite(0))
    return cluster, scenario


def kill_when(cluster, site_id, mtype, nth=1):
    """Mark ``site_id`` dead the instant the ``nth`` ``mtype`` message is
    recorded in the trace (polled every simulated 0.1 ms)."""
    site = cluster.site(site_id)

    def poll():
        if cluster.network.trace.count(mtype=mtype) >= nth:
            site.alive = False
            return
        cluster.scheduler.schedule(0.1, poll)

    cluster.scheduler.schedule(0.0, poll)


# -- coordinator-side timeouts ------------------------------------------------


def test_lost_vote_req_times_out_and_aborts() -> None:
    """A silently lost phase-1 request no longer wedges the coordinator:
    the vote timeout aborts the transaction, and — because a timeout is
    not a failure verdict — the silent site participates normally in the
    very next transaction."""
    cluster, scenario = build()
    cluster.network.interposer = DropMatching(
        lambda m: m.mtype is MessageType.VOTE_REQ and m.dst == 2, limit=1
    )
    metrics = cluster.run(scenario)
    txn1 = metrics.txns[0]
    assert not txn1.committed
    assert txn1.abort_reason.value == "participant_timeout"
    assert metrics.counters.get("timeout_vote_aborts") == 1
    # No site was declared down: no type-2 control transaction ran and
    # later transactions commit at full replication, site 2 included.
    assert metrics.counters.get("control_type2") == 0
    assert metrics.txns[1].committed and metrics.txns[2].committed
    assert cluster.site(2).db.version(1) == cluster.site(0).db.version(1)
    assert cluster.audit_consistency() == []


def test_lost_commit_is_retransmitted_until_acked() -> None:
    """A silently lost COMMIT is re-sent on the commit-retry timer; the
    participant applies it on the retry and nobody is marked failed."""
    cluster, scenario = build()
    cluster.network.interposer = DropMatching(
        lambda m: m.mtype is MessageType.COMMIT and m.dst == 2, limit=1
    )
    metrics = cluster.run(scenario)
    assert all(t.committed for t in metrics.txns)
    assert metrics.counters.get("commit_retransmits") >= 1
    assert cluster.site(2).db.version(1) == cluster.site(0).db.version(1)
    assert not cluster.site(0).faillocks.is_locked(1, 2)
    assert metrics.counters.get("control_type2") == 0
    assert cluster.audit_consistency() == []


# -- cooperative termination (the blocked-participant protocol) ---------------


def test_survivors_converge_when_coordinator_dies_mid_commit() -> None:
    """The satellite scenario: the coordinator crashes after its COMMIT
    reached a strict subset of the participants (site 1 yes, site 2 no).
    Site 2 is blocked holding staged updates; the status-inquiry path asks
    the dead coordinator (bounce), then site 1, which answers "committed"
    — both survivors end with the update applied.  No atomicity
    violation: nobody aborts what another site applied."""
    cluster, scenario = build(txns=1)
    cluster.network.interposer = DropMatching(
        lambda m: m.mtype is MessageType.COMMIT and m.dst == 2, limit=1
    )
    # Both COMMIT records (the drop to 2 and the delivery to 1) are in the
    # trace before any COMMIT_ACK returns — the coordinator dies there,
    # before its own local commit and before any retry timer fires.
    kill_when(cluster, 0, MessageType.COMMIT, nth=2)
    with pytest.raises(SimulationError):
        cluster.run(scenario)  # the drive loop never hears TXN_DONE
    assert cluster.metrics.counters.get("status_inquiries") >= 1
    assert cluster.metrics.counters.get("termination_committed") == 1
    v1 = cluster.site(1).db.version(1)
    assert v1 >= 1, "site 1 never applied the commit it was sent"
    assert cluster.site(2).db.version(1) == v1
    assert cluster.site(2).db.get(1).value == cluster.site(1).db.get(1).value
    assert cluster.metrics.counters.get("termination_presumed_abort") == 0


def test_presumed_abort_when_no_commit_evidence_survives() -> None:
    """The coordinator crashes after *every* COMMIT was lost: no copy of
    the decision exists anywhere.  Both blocked participants exhaust
    their candidates (dead coordinator, then each other — both answer
    "unknown" for merely-staged state) and presume abort.  Safe: the
    coordinator commits locally only after all COMMIT_ACKs, so it cannot
    have committed either."""
    cluster, scenario = build(txns=1)
    cluster.network.interposer = DropMatching(
        lambda m: m.mtype is MessageType.COMMIT
    )
    kill_when(cluster, 0, MessageType.COMMIT, nth=2)
    with pytest.raises(SimulationError):
        cluster.run(scenario)
    # The first participant to exhaust its candidates presumes abort; the
    # second may instead *learn* "aborted" from the first (a presumed
    # abort is a decision, and decisions propagate).  Either way both
    # reach abort and none commits.
    presumed = cluster.metrics.counters.get("termination_presumed_abort")
    learned = cluster.metrics.counters.get("termination_aborted")
    assert presumed >= 1
    assert presumed + learned == 2
    assert cluster.metrics.counters.get("termination_committed") == 0
    # Nobody applied anything; the database is untouched everywhere.
    for site_id in (0, 1, 2):
        assert cluster.site(site_id).db.version(1) == 0
    assert cluster.audit_consistency() == []


def test_status_inquiry_bounce_advances_to_next_candidate() -> None:
    """A TXN_STATUS_REQ that bounces off a dead site is treated exactly
    like an "unknown" answer — the inquiry moves on rather than marking
    anyone failed or giving up."""
    cluster, scenario = build(txns=1)
    cluster.network.interposer = DropMatching(
        lambda m: m.mtype is MessageType.COMMIT and m.dst == 2, limit=1
    )
    kill_when(cluster, 0, MessageType.COMMIT, nth=2)
    with pytest.raises(SimulationError):
        cluster.run(scenario)
    bounced = cluster.network.trace.count(mtype=MessageType.TXN_STATUS_REQ)
    assert bounced >= 2, "expected an inquiry to the dead coordinator too"
    assert cluster.metrics.counters.get("termination_committed") == 1
