"""Message, latency models, partitions, and the trace."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.message import Message, MessageType
from repro.net.partition import PartitionManager
from repro.net.trace import MessageTrace


# -- messages -----------------------------------------------------------------


def test_message_ids_are_unique():
    a = Message(src=0, dst=1, mtype=MessageType.COMMIT)
    b = Message(src=0, dst=1, mtype=MessageType.COMMIT)
    assert a.msg_id != b.msg_id


def test_message_defaults():
    msg = Message(src=0, dst=1, mtype=MessageType.VOTE_REQ)
    assert msg.payload == {}
    assert msg.txn_id == -1
    assert msg.send_time == -1.0


# -- latency ---------------------------------------------------------------------


def test_constant_latency():
    model = ConstantLatency(9.0)
    assert model.sample(0, 1, random.Random(1)) == 9.0


def test_constant_latency_rejects_negative():
    with pytest.raises(NetworkError):
        ConstantLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(2.0, 5.0)
    rng = random.Random(3)
    for _ in range(100):
        assert 2.0 <= model.sample(0, 1, rng) <= 5.0


def test_uniform_latency_rejects_bad_range():
    with pytest.raises(NetworkError):
        UniformLatency(5.0, 2.0)


# -- partitions --------------------------------------------------------------------


def test_no_partition_everyone_connected():
    pm = PartitionManager()
    assert pm.connected(0, 3)
    assert not pm.active


def test_partition_splits_groups():
    pm = PartitionManager()
    pm.partition([[0, 1], [2, 3]])
    assert pm.connected(0, 1)
    assert pm.connected(2, 3)
    assert not pm.connected(0, 2)
    assert not pm.connected(1, 3)


def test_self_always_connected():
    pm = PartitionManager()
    pm.partition([[0], [1]])
    assert pm.connected(0, 0)


def test_unlisted_sites_share_implicit_group():
    pm = PartitionManager()
    pm.partition([[0]])
    assert pm.connected(1, 2)
    assert not pm.connected(0, 1)


def test_heal_restores_connectivity():
    pm = PartitionManager()
    pm.partition([[0], [1]])
    pm.heal()
    assert pm.connected(0, 1)
    assert not pm.active


def test_rejects_site_in_two_groups():
    pm = PartitionManager()
    with pytest.raises(NetworkError):
        pm.partition([[0, 1], [1, 2]])


def test_repartition_replaces():
    pm = PartitionManager()
    pm.partition([[0], [1, 2]])
    pm.partition([[0, 1], [2]])
    assert pm.connected(0, 1)
    assert not pm.connected(1, 2)


# -- trace ------------------------------------------------------------------------


def _msg(mtype=MessageType.COMMIT, txn=5):
    return Message(src=0, dst=1, mtype=mtype, txn_id=txn)


def test_trace_records_and_counts():
    trace = MessageTrace()
    trace.record(_msg(), delivered=True)
    trace.record(_msg(MessageType.VOTE_REQ), delivered=False, reason="down")
    assert len(trace) == 2
    assert trace.count(mtype=MessageType.COMMIT) == 1
    assert trace.count(delivered=False) == 1
    assert trace.count(txn_id=5) == 2


def test_trace_for_txn():
    trace = MessageTrace()
    trace.record(_msg(txn=1), delivered=True)
    trace.record(_msg(txn=2), delivered=True)
    assert [e.txn_id for e in trace.for_txn(2)] == [2]


def test_trace_capacity():
    trace = MessageTrace(capacity=2)
    for _ in range(5):
        trace.record(_msg(), delivered=True)
    assert len(trace) == 2
    assert trace.dropped_entries == 3


def test_trace_clear():
    trace = MessageTrace()
    trace.record(_msg(), delivered=True)
    trace.clear()
    assert len(trace) == 0
