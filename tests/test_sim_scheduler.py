"""EventScheduler: ordering, cancellation, run modes."""

import pytest

from repro.errors import SchedulerError
from repro.sim.scheduler import EventScheduler


def test_fires_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.schedule(5.0, lambda: fired.append("b"))
    sched.schedule(1.0, lambda: fired.append("a"))
    sched.schedule(9.0, lambda: fired.append("c"))
    sched.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sched = EventScheduler()
    fired = []
    for name in "abcde":
        sched.schedule(2.0, lambda n=name: fired.append(n))
    sched.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.schedule(4.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [4.0]


def test_schedule_during_run():
    sched = EventScheduler()
    fired = []

    def chain():
        fired.append(sched.now)
        if len(fired) < 3:
            sched.schedule(1.0, chain)

    sched.schedule(1.0, chain)
    sched.run()
    assert fired == [1.0, 2.0, 3.0]


def test_rejects_negative_delay():
    sched = EventScheduler()
    with pytest.raises(SchedulerError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_rejects_past():
    sched = EventScheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_at(4.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = EventScheduler()
    fired = []
    event = sched.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sched.run()
    assert fired == []


def test_step_returns_false_when_empty():
    assert EventScheduler().step() is False


def test_run_counts_fired_events():
    sched = EventScheduler()
    for _ in range(4):
        sched.schedule(1.0, lambda: None)
    assert sched.run() == 4
    assert sched.fired == 4


def test_run_until_predicate():
    sched = EventScheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), lambda i=i: fired.append(i))
    sched.run_until(lambda: len(fired) >= 3)
    assert len(fired) == 3
    assert sched.pending == 7


def test_runaway_guard():
    sched = EventScheduler()

    def forever():
        sched.schedule(1.0, forever)

    sched.schedule(1.0, forever)
    with pytest.raises(SchedulerError):
        sched.run(max_events=100)


def test_not_reentrant():
    sched = EventScheduler()
    errors = []

    def reenter():
        try:
            sched.run()
        except SchedulerError as exc:
            errors.append(exc)

    sched.schedule(1.0, reenter)
    sched.run()
    assert len(errors) == 1
