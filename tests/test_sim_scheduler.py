"""EventScheduler: ordering, cancellation, run modes."""

import pytest

from repro.errors import SchedulerError
from repro.sim.scheduler import EventScheduler


def test_fires_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.schedule(5.0, lambda: fired.append("b"))
    sched.schedule(1.0, lambda: fired.append("a"))
    sched.schedule(9.0, lambda: fired.append("c"))
    sched.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sched = EventScheduler()
    fired = []
    for name in "abcde":
        sched.schedule(2.0, lambda n=name: fired.append(n))
    sched.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.schedule(4.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [4.0]


def test_schedule_during_run():
    sched = EventScheduler()
    fired = []

    def chain():
        fired.append(sched.now)
        if len(fired) < 3:
            sched.schedule(1.0, chain)

    sched.schedule(1.0, chain)
    sched.run()
    assert fired == [1.0, 2.0, 3.0]


def test_rejects_negative_delay():
    sched = EventScheduler()
    with pytest.raises(SchedulerError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_rejects_past():
    sched = EventScheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_at(4.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = EventScheduler()
    fired = []
    event = sched.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sched.run()
    assert fired == []


def test_pending_excludes_cancelled():
    sched = EventScheduler()
    events = [sched.schedule(float(i + 1), lambda: None) for i in range(5)]
    events[1].cancel()
    events[3].cancel()
    assert sched.pending == 3


def test_compaction_under_timer_churn():
    # Retransmission-style churn: a pile of timers, nearly all cancelled
    # (acked) before they fire.  The heap must compact, the live count must
    # stay exact, and survivors must still fire in order.
    sched = EventScheduler()
    fired = []
    events = [
        sched.schedule(100.0 + i, lambda i=i: fired.append(i))
        for i in range(400)
    ]
    for i, event in enumerate(events):
        if i % 20 != 0:
            event.cancel()
    live = [i for i in range(400) if i % 20 == 0]
    assert sched.compactions > 0
    assert sched.pending == len(live)
    sched.run()
    assert fired == live
    assert sched.pending == 0


def test_compaction_during_run_keeps_heap_valid():
    # Cancel-and-rearm while the run loop holds its local heap binding:
    # compaction happens mid-run and must not strand or reorder entries.
    sched = EventScheduler()
    fired = []
    armed = []

    def tick(n):
        if armed:
            armed.pop().cancel()
        if n < 300:
            fired.append(n)
            armed.append(
                sched.schedule(1000.0, lambda: fired.append("timeout"))
            )
            sched.schedule(1.0, tick, args=(n + 1,))

    sched.schedule(1.0, tick, args=(0,))
    sched.run()
    assert fired == list(range(300))
    assert sched.compactions > 0
    assert sched.pending == 0


def test_tie_break_contract():
    # The public guarantee (see the scheduler module docstring): events
    # scheduled for the same simulated time fire in POSTING order, across
    # every scheduling entry point (post/post_at/schedule/schedule_at),
    # and the order survives cancellations and heap compaction because
    # surviving entries keep their (time, seq) keys.  repro.check's
    # choice points enumerate alternatives to exactly this order, so it
    # must hold bit-for-bit.
    sched = EventScheduler()
    fired = []

    # Interleave all four scheduling paths at one instant, twice over.
    sched.post(5.0, lambda: fired.append("post-0"))
    sched.schedule(5.0, lambda: fired.append("sched-1"))
    sched.post_at(5.0, lambda: fired.append("post_at-2"))
    sched.schedule_at(5.0, lambda: fired.append("sched_at-3"))
    doomed = sched.schedule(5.0, lambda: fired.append("cancelled"))
    sched.post(5.0, lambda: fired.append("post-4"))
    doomed.cancel()
    sched.schedule(5.0, lambda: fired.append("sched-5"))

    # A later instant posted earlier must still fire later...
    sched.post(7.0, lambda: fired.append("late"))
    # ...and churn enough cancelled timers to force a compaction while
    # the tied group is still queued.
    churn = [sched.schedule(6.0, lambda: fired.append("churn")) for _ in range(200)]
    for event in churn:
        event.cancel()
    assert sched.compactions > 0

    sched.run()
    assert fired == [
        "post-0",
        "sched-1",
        "post_at-2",
        "sched_at-3",
        "post-4",
        "sched-5",
        "late",
    ]


def test_tie_breaker_hook_sees_tied_groups():
    # With a tie_breaker installed, run() hands every same-time group of
    # live entries to the hook in (time, seq) order and fires the chosen
    # entry; the rest are re-offered (arity n, then n-1, ...).
    sched = EventScheduler()
    fired = []
    groups = []
    for name in "abc":
        sched.schedule(2.0, lambda n=name: fired.append(n))
    sched.schedule(4.0, lambda: fired.append("solo"))

    def last_first(tied):
        groups.append(len(tied))
        return len(tied) - 1

    sched.tie_breaker = last_first
    sched.run()
    # Hook consulted for the 3-group then the remaining 2-group; the solo
    # entry never reaches the hook.
    assert groups == [3, 2]
    assert fired == ["c", "b", "a", "solo"]


def test_tie_breaker_always_default_matches_plain_run():
    # A hook that always returns 0 must reproduce the tie-break contract
    # exactly — the identity repro.check's empty decision vector relies on.
    def build(hooked):
        sched = EventScheduler()
        fired = []
        for i in range(6):
            sched.post(3.0, lambda i=i: fired.append(i))
        sched.schedule(3.0, lambda: fired.append("ev"))
        if hooked:
            sched.tie_breaker = lambda tied: 0
        count = sched.run()
        return fired, count

    plain, plain_count = build(hooked=False)
    hooked, hooked_count = build(hooked=True)
    assert hooked == plain
    assert hooked_count == plain_count


def test_tie_breaker_skips_cancelled_entries():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append("a"))
    doomed = sched.schedule(1.0, lambda: fired.append("doomed"))
    sched.schedule(1.0, lambda: fired.append("b"))
    doomed.cancel()
    seen = []
    sched.tie_breaker = lambda tied: seen.append(len(tied)) or 0
    sched.run()
    assert fired == ["a", "b"]
    assert seen == [2]  # the cancelled entry was never offered


def test_step_returns_false_when_empty():
    assert EventScheduler().step() is False


def test_run_counts_fired_events():
    sched = EventScheduler()
    for _ in range(4):
        sched.schedule(1.0, lambda: None)
    assert sched.run() == 4
    assert sched.fired == 4


def test_run_until_predicate():
    sched = EventScheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), lambda i=i: fired.append(i))
    sched.run_until(lambda: len(fired) >= 3)
    assert len(fired) == 3
    assert sched.pending == 7


def test_runaway_guard():
    sched = EventScheduler()

    def forever():
        sched.schedule(1.0, forever)

    sched.schedule(1.0, forever)
    with pytest.raises(SchedulerError):
        sched.run(max_events=100)


def test_not_reentrant():
    sched = EventScheduler()
    errors = []

    def reenter():
        try:
            sched.run()
        except SchedulerError as exc:
            errors.append(exc)

    sched.schedule(1.0, reenter)
    sched.run()
    assert len(errors) == 1
