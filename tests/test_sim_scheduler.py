"""EventScheduler: ordering, cancellation, run modes."""

import pytest

from repro.errors import SchedulerError
from repro.sim.scheduler import EventScheduler


def test_fires_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.schedule(5.0, lambda: fired.append("b"))
    sched.schedule(1.0, lambda: fired.append("a"))
    sched.schedule(9.0, lambda: fired.append("c"))
    sched.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sched = EventScheduler()
    fired = []
    for name in "abcde":
        sched.schedule(2.0, lambda n=name: fired.append(n))
    sched.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.schedule(4.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [4.0]


def test_schedule_during_run():
    sched = EventScheduler()
    fired = []

    def chain():
        fired.append(sched.now)
        if len(fired) < 3:
            sched.schedule(1.0, chain)

    sched.schedule(1.0, chain)
    sched.run()
    assert fired == [1.0, 2.0, 3.0]


def test_rejects_negative_delay():
    sched = EventScheduler()
    with pytest.raises(SchedulerError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_rejects_past():
    sched = EventScheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule_at(4.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = EventScheduler()
    fired = []
    event = sched.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sched.run()
    assert fired == []


def test_pending_excludes_cancelled():
    sched = EventScheduler()
    events = [sched.schedule(float(i + 1), lambda: None) for i in range(5)]
    events[1].cancel()
    events[3].cancel()
    assert sched.pending == 3


def test_compaction_under_timer_churn():
    # Retransmission-style churn: a pile of timers, nearly all cancelled
    # (acked) before they fire.  The heap must compact, the live count must
    # stay exact, and survivors must still fire in order.
    sched = EventScheduler()
    fired = []
    events = [
        sched.schedule(100.0 + i, lambda i=i: fired.append(i))
        for i in range(400)
    ]
    for i, event in enumerate(events):
        if i % 20 != 0:
            event.cancel()
    live = [i for i in range(400) if i % 20 == 0]
    assert sched.compactions > 0
    assert sched.pending == len(live)
    sched.run()
    assert fired == live
    assert sched.pending == 0


def test_compaction_during_run_keeps_heap_valid():
    # Cancel-and-rearm while the run loop holds its local heap binding:
    # compaction happens mid-run and must not strand or reorder entries.
    sched = EventScheduler()
    fired = []
    armed = []

    def tick(n):
        if armed:
            armed.pop().cancel()
        if n < 300:
            fired.append(n)
            armed.append(
                sched.schedule(1000.0, lambda: fired.append("timeout"))
            )
            sched.schedule(1.0, tick, args=(n + 1,))

    sched.schedule(1.0, tick, args=(0,))
    sched.run()
    assert fired == list(range(300))
    assert sched.compactions > 0
    assert sched.pending == 0


def test_step_returns_false_when_empty():
    assert EventScheduler().step() is False


def test_run_counts_fired_events():
    sched = EventScheduler()
    for _ in range(4):
        sched.schedule(1.0, lambda: None)
    assert sched.run() == 4
    assert sched.fired == 4


def test_run_until_predicate():
    sched = EventScheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), lambda i=i: fired.append(i))
    sched.run_until(lambda: len(fired) >= 3)
    assert len(fired) == 3
    assert sched.pending == 7


def test_runaway_guard():
    sched = EventScheduler()

    def forever():
        sched.schedule(1.0, forever)

    sched.schedule(1.0, forever)
    with pytest.raises(SchedulerError):
        sched.run(max_events=100)


def test_not_reentrant():
    sched = EventScheduler()
    errors = []

    def reenter():
        try:
            sched.run()
        except SchedulerError as exc:
            errors.append(exc)

    sched.schedule(1.0, reenter)
    sched.run()
    assert len(errors) == 1
