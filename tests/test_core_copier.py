"""Copier transaction helpers."""

import pytest

from repro.core import copier
from repro.core.faillocks import FailLockTable
from repro.core.rowaa import RowaaPlanner
from repro.core.sessions import NominalSessionVector
from repro.storage.catalog import ReplicationCatalog
from repro.storage.database import SiteDatabase


@pytest.fixture
def world():
    sites = [0, 1, 2]
    items = list(range(4))
    nsv = NominalSessionVector(owner=0, site_ids=sites)
    locks = FailLockTable(site_ids=sites, item_ids=items)
    catalog = ReplicationCatalog.fully_replicated(items, sites)
    db = SiteDatabase(0, items)
    planner = RowaaPlanner(0, nsv, locks, catalog)
    return nsv, locks, db, planner


def test_choose_source_per_item(world):
    _nsv, locks, _db, planner = world
    locks.set_lock(0, 0)
    locks.set_lock(1, 0)
    locks.set_lock(1, 1)
    sources = copier.choose_copier_source(planner, [0, 1])
    assert sources == {0: 1, 1: 2}


def test_choose_source_reports_unavailable(world):
    nsv, locks, _db, planner = world
    locks.set_lock(0, 0)
    nsv.mark_down(1)
    nsv.mark_down(2)
    assert copier.choose_copier_source(planner, [0]) == {0: -1}


def test_request_payload_sorted():
    assert copier.build_copy_request([3, 1, 2]) == {"items": [1, 2, 3]}


def test_response_payload_carries_snapshots(world):
    _nsv, _locks, db, _planner = world
    db.apply_write(5, 1, 77, 5, time=1.0)
    payload = copier.build_copy_response(db, [1, 0])
    assert payload["copies"] == [(0, 0, 0), (1, 77, 5)]


def test_apply_response_installs_and_clears(world):
    _nsv, locks, db, _planner = world
    locks.set_lock(1, 0)
    refreshed = copier.apply_copy_response(
        db, locks, owner=0, copies=[(1, 99, 7)], time=2.0
    )
    assert refreshed == [1]
    assert db.read(1) == 99
    assert not locks.is_locked(1, 0)


def test_apply_response_clears_even_if_local_newer(world):
    _nsv, locks, db, _planner = world
    locks.set_lock(1, 0)
    db.apply_write(9, 1, 100, 9, time=1.0)
    refreshed = copier.apply_copy_response(
        db, locks, owner=0, copies=[(1, 50, 5)], time=2.0
    )
    assert refreshed == []          # stale copy not installed
    assert db.read(1) == 100
    assert not locks.is_locked(1, 0)  # but the lock is resolved


def test_clear_notice_roundtrip(world):
    _nsv, locks, _db, _planner = world
    locks.set_lock(2, 0)
    locks.set_lock(3, 0)
    notice = copier.build_clear_notice(0, [3, 2])
    assert notice == {"site": 0, "items": [2, 3]}
    cleared = copier.apply_clear_notice(locks, notice)
    assert cleared == 2
    assert locks.count_for(0) == 0


def test_clear_notice_ignores_already_clear(world):
    _nsv, locks, _db, _planner = world
    assert copier.apply_clear_notice(locks, {"site": 0, "items": [1]}) == 0
