"""SiteDatabase: staging, commit, abort, copier installs, redo log."""

import pytest

from repro.errors import StorageError, UnknownItemError
from repro.storage.database import SiteDatabase
from repro.storage.item import DataItem


@pytest.fixture
def db() -> SiteDatabase:
    return SiteDatabase(site_id=0, item_ids=range(5))


def test_initial_state(db):
    assert len(db) == 5
    assert db.item_ids == [0, 1, 2, 3, 4]
    assert db.read(3) == 0
    assert db.version(3) == 0


def test_unknown_item_raises(db):
    with pytest.raises(UnknownItemError):
        db.read(99)


def test_contains(db):
    assert 2 in db
    assert 9 not in db


def test_stage_then_commit_applies(db):
    db.stage(7, [(1, 111, 7), (2, 222, 7)])
    assert db.read(1) == 0  # staged, not visible
    written = db.commit_staged(7, time=10.0)
    assert written == [1, 2]
    assert db.read(1) == 111
    assert db.version(2) == 7


def test_stage_then_abort_discards(db):
    db.stage(7, [(1, 111, 7)])
    db.abort_staged(7)
    assert db.read(1) == 0
    assert not db.has_staged(7)


def test_abort_without_stage_is_noop(db):
    db.abort_staged(99)


def test_double_stage_rejected(db):
    db.stage(7, [(1, 111, 7)])
    with pytest.raises(StorageError):
        db.stage(7, [(2, 222, 7)])


def test_commit_without_stage_raises(db):
    with pytest.raises(StorageError):
        db.commit_staged(7, time=0.0)


def test_stage_validates_items(db):
    with pytest.raises(UnknownItemError):
        db.stage(7, [(99, 1, 7)])


def test_apply_write_direct(db):
    db.apply_write(5, 3, 42, 5, time=1.0)
    assert db.read(3) == 42
    assert db.version(3) == 5


def test_install_copy_advances_version(db):
    assert db.install_copy(2, 99, 4, time=1.0)
    assert db.read(2) == 99


def test_install_copy_refuses_stale(db):
    db.apply_write(9, 2, 100, 9, time=1.0)
    assert not db.install_copy(2, 55, 4, time=2.0)
    assert db.read(2) == 100  # unchanged


def test_install_copy_refuses_equal_version(db):
    db.apply_write(4, 2, 100, 4, time=1.0)
    assert not db.install_copy(2, 55, 4, time=2.0)


def test_create_and_drop_item(db):
    db.create_item(10, 5, 3, time=1.0)
    assert db.read(10) == 5
    db.drop_item(10)
    assert 10 not in db


def test_create_existing_item_rejected(db):
    with pytest.raises(StorageError):
        db.create_item(1, 0, 0, time=0.0)


def test_drop_missing_item_rejected(db):
    with pytest.raises(UnknownItemError):
        db.drop_item(42)


def test_redo_log_records_writes(db):
    db.apply_write(5, 1, 10, 5, time=1.0)
    db.apply_write(6, 1, 20, 6, time=2.0)
    records = db.log.for_item(1)
    assert len(records) == 2
    assert records[0].old_value == 0 and records[0].new_value == 10
    assert records[1].old_value == 10 and records[1].new_value == 20
    assert records[0].lsn < records[1].lsn
    assert db.log.for_txn(6)[0].new_version == 6


def test_dump_snapshot(db):
    db.apply_write(3, 0, 7, 3, time=1.0)
    dump = db.dump()
    assert dump[0] == (7, 3)
    assert dump[4] == (0, 0)


def test_snapshot_tuple():
    item = DataItem(item_id=2, value=9, version=4)
    assert item.snapshot() == (2, 9, 4)
    assert item.newer_than(DataItem(item_id=2, value=0, version=3))
