"""Session numbers and nominal session vectors."""

import pytest

from repro.core.sessions import NominalSessionVector, SessionRecord, SiteState
from repro.errors import SessionError


@pytest.fixture
def nsv() -> NominalSessionVector:
    return NominalSessionVector(owner=0, site_ids=[0, 1, 2, 3])


def test_initial_all_up(nsv):
    assert nsv.operational_sites() == [0, 1, 2, 3]
    assert nsv.my_session == 1
    assert nsv.is_operational(2)


def test_owner_must_be_member():
    with pytest.raises(SessionError):
        NominalSessionVector(owner=9, site_ids=[0, 1])


def test_mark_down_excludes_from_operational(nsv):
    nsv.mark_down(2)
    assert nsv.state_of(2) is SiteState.DOWN
    assert nsv.operational_sites() == [0, 1, 3]
    assert nsv.down_sites() == [2]


def test_operational_peers_excludes_owner(nsv):
    assert nsv.operational_peers() == [1, 2, 3]


def test_begin_new_session_increments(nsv):
    session = nsv.begin_new_session()
    assert session == 2
    assert nsv.my_session == 2
    assert nsv.state_of(0) is SiteState.RECOVERING


def test_recovering_site_not_operational(nsv):
    nsv.mark_recovering(1, 2)
    assert not nsv.is_operational(1)
    assert nsv.session_of(1) == 2


def test_mark_recovering_rejects_stale_session(nsv):
    nsv.mark_recovering(1, 5)
    with pytest.raises(SessionError):
        nsv.mark_recovering(1, 4)


def test_mark_up_with_session(nsv):
    nsv.mark_down(1)
    nsv.mark_up(1, session=3)
    assert nsv.is_operational(1)
    assert nsv.session_of(1) == 3


def test_mark_up_rejects_stale_session(nsv):
    nsv.mark_up(1, session=4)
    with pytest.raises(SessionError):
        nsv.mark_up(1, session=2)


def test_terminating_not_operational(nsv):
    nsv.mark_terminating(3)
    assert not nsv.is_operational(3)


def test_install_keeps_own_entry(nsv):
    nsv.begin_new_session()  # owner now session 2, RECOVERING
    incoming = [
        SessionRecord(site_id=0, session=1, state=SiteState.DOWN),  # stale view of us
        SessionRecord(site_id=1, session=7, state=SiteState.DOWN),
        SessionRecord(site_id=2, session=3, state=SiteState.UP),
        SessionRecord(site_id=3, session=1, state=SiteState.UP),
    ]
    nsv.install(incoming)
    assert nsv.my_session == 2  # our own entry preserved
    assert nsv.session_of(1) == 7
    assert nsv.state_of(1) is SiteState.DOWN


def test_install_rejects_unknown_site(nsv):
    with pytest.raises(SessionError):
        nsv.install([SessionRecord(site_id=42)])


def test_snapshot_is_deep(nsv):
    snap = nsv.snapshot()
    snap[1].session = 99
    assert nsv.session_of(1) == 1


def test_unknown_site_raises(nsv):
    with pytest.raises(SessionError):
        nsv.record(42)
