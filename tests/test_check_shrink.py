"""repro.check shrinking: delta-debugging decision vectors."""

import pytest

from repro.check import CheckConfig, run_schedule, shrink
from repro.errors import CheckError

# max_recoveries=0 keeps post-crash fault points degenerate (a single
# option is never a choice), so the noise positions in the padded vector
# land on order choices that do not matter for the bug.  With recovery
# enabled the story changes: taking alternative 1 at a later fault point
# RECOVERS the crashed site, which restores fail-lock coverage and masks
# the planted mutation — a correct (and instructive) non-violation; see
# test_recovery_masks_the_mutation.
_CONFIG = CheckConfig(mutate=True, max_recoveries=0, txns=4)


def test_shrink_removes_noise_deviations():
    noisy = [1, 1, 1, 0, 1]
    assert not run_schedule(_CONFIG, noisy).clean  # precondition
    result = shrink(_CONFIG, noisy)
    assert result.vector == [1]
    assert result.removed == 3  # nonzero deviations dropped
    assert result.invariant == "faillock-coverage"
    assert result.tests_run > 0
    assert any(
        v.invariant == result.invariant for v in result.run.violations
    )


def test_shrunk_vector_is_one_minimal():
    result = shrink(_CONFIG, [1, 1, 1, 0, 1])
    # 1-minimality: zeroing any single remaining deviation loses the bug.
    for position, value in enumerate(result.vector):
        if value == 0:
            continue
        weakened = list(result.vector)
        weakened[position] = 0
        assert run_schedule(_CONFIG, weakened).clean
    # And lowering any remaining value does too (value minimality).
    for position, value in enumerate(result.vector):
        for lower in range(1, value):
            lowered = list(result.vector)
            lowered[position] = lower
            assert run_schedule(_CONFIG, lowered).clean


def test_shrink_is_deterministic():
    first = shrink(_CONFIG, [1, 1, 1, 0, 1])
    second = shrink(_CONFIG, [1, 1, 1, 0, 1])
    assert first.vector == second.vector
    assert first.tests_run == second.tests_run


def test_shrink_of_already_minimal_vector_is_identity():
    result = shrink(_CONFIG, [1])
    assert result.vector == [1]
    assert result.removed == 0


def test_shrink_requires_a_violating_input():
    with pytest.raises(CheckError):
        shrink(_CONFIG, [])  # empty vector is clean even when mutated
    with pytest.raises(CheckError):
        shrink(CheckConfig(), [1])  # correct protocol never violates


def test_recovery_masks_the_mutation():
    # Documented behaviour (see docs/MODELCHECK.md): crashing site 0 and
    # recovering it later re-establishes coverage, so the mutated system
    # shows no violation — shrinking hinges on the crash staying in force.
    with_recovery = CheckConfig(mutate=True, txns=4)  # max_recoveries=1
    crash_only = run_schedule(with_recovery, [1])
    assert not crash_only.clean
    # Position 4 is the next fault point (txn 2 boundary); alternative 1
    # there is "recover site 0".
    recover_point = next(
        i
        for i, d in enumerate(crash_only.decisions[1:], start=1)
        if d.kind == "fault"
    )
    vector = [0] * (recover_point + 1)
    vector[0] = 1
    vector[recover_point] = 1
    crash_then_recover = run_schedule(with_recovery, vector)
    assert crash_then_recover.chosen.count(1) == 2
    assert crash_then_recover.clean
