"""repro.check explorer: bounded DFS, pruning, determinism."""

import pytest

from repro.check import CheckConfig, explore, run_schedule


def test_explorer_finds_the_planted_mutation():
    # The PR-1 protocol mutation (fail-lock setting disabled): the
    # explorer must find a violating schedule within a small budget.
    result = explore(CheckConfig(mutate=True), max_runs=60)
    assert result.found
    assert result.violation.invariant == "faillock-coverage"
    assert result.stats.runs <= 60
    # The counterexample replays to the same violation on demand.
    replay = run_schedule(result.config, result.counterexample)
    assert any(
        v.invariant == "faillock-coverage" for v in replay.violations
    )


def test_exploration_is_deterministic():
    first = explore(CheckConfig(mutate=True), max_runs=60)
    second = explore(CheckConfig(mutate=True), max_runs=60)
    assert first.stats == second.stats
    assert first.counterexample == second.counterexample


def test_clean_config_explores_without_violations():
    result = explore(CheckConfig(txns=2), max_runs=40)
    assert not result.found
    assert result.counterexample is None
    assert result.stats.violations_found == 0
    assert result.stats.runs > 1  # it actually branched
    assert result.stats.states > 0


def test_budget_exhaustion_is_flagged():
    result = explore(CheckConfig(txns=2), max_runs=3)
    assert result.stats.runs == 3
    assert result.stats.budget_exhausted
    exhaustive = explore(CheckConfig(txns=1, explore_faults=False), max_runs=500)
    assert not exhaustive.stats.budget_exhausted  # frontier drained first


def test_visited_state_pruning_prunes():
    # Small space, generous budget, sleep sets off so commuting branches
    # actually get expanded: some of them must then collapse onto
    # already-expanded state fingerprints.
    result = explore(CheckConfig(txns=2), max_runs=200, sleep_sets=False)
    assert result.stats.pruned_visited > 0
    assert not result.stats.budget_exhausted  # space fully drained


def test_sleep_sets_reduce_runs_without_losing_the_bug():
    config = CheckConfig(mutate=True)
    pruned = explore(config, max_runs=120)
    unpruned = explore(config, max_runs=120, sleep_sets=False)
    assert pruned.found and unpruned.found
    # Both find the same (shrinkable) class of bug...
    assert pruned.violation.invariant == unpruned.violation.invariant
    # ...and the heuristic never explores MORE than the full expansion.
    assert pruned.stats.runs <= unpruned.stats.runs
    assert pruned.stats.pruned_sleep > 0


def test_keep_going_collects_multiple_violating_schedules():
    stopped = explore(CheckConfig(mutate=True), max_runs=40)
    kept = explore(
        CheckConfig(mutate=True), max_runs=40, stop_on_violation=False
    )
    assert kept.stats.violations_found >= stopped.stats.violations_found
    assert kept.found  # first counterexample still recorded


@pytest.mark.slow
def test_deep_exploration_stays_deterministic_and_clean():
    # Deep sweep of the CORRECT protocol: a larger budget with fates
    # enabled must stay violation-free and bit-reproducible.  Excluded
    # from tier-1 (see pyproject `-m "not slow"`); CI runs it via
    # `pytest -m slow`.
    config = CheckConfig(txns=6, explore_fates=True, max_drops=2, max_branch=4)
    first = explore(
        config, max_runs=400, stop_on_violation=False, sleep_sets=False
    )
    assert first.stats.violations_found == 0
    assert first.stats.runs == 400  # space is larger than the budget
    assert first.stats.budget_exhausted
    second = explore(
        config, max_runs=400, stop_on_violation=False, sleep_sets=False
    )
    assert first.stats == second.stats
    # Uncapped, the same space drains completely — and stays clean.
    full = explore(
        config, max_runs=2000, stop_on_violation=False, sleep_sets=False
    )
    assert not full.stats.budget_exhausted
    assert full.stats.violations_found == 0
    assert full.stats.runs > 400
