"""Control transactions: payload round-trips and state transitions."""

import pytest

from repro.core.control import (
    FailureAnnouncement,
    RecoveryAnnouncement,
    RecoveryState,
    decode_vector,
    encode_vector,
)
from repro.core.faillocks import FailLockTable
from repro.core.sessions import NominalSessionVector, SessionRecord, SiteState


def test_vector_encode_decode_roundtrip():
    records = [
        SessionRecord(site_id=0, session=3, state=SiteState.UP),
        SessionRecord(site_id=1, session=1, state=SiteState.DOWN),
    ]
    decoded = decode_vector(encode_vector(records))
    assert [(r.site_id, r.session, r.state) for r in decoded] == [
        (0, 3, SiteState.UP),
        (1, 1, SiteState.DOWN),
    ]


def test_recovery_announcement_roundtrip_and_apply():
    ann = RecoveryAnnouncement(site_id=2, new_session=4)
    ann2 = RecoveryAnnouncement.from_payload(ann.to_payload())
    nsv = NominalSessionVector(owner=0, site_ids=[0, 1, 2])
    nsv.mark_down(2)
    ann2.apply_at_operational_site(nsv)
    assert nsv.session_of(2) == 4
    assert nsv.state_of(2) is SiteState.RECOVERING


def test_recovery_state_capture_and_install():
    sites = [0, 1]
    items = range(3)
    # Peer (site 1) state: knows item 2 is stale on site 0.
    peer_nsv = NominalSessionVector(owner=1, site_ids=sites)
    peer_nsv.mark_up(0, session=2)
    peer_locks = FailLockTable(site_ids=sites, item_ids=items)
    peer_locks.set_lock(2, 0)
    state = RecoveryState.capture(1, peer_nsv, peer_locks)
    state = RecoveryState.from_payload(state.to_payload())
    assert state.responder == 1
    assert state.size() == 3

    # Recovering site installs it.
    my_nsv = NominalSessionVector(owner=0, site_ids=sites)
    my_nsv.begin_new_session()
    my_locks = FailLockTable(site_ids=sites, item_ids=items)
    state.install_at_recovering_site(my_nsv, my_locks)
    assert my_nsv.is_operational(0)          # marked up after install
    assert my_nsv.my_session == 2            # own entry kept
    assert my_locks.is_locked(2, 0)          # stale item identified


def test_failure_announcement_apply_reports_changes():
    nsv = NominalSessionVector(owner=0, site_ids=[0, 1, 2])
    ann = FailureAnnouncement(announcer=0, failed_sites=[1, 2])
    changed = ann.apply(nsv)
    assert changed == [1, 2]
    assert nsv.down_sites() == [1, 2]
    # Re-applying changes nothing.
    assert ann.apply(nsv) == []


def test_failure_announcement_roundtrip():
    ann = FailureAnnouncement(announcer=3, failed_sites=[1])
    ann2 = FailureAnnouncement.from_payload(ann.to_payload())
    assert ann2.announcer == 3
    assert ann2.failed_sites == [1]
