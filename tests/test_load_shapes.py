"""Load shapes and hot-key storms (repro.workload.shapes).

Shapes are checked analytically (known values at known times); arrivals
via thinning are checked for determinism and for respecting the
instantaneous rate; the storm workload is checked for epoch rotation and
for the zero-extra-draws property that keeps soak runs byte-stable.
"""

import math
import random

import pytest

from repro.errors import WorkloadError
from repro.workload.shapes import (
    ConstantShape,
    DiurnalShape,
    FlashCrowdShape,
    HotKeyStormWorkload,
    RampShape,
    next_arrival_ms,
)


# -- shapes, analytically -----------------------------------------------------


def test_constant_shape():
    shape = ConstantShape(25.0)
    assert shape.rate_at(0.0) == 25.0
    assert shape.rate_at(1e9) == 25.0
    assert shape.peak_rate() == 25.0
    assert shape.mean_rate(60_000.0) == pytest.approx(25.0)


def test_ramp_shape_interpolates_then_holds():
    shape = RampShape(10.0, 50.0, duration_ms=1000.0)
    assert shape.rate_at(0.0) == 10.0
    assert shape.rate_at(500.0) == pytest.approx(30.0)
    assert shape.rate_at(1000.0) == 50.0
    assert shape.rate_at(5000.0) == 50.0
    assert shape.peak_rate() == 50.0


def test_diurnal_shape_base_trough_and_mid_period_peak():
    shape = DiurnalShape(10.0, 40.0, period_ms=20_000.0)
    assert shape.rate_at(0.0) == pytest.approx(10.0)
    assert shape.rate_at(10_000.0) == pytest.approx(40.0)  # mid-period
    assert shape.rate_at(20_000.0) == pytest.approx(10.0)  # full period
    assert shape.rate_at(5_000.0) == pytest.approx(25.0)  # quarter: midpoint
    assert shape.peak_rate() == 40.0
    # One full period averages (base + peak) / 2 for a pure sinusoid.
    assert shape.mean_rate(20_000.0) == pytest.approx(25.0, rel=0.01)


def test_flash_crowd_shape_rise_and_decay():
    shape = FlashCrowdShape(10.0, 100.0, at_ms=5000.0,
                            rise_ms=1000.0, fall_ms=2000.0)
    assert shape.rate_at(0.0) == 10.0
    assert shape.rate_at(4999.0) == 10.0
    assert shape.rate_at(5500.0) == pytest.approx(55.0)  # halfway up
    assert shape.rate_at(6000.0) == pytest.approx(100.0)  # peak
    # One time constant into the decay: base + surge / e.
    assert shape.rate_at(8000.0) == pytest.approx(10.0 + 90.0 / math.e)
    assert shape.peak_rate() == 100.0


def test_shapes_reject_bad_args():
    with pytest.raises(WorkloadError):
        ConstantShape(0.0)
    with pytest.raises(WorkloadError):
        RampShape(10.0, 20.0, duration_ms=0.0)
    with pytest.raises(WorkloadError):
        DiurnalShape(10.0, 5.0, period_ms=1000.0)  # peak < base
    with pytest.raises(WorkloadError):
        FlashCrowdShape(10.0, 100.0, at_ms=-1.0)


def test_describe_is_humane():
    assert "constant" in ConstantShape(25.0).describe()
    assert "ramp" in RampShape(1.0, 2.0, 10.0).describe()
    assert "diurnal" in DiurnalShape(1.0, 2.0, 10.0).describe()
    assert "flash" in FlashCrowdShape(1.0, 2.0, 10.0).describe()


# -- thinning -----------------------------------------------------------------


def test_next_arrival_is_deterministic_and_increasing():
    shape = DiurnalShape(5.0, 40.0, period_ms=10_000.0)

    def arrivals(seed, count=200):
        rng = random.Random(seed)
        times, t = [], 0.0
        for _ in range(count):
            t = next_arrival_ms(shape, rng, t)
            times.append(t)
        return times

    first, second = arrivals(42), arrivals(42)
    assert first == second
    assert all(b > a for a, b in zip(first, first[1:]))
    assert arrivals(43) != first


def test_thinned_rate_tracks_instantaneous_rate():
    """Over many arrivals, the per-region density matches rate_at: the
    diurnal peak half of the period must see more arrivals than the
    trough half in roughly the ratio of their mean rates."""
    period = 10_000.0
    shape = DiurnalShape(5.0, 45.0, period_ms=period)
    rng = random.Random(7)
    t, trough, peak = 0.0, 0, 0
    for _ in range(12_000):
        t = next_arrival_ms(shape, rng, t)
        phase = t % period
        if period * 0.25 <= phase < period * 0.75:
            peak += 1
        else:
            trough += 1
    # Analytic ratio of mean rates across the two half-periods:
    # peak half averages base + swing*(0.5 + 1/pi), trough half
    # base + swing*(0.5 - 1/pi) -> ~= 3.17 with these numbers.
    swing = 45.0 - 5.0
    expected = (5.0 + swing * (0.5 + 1.0 / math.pi)) / (
        5.0 + swing * (0.5 - 1.0 / math.pi)
    )
    assert peak / trough == pytest.approx(expected, rel=0.1)


def test_constant_shape_thinning_matches_homogeneous_rate():
    shape = ConstantShape(50.0)
    rng = random.Random(3)
    t = 0.0
    count = 5000
    for _ in range(count):
        t = next_arrival_ms(shape, rng, t)
    # 50 tps -> 20 ms mean gap.
    assert t / count == pytest.approx(20.0, rel=0.05)


# -- hot-key storms -----------------------------------------------------------


def test_storm_epochs_rotate_hot_items():
    items = list(range(64))
    workload = HotKeyStormWorkload(items, max_txn_size=1, skew=1.5,
                                   storm_every_ms=1000.0)
    assert workload.epoch_of(0.0) == 0
    assert workload.epoch_of(999.9) == 0
    assert workload.epoch_of(1000.0) == 1
    # Rank 0 (the hottest key) maps to different items in different epochs.
    hot_keys = {workload._item_for(0, epoch) for epoch in range(8)}
    assert len(hot_keys) > 1
    # Within one epoch the mapping is a bijection over the item set.
    epoch_view = [workload._item_for(rank, 3) for rank in range(len(items))]
    assert sorted(epoch_view) == items


def test_storm_rotation_consumes_no_extra_draws():
    """Epoch rotation is a pure function of t: generating the same seq at
    two different times consumes exactly the same RNG draws."""
    workload = HotKeyStormWorkload(list(range(32)), max_txn_size=4,
                                   storm_every_ms=500.0)
    rng_a, rng_b = random.Random(88), random.Random(88)
    ops_a = workload.generate_at(1, rng_a, t_ms=100.0)  # epoch 0
    ops_b = workload.generate_at(1, rng_b, t_ms=99_100.0)  # epoch 198
    assert rng_a.getstate() == rng_b.getstate()
    # Same draws, rotated items: op count and kinds match, ranks map
    # through different epoch offsets.
    assert len(ops_a) == len(ops_b)
    assert [op.kind for op in ops_a] == [op.kind for op in ops_b]


def test_storm_generate_pins_epoch_zero():
    workload = HotKeyStormWorkload(list(range(16)), max_txn_size=3,
                                   storm_every_ms=1000.0)
    rng_a, rng_b = random.Random(5), random.Random(5)
    via_generate = workload.generate(9, rng_a)
    via_epoch0 = workload.generate_at(9, rng_b, t_ms=0.0)
    assert [(o.kind, o.item_id) for o in via_generate] == [
        (o.kind, o.item_id) for o in via_epoch0
    ]


def test_storm_rejects_bad_args():
    with pytest.raises(WorkloadError):
        HotKeyStormWorkload([1, 2], max_txn_size=0)
    with pytest.raises(WorkloadError):
        HotKeyStormWorkload([1, 2], max_txn_size=2, storm_every_ms=0.0)
