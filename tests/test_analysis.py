"""CSV export and protocol anatomy."""

import pytest

from repro.analysis import (
    control_records_csv,
    copier_records_csv,
    faillock_series_csv,
    message_anatomy,
    protocol_summary,
    txn_message_count,
    txn_records_csv,
    write_csv,
)
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, FixedSite, RecoverSite, Scenario
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator

from conftest import make_scenario, run_cluster


@pytest.fixture(scope="module")
def run():
    config = SystemConfig(db_size=10, num_sites=3, max_txn_size=4, seed=8)
    scenario = make_scenario(config, 25)
    scenario.add_action(5, FailSite(2))
    scenario.add_action(15, RecoverSite(2))
    cluster = run_cluster(config, scenario)
    return cluster


def test_faillock_csv_shape(run):
    rows = faillock_series_csv(run.metrics)
    assert rows[0] == ["txn_seq", "time_ms", "site_0", "site_1", "site_2"]
    assert len(rows) == 26  # header + 25 samples
    assert rows[1][0] == "1"


def test_txn_csv_shape(run):
    rows = txn_records_csv(run.metrics)
    assert rows[0][0] == "txn_id"
    assert len(rows) == 26
    assert all(row[3] in ("0", "1") for row in rows[1:])


def test_control_and_copier_csv(run):
    controls = control_records_csv(run.metrics)
    assert controls[0][0] == "kind"
    assert len(controls) >= 2  # at least the type-1 pair
    copiers = copier_records_csv(run.metrics)
    assert copiers[0][0] == "txn_id"


def test_write_csv_roundtrip(run, tmp_path):
    import csv

    path = write_csv(faillock_series_csv(run.metrics), tmp_path / "locks.csv")
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows == faillock_series_csv(run.metrics)


def test_message_anatomy_of_clean_write():
    """A single-write transaction over 3 sites: 2 VOTE_REQ + 2 VOTE_ACK +
    2 COMMIT + 2 COMMIT_ACK = 8 protocol messages."""

    class OneWrite(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.WRITE, 1)]

    config = SystemConfig(db_size=4, num_sites=3, max_txn_size=2, seed=8)
    cluster = Cluster(config)
    cluster.run(Scenario(workload=OneWrite(), txn_count=1, policy=FixedSite(0)))
    anatomy = message_anatomy(cluster.network.trace, 1)
    assert anatomy == {
        "vote_req": 2,
        "vote_ack": 2,
        "commit": 2,
        "commit_ack": 2,
    }
    assert txn_message_count(cluster.network.trace, 1) == 8


def test_read_only_txn_has_no_protocol_messages():
    class OneRead(WorkloadGenerator):
        def generate(self, txn_seq, rng):
            return [Operation(OpKind.READ, 1)]

    config = SystemConfig(db_size=4, num_sites=3, max_txn_size=2, seed=8)
    cluster = Cluster(config)
    cluster.run(Scenario(workload=OneRead(), txn_count=1, policy=FixedSite(0)))
    assert txn_message_count(cluster.network.trace, 1) == 0


def test_protocol_summary_classes(run):
    rows = protocol_summary(run.network.trace, run.metrics)
    by_label = {r.label: r for r in rows}
    clean = by_label["committed, no copier"]
    assert clean.txns > 0
    assert clean.avg_messages > 0
    assert clean.avg_communication_ms == pytest.approx(clean.avg_messages * 9.0)


def test_copier_txns_cost_more_messages():
    """Compare anatomy of copier vs non-copier committed transactions in a
    recovery run that generates at least one copier."""
    config = SystemConfig(db_size=6, num_sites=3, max_txn_size=4, seed=12)
    scenario = make_scenario(config, 60)
    scenario.add_action(2, FailSite(0))
    scenario.add_action(20, RecoverSite(0))
    from repro.system.scenario import Weighted

    scenario.policy = Weighted({0: 1.0, 1: 0.01, 2: 0.01})
    cluster = run_cluster(config, scenario)
    rows = protocol_summary(cluster.network.trace, cluster.metrics)
    by_label = {r.label: r for r in rows}
    with_copier = by_label["committed, with copier"]
    without = by_label["committed, no copier"]
    assert with_copier.txns > 0
    assert with_copier.avg_messages > without.avg_messages
