"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.cpu import CpuResource
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import EventScheduler
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.costs import CostModel
from repro.system.scenario import Scenario
from repro.workload.uniform import UniformWorkload


@pytest.fixture
def scheduler() -> EventScheduler:
    return EventScheduler()


@pytest.fixture
def cpu(scheduler: EventScheduler) -> CpuResource:
    return CpuResource(scheduler, cores=1)


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(12345)


@pytest.fixture
def small_config() -> SystemConfig:
    """A tiny, fast configuration: 10 items, 3 sites."""
    return SystemConfig(db_size=10, num_sites=3, max_txn_size=4, seed=99)


@pytest.fixture
def paper2_config() -> SystemConfig:
    """The paper's Experiment 2 configuration."""
    return SystemConfig.paper_experiment2(seed=42)


@pytest.fixture
def free_config() -> SystemConfig:
    """Zero-cost configuration: protocol logic only, no timing."""
    return SystemConfig(
        db_size=10, num_sites=3, max_txn_size=4, seed=99, costs=CostModel.free()
    )


def make_scenario(config: SystemConfig, txn_count: int, **kwargs) -> Scenario:
    """A uniform-workload scenario over ``config``'s item space."""
    return Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=txn_count,
        **kwargs,
    )


def run_cluster(config: SystemConfig, scenario: Scenario) -> Cluster:
    """Build a cluster, run the scenario, return the cluster."""
    cluster = Cluster(config)
    cluster.run(scenario)
    return cluster
