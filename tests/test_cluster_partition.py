"""Network partitions: the substrate behaviour the protocol must survive."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import FailureDetection, SystemConfig
from repro.system.scenario import (
    FixedSite,
    HealNetwork,
    PartitionNetwork,
    Scenario,
)
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator

from conftest import make_scenario, run_cluster


class OneWrite(WorkloadGenerator):
    def generate(self, txn_seq, rng):
        return [Operation(OpKind.WRITE, 1)]


def test_partition_isolates_participant():
    """A coordinator partitioned from a participant discovers it exactly
    like a site failure (timeout detection) and aborts the transaction."""
    config = SystemConfig(
        db_size=6, num_sites=3, max_txn_size=3, seed=1,
        detection=FailureDetection.TIMEOUT,
    )
    scenario = Scenario(workload=OneWrite(), txn_count=6, policy=FixedSite(0))
    scenario.add_action(3, PartitionNetwork(groups=((0, 1), (2,))))
    scenario.add_action(5, HealNetwork())
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    # Txn 3 hits the partition, aborts, announces type 2; txn 4 proceeds
    # without site 2.
    assert metrics.counters["aborts"] == 1
    assert metrics.aborted[0].seq == 3
    assert metrics.counters["commits"] == 5
    # Site 2 was marked down and fail-locked even though it never crashed.
    assert cluster.site(0).faillocks.count_for(2) > 0


def test_heal_alone_does_not_clear_faillocks():
    """After the partition heals, the isolated site's copies stay
    fail-locked until it runs recovery — the safe behaviour."""
    config = SystemConfig(
        db_size=6, num_sites=3, max_txn_size=3, seed=1,
        detection=FailureDetection.TIMEOUT,
    )
    scenario = Scenario(workload=OneWrite(), txn_count=8, policy=FixedSite(0))
    scenario.add_action(3, PartitionNetwork(groups=((0, 1), (2,))))
    scenario.add_action(6, HealNetwork())
    cluster = Cluster(config)
    cluster.run(scenario)
    assert cluster.site(0).faillocks.count_for(2) > 0


def test_partition_scenario_action_roundtrip():
    scenario = make_scenario(SystemConfig(db_size=4, num_sites=2, seed=1), 5)
    scenario.add_action(2, PartitionNetwork(groups=((0,), (1,))))
    scenario.add_action(3, HealNetwork())
    assert len(scenario.actions[2]) == 1
    assert len(scenario.actions[3]) == 1
