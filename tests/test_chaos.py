"""repro.chaos: fault injection, invariant auditing, seed sweeps."""

import pytest

from repro.chaos import (
    DROPPABLE,
    DUPLICABLE,
    FaultInjector,
    FaultPlan,
    InvariantAuditor,
    build_chaos_scenario,
    format_sweep_report,
    neuter_faillocks,
    run_chaos_seed,
    run_seed_sweep,
)
from repro.cli import main
from repro.errors import ConfigurationError
from repro.net.message import Message, MessageType
from repro.sim.rng import DeterministicRng
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, PartitionNetwork, RecoverSite


# -- fault plan ---------------------------------------------------------------


def test_fault_plan_validates_rates() -> None:
    with pytest.raises(ConfigurationError):
        FaultPlan(drop_rate=1.5).validate()
    with pytest.raises(ConfigurationError):
        FaultPlan(delay_max_ms=-1.0).validate()
    with pytest.raises(ConfigurationError):
        FaultPlan(min_up_sites=0).validate()
    FaultPlan().validate()  # defaults are valid


def test_droppable_excludes_two_phase_commit_traffic() -> None:
    """Dropping 2PC traffic would plant false failure suspicions of live
    sites (fail-stop violation); the plan must never allow it."""
    for mtype in (
        MessageType.VOTE_REQ,
        MessageType.COMMIT,
        MessageType.COPY_REQ,
        MessageType.FAILURE_ANNOUNCE,
        MessageType.VOTE_ACK,
        MessageType.COMMIT_ACK,
        MessageType.MGR_SUBMIT_TXN,
    ):
        assert mtype not in DROPPABLE
    assert MessageType.ABORT in DROPPABLE
    assert MessageType.CLEAR_FAILLOCKS in DROPPABLE
    # Everything duplicable is receiver-idempotent; acks are not in it.
    assert MessageType.VOTE_ACK not in DUPLICABLE
    assert MessageType.COMMIT in DUPLICABLE


def test_injector_only_faults_eligible_types() -> None:
    plan = FaultPlan(drop_rate=1.0, duplicate_rate=1.0, delay_rate=0.0)
    injector = FaultInjector(plan, DeterministicRng(7).stream("t"))
    vote_ack = Message(src=0, dst=1, mtype=MessageType.VOTE_ACK)
    fate = injector.intercept(vote_ack)
    assert fate is None  # not droppable, not duplicable, no delay roll
    abort = Message(src=0, dst=1, mtype=MessageType.ABORT)
    fate = injector.intercept(abort)
    assert fate is not None and fate.drop
    assert injector.stats.dropped == 1


# -- schedule generation ------------------------------------------------------


def test_schedule_is_deterministic_per_seed() -> None:
    config = SystemConfig(db_size=8, num_sites=4, seed=5)
    plan = FaultPlan()
    a = build_chaos_scenario(config, plan, DeterministicRng(5).stream("s"), 40)
    b = build_chaos_scenario(config, plan, DeterministicRng(5).stream("s"), 40)
    assert {k: [repr(x) for x in v] for k, v in a.actions.items()} == {
        k: [repr(x) for x in v] for k, v in b.actions.items()
    }


def test_schedule_forces_a_crash_and_respects_validity() -> None:
    config = SystemConfig(db_size=8, num_sites=4, seed=5)
    plan = FaultPlan()
    for seed in range(10):
        scenario = build_chaos_scenario(
            config, plan, DeterministicRng(seed).stream("s"), 50
        )
        up = set(config.site_ids)
        crashes = 0
        for seq in sorted(scenario.actions):
            for action in scenario.actions[seq]:
                if isinstance(action, FailSite):
                    assert action.site_id in up, "failed a down site"
                    up.discard(action.site_id)
                    crashes += 1
                    assert len(up) >= plan.min_up_sites
                elif isinstance(action, RecoverSite):
                    assert action.site_id not in up, "recovered an up site"
                    up.add(action.site_id)
        assert crashes >= 1, f"seed {seed}: force_crash produced no crash"


def test_schedule_partitions_only_when_enabled() -> None:
    config = SystemConfig(db_size=8, num_sites=4, seed=5)
    quiet = build_chaos_scenario(
        config, FaultPlan(), DeterministicRng(3).stream("s"), 200
    )
    assert not any(
        isinstance(a, PartitionNetwork)
        for actions in quiet.actions.values()
        for a in actions
    )
    noisy_plan = FaultPlan(partition_rate=0.4)
    noisy = build_chaos_scenario(
        config, noisy_plan, DeterministicRng(3).stream("s"), 200
    )
    assert any(
        isinstance(a, PartitionNetwork)
        for actions in noisy.actions.values()
        for a in actions
    )


# -- auditor hooks (synthetic events) -----------------------------------------


def _bare_cluster() -> Cluster:
    return Cluster(SystemConfig(db_size=4, num_sites=2, seed=1))


def test_auditor_flags_session_regression_per_channel() -> None:
    auditor = InvariantAuditor(_bare_cluster())
    auditor.on_message(Message(src=0, dst=1, mtype=MessageType.COMMIT, session=3))
    auditor.on_message(Message(src=0, dst=1, mtype=MessageType.COMMIT, session=2))
    assert [v.invariant for v in auditor.violations] == ["session-monotonicity"]


def test_auditor_allows_cross_channel_interleaving() -> None:
    """Only per-channel order is guaranteed; a lower session on another
    channel is legitimate interleaving, not a violation."""
    auditor = InvariantAuditor(_bare_cluster())
    auditor.on_message(Message(src=0, dst=1, mtype=MessageType.COMMIT, session=3))
    auditor.on_message(Message(src=0, dst=2, mtype=MessageType.COMMIT, session=1))
    auditor.on_message(Message(src=1, dst=0, mtype=MessageType.COMMIT, session=1))
    assert auditor.violations == []


def test_auditor_flags_commit_after_abort() -> None:
    cluster = _bare_cluster()
    auditor = InvariantAuditor(cluster)
    auditor.on_coordinator_abort(0, txn_id=9, reason="vote_nack")
    auditor.on_commit_applied(cluster.site(1), 9, [0], {0: [0, 1]})
    assert any(v.invariant == "atomicity" for v in auditor.violations)


def test_auditor_flags_missing_faillock_coverage() -> None:
    cluster = _bare_cluster()
    auditor = InvariantAuditor(cluster)
    # Item 0 written past site 1 (not a recipient), but nobody locked it.
    cluster.site(0).faillocks.clear_lock(0, 1)
    auditor.on_commit_applied(cluster.site(0), 3, [0], {0: [0]})
    assert any(v.invariant == "faillock-coverage" for v in auditor.violations)
    # Same event with the lock set is clean.
    clean = InvariantAuditor(cluster)
    cluster.site(0).faillocks.set_lock(0, 1)
    clean.on_commit_applied(cluster.site(0), 4, [0], {0: [0]})
    assert clean.violations == []


def test_auditor_quiescence_flags_unlocked_stale_copy() -> None:
    cluster = _bare_cluster()
    auditor = InvariantAuditor(cluster)
    cluster.site(0).db.apply_write(1, 0, 777, 5, 0.0)  # site 1 stays at v0
    findings = auditor.check_quiescence()
    assert any(
        v.invariant == "convergence" and v.site_id == 1 for v in findings
    )
    # Fail-locking the stale copy makes the same state consistent.
    cluster.site(0).faillocks.set_lock(0, 1)
    clean = InvariantAuditor(cluster)
    assert clean.check_quiescence() == []


def test_auditor_flags_unfinished_transactions() -> None:
    """Liveness: a submitted transaction with no DONE by quiescence."""
    auditor = InvariantAuditor(_bare_cluster())
    auditor.on_message(
        Message(src=2, dst=0, mtype=MessageType.MGR_SUBMIT_TXN, txn_id=5)
    )
    findings = auditor.check_quiescence()
    assert any(v.invariant == "liveness" for v in findings)
    # Completing it clears the finding.
    clean = InvariantAuditor(_bare_cluster())
    clean.on_message(
        Message(src=2, dst=0, mtype=MessageType.MGR_SUBMIT_TXN, txn_id=5)
    )
    clean.on_message(
        Message(src=0, dst=2, mtype=MessageType.MGR_TXN_DONE, txn_id=5)
    )
    assert not any(v.invariant == "liveness" for v in clean.check_quiescence())


def test_auditor_note_stall_flags_liveness() -> None:
    auditor = InvariantAuditor(_bare_cluster())
    auditor.note_stall()
    assert [v.invariant for v in auditor.violations] == ["liveness"]


def test_violations_recorded_in_cluster_metrics() -> None:
    cluster = _bare_cluster()
    auditor = InvariantAuditor(cluster)
    auditor.on_message(Message(src=0, dst=1, mtype=MessageType.COMMIT, session=3))
    auditor.on_message(Message(src=0, dst=1, mtype=MessageType.COMMIT, session=1))
    assert cluster.metrics.counters["violations"] == 1
    assert cluster.metrics.counters["violation_session-monotonicity"] == 1
    assert len(cluster.metrics.violations) == 1


# -- end-to-end runs ----------------------------------------------------------


def test_clean_protocol_has_zero_violations() -> None:
    result = run_chaos_seed(42, txns=40)
    assert result.violations == []
    assert result.commits > 0
    assert result.checks > 100
    assert result.fault_stats.total > 0, "chaos injected nothing"
    assert result.schedule_actions >= 1


def test_mutation_mode_is_detected() -> None:
    """The built-in mutation (fail-lock setting disabled) must be caught —
    otherwise the auditor is vacuous."""
    result = run_chaos_seed(42, txns=40, mutate=True)
    assert result.mutated
    assert len(result.violations) >= 1
    kinds = {v.invariant for v in result.violations}
    assert "faillock-coverage" in kinds


def test_neutered_table_never_sets_locks() -> None:
    cluster = _bare_cluster()
    neuter_faillocks(cluster)
    table = cluster.site(0).faillocks
    table.set_lock(0, 1)
    assert not table.is_locked(0, 1)
    table.update_with_recipients({0: [0]})
    assert not table.is_locked(0, 1)  # non-recipient NOT locked (the bug)


def test_sweep_replays_byte_identically() -> None:
    seeds = range(42, 45)
    first = format_sweep_report(run_seed_sweep(seeds, txns=30))
    second = format_sweep_report(run_seed_sweep(seeds, txns=30))
    assert first == second
    assert "no invariant violations." in first


def test_violation_fingerprint_is_stable_and_empty_when_clean() -> None:
    clean = run_chaos_seed(43, txns=30)
    assert clean.violation_fingerprint() == ""
    first = run_chaos_seed(42, txns=30, mutate=True)
    second = run_chaos_seed(42, txns=30, mutate=True)
    assert not first.clean
    assert first.violation_fingerprint() == second.violation_fingerprint()
    assert len(first.violation_fingerprint()) == 16  # blake2b-8 hex


def test_report_dedupes_repeated_violating_schedules() -> None:
    # The same seed run twice under mutation yields the same violating
    # schedule; the report prints it once and back-references the repeat.
    report = run_seed_sweep([42, 42, 43], txns=30, mutate=True)
    text = format_sweep_report(report)
    fingerprint = report.results[0].violation_fingerprint()
    assert f"seed 42: [sig {fingerprint}]" in text
    assert f"seed 42: same as seed 42 [sig {fingerprint}]" in text
    assert "duplicate seed(s) collapsed" in text
    # The full violation records appear once, not twice.
    sample = report.results[0].violations[0].format()
    assert text.count(sample) == 1
    # A different violating schedule keeps its own full listing.
    other = report.results[2].violation_fingerprint()
    assert other != fingerprint
    assert f"seed 43: [sig {other}]" in text


def test_sweep_aggregates() -> None:
    report = run_seed_sweep(range(42, 44), txns=30)
    assert report.seeds == [42, 43]
    assert report.total_checks > 0
    assert report.dirty_seeds == []


def test_tier1_invariant_matches_cluster_audit() -> None:
    """The chaos auditor and the cluster's own consistency audit agree on a
    clean run."""
    result = run_chaos_seed(43, txns=30)
    assert result.violations == []


# -- lossy-core mode ----------------------------------------------------------


def test_lossy_core_survives_the_full_fault_model() -> None:
    """Silent drops/dups/delays/reorder of ANY message type: the
    retransmission + timeout layers must keep every invariant (liveness
    included) intact."""
    result = run_chaos_seed(42, txns=30, plan=FaultPlan.lossy())
    assert result.violations == []
    assert not result.stalled
    assert result.commits > 0
    assert result.net_stats is not None
    assert result.net_stats.retransmissions > 0  # losses actually recovered
    assert result.net_stats.duplicates_suppressed > 0
    assert result.fault_stats.reordered > 0


def test_lossy_core_report_adds_transport_summary() -> None:
    report = run_seed_sweep(range(42, 44), txns=25, plan=FaultPlan.lossy())
    assert report.stalled_seeds == []
    text = format_sweep_report(report)
    assert "mode=lossy-core" in text
    assert "transport:" in text
    # Conservative-mode reports must NOT grow the new line.
    plain = format_sweep_report(run_seed_sweep(range(42, 43), txns=25))
    assert "transport:" not in plain and "mode=lossy-core" not in plain


# -- CLI ----------------------------------------------------------------------


def test_cli_chaos_lossy_mode_exits_zero(capsys) -> None:
    code = main(["chaos", "--mode", "lossy-core", "--seeds", "2", "--txns", "20"])
    out = capsys.readouterr().out
    assert code == 0
    assert "mode=lossy-core" in out
    assert "transport:" in out
    assert "no invariant violations." in out


def test_cli_chaos_clean_exits_zero(capsys) -> None:
    code = main(["chaos", "--seeds", "2", "--txns", "25"])
    out = capsys.readouterr().out
    assert code == 0
    assert "chaos sweep report" in out
    assert "no invariant violations." in out


def test_cli_chaos_mutate_exits_zero_on_detection(capsys) -> None:
    code = main(["chaos", "--seeds", "1", "--txns", "25", "--mutate"])
    out = capsys.readouterr().out
    assert code == 0  # detection succeeded
    assert "faillock-coverage" in out


def test_cli_chaos_writes_report_file(tmp_path, capsys) -> None:
    target = tmp_path / "chaos.txt"
    code = main(
        ["chaos", "--seeds", "1", "--txns", "25", "--output", str(target)]
    )
    assert code == 0
    assert "chaos sweep report" in target.read_text(encoding="utf-8")
