"""VirtualClock: monotonicity and construction."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(5.5).now == 5.5


def test_rejects_negative_start():
    with pytest.raises(SimulationError):
        VirtualClock(-1.0)


def test_advances_forward():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0
    clock.advance_to(10.5)
    assert clock.now == 10.5


def test_allows_equal_time_advance():
    clock = VirtualClock(3.0)
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_rejects_backwards_advance():
    clock = VirtualClock(3.0)
    with pytest.raises(SimulationError):
        clock.advance_to(2.999)


def test_repr_mentions_time():
    assert "7.000" in repr(VirtualClock(7))
