"""Deterministic event scheduler (the heart of the simulator).

A binary heap of :class:`~repro.sim.events.Event` ordered by
``(time, insertion sequence)``.  All system activity — message deliveries,
CPU completions, timeouts — flows through one scheduler instance, so a run
is a pure function of the configuration and the seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SchedulerError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event


class EventScheduler:
    """Priority-queue event loop over a :class:`VirtualClock`."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[Event] = []
        self._seq = 0
        self._fired = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def fired(self) -> int:
        """Total number of events that have executed."""
        return self._fired

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` ms from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        event = Event(time=self.clock.now + delay, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self.clock.now:
            raise SchedulerError(
                f"cannot schedule at {time}, now is {self.clock.now}"
            )
        event = Event(time=time, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._fired += 1
            event.fire()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns events fired.

        ``max_events`` is a runaway guard; exceeding it raises
        :class:`SchedulerError` because a healthy serial-transaction run
        always drains.
        """
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if fired > max_events:
                    raise SchedulerError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._running = False
        return fired

    def run_until(self, predicate: Callable[[], bool], max_events: int = 10_000_000) -> int:
        """Run until ``predicate()`` is true or the queue drains."""
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        self._running = True
        fired = 0
        try:
            while not predicate():
                if not self.step():
                    break
                fired += 1
                if fired > max_events:
                    raise SchedulerError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._running = False
        return fired

    def __repr__(self) -> str:
        return (
            f"EventScheduler(now={self.clock.now:.3f}, pending={self.pending}, "
            f"fired={self._fired})"
        )
