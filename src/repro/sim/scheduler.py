"""Deterministic event scheduler (the heart of the simulator).

A binary heap ordered by ``(time, insertion sequence)``.  All system
activity — message deliveries, CPU completions, timeouts — flows through
one scheduler instance, so a run is a pure function of the configuration
and the seed.

Performance notes (this is the hottest loop in the repository; see
docs/PERFORMANCE.md):

* Heap entries are plain tuples ``(time, seq, action, payload)``, compared
  entirely at C level — sequence numbers are unique, so comparison never
  reaches the callable.
* :meth:`post` / :meth:`post_at` are the allocation-light fast path used
  by the network and CPU model: no :class:`Event` object is created, and
  ``payload`` carries the action's arguments so call sites need no
  closures.  :meth:`schedule` / :meth:`schedule_at` return a cancellable
  :class:`Event` for callers that need one (timers).
* Cancelled events are skipped lazily when popped, but the scheduler
  keeps an exact live count (:attr:`pending` excludes cancelled entries)
  and compacts the heap in place once cancelled entries outnumber live
  ones — timer-heavy workloads (retransmission backoff) would otherwise
  accumulate unbounded dead entries.
* **Batched same-instant dispatch**: while :meth:`run` is draining, any
  entry scheduled for the instant being processed (a zero-delay post, or
  a ``post_at`` of the current time — zero-latency deliveries and
  activation hand-offs are ~half of all events in the concurrent preset)
  goes to a FIFO *now-queue* instead of the heap, and is fired without
  ever paying a ``heappush``/``heappop``.  Ordering is preserved because
  every heap entry due at the current instant necessarily carries a
  smaller sequence number than every now-queue entry (it was scheduled
  before the instant began), so draining "heap entries due now, then the
  now-queue in FIFO order" is exactly ``(time, seq)`` order.

Tie-break contract (a public guarantee)
---------------------------------------

Events scheduled for the **same simulated time fire in posting order**:
every scheduling call (:meth:`post`, :meth:`post_at`, :meth:`schedule`,
:meth:`schedule_at`) draws the next value of one shared insertion
sequence, and the heap orders entries by ``(time, seq)``.  The guarantee
holds across the fast path and the cancellable path, is unaffected by
cancellations and heap compaction (surviving entries keep their keys),
and is pinned by ``tests/test_sim_scheduler.py::test_tie_break_contract``.

The :mod:`repro.check` model checker relies on this contract: its
scheduler choice points enumerate *alternative* orderings of same-time
events, which is only a well-defined schedule space because the default
order is total and stable.  Installing :attr:`tie_breaker` routes
:meth:`run` through a choice-aware loop; with the hook left ``None``
(the default) the hot loop is byte-for-byte the original and every
existing seed replays identically.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.errors import SchedulerError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event

# Heap-entry marker: the entry's payload is a cancellable Event rather
# than a plain argument tuple.  ``None`` never collides with a real
# action callable.
_CANCELLABLE = None

# Compact only once at least this many cancelled entries have piled up;
# below it the rebuild costs more than the dead entries do.
_COMPACT_MIN_CANCELLED = 64


class EventScheduler:
    """Priority-queue event loop over a :class:`VirtualClock`."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        # Entries: (time, seq, action, args) for fire-and-forget posts,
        # (time, seq, None, event) for cancellable events.
        self._heap: list[tuple[float, int, Optional[Callable[..., None]], Any]] = []
        # Same-instant fast lane (see the module docstring).  Only
        # populated while the hot loop is draining (``_batching``); the
        # loop's ``finally`` flushes any leftovers back into the heap, so
        # outside :meth:`run` the queue is always empty and every other
        # method (``step``, ``run_until``, fingerprinting) sees the whole
        # schedule in ``_heap``.
        self._nowq: deque[tuple[float, int, Optional[Callable[..., None]], Any]] = deque()
        self._batching = False
        self._seq = 0
        self._fired = 0
        self._cancelled = 0
        self._running = False
        self.compactions = 0
        # Optional schedule-space choice hook (repro.check).  When set,
        # run() routes through _run_choosing, which hands every group of
        # same-time live entries to the callable and fires the entry at
        # the returned index first.  None (the default) keeps the
        # original hot loop untouched.
        self.tie_breaker: Optional[
            Callable[[list[tuple[float, int, Any, Any]]], int]
        ] = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock._now

    @property
    def pending(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return len(self._heap) + len(self._nowq) - self._cancelled

    @property
    def fired(self) -> int:
        """Total number of events that have executed."""
        return self._fired

    # -- scheduling ----------------------------------------------------------

    def post(
        self,
        delay: float,
        action: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        """Schedule ``action(*args)`` to run ``delay`` ms from now.

        The allocation-light fast path: no :class:`Event` is created and
        the schedule cannot be cancelled.  Use :meth:`schedule` when the
        caller needs a handle.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0 and self._batching:
            self._nowq.append((self.clock._now, seq, action, args))
        else:
            heapq.heappush(self._heap, (self.clock._now + delay, seq, action, args))

    def post_at(
        self,
        time: float,
        action: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        """Schedule ``action(*args)`` at an absolute simulated time."""
        now = self.clock._now
        if time < now:
            raise SchedulerError(
                f"cannot schedule at {time}, now is {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if time == now and self._batching:
            self._nowq.append((time, seq, action, args))
        else:
            heapq.heappush(self._heap, (time, seq, action, args))

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        label: str = "",
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``action(*args)`` to run ``delay`` ms from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(
            time=self.clock._now + delay,
            seq=seq,
            action=action,
            args=args,
            label=label,
            scheduler=self,
        )
        if delay == 0.0 and self._batching:
            self._nowq.append((event.time, seq, _CANCELLABLE, event))
        else:
            heapq.heappush(self._heap, (event.time, seq, _CANCELLABLE, event))
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        label: str = "",
        args: tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self.clock._now:
            raise SchedulerError(
                f"cannot schedule at {time}, now is {self.clock._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(
            time=time, seq=seq, action=action, args=args, label=label, scheduler=self
        )
        if time == self.clock._now and self._batching:
            self._nowq.append((time, seq, _CANCELLABLE, event))
        else:
            heapq.heappush(self._heap, (time, seq, _CANCELLABLE, event))
        return event

    # -- cancellation bookkeeping -------------------------------------------

    def _note_cancel(self) -> None:
        """An :class:`Event` in the heap was cancelled (called by the event).

        Keeps :attr:`pending` exact and compacts the heap once cancelled
        entries outnumber live ones.
        """
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so the run loop's local heap binding
        stays valid when a handler's cancel triggers compaction mid-run.
        Pop order is unaffected: surviving entries keep their (time, seq)
        keys, and heapify restores the heap invariant over exactly those.
        """
        heap = self._heap
        heap[:] = [
            entry
            for entry in heap
            if entry[2] is not _CANCELLABLE or not entry[3].cancelled
        ]
        heapq.heapify(heap)
        if self._nowq:
            # Cancelled entries can sit in the now-queue too (a handler
            # cancelling a timer it scheduled this instant).  Mutated in
            # place, like the heap, so the run loop's local binding stays
            # valid; the FIFO order of survivors is preserved.
            live = [
                entry
                for entry in self._nowq
                if entry[2] is not _CANCELLABLE or not entry[3].cancelled
            ]
            self._nowq.clear()
            self._nowq.extend(live)
        self._cancelled = 0
        self.compactions += 1

    # -- running -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            time, _seq, action, payload = heapq.heappop(heap)
            if action is _CANCELLABLE:
                if payload.cancelled:
                    self._cancelled -= 1
                    continue
                action = payload.action
                payload = payload.args
            self.clock.advance_to(time)
            self._fired += 1
            action(*payload)
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns events fired.

        ``max_events`` is a runaway guard; exceeding it raises
        :class:`SchedulerError` because a healthy serial-transaction run
        always drains.
        """
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        if self.tie_breaker is not None:
            return self._run_choosing(max_events)
        self._running = True
        self._batching = True
        # The hot loop: locals for everything, no step()/fire() dispatch.
        # Handlers push into the same heap list and now-queue; _compact
        # mutates both in place, so the local bindings stay correct.
        heap = self._heap
        nowq = self._nowq
        heappop = heapq.heappop
        popleft = nowq.popleft
        clock = self.clock
        fired = 0
        try:
            while True:
                # Same-instant batch drain.  Every heap entry due at the
                # current instant was scheduled before the instant began
                # and therefore precedes (seq-wise) every now-queue entry,
                # so "heap entries due now first, then the now-queue FIFO"
                # is exactly (time, seq) order.  The clock never advances
                # while the now-queue is non-empty.
                if nowq:
                    if heap and heap[0][0] <= clock._now:
                        time, _seq, action, payload = heappop(heap)
                    else:
                        time, _seq, action, payload = popleft()
                elif heap:
                    time, _seq, action, payload = heappop(heap)
                else:
                    break
                if action is _CANCELLABLE:
                    if payload.cancelled:
                        self._cancelled -= 1
                        continue
                    action = payload.action
                    payload = payload.args
                # Heap order guarantees monotonic time; assign directly.
                clock._now = time
                fired += 1
                action(*payload)
                if fired > max_events:
                    raise SchedulerError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._batching = False
            # An abnormal exit (runaway guard, handler exception) can
            # leave same-instant entries in the now-queue; flush them back
            # into the heap with their original keys so the schedule stays
            # whole for whoever resumes (step, run_until, a second run).
            while nowq:
                heapq.heappush(heap, popleft())
            self._fired += fired
            self._running = False
        return fired

    def _run_choosing(self, max_events: int) -> int:
        """The choice-aware run loop behind :attr:`tie_breaker`.

        Semantically identical to :meth:`run` except that whenever more
        than one live entry is due at the minimum time, the whole tied
        group (in ``(time, seq)`` order) is handed to the hook, which
        returns the index of the entry to fire first.  The remaining tied
        entries go back on the heap with their original keys, so the hook
        is consulted again — with one fewer candidate — before the next
        fire.  A hook that always returns 0 reproduces the default
        tie-break contract exactly.
        """
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        clock = self.clock
        choose = self.tie_breaker
        fired = 0
        try:
            while heap:
                entry = heappop(heap)
                if entry[2] is _CANCELLABLE and entry[3].cancelled:
                    self._cancelled -= 1
                    continue
                tied = [entry]
                due = entry[0]
                while heap and heap[0][0] == due:
                    other = heappop(heap)
                    if other[2] is _CANCELLABLE and other[3].cancelled:
                        self._cancelled -= 1
                        continue
                    tied.append(other)
                if len(tied) > 1:
                    entry = tied.pop(choose(tied))
                    for other in tied:
                        heappush(heap, other)
                time, _seq, action, payload = entry
                if action is _CANCELLABLE:
                    action = payload.action
                    payload = payload.args
                clock._now = time
                fired += 1
                action(*payload)
                if fired > max_events:
                    raise SchedulerError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._fired += fired
            self._running = False
        return fired

    def run_until(self, predicate: Callable[[], bool], max_events: int = 10_000_000) -> int:
        """Run until ``predicate()`` is true or the queue drains."""
        if self._running:
            raise SchedulerError("scheduler is not re-entrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        fired = 0
        try:
            while not predicate():
                live = False
                while heap:
                    time, _seq, action, payload = heappop(heap)
                    if action is _CANCELLABLE:
                        if payload.cancelled:
                            self._cancelled -= 1
                            continue
                        action = payload.action
                        payload = payload.args
                    clock._now = time
                    fired += 1
                    action(*payload)
                    live = True
                    break
                if not live:
                    break
                if fired > max_events:
                    raise SchedulerError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._fired += fired
            self._running = False
        return fired

    def __repr__(self) -> str:
        return (
            f"EventScheduler(now={self.clock._now:.3f}, pending={self.pending}, "
            f"fired={self._fired})"
        )
