"""Deterministic discrete-event simulation substrate.

The paper's mini-RAID ran every database site as a Unix process on a single
processor and measured elapsed milliseconds with the processor clock.  This
package supplies the equivalent laboratory: a virtual clock, an event
scheduler with deterministic tie-breaking, a CPU resource that serializes
processing the way a single 1987 processor did, and a seeded random number
generator so that every run is exactly reproducible.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event
from repro.sim.scheduler import EventScheduler
from repro.sim.cpu import CpuResource
from repro.sim.rng import DeterministicRng

__all__ = [
    "VirtualClock",
    "Event",
    "EventScheduler",
    "CpuResource",
    "DeterministicRng",
]
