"""CPU resource model.

Mini-RAID ran every database site as a process on *one* processor, so all
site processing and inter-process communication serialized on a single CPU.
That serialization is visible in the paper's numbers (a four-site commit
costs roughly the sum of everyone's work).  :class:`CpuResource` reproduces
it: a piece of work submitted while the CPU is busy starts when the CPU
frees up.

Setting ``cores`` to the number of sites models the "complete RAID" future
work where each site has its own machine.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.sim.scheduler import EventScheduler


class CpuResource:
    """A bank of ``cores`` FIFO processors shared by the whole system.

    Work items run to completion (no preemption), matching the paper's
    serial, run-to-completion processing.
    """

    def __init__(self, scheduler: EventScheduler, cores: int = 1) -> None:
        if cores < 1:
            raise SimulationError(f"need at least one core, got {cores}")
        self._scheduler = scheduler
        # Earliest time each core becomes free.
        self._free_at = [0.0] * cores
        self.busy_ms = 0.0
        self.jobs = 0

    @property
    def cores(self) -> int:
        return len(self._free_at)

    def execute(
        self,
        duration: float,
        on_done: Callable[..., None],
        label: str = "",
        args: tuple = (),
    ) -> float:
        """Run ``duration`` ms of work on the least-loaded core.

        ``on_done(*args)`` fires when the work completes.  Returns the
        absolute completion time.
        """
        if duration < 0:
            raise SimulationError(f"negative work duration: {duration}")
        free_at = self._free_at
        now = self._scheduler.clock._now
        if len(free_at) == 1:
            # Single-CPU mini-RAID: the overwhelmingly common case.
            start = free_at[0]
            if now > start:
                start = now
            done = start + duration
            free_at[0] = done
        else:
            core = free_at.index(min(free_at))
            start = free_at[core]
            if now > start:
                start = now
            done = start + duration
            free_at[core] = done
        self.busy_ms += duration
        self.jobs += 1
        self._scheduler.post_at(done, on_done, args)
        return done

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the CPU bank spent busy."""
        elapsed = self._scheduler.now * len(self._free_at)
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_ms / elapsed)

    def __repr__(self) -> str:
        return f"CpuResource(cores={self.cores}, jobs={self.jobs}, busy={self.busy_ms:.1f}ms)"
