"""Virtual clock measured in simulated milliseconds.

The clock only moves forward, and only the scheduler advances it.  Keeping
the clock in its own object (rather than a bare float on the scheduler) lets
sites, networks, and metrics share one time source without holding a
reference to the scheduler itself.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically non-decreasing simulated time in milliseconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start in the past: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past; equal
        times are allowed (many events may share a timestamp).
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {self._now} -> {time}"
            )
        self._now = time

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.3f})"
