"""Seeded random number generation.

Every source of randomness in the system (workload generation, submission
site choice, latency jitter) draws from a :class:`DeterministicRng` derived
from the single configured seed, so experiments replay exactly.  Named
streams keep one consumer's draws from perturbing another's.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError

# The type every randomness consumer is handed: a seeded stream derived
# from :class:`DeterministicRng`.  Modules outside ``repro.sim`` must not
# ``import random`` themselves (enforced by a test); they annotate with
# this alias and receive an injected, seeded instance.
RandomStream = random.Random


class DeterministicRng:
    """A named tree of independent ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise SimulationError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the independent stream ``name``.

        The stream seed mixes the root seed with a stable hash of the name,
        so adding a new stream never changes existing streams' sequences.
        """
        if name not in self._streams:
            # Stable string hash (hash() is salted per process).
            mixed = self.seed
            for char in name:
                mixed = (mixed * 1_000_003 + ord(char)) % (2**63)
            self._streams[name] = random.Random(mixed)
        return self._streams[name]

    def spawn(self, name: str) -> "DeterministicRng":
        """Derive a child rng rooted at ``name`` (for sub-components)."""
        mixed = self.seed
        for char in name:
            mixed = (mixed * 1_000_003 + ord(char)) % (2**63)
        return DeterministicRng(mixed)

    def __repr__(self) -> str:
        return f"DeterministicRng(seed={self.seed}, streams={sorted(self._streams)})"
