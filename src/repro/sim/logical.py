"""Cluster-wide logical commit clock.

Copy versions must identify the newest copy of an item (copier installs,
quorum reads, and the consistency audit all compare them).  A version is
therefore drawn from a single monotone logical clock *at the commit point*:
conflicting writers are serialized by the protocol (serial execution in
mini-RAID; strict 2PL in the concurrent extension), so commit-point
stamping makes versions per-item monotone in serialization order — even
when a blind write refreshes a fail-locked copy whose history the writer
never saw.

Mini-RAID itself needed no versions (fail-locks carry the staleness
information); the clock is reproduction-side bookkeeping that makes the
consistency audits checkable.
"""

from __future__ import annotations


class LogicalClock:
    """A monotone counter; ``tick()`` returns the next timestamp."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = start

    @property
    def now(self) -> int:
        """The most recently issued timestamp."""
        return self._now

    def tick(self) -> int:
        """Advance and return a fresh timestamp."""
        self._now += 1
        return self._now

    def witness(self, seen: int) -> None:
        """Advance past an externally observed timestamp (Lamport rule)."""
        if seen > self._now:
            self._now = seen

    def __repr__(self) -> str:
        return f"LogicalClock(now={self._now})"
