"""Scheduler events.

An event is a timestamped callback.  Events carry an insertion sequence
number so that two events scheduled for the same instant always fire in the
order they were scheduled — this is what makes whole-system runs bitwise
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled action.

    Ordering is ``(time, seq)``: earlier times first, insertion order breaks
    ties.  The callable itself is excluded from comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Run the event's action (the scheduler calls this)."""
        self.action()
