"""Scheduler events.

An event is a timestamped callback.  Events carry an insertion sequence
number so that two events scheduled for the same instant always fire in the
order they were scheduled — this is what makes whole-system runs bitwise
reproducible.

The scheduler's heap orders plain ``(time, seq, ...)`` tuples, so
:class:`Event` instances themselves are never compared: sequence numbers
are unique, which means tuple comparison is resolved at C level without
ever reaching the third element.  ``Event`` is a hand-rolled ``__slots__``
class (not a dataclass) because it sits on the hottest allocation path of
the whole simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import EventScheduler


class Event:
    """A single scheduled, cancellable action.

    Ordering in the scheduler is ``(time, seq)``: earlier times first,
    insertion order breaks ties.  ``args`` are passed to ``action`` when
    the event fires, which lets hot call sites schedule pre-bound methods
    instead of allocating closures.
    """

    __slots__ = ("time", "seq", "action", "args", "label", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[..., None],
        args: tuple[Any, ...] = (),
        label: str = "",
        scheduler: Optional["EventScheduler"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self.label = label
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        The owning scheduler is notified so its live-event count stays
        exact and it can compact the heap when cancelled entries pile up
        (timer-heavy workloads cancel far more events than they fire).
        """
        if not self.cancelled:
            self.cancelled = True
            if self._scheduler is not None:
                self._scheduler._note_cancel()

    def fire(self) -> None:
        """Run the event's action (the scheduler calls this)."""
        self.action(*self.args)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.3f}, seq={self.seq}, {self.label!r}{state})"
