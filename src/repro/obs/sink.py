"""The trace sink: a ring buffer of :class:`~repro.obs.events.TraceEvent`.

One :class:`TraceSink` hangs off the network (``cluster.obs``) and every
layer emits into it.  Two properties matter more than anything else:

* **Zero interference.**  Emitting never touches the scheduler, the CPU
  model, or any RNG stream — tracing is pure observation, so a traced run
  and an untraced run of the same seed are *identical* in simulated time,
  message traffic, and outcomes.  (``tests/test_obs_export.py`` pins
  this.)
* **Near-zero overhead when disabled.**  Every emit site guards with
  ``if sink.enabled:`` so a disabled sink costs one attribute read per
  potential event — no kwargs dicts are built, nothing is appended.

Causality is threaded through the ``scope`` attribute: the network sets
``scope`` to the ``msg.recv`` event's id for the duration of the handler
activation it starts (and restores it afterwards), so any event emitted
from protocol code — and any message queued by it — is parented to the
receive that caused it.  Timers propagate the scope of the activation
that armed them.  The result is one causal tree per root stimulus.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional

from repro.obs.events import EventKind, TraceEvent


class TraceSink:
    """Bounded, append-only event capture with causal scoping."""

    __slots__ = ("capacity", "enabled", "events", "dropped_events", "scope", "_seq")

    def __init__(self, capacity: int = 1 << 18, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.events: deque[TraceEvent] = deque()
        self.dropped_events = 0  # oldest events evicted by the ring
        # The causal parent for events emitted "now" (the current
        # activation's msg.recv event, or -1 outside any activation).
        self.scope = -1
        self._seq = 0

    # -- emission -----------------------------------------------------------

    def emit(
        self,
        t: float,
        kind: EventKind,
        site: int = -1,
        txn: int = -1,
        parent: Optional[int] = None,
        **args: Any,
    ) -> int:
        """Record one event; returns its ``seq`` id (-1 when disabled).

        ``parent`` defaults to the current :attr:`scope`; pass it
        explicitly to link to a specific cause (e.g. a message's send
        event).  Hot paths should guard with ``if sink.enabled:`` before
        building ``args`` — emit itself also no-ops when disabled.
        """
        if not self.enabled:
            return -1
        seq = self._seq
        self._seq += 1
        if len(self.events) >= self.capacity:
            self.events.popleft()
            self.dropped_events += 1
        self.events.append(
            TraceEvent(
                seq=seq,
                t=t,
                kind=kind,
                site=site,
                txn=txn,
                parent=self.scope if parent is None else parent,
                args=args,
            )
        )
        return seq

    # -- queries --------------------------------------------------------------

    def for_txn(self, txn_id: int) -> list[TraceEvent]:
        """All captured events belonging to transaction ``txn_id``."""
        return [e for e in self.events if e.txn == txn_id]

    def count(self, kind: Optional[EventKind] = None) -> int:
        """Captured events, optionally filtered to one kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind is kind)

    def clear(self) -> None:
        """Discard captured events (the seq counter keeps running)."""
        self.events.clear()
        self.dropped_events = 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"TraceSink({state}, events={len(self.events)}, "
            f"dropped={self.dropped_events})"
        )
