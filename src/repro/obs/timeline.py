"""Per-transaction causal timelines with phase attribution.

A transaction's trace events at its coordinating site segment its measured
window ``[txn.begin, txn.end]`` into contiguous, non-overlapping phases —
so the phase durations *always* sum to the recorded coordinator elapsed
time (the invariant ``tests/test_obs_timeline.py`` pins and the paper's
§2 attribution methodology needs).

Attribution rules (see docs/OBSERVABILITY.md for the worked example):

=================  =====================================================
phase              the time between ...
=================  =====================================================
``lock-wait``      ``txn.begin`` and ``txn.lock_grant`` (concurrent mode
                   only; zero-length on the uncontended fast path)
``local-exec``     any boundary and the next copier/phase-1 boundary —
                   local reads, write staging, planning
``copier``         ``txn.copier_begin`` and ``txn.copier_end`` (or the
                   abort that cut the exchange short)
``2pc-prepare``    ``txn.phase1`` and ``txn.phase2`` — shipping the copy
                   updates and collecting votes
``2pc-commit``     ``txn.phase2`` and ``txn.end`` — commit indications,
                   acks, local commit processing, fail-lock maintenance,
                   and the outcome report
=================  =====================================================

A transaction that never reaches a boundary simply has no such phase; the
final segment is named after the last boundary crossed (an abort during
the copier exchange ends inside ``copier``, a read-only transaction with
no participants ends inside ``2pc-prepare``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.events import EventKind, TraceEvent

PHASE_LOCK_WAIT = "lock-wait"
PHASE_LOCAL_EXEC = "local-exec"
PHASE_COPIER = "copier"
PHASE_PREPARE = "2pc-prepare"
PHASE_COMMIT = "2pc-commit"

# Display order of phases in timelines and exports.
PHASE_ORDER = (
    PHASE_LOCK_WAIT,
    PHASE_LOCAL_EXEC,
    PHASE_COPIER,
    PHASE_PREPARE,
    PHASE_COMMIT,
)

# Boundary event -> name of the phase the boundary *closes*.
_CLOSES: dict[EventKind, str] = {
    EventKind.LOCK_GRANT: PHASE_LOCK_WAIT,
    EventKind.COPIER_BEGIN: PHASE_LOCAL_EXEC,
    EventKind.COPIER_END: PHASE_COPIER,
    EventKind.PHASE1_BEGIN: PHASE_LOCAL_EXEC,
    EventKind.PHASE2_BEGIN: PHASE_PREPARE,
}

# Last-boundary-crossed -> name of the final segment (closed by txn.end).
_FINAL: dict[EventKind, str] = {
    EventKind.TXN_BEGIN: PHASE_LOCAL_EXEC,
    EventKind.LOCK_GRANT: PHASE_LOCAL_EXEC,
    EventKind.COPIER_BEGIN: PHASE_COPIER,
    EventKind.COPIER_END: PHASE_LOCAL_EXEC,
    EventKind.PHASE1_BEGIN: PHASE_PREPARE,
    EventKind.PHASE2_BEGIN: PHASE_COMMIT,
}


@dataclass(slots=True)
class PhaseSpan:
    """One contiguous slice of a transaction's coordinator window."""

    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class TxnTimeline:
    """Everything the trace knows about one transaction."""

    txn_id: int
    coordinator: int
    begin: float
    end: float
    committed: Optional[bool] = None   # None: no outcome event captured
    abort_reason: str = ""
    phases: list[PhaseSpan] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """The coordinator-measured window (== sum of the phases)."""
        return self.end - self.begin

    def phase_totals(self) -> dict[str, float]:
        """Total milliseconds per phase name, in display order."""
        totals: dict[str, float] = {}
        for span in self.phases:
            totals[span.phase] = totals.get(span.phase, 0.0) + span.duration
        return {
            name: totals[name] for name in PHASE_ORDER if name in totals
        }

    def messages(self) -> int:
        """Protocol messages sent on this transaction's behalf."""
        return sum(1 for e in self.events if e.kind is EventKind.MSG_SEND)


def build_timeline(events: list[TraceEvent]) -> Optional[TxnTimeline]:
    """Build one transaction's timeline from *its* events (any order).

    Returns None when the window is incomplete — no ``txn.begin`` or no
    ``txn.end`` at the coordinating site (the transaction was in flight at
    a stall, or the ring buffer evicted its start).
    """
    ordered = sorted(events, key=lambda e: e.seq)
    begin = next((e for e in ordered if e.kind is EventKind.TXN_BEGIN), None)
    if begin is None:
        return None
    coordinator = begin.site
    end = next(
        (
            e
            for e in ordered
            if e.kind is EventKind.TXN_END and e.site == coordinator
        ),
        None,
    )
    if end is None:
        return None
    timeline = TxnTimeline(
        txn_id=begin.txn,
        coordinator=coordinator,
        begin=begin.t,
        end=end.t,
        events=ordered,
    )
    for event in ordered:
        if event.kind is EventKind.TXN_COMMIT and event.site == coordinator:
            timeline.committed = True
        elif event.kind is EventKind.TXN_ABORT and event.site == coordinator:
            timeline.committed = False
            timeline.abort_reason = str(event.args.get("reason", ""))

    # Segment the window by the coordinator-site boundary events.
    cursor = begin.t
    last_kind = EventKind.TXN_BEGIN
    for event in ordered:
        if event.site != coordinator or event.seq <= begin.seq:
            continue
        if event.seq >= end.seq:
            break
        name = _CLOSES.get(event.kind)
        if name is None:
            continue
        timeline.phases.append(PhaseSpan(phase=name, start=cursor, end=event.t))
        cursor = event.t
        last_kind = event.kind
    timeline.phases.append(
        PhaseSpan(phase=_FINAL[last_kind], start=cursor, end=end.t)
    )
    return timeline


def build_timelines(events: Iterable[TraceEvent]) -> dict[int, TxnTimeline]:
    """Timelines for every transaction with a complete window, by txn id."""
    by_txn: dict[int, list[TraceEvent]] = {}
    for event in events:
        if event.txn >= 0:
            by_txn.setdefault(event.txn, []).append(event)
    timelines: dict[int, TxnTimeline] = {}
    for txn_id, txn_events in sorted(by_txn.items()):
        timeline = build_timeline(txn_events)
        if timeline is not None:
            timelines[txn_id] = timeline
    return timelines


def derive_txn_summaries(
    events: Iterable[TraceEvent],
) -> list[dict[str, object]]:
    """Re-derive the per-transaction measurement rows from the trace alone.

    This is the cross-check that the trace subsumes ``repro.metrics``'s
    :class:`~repro.metrics.records.TxnRecord` timing content: for every
    complete transaction window the returned dict carries the outcome and
    the coordinator elapsed time, which tests compare against the metrics
    collector's independently recorded rows.
    """
    rows: list[dict[str, object]] = []
    for txn_id, timeline in sorted(build_timelines(events).items()):
        rows.append(
            {
                "txn": txn_id,
                "coordinator": timeline.coordinator,
                "committed": timeline.committed,
                "abort_reason": timeline.abort_reason,
                "coordinator_elapsed": timeline.elapsed,
                "phases": timeline.phase_totals(),
                "messages": timeline.messages(),
            }
        )
    return rows
