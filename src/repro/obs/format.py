"""Deterministic text rendering for traces (the ``repro trace`` CLI).

Everything here prints from exported artifacts or in-memory events only —
no wall-clock, no environment — so output is stable across runs and safe
to golden-test.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import load_events, load_manifest
from repro.obs.timeline import TxnTimeline, build_timelines

_BAR_WIDTH = 40


def render_timeline(timeline: TxnTimeline) -> str:
    """The ``repro trace show <txn>`` view: a phase-attributed timeline.

    The phase durations printed here are exact segments of the measured
    window, so the "sum of phases" line always equals the elapsed line —
    that is the attribution invariant, not a rounding accident.
    """
    lines: list[str] = []
    outcome = (
        "committed"
        if timeline.committed
        else f"ABORTED ({timeline.abort_reason})"
        if timeline.committed is False
        else "no outcome recorded"
    )
    lines.append(
        f"txn {timeline.txn_id} @ site {timeline.coordinator} — {outcome}"
    )
    lines.append(
        f"  window  [{timeline.begin:.3f} .. {timeline.end:.3f}] ms"
        f"   elapsed {timeline.elapsed:.3f} ms"
        f"   messages {timeline.messages()}"
    )
    lines.append("")
    lines.append(f"  {'phase':<12} {'ms':>10}  {'share':>6}")
    elapsed = timeline.elapsed
    for phase, total in timeline.phase_totals().items():
        share = (total / elapsed) if elapsed > 0 else 0.0
        bar = "#" * max(1, round(share * _BAR_WIDTH)) if total > 0 else ""
        lines.append(f"  {phase:<12} {total:>10.3f}  {share:>5.1%}  {bar}")
    lines.append(
        f"  {'sum':<12} {sum(s.duration for s in timeline.phases):>10.3f}"
    )
    lines.append("")
    lines.append("  segments:")
    for span in timeline.phases:
        lines.append(
            f"    {span.start:>10.3f} .. {span.end:>10.3f}"
            f"  {span.duration:>9.3f} ms  {span.phase}"
        )
    return "\n".join(lines)


def render_causal_tree(
    events: list[TraceEvent], timeline: TxnTimeline, limit: int = 80
) -> str:
    """The transaction's events as an indented causal tree.

    Parents outside the transaction (e.g. the manager's submit) appear as
    roots; depth follows the ``parent`` chain within the shown set.
    """
    shown = timeline.events[:limit]
    by_seq = {e.seq: e for e in shown}
    depth: dict[int, int] = {}

    def depth_of(event: TraceEvent) -> int:
        d = depth.get(event.seq)
        if d is not None:
            return d
        parent = by_seq.get(event.parent)
        d = 0 if parent is None else depth_of(parent) + 1
        depth[event.seq] = d
        return d

    lines = [f"  {'  ' * depth_of(e)}{e.describe()}" for e in shown]
    if len(timeline.events) > limit:
        lines.append(f"  ... {len(timeline.events) - limit} more events")
    return "\n".join(lines)


def render_run_summary(run_dir: Path) -> str:
    """The ``repro trace list`` view: one line per transaction."""
    manifest = load_manifest(run_dir)
    lines = [
        f"run: {manifest['scenario']} seed={manifest['seed']} "
        f"sites={manifest['sites']} db={manifest['db_size']} "
        f"sim_time={manifest['sim_time_ms']:.1f}ms "
        f"events={manifest['events']}",
    ]
    if manifest.get("violations"):
        lines.append(f"VIOLATIONS: {len(manifest['violations'])}")
    lines.append("")
    lines.append(
        f"{'txn':>5} {'site':>4} {'outcome':<10} {'elapsed':>10}  dominant phase"
    )
    for row in manifest["transactions"]:
        phases: dict[str, float] = row["phases"]
        dominant = max(phases.items(), key=lambda kv: kv[1])[0] if phases else "-"
        outcome = (
            "commit"
            if row["committed"]
            else f"abort:{row['abort_reason']}"
            if row["committed"] is False
            else "?"
        )
        lines.append(
            f"{row['txn']:>5} {row['coordinator']:>4} {outcome:<10} "
            f"{row['coordinator_elapsed']:>9.2f}ms  {dominant}"
        )
    return "\n".join(lines)


def filter_events(
    events: Iterable[TraceEvent],
    *,
    txn: Optional[int] = None,
    kind: Optional[str] = None,
    site: Optional[int] = None,
) -> list[TraceEvent]:
    """Apply the ``trace cat`` filters."""
    out = []
    for event in events:
        if txn is not None and event.txn != txn:
            continue
        if kind is not None and event.kind.value != kind:
            continue
        if site is not None and event.site != site:
            continue
        out.append(event)
    return out


def diff_runs(dir_a: Path, dir_b: Path) -> list[str]:
    """Differences between two exported runs (empty = identical streams).

    Compares the event streams record-by-record — the strongest check two
    same-seed recordings can pass, and a readable first divergence when a
    determinism regression slips in.
    """
    events_a = load_events(dir_a)
    events_b = load_events(dir_b)
    problems: list[str] = []
    if len(events_a) != len(events_b):
        problems.append(
            f"event counts differ: {len(events_a)} vs {len(events_b)}"
        )
    for a, b in zip(events_a, events_b):
        if a.to_wire() != b.to_wire():
            problems.append(
                f"first divergence at seq {a.seq}:\n  a: {a.describe()}\n  b: {b.describe()}"
            )
            break
    return problems


def show_txn(run_dir: Path, txn_id: int, *, tree: bool = False) -> str:
    """Full ``trace show`` output for one transaction of an exported run."""
    events = load_events(run_dir)
    timelines = build_timelines(events)
    timeline = timelines.get(txn_id)
    if timeline is None:
        known = ", ".join(str(t) for t in sorted(timelines)) or "none"
        return (
            f"txn {txn_id}: no complete timeline in {run_dir} "
            f"(known transactions: {known})"
        )
    text = render_timeline(timeline)
    if tree:
        text += "\n\n  events:\n" + render_causal_tree(events, timeline)
    return text
