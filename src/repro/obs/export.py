"""Run-artifact exporters and loaders.

``export_run`` writes one run directory:

* ``run.json`` — manifest: scenario identity, counters by event kind,
  per-transaction summaries (phase totals included), and any audited
  invariant violations.  Schema id :data:`~repro.obs.schema.RUN_SCHEMA_ID`.
* ``events.jsonl`` — the full event stream, one wire dict per line.
* ``trace.json`` — Chrome ``trace_event`` format: per-transaction phase
  slices plus instant markers for site failures/recoveries and chaos
  violations.  Open it in Perfetto (https://ui.perfetto.dev) or
  chrome://tracing; rows are ``site N`` processes with one track per
  transaction.

All JSON is written with sorted keys and no wall-clock data, so two runs
of the same (scenario, seed) export **byte-identical** artifacts — the
property ``repro trace diff`` and the determinism tests rely on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.obs.events import EventKind, TraceEvent
from repro.obs.schema import RUN_SCHEMA_ID
from repro.obs.sink import TraceSink
from repro.obs.timeline import build_timelines, derive_txn_summaries

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}

# Event kinds rendered as instant markers in the Chrome trace.
_INSTANT_KINDS = {
    EventKind.SITE_FAIL: "site fail",
    EventKind.SITE_RECOVER: "site recover",
    EventKind.SITE_RECOVER_DONE: "site recover done",
    EventKind.VIOLATION: "VIOLATION",
}


def _dumps(obj: Any) -> str:
    return json.dumps(obj, **_JSON_KW)


def export_run(
    run_dir: Path,
    sink: TraceSink,
    *,
    scenario: str,
    seed: int,
    sites: int,
    db_size: int,
    sim_time_ms: float,
    violations: Optional[Iterable[dict[str, Any]]] = None,
) -> dict[str, Any]:
    """Write run.json + events.jsonl + trace.json; returns the manifest."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    events = list(sink)

    counters: dict[str, int] = {}
    for event in events:
        counters[event.kind.value] = counters.get(event.kind.value, 0) + 1

    manifest: dict[str, Any] = {
        "schema": RUN_SCHEMA_ID,
        "scenario": scenario,
        "seed": seed,
        "sites": sites,
        "db_size": db_size,
        "sim_time_ms": sim_time_ms,
        "events": len(events),
        "dropped_events": sink.dropped_events,
        "counters": counters,
        "transactions": derive_txn_summaries(events),
        "violations": list(violations or []),
    }

    (run_dir / "run.json").write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    with (run_dir / "events.jsonl").open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(_dumps(event.to_wire()))
            fh.write("\n")
    (run_dir / "trace.json").write_text(
        _dumps(to_chrome_trace(events, sites=sites)) + "\n",
        encoding="utf-8",
    )
    return manifest


def to_chrome_trace(
    events: list[TraceEvent], *, sites: int
) -> dict[str, Any]:
    """Chrome ``trace_event`` document for a captured event stream.

    Layout: each site is a process (pid = site id), each transaction a
    thread (tid = txn id) on its coordinator's process.  Phase spans
    become complete ("X") slices; site failures/recoveries and invariant
    violations become instant ("i") markers.  ``ts`` is microseconds, so
    simulated milliseconds are scaled by 1000.
    """
    trace_events: list[dict[str, Any]] = []
    for site in range(sites):
        trace_events.append(
            {
                "ph": "M",
                "pid": site,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"site {site}"},
            }
        )
    for txn_id, timeline in sorted(build_timelines(events).items()):
        for span in timeline.phases:
            trace_events.append(
                {
                    "ph": "X",
                    "pid": timeline.coordinator,
                    "tid": txn_id,
                    "name": span.phase,
                    "cat": "txn",
                    "ts": span.start * 1000.0,
                    "dur": span.duration * 1000.0,
                    "args": {"txn": txn_id},
                }
            )
    for event in events:
        label = _INSTANT_KINDS.get(event.kind)
        if label is None:
            continue
        trace_events.append(
            {
                "ph": "i",
                "pid": event.site if event.site >= 0 else 0,
                "tid": 0,
                "name": label,
                "cat": "system",
                "ts": event.t * 1000.0,
                "s": "g",
                "args": {str(k): v for k, v in sorted(event.args.items())},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def load_events(run_dir: Path) -> list[TraceEvent]:
    """Rebuild the event stream from an exported run directory."""
    events: list[TraceEvent] = []
    with (Path(run_dir) / "events.jsonl").open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_wire(json.loads(line)))
    return events


def load_manifest(run_dir: Path) -> dict[str, Any]:
    """Load an exported run's run.json manifest."""
    return json.loads(
        (Path(run_dir) / "run.json").read_text(encoding="utf-8")
    )
