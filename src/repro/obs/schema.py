"""Schema validation for exported trace artifacts.

The exporters (``repro.obs.export``) write three files per run directory:

* ``run.json`` — run manifest (schema id ``repro.obs.run/1``),
* ``events.jsonl`` — one :class:`~repro.obs.events.TraceEvent` wire dict
  per line, ``seq``-ordered,
* ``trace.json`` — Chrome ``trace_event`` format for Perfetto.

This module validates the first two with plain Python (no external
dependencies are available in this environment) and is what CI's
``repro trace validate`` smoke runs against.  Each problem is reported as
a human-readable string; an empty list means the artifact is valid.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.events import KIND_BY_VALUE

RUN_SCHEMA_ID = "repro.obs.run/1"

# Exact key set of one events.jsonl record (TraceEvent.to_wire()).
_EVENT_KEYS = {"seq", "t", "kind", "site", "txn", "parent", "args"}

# Required manifest keys and their expected types.
_RUN_KEYS: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "scenario": str,
    "seed": int,
    "sites": int,
    "db_size": int,
    "sim_time_ms": (int, float),
    "events": int,
    "dropped_events": int,
    "counters": dict,
    "transactions": list,
    "violations": list,
}


def validate_event(obj: Any, prev_seq: int = -1) -> list[str]:
    """Problems with one decoded events.jsonl record (empty = valid)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"event is not an object: {type(obj).__name__}"]
    keys = set(obj)
    if keys != _EVENT_KEYS:
        missing = sorted(_EVENT_KEYS - keys)
        extra = sorted(keys - _EVENT_KEYS)
        if missing:
            problems.append(f"missing keys: {missing}")
        if extra:
            problems.append(f"unexpected keys: {extra}")
        return problems
    if not isinstance(obj["seq"], int) or obj["seq"] < 0:
        problems.append(f"seq must be a non-negative int: {obj['seq']!r}")
    elif obj["seq"] <= prev_seq:
        problems.append(
            f"seq not strictly increasing: {obj['seq']} after {prev_seq}"
        )
    if not isinstance(obj["t"], (int, float)) or obj["t"] < 0:
        problems.append(f"t must be a non-negative number: {obj['t']!r}")
    if obj["kind"] not in KIND_BY_VALUE:
        problems.append(f"unknown event kind: {obj['kind']!r}")
    for key in ("site", "txn"):
        if not isinstance(obj[key], int):
            problems.append(f"{key} must be an int: {obj[key]!r}")
    parent = obj["parent"]
    if not isinstance(parent, int) or parent < -1:
        problems.append(f"parent must be an int >= -1: {parent!r}")
    elif isinstance(obj["seq"], int) and parent >= obj["seq"]:
        problems.append(
            f"parent must reference an earlier event: {parent} >= {obj['seq']}"
        )
    if not isinstance(obj["args"], dict):
        problems.append(f"args must be an object: {obj['args']!r}")
    return problems


def validate_events_jsonl(path: Path) -> list[str]:
    """Problems with an events.jsonl stream (empty = valid)."""
    problems: list[str] = []
    prev_seq = -1
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                problems.append(f"line {lineno}: blank line")
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            for problem in validate_event(obj, prev_seq):
                problems.append(f"line {lineno}: {problem}")
            if isinstance(obj, dict) and isinstance(obj.get("seq"), int):
                prev_seq = obj["seq"]
    return problems


def validate_run_manifest(obj: Any) -> list[str]:
    """Problems with a decoded run.json manifest (empty = valid)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"manifest is not an object: {type(obj).__name__}"]
    for key, expected in _RUN_KEYS.items():
        if key not in obj:
            problems.append(f"missing key: {key}")
        elif not isinstance(obj[key], expected):
            problems.append(
                f"{key} has wrong type: {type(obj[key]).__name__}"
            )
    if obj.get("schema") not in (None, RUN_SCHEMA_ID):
        problems.append(f"unknown schema id: {obj.get('schema')!r}")
    return problems


def validate_run_dir(run_dir: Path) -> list[str]:
    """Validate a whole exported run directory (empty = valid).

    Checks presence of all three artifacts, validates run.json and
    events.jsonl, and cross-checks the manifest's event count against
    the stream.
    """
    run_dir = Path(run_dir)
    problems: list[str] = []
    manifest_path = run_dir / "run.json"
    events_path = run_dir / "events.jsonl"
    chrome_path = run_dir / "trace.json"
    for path in (manifest_path, events_path, chrome_path):
        if not path.is_file():
            problems.append(f"missing artifact: {path.name}")
    if problems:
        return problems

    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"run.json: invalid JSON ({exc})"]
    problems += [f"run.json: {p}" for p in validate_run_manifest(manifest)]

    event_problems = validate_events_jsonl(events_path)
    problems += [f"events.jsonl: {p}" for p in event_problems]
    if not event_problems and isinstance(manifest, dict):
        with events_path.open("r", encoding="utf-8") as fh:
            n_events = sum(1 for _ in fh)
        if manifest.get("events") != n_events:
            problems.append(
                "run.json: events count mismatch "
                f"(manifest {manifest.get('events')}, stream {n_events})"
            )

    try:
        chrome = json.loads(chrome_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        problems.append(f"trace.json: invalid JSON ({exc})")
    else:
        if not isinstance(chrome, dict) or "traceEvents" not in chrome:
            problems.append("trace.json: missing traceEvents array")
    return problems
