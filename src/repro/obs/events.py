"""Trace event vocabulary.

Every significant thing the simulated system does — a message leaving or
arriving, a 2PC phase boundary, a fail-lock update, a termination-protocol
probe, an invariant violation — is one typed :class:`TraceEvent`.  The
taxonomy (see docs/OBSERVABILITY.md) is deliberately flat and small: each
kind names *what happened*, the ``args`` dict carries the kind-specific
detail, and ``parent`` links the event to the event that caused it (the
message-receive that started the activation, the send that produced the
receive, ...), giving every transaction a causal tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.Enum):
    """Every trace event type the system emits.

    The string values are the wire names used in exported JSONL streams;
    they are part of the artifact schema (``repro.obs.schema``) and must
    only ever be extended, never renamed.
    """

    # -- network (repro.net) ------------------------------------------------
    MSG_SEND = "msg.send"            # a message released onto the wire
    MSG_RECV = "msg.recv"            # delivered to an endpoint's handler
    MSG_DROP = "msg.drop"            # undeliverable (reason in args)
    MSG_DUP = "msg.dup"              # arrival suppressed by transport dedup
    MSG_RETRANSMIT = "msg.retransmit"  # reliable-sublayer timer resend
    MSG_GIVEUP = "msg.giveup"        # retry cap hit -> unreachable report

    # -- transaction lifecycle at the coordinator (repro.site.coordinator) --
    TXN_SUBMIT = "txn.submit"        # managing site picked a coordinator
    TXN_BEGIN = "txn.begin"          # coordinator received the transaction
    LOCK_GRANT = "txn.lock_grant"    # all site-local locks granted
    COPIER_BEGIN = "txn.copier_begin"  # copier exchange(s) issued
    COPIER_END = "txn.copier_end"    # all copier responses installed
    PHASE1_BEGIN = "txn.phase1"      # VOTE_REQs shipped (2PC phase one)
    PHASE2_BEGIN = "txn.phase2"      # COMMITs shipped (2PC phase two)
    TXN_COMMIT = "txn.commit"        # coordinator committed locally
    TXN_ABORT = "txn.abort"          # coordinator aborted (reason in args)
    TXN_END = "txn.end"              # measured window closed; elapsed final

    # -- participant side (repro.site.participant) --------------------------
    PART_STAGE = "part.stage"        # phase-1 updates buffered + acked
    COMMIT_APPLIED = "commit.applied"  # a site applied committed updates
    TERM_PROBE = "term.probe"        # TXN_STATUS_REQ inquiry round started
    TERM_RESULT = "term.result"      # inquiry resolved (status in args)

    # -- concurrency control (repro.site.locking) ---------------------------
    LOCK_BLOCK = "lock.block"        # a lock request parked on a conflict

    # -- fail-locks and the session machinery (repro.core / repro.site) -----
    FAILLOCK_UPDATE = "faillock.update"  # commit-time maintenance ran
    FAILLOCK_SET = "faillock.set"    # corrective sets (type-2 / cold path)
    FAILLOCK_CLEAR = "faillock.clear"  # a clear notice applied
    SITE_FAIL = "site.fail"          # a site crashed
    SITE_RECOVER = "site.recover"    # type-1 begun; new session in args
    SITE_RECOVER_DONE = "site.recover_done"  # type-1 complete
    NSV_MARK_DOWN = "nsv.mark_down"  # session vector marked a peer down
    NSV_MARK_UP = "nsv.mark_up"      # session vector marked a peer up

    # -- chaos auditing (repro.chaos.invariants) ----------------------------
    VIOLATION = "chaos.violation"    # an audited invariant was broken

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Wire-name -> kind lookup used by the artifact loaders.
KIND_BY_VALUE: dict[str, EventKind] = {kind.value: kind for kind in EventKind}


@dataclass(slots=True)
class TraceEvent:
    """One observed event.

    ``seq`` is a run-global monotone id (also the causal handle other
    events reference via ``parent``); ``t`` is simulated milliseconds;
    ``site`` is the site where the event happened (-1 for system-level
    events); ``txn`` ties the event to a transaction (-1 when none);
    ``parent`` is the ``seq`` of the causing event (-1 for roots).
    """

    seq: int
    t: float
    kind: EventKind
    site: int = -1
    txn: int = -1
    parent: int = -1
    args: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        """The JSON-serializable form used in exported JSONL streams."""
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind.value,
            "site": self.site,
            "txn": self.txn,
            "parent": self.parent,
            "args": self.args,
        }

    @classmethod
    def from_wire(cls, obj: dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from its exported JSON form."""
        return cls(
            seq=obj["seq"],
            t=obj["t"],
            kind=KIND_BY_VALUE[obj["kind"]],
            site=obj["site"],
            txn=obj["txn"],
            parent=obj["parent"],
            args=dict(obj["args"]),
        )

    def describe(self) -> str:
        """One deterministic human-readable line (CLI ``trace cat``)."""
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.args.items()))
        where = f"site {self.site}" if self.site >= 0 else "system"
        txn = f" txn {self.txn}" if self.txn >= 0 else ""
        return f"t={self.t:10.3f}  #{self.seq:<6d} {where:>8}{txn:<8} {self.kind.value:<18} {detail}"
