"""Recording presets: trace a canned experiment or a chaos seed.

``repro trace record`` calls into here.  Each preset builds a fresh
cluster, enables its :class:`~repro.obs.sink.TraceSink`, runs a scenario
shaped like one of the paper's experiments (shrunk enough that recording
is fast but every interesting path — failure, recovery, copiers,
fail-lock clearing — still fires), and exports the run directory via
:func:`repro.obs.export.export_run`.

Presets:

* ``1`` — Experiment 1's copier scenario: 4 sites, site 0 fails, misses
  updates, recovers, then coordinates; its reads of fail-locked copies
  generate copier transactions (the paper's §2.2.3 measurement).
* ``2`` — Experiment 2's recovery-tail shape: 2 sites, site 0 down for a
  block of transactions, then recovering until its fail-locks drain.
* ``3`` — Experiment 3 scenario 2: 4 sites failing singly in succession.
* ``smoke`` — a tiny 3-site fail/recover run for CI.

``record_chaos`` instead traces one :func:`repro.chaos.runner.run_chaos_seed`
run, so invariant violations land in the stream with causal context.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.obs.export import export_run
from repro.obs.sink import TraceSink

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.system.config import SystemConfig
    from repro.system.scenario import Scenario

EXPERIMENT_PRESETS = ("1", "2", "3", "smoke")


def _scenario_for(exp: str, seed: int) -> "tuple[SystemConfig, Scenario]":
    # Imported here, not at module top: repro.net imports repro.obs.events
    # during its own init, which initializes this package — a top-level
    # import of repro.system here would close that cycle.
    from repro.system.config import SystemConfig
    from repro.system.scenario import FailSite, RecoverSite, Scenario, Weighted
    from repro.workload.uniform import UniformWorkload
    if exp == "1":
        config = SystemConfig.paper_experiment1(seed=seed)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=80,
            policy=Weighted({0: 1.0, 1: 0.001, 2: 0.001, 3: 0.001}),
            until_recovered=(0,),
            max_txns=1000,
        )
        scenario.add_action(3, FailSite(0))
        scenario.add_action(20, RecoverSite(0))
    elif exp == "2":
        config = SystemConfig.paper_experiment2(seed=seed)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=60,
            until_recovered=(0,),
            max_txns=1000,
        )
        scenario.add_action(1, FailSite(0))
        scenario.add_action(31, RecoverSite(0))
    elif exp == "3":
        config = SystemConfig.paper_experiment3_scenario2(seed=seed)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=60,
            until_recovered=(0, 1, 2, 3),
            max_txns=1000,
        )
        for site in range(4):
            scenario.add_action(10 * site + 1, FailSite(site))
            scenario.add_action(10 * (site + 1) + 1, RecoverSite(site))
    elif exp == "smoke":
        config = SystemConfig(db_size=12, num_sites=3, max_txn_size=4, seed=seed)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=12,
            until_recovered=(0,),
            max_txns=500,
        )
        scenario.add_action(2, FailSite(0))
        scenario.add_action(8, RecoverSite(0))
    else:
        raise ConfigurationError(
            f"unknown experiment preset {exp!r} (choose from {EXPERIMENT_PRESETS})"
        )
    return config, scenario


def record_experiment(
    exp: str, *, seed: int = 42, out_dir: Path
) -> dict[str, Any]:
    """Trace one experiment preset and export its run directory."""
    from repro.system.cluster import Cluster

    config, scenario = _scenario_for(exp, seed)
    cluster = Cluster(config)
    sink = cluster.obs
    sink.enabled = True
    cluster.run(scenario)
    return export_run(
        Path(out_dir),
        sink,
        scenario=f"exp{exp}",
        seed=seed,
        sites=config.num_sites,
        db_size=config.db_size,
        sim_time_ms=cluster.now,
    )


def record_chaos(
    chaos_seed: int,
    *,
    out_dir: Path,
    sites: int = 4,
    db_size: int = 32,
    txns: int = 60,
    lossy_core: bool = False,
) -> dict[str, Any]:
    """Trace one chaos seed (faults + auditing on) and export it."""
    from repro.chaos.faults import FaultPlan
    from repro.chaos.runner import run_chaos_seed

    plan = FaultPlan.lossy() if lossy_core else FaultPlan()
    sink = TraceSink(enabled=True)
    result = run_chaos_seed(
        chaos_seed,
        sites=sites,
        db_size=db_size,
        txns=txns,
        plan=plan,
        trace=sink,
    )
    violations = [
        {str(k): v for k, v in asdict(record).items()}
        for record in result.violations
    ]
    return export_run(
        Path(out_dir),
        sink,
        scenario=f"chaos-{'lossy' if lossy_core else 'conservative'}",
        seed=chaos_seed,
        sites=sites,
        db_size=db_size,
        sim_time_ms=result.sim_time_ms,
        violations=violations,
    )
