"""repro.obs — structured tracing, causal timelines, and run artifacts.

The observability layer for the reproduction.  One ring-buffered
:class:`~repro.obs.sink.TraceSink` hangs off the network; every layer
(network transport, reliable sublayer, 2PC coordinator/participant,
copier and control transactions, fail-lock machinery, chaos auditor)
emits typed :class:`~repro.obs.events.TraceEvent`\\ s with simulated time,
site, transaction id, and a causal parent.  Tracing is pure observation —
it never touches the scheduler, CPU model, or RNG — so enabling it cannot
change a run, and a disabled sink costs one boolean check per event site.

Typical use::

    cluster = Cluster(config)
    cluster.obs.enabled = True
    cluster.run(scenario)
    timelines = build_timelines(cluster.obs)      # phase attribution
    export_run(Path("run"), cluster.obs, ...)     # run.json + JSONL + Chrome

or, from the command line::

    repro trace record --exp 1 --out run/
    repro trace show 17 --dir run/
    repro trace cat --dir run/ --kind msg.retransmit

See docs/OBSERVABILITY.md for the event taxonomy and the phase
attribution rules.
"""

from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import export_run, load_events, load_manifest, to_chrome_trace
from repro.obs.record import record_chaos, record_experiment
from repro.obs.schema import validate_events_jsonl, validate_run_dir
from repro.obs.sink import TraceSink
from repro.obs.timeline import (
    PhaseSpan,
    TxnTimeline,
    build_timeline,
    build_timelines,
    derive_txn_summaries,
)

__all__ = [
    "EventKind",
    "TraceEvent",
    "TraceSink",
    "PhaseSpan",
    "TxnTimeline",
    "build_timeline",
    "build_timelines",
    "derive_txn_summaries",
    "export_run",
    "load_events",
    "load_manifest",
    "to_chrome_trace",
    "record_experiment",
    "record_chaos",
    "validate_events_jsonl",
    "validate_run_dir",
]
