"""The soak run driver: sustained open-loop load through site failure.

Differences from :class:`repro.system.openloop.OpenLoopManager`, all
forced by scale and by mid-flight failures:

* arrivals are scheduled one at a time (the next arrival is drawn when
  the previous one fires), so the scheduler's heap stays O(in-flight)
  instead of O(txn_count), and each transaction's operations are
  generated *at submission time* — which is what lets load shapes and
  hot-key storms depend on the clock;
* the coordinator for each transaction is chosen among the sites the
  manager currently believes up, and transactions that were in flight at
  a coordinator when it crashed are recorded as
  ``AbortReason.COORDINATOR_FAILED`` aborts (the client-visible outcome);
* every outcome flows through a :class:`repro.metrics.streaming.StreamingTxnSink`
  instead of a growing record list.

The simulation core is untouched: sites, 2PC, fail-locks, and recovery
behave exactly as in every other mode, and
``SystemConfig(timeouts_enabled=True)`` supplies the cooperative
termination that lets orphaned participants resolve blocked transactions
(see docs/SOAK.md for why a soak run requires it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.core.control import FailureAnnouncement
from repro.core.recovery import RecoveryPolicy
from repro.metrics.collector import MetricsCollector
from repro.metrics.records import TxnRecord
from repro.metrics.streaming import StreamingTxnSink, Window
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.message import Message, MessageType
from repro.system.cluster import Cluster
from repro.system.config import FailureDetection, SystemConfig
from repro.system.deadlock import GlobalDeadlockDetector
from repro.txn.transaction import AbortReason
from repro.workload.base import WorkloadGenerator
from repro.workload.shapes import (
    ConstantShape,
    DebitCreditWorkload,
    DiurnalShape,
    FlashCrowdShape,
    HotKeyStormWorkload,
    LoadShape,
    RampShape,
    WisconsinMixWorkload,
    next_arrival_ms,
)
from repro.workload.uniform import UniformWorkload
from repro.workload.zipf import ZipfWorkload

__all__ = ["SoakConfig", "SoakResult", "run_soak"]


@dataclass(slots=True)
class SoakConfig:
    """One soak run, fully determined by these knobs plus the seed."""

    seed: int = 0
    txns: int = 5_000
    rate_tps: float = 25.0
    # Load shape: constant | ramp | diurnal | flash.  ``peak_tps`` defaults
    # to 2x the base rate for the non-constant shapes; ``period_ms`` is the
    # diurnal period, the ramp duration, and the flash-crowd onset time.
    shape: str = "constant"
    peak_tps: Optional[float] = None
    period_ms: float = 20_000.0
    # Item popularity / op mix:
    # uniform | zipf | storm | debitcredit | wisconsin.
    workload: str = "zipf"
    skew: float = 0.8
    storm_every_ms: float = 10_000.0
    # Wisconsin mix only: fraction of transactions that are read scans.
    read_fraction: float = 0.7
    # Cluster dimensions (mirrors the open-loop defaults used in perf runs).
    num_sites: int = 4
    db_size: int = 128
    max_txn_size: int = 5
    cores: int = 5
    wire_latency_ms: float = 9.0
    # Failure detection: "timeout" (survivors learn of the crash only via
    # bounced messages — the client-visible availability dip the paper's
    # §3 asks about) or "announced" (type-2 announcement hides most of it).
    detection: str = "timeout"
    # Recovery policy for the failed site's catch-up: on_demand | two_step
    # | parallel.  The default keeps soak reports byte-identical to
    # earlier revisions; non-default values add a recoveries section.
    recovery_policy: str = "on_demand"
    # Streaming metrics.  ``window_ms`` is the *minimum* window width:
    # when the estimated run would produce more than ``max_windows``
    # windows, the width is widened up-front so the series length — and
    # with it total memory — stays bounded no matter how long the run
    # (the windowed series is the one per-duration structure in a soak).
    window_ms: float = 1_000.0
    max_windows: int = 240
    rel_err: float = 0.01
    exemplars: int = 20
    # Fail/recover cycle.  ``fail_site=None`` disables fault injection;
    # ``fail_at_ms``/``recover_at_ms`` default to ~35% / ~60% of the
    # estimated run duration so the series shows a pre-fail baseline, the
    # dip, and the post-recovery tail.
    fail_site: Optional[int] = 2
    fail_at_ms: Optional[float] = None
    recover_at_ms: Optional[float] = None

    def build_shape(self) -> LoadShape:
        peak = self.peak_tps if self.peak_tps is not None else 2.0 * self.rate_tps
        if self.shape == "constant":
            return ConstantShape(self.rate_tps)
        if self.shape == "ramp":
            return RampShape(self.rate_tps, peak, self.period_ms)
        if self.shape == "diurnal":
            return DiurnalShape(self.rate_tps, peak, self.period_ms)
        if self.shape == "flash":
            return FlashCrowdShape(
                self.rate_tps, peak, at_ms=self.period_ms,
                rise_ms=max(self.period_ms / 20.0, 1.0),
                fall_ms=max(self.period_ms / 4.0, 1.0),
            )
        raise ConfigurationError(f"unknown load shape: {self.shape!r}")

    def build_workload(self, system: SystemConfig) -> WorkloadGenerator:
        if self.workload == "uniform":
            return UniformWorkload(system.item_ids, self.max_txn_size)
        if self.workload == "zipf":
            return ZipfWorkload(system.item_ids, self.max_txn_size, skew=self.skew)
        if self.workload == "storm":
            return HotKeyStormWorkload(
                system.item_ids, self.max_txn_size, skew=self.skew,
                storm_every_ms=self.storm_every_ms,
            )
        if self.workload == "debitcredit":
            return DebitCreditWorkload(system.item_ids)
        if self.workload == "wisconsin":
            return WisconsinMixWorkload(
                system.item_ids, self.max_txn_size,
                read_fraction=self.read_fraction,
            )
        raise ConfigurationError(f"unknown workload kind: {self.workload!r}")

    def system_config(self) -> SystemConfig:
        """The cluster config a soak run forces: concurrent mode with
        cooperative termination (a crash mid-2PC orphans participants;
        without timeouts they would block forever)."""
        try:
            detection = FailureDetection(self.detection)
        except ValueError:
            raise ConfigurationError(
                f"unknown detection mode: {self.detection!r}"
            ) from None
        try:
            recovery_policy = RecoveryPolicy(self.recovery_policy)
        except ValueError:
            raise ConfigurationError(
                f"unknown recovery policy: {self.recovery_policy!r}"
            ) from None
        return SystemConfig(
            seed=self.seed,
            num_sites=self.num_sites,
            db_size=self.db_size,
            max_txn_size=self.max_txn_size,
            cores=self.cores,
            wire_latency_ms=self.wire_latency_ms,
            concurrency_control=True,
            timeouts_enabled=True,
            detection=detection,
            recovery_policy=recovery_policy,
        )

    def estimated_duration_ms(self) -> float:
        """Rough run length from the shape's mean rate — used only to
        place the default fail/recover cycle, never for measurement."""
        shape = self.build_shape()
        horizon = self.txns / self.rate_tps * 1000.0
        mean = shape.mean_rate(horizon)
        return self.txns / mean * 1000.0

    def effective_window_ms(self) -> float:
        """The window width the run actually uses: the configured width,
        widened so the estimated run yields at most ``max_windows``
        windows.  Deterministic (depends only on the config), so the
        report stays byte-identical across runs."""
        est = self.estimated_duration_ms()
        return max(self.window_ms, float(math.ceil(est / self.max_windows)))

    def fault_schedule(self) -> Optional[tuple[int, float, float]]:
        """``(site, fail_at_ms, recover_at_ms)`` or None."""
        if self.fail_site is None:
            return None
        fail_at = self.fail_at_ms
        recover_at = self.recover_at_ms
        if fail_at is None:
            fail_at = 0.35 * self.estimated_duration_ms()
        if recover_at is None:
            recover_at = fail_at + 0.25 * self.estimated_duration_ms()
        if recover_at <= fail_at:
            raise ConfigurationError(
                f"recover_at_ms ({recover_at}) must be after fail_at_ms ({fail_at})"
            )
        return (self.fail_site, fail_at, recover_at)

    def validate(self) -> None:
        if self.txns < 1:
            raise ConfigurationError(f"txns must be >= 1: {self.txns}")
        if self.rate_tps <= 0:
            raise ConfigurationError(f"rate_tps must be positive: {self.rate_tps}")
        if self.window_ms <= 0:
            raise ConfigurationError(f"window_ms must be positive: {self.window_ms}")
        if self.max_windows < 8:
            raise ConfigurationError(
                f"max_windows must be >= 8 for a usable series: {self.max_windows}"
            )
        if self.exemplars < 0:
            raise ConfigurationError(f"exemplars must be >= 0: {self.exemplars}")
        if self.fail_site is not None and not (
            0 <= self.fail_site < self.num_sites
        ):
            raise ConfigurationError(
                f"fail_site {self.fail_site} out of range for "
                f"{self.num_sites} sites"
            )
        self.build_shape()  # raises on bad shape parameters


@dataclass(slots=True)
class FaultEvent:
    """One fail/recover cycle, with observed completion times."""

    site: int
    fail_at_ms: float
    recover_at_ms: float
    failed_at_ms: Optional[float] = None
    recover_done_ms: Optional[float] = None
    lost_txns: int = 0


@dataclass(slots=True)
class SoakResult:
    """Everything a soak run measured (aggregates only — no records)."""

    config: SoakConfig
    sink: StreamingTxnSink = field(repr=False)
    commits: int = 0
    aborts: int = 0
    lost: int = 0
    elapsed_ms: float = 0.0
    events_fired: int = 0
    lock_parks: int = 0
    deadlocks_detected: int = 0
    status_inquiries: int = 0
    fault: Optional[FaultEvent] = None
    # Recovery periods the run observed (RecoveryPeriodRecord list).  The
    # report only surfaces them for non-default recovery policies, so the
    # default soak artifacts stay byte-identical to earlier revisions.
    recoveries: list = field(default_factory=list)

    @property
    def txns(self) -> int:
        return self.commits + self.aborts

    @property
    def throughput_tps(self) -> float:
        if self.elapsed_ms <= 0:
            return 0.0
        return self.commits / (self.elapsed_ms / 1000.0)

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.txns if self.txns else 0.0


class SoakManager(Endpoint):
    """Open-loop source that survives coordinator crashes.

    Tracks which sites it believes operational, routes new transactions
    to them, and settles transactions stranded at a crashed coordinator
    as ``COORDINATOR_FAILED`` aborts — exactly what a client library
    timing out against a dead frontend would report.
    """

    def __init__(
        self,
        cluster: Cluster,
        workload: WorkloadGenerator,
        shape: LoadShape,
        sink: StreamingTxnSink,
        txn_count: int,
    ) -> None:
        super().__init__(cluster.config.manager_id)
        self.cluster = cluster
        self.config = cluster.config
        self.metrics = cluster.metrics
        self.workload = workload
        self.shape = shape
        self.sink = sink
        self._rng = cluster.rng.stream("soak")
        self._expected = txn_count
        self._submitted = 0
        self._done = 0
        self.finished = False
        # txn -> (coordinator, submitted_at, op count); O(in-flight).
        self.outstanding: dict[int, tuple[int, float, int]] = {}
        self.believed_up: set[int] = set(self.config.site_ids)
        self.lost = 0
        self.late_done = 0
        self.faults: list[FaultEvent] = []

    # -- arrivals ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first arrival (subsequent ones chain)."""
        first = next_arrival_ms(self.shape, self._rng, 0.0)
        self.cluster.network.spawn(self, self._arrive, delay=first)

    def _arrive(self, ctx: HandlerContext) -> None:
        self._submitted += 1
        seq = self._submitted
        if isinstance(self.workload, HotKeyStormWorkload):
            ops = self.workload.generate_at(seq, self._rng, ctx.now)
        else:
            ops = self.workload.generate(seq, self._rng)
        up = sorted(self.believed_up)
        dst = up[self._rng.randrange(len(up))]
        self.outstanding[seq] = (dst, ctx.now, len(ops))
        self.sink.note_arrival(ctx.now)
        ctx.send(
            dst,
            MessageType.MGR_SUBMIT_TXN,
            {"ops": [(op.kind, op.item_id) for op in ops]},
            txn_id=seq,
        )
        if self._submitted < self._expected:
            gap = next_arrival_ms(self.shape, self._rng, ctx.now) - ctx.now
            self.cluster.network.spawn(self, self._arrive, delay=gap)

    # -- outcomes ------------------------------------------------------------------

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.mtype is MessageType.MGR_RECOVER_DONE:
            site = msg.payload["site"]
            self.believed_up.add(site)
            for fault in self.faults:
                if fault.site == site and fault.recover_done_ms is None:
                    fault.recover_done_ms = ctx.now
            return
        if msg.mtype is not MessageType.MGR_TXN_DONE:
            raise ProtocolError(f"soak manager: unexpected message {msg}")
        entry = self.outstanding.pop(msg.txn_id, None)
        if entry is None:
            # Outcome for a transaction already settled as lost (its
            # coordinator crashed and later recovered, or a survivor
            # finished the commit on the coordinator's behalf).
            self.late_done += 1
            self.metrics.pop_participants(msg.txn_id)
            return
        _coordinator, submitted_at, _size = entry
        payload = msg.payload
        record = TxnRecord(
            txn_id=msg.txn_id,
            seq=msg.txn_id,
            coordinator=msg.src,
            committed=payload["committed"],
            abort_reason=AbortReason(payload["reason"]),
            size=payload["size"],
            items_read=payload["items_read"],
            items_written=payload["items_written"],
            submitted_at=submitted_at,
            finished_at=ctx.now,
            coordinator_elapsed=payload["coordinator_elapsed"],
            participant_elapsed=self.metrics.pop_participants(msg.txn_id),
            copiers_requested=payload["copiers"],
            clear_notices_sent=payload["clear_notices"],
        )
        self.metrics.record_txn(record)
        self._note_done()

    def on_delivery_failed(self, ctx: HandlerContext, msg: Message) -> None:
        """A submission bounced: the coordinator died after we chose it
        (within the failure-announcement latency window)."""
        if msg.mtype is MessageType.MGR_SUBMIT_TXN and msg.txn_id in self.outstanding:
            self._lose(ctx, msg.txn_id)

    def _note_done(self) -> None:
        self._done += 1
        if self._done >= self._expected:
            self.finished = True

    def _lose(self, ctx: HandlerContext, txn_id: int) -> None:
        coordinator, submitted_at, size = self.outstanding.pop(txn_id)
        self.lost += 1
        self.metrics.pop_participants(txn_id)
        self.metrics.record_txn(
            TxnRecord(
                txn_id=txn_id,
                seq=txn_id,
                coordinator=coordinator,
                committed=False,
                abort_reason=AbortReason.COORDINATOR_FAILED,
                size=size,
                items_read=0,
                items_written=0,
                submitted_at=submitted_at,
                finished_at=ctx.now,
                coordinator_elapsed=ctx.now - submitted_at,
                participant_elapsed={},
                copiers_requested=0,
                clear_notices_sent=0,
            )
        )
        self._note_done()

    # -- fault injection ------------------------------------------------------------

    def fail_site(self, ctx: HandlerContext, fault: FaultEvent) -> None:
        site_id = fault.site
        if site_id not in self.believed_up or len(self.believed_up) <= 1:
            return  # already down, or it is the last site standing
        ctx.send(site_id, MessageType.MGR_FAIL, {})
        self.believed_up.discard(site_id)
        fault.failed_at_ms = ctx.now
        self.faults.append(fault)
        if self.config.detection is FailureDetection.ANNOUNCED:
            announcement = FailureAnnouncement(
                announcer=self.site_id, failed_sites=[site_id]
            )
            for peer in sorted(self.believed_up):
                ctx.send(
                    peer, MessageType.FAILURE_ANNOUNCE, announcement.to_payload()
                )
        # Transactions coordinated by the failed site die with it.
        for txn_id in sorted(
            t for t, (coord, _at, _n) in self.outstanding.items()
            if coord == site_id
        ):
            self._lose(ctx, txn_id)
            fault.lost_txns += 1

    def recover_site(self, ctx: HandlerContext, site_id: int) -> None:
        if site_id in self.believed_up:
            return
        ctx.send(site_id, MessageType.MGR_RECOVER, {})


def run_soak(config: Optional[SoakConfig] = None, trace=None) -> SoakResult:
    """Run one soak and return its streaming aggregates.

    Pass an enabled :class:`~repro.obs.sink.TraceSink` as ``trace`` to
    capture the run's structured trace; tracing is pure observation and
    does not perturb the simulation (same discipline as
    :func:`repro.chaos.runner.run_chaos_seed`).
    """
    if config is None:
        config = SoakConfig()
    config.validate()
    system = config.system_config()
    cluster_metrics = MetricsCollector(retain_txns=False)
    cluster = Cluster(system, metrics=cluster_metrics)
    if trace is not None:
        cluster.network.obs = trace
    sink = StreamingTxnSink(
        window_ms=config.effective_window_ms(),
        rel_err=config.rel_err,
        exemplar_k=config.exemplars,
        exemplar_rng=cluster.rng.stream("soak.exemplars") if config.exemplars else None,
    )
    cluster_metrics.txn_sink = sink

    # O(1)-memory mode: the diagnostic logs that experiments keep in full
    # are bounded for a soak.  The message trace is dropped entirely (the
    # paper experiments count messages from it; a soak does not), each
    # site's redo log keeps a fixed window, and the 2PC decision logs
    # keep a generous tail — cooperative-termination inquiries only ever
    # concern transactions still blocked somewhere, i.e. at most a few
    # timeout-windows of history.
    # At soak rates a blocked transaction resolves within ~2s (vote,
    # commit-retry, and status-inquiry timeouts), during which one site
    # decides at most a few dozen transactions — 128 retained decisions
    # is several times that horizon.
    cluster.network.trace.capacity = 0
    for site in cluster.sites:
        site.db.log.capacity = 256
        site.coordinator.decision_log_cap = 128
        site.participant.decision_log_cap = 128

    detector = GlobalDeadlockDetector()
    for site in cluster.sites:
        assert site.lock_service is not None
        site.lock_service.detector = detector

    manager = SoakManager(
        cluster, config.build_workload(system), config.build_shape(), sink,
        config.txns,
    )
    cluster.network.replace_endpoint(manager)

    # Gauges snapshot at each window roll: in-flight txns, fail-locks.
    def on_window_open(window: Window) -> None:
        window.in_flight = len(manager.outstanding)
        window.faillocks = sum(cluster.faillock_counts().values())

    sink.windows.on_open = on_window_open

    schedule = config.fault_schedule()
    fault: Optional[FaultEvent] = None
    if schedule is not None:
        site_id, fail_at, recover_at = schedule
        fault = FaultEvent(site=site_id, fail_at_ms=fail_at, recover_at_ms=recover_at)
        cluster.network.spawn(
            manager, lambda ctx: manager.fail_site(ctx, fault), delay=fail_at
        )
        cluster.network.spawn(
            manager, lambda ctx: manager.recover_site(ctx, site_id),
            delay=recover_at,
        )

    manager.start()
    # A soak fires ~32 events per transaction (messages, CPU slices,
    # timeouts); the scheduler's default 10M runaway guard would cut a
    # multi-million-txn run short, so scale it with the configured size
    # while keeping a generous per-txn margin for timeout storms.
    cluster.scheduler.run(max_events=max(10_000_000, config.txns * 500))
    if not manager.finished:
        raise SimulationError(
            f"soak run stalled: {manager._done}/{config.txns} outcomes, "
            f"{len(manager.outstanding)} in flight at t={cluster.now:.0f}ms"
        )
    problems = cluster.audit_consistency()
    if problems:
        raise SimulationError(f"consistency violated: {problems[:3]}")

    parks = sum(
        site.lock_service.parks for site in cluster.sites if site.lock_service
    )
    return SoakResult(
        config=config,
        sink=sink,
        commits=cluster.metrics.counters.get("commits"),
        aborts=cluster.metrics.counters.get("aborts"),
        lost=manager.lost,
        elapsed_ms=cluster.now,
        events_fired=cluster.scheduler.fired,
        lock_parks=parks,
        deadlocks_detected=detector.deadlocks_found,
        status_inquiries=cluster.metrics.counters.get("status_inquiries"),
        fault=manager.faults[0] if manager.faults else fault,
        recoveries=list(cluster.metrics.recoveries),
    )
