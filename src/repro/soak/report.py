"""Byte-deterministic soak report: build, validate, render, write.

Schema ``repro.soak/1``.  Every number in the document derives from the
seeded simulation (no wall-clock, no environment), floats are rounded to
fixed precision, and dict insertion order is fixed — so the same seed
always serializes to the same bytes, which CI asserts by re-running and
comparing artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError
from repro.soak.engine import SoakResult

__all__ = [
    "SOAK_SCHEMA",
    "build_report",
    "validate_soak_report",
    "render_soak_text",
    "write_report",
    "write_soak_svg",
]

SOAK_SCHEMA = "repro.soak/1"

# A window's availability counts as "recovered" once it is back within
# this much of the pre-fail baseline (documented in docs/SOAK.md).
RECOVERY_TOLERANCE = 0.05


def _round(value: Optional[float], digits: int = 3) -> Optional[float]:
    if value is None:
        return None
    return round(value, digits)


def _latency_block(digest) -> dict:
    """Latency summary from a :class:`LatencyDigest` (sketch quantiles)."""
    stats = digest.stats
    empty = stats.count == 0
    return {
        "count": stats.count,
        "mean": _round(stats.mean) if not empty else None,
        "p50": _round(digest.quantile(50.0)) if not empty else None,
        "p95": _round(digest.quantile(95.0)) if not empty else None,
        "p99": _round(digest.quantile(99.0)) if not empty else None,
        "min": _round(stats.minimum) if not empty else None,
        "max": _round(stats.maximum) if not empty else None,
        "stddev": _round(stats.stddev) if not empty else None,
    }


def _availability_analysis(
    windows: list[dict], fault: Optional[dict], window_ms: float
) -> dict:
    """Baseline / dip / time-to-recover from the windowed series.

    The dip is the worst availability window inside the *fault region* —
    from the crash until shortly after recovery completed (a few windows
    of slack for post-recovery lock churn) — so ordinary contention noise
    elsewhere in the run cannot masquerade as the dip.
    """
    defined = [w for w in windows if w["availability"] is not None]
    overall = (
        sum(w["availability"] for w in defined) / len(defined) if defined else None
    )
    analysis: dict = {
        "overall": _round(overall, 4),
        "baseline": None,
        "dip": None,
        "dip_t_ms": None,
        "recovered": None,
        "time_to_baseline_ms": None,
    }
    if fault is None or fault.get("failed_at_ms") is None:
        return analysis
    fail_at = fault["failed_at_ms"]
    region_end = fault.get("recover_done_ms")
    if region_end is None:
        region_end = defined[-1]["t_ms"] if defined else fail_at
    region_end += 5.0 * window_ms
    before = [w for w in defined if w["t_ms"] < fail_at]
    region = [w for w in defined if fail_at <= w["t_ms"] <= region_end]
    if not before or not region:
        return analysis
    baseline = sum(w["availability"] for w in before) / len(before)
    dip_window = min(region, key=lambda w: (w["availability"], w["t_ms"]))
    analysis["baseline"] = _round(baseline, 4)
    analysis["dip"] = _round(dip_window["availability"], 4)
    analysis["dip_t_ms"] = _round(dip_window["t_ms"])
    threshold = baseline - RECOVERY_TOLERANCE
    recovered_at = next(
        (
            w["t_ms"]
            for w in defined
            if w["t_ms"] > dip_window["t_ms"] and w["availability"] >= threshold
        ),
        None,
    )
    analysis["recovered"] = recovered_at is not None
    if recovered_at is not None:
        analysis["time_to_baseline_ms"] = _round(recovered_at - fail_at)
    return analysis


def build_report(result: SoakResult) -> dict:
    """Assemble the ``repro.soak/1`` document from a finished run."""
    config = result.config
    sink = result.sink
    fault_doc = None
    if result.fault is not None:
        fault = result.fault
        fault_doc = {
            "site": fault.site,
            "fail_at_ms": _round(fault.fail_at_ms),
            "recover_at_ms": _round(fault.recover_at_ms),
            "failed_at_ms": _round(fault.failed_at_ms),
            "recover_done_ms": _round(fault.recover_done_ms),
            "lost_txns": fault.lost_txns,
        }
    windows = []
    for window in sink.windows.windows:
        latency = window.latency
        windows.append(
            {
                "t_ms": _round(window.start_ms),
                "arrivals": window.arrivals,
                "commits": window.commits,
                "aborts": window.aborts,
                "availability": _round(window.availability, 4),
                "mean_ms": _round(latency.mean) if latency.count else None,
                "p95_ms": _round(window.p95.value()) if latency.count else None,
                "in_flight": window.in_flight,
                "faillocks": window.faillocks,
            }
        )
    abort_reasons = {
        reason: count for reason, count in sorted(sink.abort_reasons.items())
    }
    exemplars = sorted(sink.exemplars.items, key=lambda e: e["txn"])
    for exemplar in exemplars:
        exemplar["submitted_at"] = _round(exemplar["submitted_at"])
        exemplar["latency_ms"] = _round(exemplar["latency_ms"])
    doc = {
        "schema": SOAK_SCHEMA,
        "config": {
            "seed": config.seed,
            "txns": config.txns,
            "rate_tps": config.rate_tps,
            "shape": config.shape,
            "peak_tps": config.peak_tps,
            "period_ms": config.period_ms,
            "workload": config.workload,
            "skew": config.skew,
            "storm_every_ms": config.storm_every_ms,
            "num_sites": config.num_sites,
            "db_size": config.db_size,
            "max_txn_size": config.max_txn_size,
            "cores": config.cores,
            "wire_latency_ms": config.wire_latency_ms,
            "detection": config.detection,
            "window_ms": config.window_ms,
            "rel_err": config.rel_err,
            "exemplars": config.exemplars,
            "fail_site": config.fail_site,
        },
        "totals": {
            "txns": result.txns,
            "commits": result.commits,
            "aborts": result.aborts,
            "lost": result.lost,
            "abort_reasons": abort_reasons,
            "elapsed_ms": _round(result.elapsed_ms),
            "throughput_tps": _round(result.throughput_tps),
            "abort_rate": _round(result.abort_rate, 4),
            "events_fired": result.events_fired,
            "lock_parks": result.lock_parks,
            "deadlocks_detected": result.deadlocks_detected,
            "status_inquiries": result.status_inquiries,
        },
        "latency_ms": _latency_block(sink.latency_committed),
        "latency_all_ms": _latency_block(sink.latency_all),
        "fault": fault_doc,
        "windows": {
            # The width the run actually used (config.window_ms widened so
            # the series stays under config.max_windows points).
            "window_ms": sink.windows.window_ms,
            "series": windows,
        },
        "availability": _availability_analysis(
            windows, fault_doc, sink.windows.window_ms
        ),
        "exemplars": exemplars,
    }
    if config.recovery_policy != "on_demand":
        # Recovery-period accounting, surfaced only for the non-default
        # policies so default-config reports stay byte-identical to those
        # of earlier revisions (same gating discipline as the chaos
        # report's recovery line).
        doc["config"]["recovery_policy"] = config.recovery_policy
        doc["recoveries"] = [
            {
                "site": r.site_id,
                "policy": r.policy,
                "started_at_ms": _round(r.started_at),
                "finished_at_ms": _round(r.finished_at),
                "elapsed_ms": _round(r.elapsed),
                "initial_stale": r.initial_stale,
                "copier_requests": r.copier_requests,
                "batch_copier_requests": r.batch_copier_requests,
                "refreshed_by_write": r.refreshed_by_write,
                "refreshed_by_copier": r.refreshed_by_copier,
                "interrupted": r.interrupted,
            }
            for r in result.recoveries
        ]
    return doc


def validate_soak_report(doc: dict) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: list[str] = []

    def need(container: dict, key: str, kinds, where: str) -> bool:
        if key not in container:
            problems.append(f"{where}: missing key {key!r}")
            return False
        if kinds is not None and not isinstance(container[key], kinds):
            problems.append(
                f"{where}.{key}: expected {kinds}, got "
                f"{type(container[key]).__name__}"
            )
            return False
        return True

    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SOAK_SCHEMA:
        problems.append(f"schema: expected {SOAK_SCHEMA!r}, got {doc.get('schema')!r}")
    for section in ("config", "totals", "latency_ms", "latency_all_ms",
                    "windows", "availability"):
        need(doc, section, dict, "doc")
    if "exemplars" in doc and not isinstance(doc["exemplars"], list):
        problems.append("doc.exemplars: expected list")
    if problems:
        return problems

    totals = doc["totals"]
    for key in ("txns", "commits", "aborts", "lost", "events_fired"):
        need(totals, key, int, "totals")
    if not problems and totals["commits"] + totals["aborts"] != totals["txns"]:
        problems.append(
            f"totals: commits + aborts != txns "
            f"({totals['commits']} + {totals['aborts']} != {totals['txns']})"
        )
    if not problems and totals["txns"] != doc["config"].get("txns"):
        problems.append(
            f"totals.txns {totals['txns']} != config.txns "
            f"{doc['config'].get('txns')}"
        )

    windows = doc["windows"]
    if need(windows, "series", list, "windows"):
        last_t = -1.0
        for i, window in enumerate(windows["series"]):
            where = f"windows.series[{i}]"
            if not isinstance(window, dict):
                problems.append(f"{where}: expected object")
                continue
            for key in ("t_ms", "arrivals", "commits", "aborts"):
                need(window, key, (int, float), where)
            availability = window.get("availability")
            if availability is not None and not 0.0 <= availability <= 1.0:
                problems.append(f"{where}.availability out of [0,1]: {availability}")
            t = window.get("t_ms", last_t)
            if isinstance(t, (int, float)):
                if t <= last_t:
                    problems.append(f"{where}.t_ms not increasing: {t}")
                last_t = t
        done = sum(
            w.get("commits", 0) + w.get("aborts", 0)
            for w in windows["series"]
            if isinstance(w, dict)
        )
        if done != totals["txns"]:
            problems.append(
                f"windows account for {done} completions, totals say "
                f"{totals['txns']}"
            )
    return problems


def _series_points(doc: dict, key: str) -> list[tuple[float, float]]:
    return [
        (w["t_ms"], w[key])
        for w in doc["windows"]["series"]
        if w.get(key) is not None
    ]


def render_soak_text(doc: dict) -> str:
    """Human-readable report: totals, fault timeline, ASCII charts."""
    from repro.viz.ascii_chart import AsciiChart

    def _chart(name: str, points: list[tuple[float, float]], title: str) -> str:
        chart = AsciiChart(height=10, title=title, x_label="time (ms)")
        chart.add_series(name, points)
        return chart.render()

    totals = doc["totals"]
    latency = doc["latency_ms"]
    lines = [
        f"soak: {totals['txns']} txns over {totals['elapsed_ms']:.0f} ms "
        f"(shape={doc['config']['shape']}, workload={doc['config']['workload']}, "
        f"seed={doc['config']['seed']})",
        f"  commits={totals['commits']} aborts={totals['aborts']} "
        f"(lost={totals['lost']}) abort_rate={totals['abort_rate']:.2%} "
        f"throughput={totals['throughput_tps']:.1f} tps",
        f"  committed latency ms: mean={latency['mean']} p50={latency['p50']} "
        f"p95={latency['p95']} p99={latency['p99']} max={latency['max']}",
    ]
    fault = doc.get("fault")
    availability = doc["availability"]
    if fault is not None and fault.get("failed_at_ms") is not None:
        lines.append(
            f"  fault: site {fault['site']} failed at {fault['failed_at_ms']:.0f} ms "
            f"(lost {fault['lost_txns']} in-flight), recover done at "
            f"{fault['recover_done_ms'] if fault['recover_done_ms'] is not None else '-'} ms"
        )
        if availability["baseline"] is not None:
            recovery = (
                f"{availability['time_to_baseline_ms']:.0f} ms"
                if availability.get("time_to_baseline_ms") is not None
                else "never"
            )
            lines.append(
                f"  availability: baseline={availability['baseline']:.3f} "
                f"dip={availability['dip']:.3f} at {availability['dip_t_ms']:.0f} ms, "
                f"back to baseline in {recovery}"
            )
    recoveries = doc.get("recoveries")
    if recoveries is not None:
        closed = [r for r in recoveries if not r["interrupted"]]
        lines.append(
            f"  recovery ({doc['config'].get('recovery_policy', '?')}): "
            f"{len(recoveries)} period(s), {len(recoveries) - len(closed)} "
            f"interrupted"
        )
        for r in closed:
            lines.append(
                f"    site {r['site']}: {r['elapsed_ms']:.1f} ms to clear "
                f"{r['initial_stale']} stale item(s) "
                f"({r['refreshed_by_copier']} by copier, "
                f"{r['refreshed_by_write']} by write)"
            )
    chart_avail = _series_points(doc, "availability")
    if chart_avail:
        lines.append("")
        lines.append(
            _chart("availability", chart_avail, "availability per window")
        )
    chart_p95 = _series_points(doc, "p95_ms")
    if chart_p95:
        lines.append("")
        lines.append(
            _chart("p95 latency (ms)", chart_p95, "latency p95 per window")
        )
    return "\n".join(lines)


def write_report(doc: dict, path: str | Path) -> Path:
    """Write the report with fixed formatting (byte-deterministic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def write_soak_svg(doc: dict, path: str | Path) -> Path:
    """Figure hook: availability + p95 latency series as one SVG."""
    from repro.viz.svg_chart import SvgChart

    series = {}
    avail = _series_points(doc, "availability")
    if avail:
        # Scale availability to percent so both series share an axis range.
        series["availability (%)"] = [(t, v * 100.0) for t, v in avail]
    p95 = _series_points(doc, "p95_ms")
    if p95:
        series["p95 latency (ms)"] = p95
    if not series:
        raise ConfigurationError("soak report has no plottable series")
    chart = SvgChart(
        title="soak: availability and latency",
        x_label="time (ms)",
        y_label="availability (%) / p95 latency (ms)",
    )
    for name, points in series.items():
        chart.add_series(name, points)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(chart.render(), encoding="utf-8")
    return path
