"""Heavy-traffic soak engine: the paper's §3 availability question at
production transaction counts.

The serial experiments and the open-loop driver both retain a record per
transaction, capping runs at toy sizes.  A soak run instead streams every
outcome into O(1)-memory aggregates (:mod:`repro.metrics.streaming`),
draws arrivals from a time-varying load shape
(:mod:`repro.workload.shapes`), and drives the cluster *through* a
scheduled fail/recover cycle — reporting the client-visible availability
dip and the recovery time back to baseline as a byte-deterministic JSON
artifact.
"""

from repro.soak.engine import SoakConfig, SoakResult, run_soak
from repro.soak.report import (
    SOAK_SCHEMA,
    build_report,
    render_soak_text,
    validate_soak_report,
    write_report,
    write_soak_svg,
)

__all__ = [
    "SoakConfig",
    "SoakResult",
    "run_soak",
    "SOAK_SCHEMA",
    "build_report",
    "validate_soak_report",
    "render_soak_text",
    "write_report",
    "write_soak_svg",
]
