"""Persistent fork-based worker pool for sweep fan-out.

The original parallel executor paid the full pool lifecycle on every
sweep: spawn workers, re-import ``repro`` in each, pickle a config object
per seed, tear everything down.  On sweeps measured in tenths of a
second that startup dominates — BENCH_sweep.json recorded parallel
*slower* than serial.  This module replaces it with a process-wide pool
that is created once and reused by every caller for the life of the
process:

* **Long-lived workers.**  The pool is a module-level singleton; a second
  sweep in the same process reuses the warm workers.  Where the platform
  offers it the pool forks (workers inherit the already-imported
  ``repro`` for free); elsewhere the initializer pays the imports once
  per worker instead of once per task.
* **Compact schedule specs.**  Work crosses the pipe as
  ``(kind, shared, chunk-of-seeds)``: a registered preset id, one shared
  config delta per *chunk* (plain data — never a built cluster or a live
  scheduler), and the seeds themselves.  Workers rebuild everything else
  from the seed, exactly like the determinism tests demand.
* **Chunked dispatch.**  Seeds are split into contiguous chunks
  (a few per worker, for late-finisher balance) so per-task pickling and
  scheduling overhead is amortized across many simulations.
* **Deterministic merge.**  Chunk results are concatenated in submission
  order, which is input order — the merged list is identical to the
  serial one no matter which worker finished first.

Every unit of work must remain a pure function of its spec: it builds
its own cluster, scheduler, and named RNG streams from the seed and
shares no mutable state with any other unit.  That property (pinned by
``tests/test_perf.py``) is what makes reusing one pool across chaos
sweeps, soak sweeps, report generation, and ``repro.check`` frontier
expansion safe.

Worker crashes do not hang the sweep: a dead worker surfaces as
:class:`WorkerPoolError` naming the task kind, and the broken pool is
retired so the next call starts from a fresh one.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "WorkerPoolError",
    "get_pool",
    "pool_stats",
    "run_chunked",
    "shutdown_pool",
    "task",
]


class WorkerPoolError(RuntimeError):
    """A worker process died mid-task (segfault, OOM kill, os._exit)."""


# -- task registry ---------------------------------------------------------
#
# Tasks are registered *in this module* (or in modules the worker
# initializer imports) so that both fork workers (which inherit the
# registry) and spawn workers (which re-import this module to unpickle
# ``_run_chunk``) see every kind.

_TASKS: dict[str, Callable[[Any, Any], Any]] = {}


def task(kind: str) -> Callable[[Callable[[Any, Any], Any]], Callable[[Any, Any], Any]]:
    """Register a module-level ``fn(shared, item) -> result`` under ``kind``."""

    def register(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
        _TASKS[kind] = fn
        return fn

    return register


# -- worker side -----------------------------------------------------------


def _init_worker() -> None:
    """Pay the heavy imports once per worker, not once per task.

    Under fork this is a no-op in practice (the parent already imported
    everything); under spawn it front-loads the cost so the first task's
    latency is not an import storm.
    """
    import repro.chaos.runner  # noqa: F401
    import repro.check.explorer  # noqa: F401
    import repro.soak.engine  # noqa: F401


def _run_chunk(kind: str, shared: Any, items: list) -> list:
    """Run one chunk of specs inside a worker; results in item order."""
    fn = _TASKS[kind]
    return [fn(shared, item) for item in items]


# -- registered tasks ------------------------------------------------------


@task("chaos-seed")
def _chaos_seed_task(shared: tuple, seed: int) -> Any:
    """One chaos sweep unit: (sites, db_size, txns, plan, mutate) + seed."""
    from repro.chaos.runner import run_chaos_seed

    sites, db_size, txns, plan, mutate = shared
    return run_chaos_seed(
        seed, sites=sites, db_size=db_size, txns=txns, plan=plan, mutate=mutate
    )


@task("soak-report")
def _soak_report_task(shared: dict, seed: int) -> dict:
    """One soak sweep unit: a SoakConfig field delta + seed -> report dict.

    The worker returns the *report* (plain data) rather than the
    :class:`SoakResult`: it is what sweeps aggregate, and it keeps the
    response small and trivially picklable.
    """
    from repro.soak.engine import SoakConfig, run_soak
    from repro.soak.report import build_report

    return build_report(run_soak(SoakConfig(seed=seed, **shared)))


@task("call")
def _call_task(fn: Callable[[Any], Any], item: Any) -> Any:
    """Generic ``fn(item)`` unit backing :func:`repro.perf.parallel.parallel_map`."""
    return fn(item)


@task("check-prefixes")
def _check_prefixes_task(shared: tuple, prefixes: list) -> tuple:
    """One frontier-expansion unit for parallel ``repro.check``.

    ``shared`` carries the :class:`~repro.check.runner.CheckConfig` plus
    budgets; ``prefixes`` is this worker's slice of the root's branch
    points (disjoint subtrees by construction).  Returns plain data —
    the stats tuple, the sorted fingerprint list, and the counterexample
    vector — so the merge never depends on rich-object identity.
    """
    from repro.check.explorer import _explore_worker

    return _explore_worker(shared, prefixes)


# -- parent side -----------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_pools_created = 0
_chunks_dispatched = 0


def get_pool(jobs: int) -> ProcessPoolExecutor:
    """The shared pool, created on first use and grown when ``jobs`` asks
    for more workers than it has (never shrunk — idle workers are cheap,
    respawning them is not)."""
    global _pool, _pool_workers, _pools_created
    if _pool is None or _pool_workers < jobs:
        if _pool is not None:
            _pool.shutdown(wait=True)
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        _pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=multiprocessing.get_context(method),
            initializer=_init_worker,
        )
        _pool_workers = jobs
        _pools_created += 1
    return _pool


def shutdown_pool() -> None:
    """Tear the shared pool down (tests and cold-start benchmarks)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0


def pool_stats() -> dict:
    """Lifecycle counters (how benches separate warm from cold)."""
    return {
        "alive": _pool is not None,
        "workers": _pool_workers,
        "pools_created": _pools_created,
        "chunks_dispatched": _chunks_dispatched,
    }


def _chunked(items: list, parts: int) -> list[list]:
    """Split into ``parts`` contiguous chunks, sizes differing by <= 1."""
    base, extra = divmod(len(items), parts)
    chunks = []
    start = 0
    for index in range(parts):
        end = start + base + (1 if index < extra else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def run_chunked(
    kind: str,
    shared: Any,
    items: Iterable[Any],
    *,
    jobs: Optional[int] = None,
    chunks_per_worker: int = 2,
) -> list[Any]:
    """Run registered task ``kind`` over ``items``; results in input order.

    ``jobs`` of ``None`` or <= 1 runs serially in-process (no pool, no
    pickling) so callers can thread a ``jobs`` parameter through
    unconditionally.  Parallel runs split the items into contiguous
    chunks — ``chunks_per_worker`` per worker, so one slow chunk cannot
    serialize the sweep tail — and concatenate chunk results in
    submission order, which makes the output independent of worker
    scheduling.
    """
    global _chunks_dispatched
    work = list(items)
    fn = _TASKS[kind]
    if jobs is None or jobs <= 1 or len(work) <= 1:
        return [fn(shared, item) for item in work]
    pool = get_pool(jobs)
    parts = min(len(work), jobs * max(1, chunks_per_worker))
    chunks = _chunked(work, parts)
    _chunks_dispatched += len(chunks)
    futures = [pool.submit(_run_chunk, kind, shared, chunk) for chunk in chunks]
    results: list[Any] = []
    try:
        for future in futures:
            results.extend(future.result())
    except BrokenProcessPool as exc:
        shutdown_pool()
        raise WorkerPoolError(
            f"worker process died while running {kind!r} tasks; "
            "the pool has been reset — rerun to retry (a crash here "
            "usually means a worker was OOM-killed or called os._exit)"
        ) from exc
    return results
