"""Performance tooling: parallel sweep execution and the benchmark harness.

Two concerns live here, both downstream of the fast-path work documented
in docs/PERFORMANCE.md:

* :mod:`repro.perf.pool` — the persistent worker pool: one long-lived,
  fork-where-available process pool per interpreter, fed compact
  ``(kind, shared, seeds)`` specs in contiguous chunks and merged in
  input order.  Every sweep in the process reuses the same warm workers.
* :mod:`repro.perf.parallel` — the sweep-facing API on top of the pool
  (chaos seeds, soak seeds, experiment replications) with a
  deterministic, input-ordered merge.  Parallel results are *identical*
  to serial ones, not just statistically equivalent: every unit of work
  is a pure function of its arguments.
* :mod:`repro.perf.bench` — the continuous benchmark harness behind
  ``repro bench``.  It times fixed simulation presets (events/sec,
  wall-clock, peak RSS), writes schema-stable JSON artifacts
  (``BENCH_simcore.json``, ``BENCH_sweep.json``), and gates regressions
  in CI.
* :mod:`repro.perf.soakbench` — the soak memory-flatness gate behind
  ``repro bench --soak``: a short and a 20x-longer soak run in fresh
  subprocesses must show near-identical memory peaks
  (``BENCH_soak.json``), proving the streaming-metrics O(1) claim.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    check_regression,
    render_bench_table,
    run_simcore_bench,
    run_sweep_bench,
    validate_simcore_doc,
    validate_sweep_doc,
)
from repro.perf.parallel import (
    parallel_map,
    run_parallel_seed_sweep,
    run_parallel_soak_sweep,
)
from repro.perf.pool import (
    WorkerPoolError,
    pool_stats,
    run_chunked,
    shutdown_pool,
)
from repro.perf.soakbench import (
    render_soak_bench,
    run_soak_bench,
    validate_soak_bench_doc,
)

__all__ = [
    "BENCH_SCHEMA",
    "WorkerPoolError",
    "check_regression",
    "parallel_map",
    "pool_stats",
    "render_bench_table",
    "render_soak_bench",
    "run_chunked",
    "run_parallel_seed_sweep",
    "run_parallel_soak_sweep",
    "run_simcore_bench",
    "run_soak_bench",
    "run_sweep_bench",
    "shutdown_pool",
    "validate_simcore_doc",
    "validate_soak_bench_doc",
    "validate_sweep_doc",
]
