"""Multiprocess fan-out for seed sweeps and experiment replications.

Chaos sweeps, soak sweeps, and multi-seed experiment replications are
embarrassingly parallel: each unit of work is a *pure function* of its
arguments — it builds its own cluster, its own scheduler, and its own
named RNG streams from the seed, and shares no mutable state with any
other unit.  That is exactly the property the determinism tests pin
down, and it is what makes process-level parallelism safe here: a
worker process cannot perturb a simulation it does not share memory
with.

All fan-out goes through the **persistent worker pool**
(:mod:`repro.perf.pool`): one pool per process, created on first use,
reused by every subsequent sweep, fed compact ``(kind, shared, seeds)``
specs in contiguous chunks.  See that module for the lifecycle and the
determinism argument.

Determinism contract (tested in ``tests/test_perf.py``):

* results come back in **input order** regardless of completion order
  (chunk results are concatenated in submission order), and
* every result object is **equal** to the one a serial run produces —
  same commits, same aborts, same fault counts, same violations, same
  ``events_fired``.

Workers receive their tasks by pickling, so task payloads must stay
plain data (seeds, plans, counts) and worker functions must be
module-level.  Only the standard library is used; no extra dependency.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.perf.pool import run_chunked

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.faults import FaultPlan
    from repro.chaos.runner import ChaosSweepReport
    from repro.soak.engine import SoakConfig


def default_jobs() -> int:
    """Worker count when the caller says "parallel" without a number."""
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = None,
) -> list[Any]:
    """``[fn(x) for x in items]`` across the worker pool, in input order.

    ``jobs=None`` or ``jobs<=1`` runs serially in-process (no pool, no
    pickling) — the degenerate case costs nothing extra, so callers can
    thread a ``jobs`` parameter through unconditionally.  ``fn`` must be
    picklable (module-level), and so must every item and result; ``fn``
    crosses the pipe once per chunk, not once per item.
    """
    return run_chunked("call", fn, items, jobs=jobs)


def run_parallel_seed_sweep(
    seeds: Iterable[int],
    *,
    sites: int = 4,
    db_size: int = 32,
    txns: int = 60,
    plan: Optional["FaultPlan"] = None,
    mutate: bool = False,
    jobs: Optional[int] = None,
) -> "ChaosSweepReport":
    """A chaos seed sweep fanned across the persistent worker pool.

    Produces a report equal to ``run_seed_sweep(seeds, ...)`` — same
    results, same order — in roughly ``1/jobs`` the wall-clock time for
    sweeps long enough to amortize dispatch.  Callers normally go
    through :func:`repro.chaos.runner.run_seed_sweep` with ``jobs=N``
    (or ``repro chaos --jobs N``) rather than calling this directly.
    """
    from repro.chaos.faults import FaultPlan
    from repro.chaos.runner import ChaosSweepReport

    if plan is None:
        plan = FaultPlan()
    if jobs is None:
        jobs = default_jobs()
    shared = (sites, db_size, txns, plan, mutate)
    report = ChaosSweepReport(plan=plan, mutated=mutate)
    report.results.extend(run_chunked("chaos-seed", shared, seeds, jobs=jobs))
    return report


def run_parallel_soak_sweep(
    seeds: Iterable[int],
    config: Optional["SoakConfig"] = None,
    *,
    jobs: Optional[int] = None,
) -> list[dict]:
    """One soak report dict per seed, fanned across the worker pool.

    ``config`` supplies every knob except the seed; what crosses the
    pipe is only the *delta* from a default :class:`SoakConfig` (the
    compact-spec rule), so a sweep of 32 seeds ships one small dict per
    chunk.  Results are report dicts (``repro.soak.report.build_report``)
    in seed order, equal to what a serial loop produces.
    """
    from repro.soak.engine import SoakConfig

    if config is None:
        config = SoakConfig()
    defaults = SoakConfig()
    delta = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(SoakConfig)
        if f.name != "seed" and getattr(config, f.name) != getattr(defaults, f.name)
    }
    if jobs is None:
        jobs = default_jobs()
    return run_chunked("soak-report", delta, seeds, jobs=jobs)
