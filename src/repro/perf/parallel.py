"""Multiprocess fan-out for seed sweeps and experiment replications.

Chaos sweeps and multi-seed experiment replications are embarrassingly
parallel: each unit of work is a *pure function* of its arguments — it
builds its own cluster, its own scheduler, and its own named RNG streams
from the seed, and shares no mutable state with any other unit.  That is
exactly the property the determinism tests pin down, and it is what makes
process-level parallelism safe here: a worker process cannot perturb a
simulation it does not share memory with.

Determinism contract (tested in ``tests/test_perf.py``):

* results come back in **input order** regardless of completion order
  (``ProcessPoolExecutor.map`` preserves ordering), and
* every result object is **equal** to the one a serial run produces —
  same commits, same aborts, same fault counts, same violations, same
  ``events_fired``.

Workers receive their tasks by pickling, so task payloads must stay
plain data (seeds, plans, counts) and worker functions must be
module-level.  Only the standard library is used; no extra dependency.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.faults import FaultPlan
    from repro.chaos.runner import ChaosSweepReport


def default_jobs() -> int:
    """Worker count when the caller says "parallel" without a number."""
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = None,
) -> list[Any]:
    """``[fn(x) for x in items]`` across worker processes, in input order.

    ``jobs=None`` or ``jobs<=1`` runs serially in-process (no pool, no
    pickling) — the degenerate case costs nothing extra, so callers can
    thread a ``jobs`` parameter through unconditionally.  ``fn`` must be
    picklable (module-level), and so must every item and result.
    """
    work = list(items)
    if jobs is None or jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    workers = min(jobs, len(work))
    # chunksize=1: sweep units are coarse (whole simulations), so fair
    # scheduling beats batching.  map() yields results in input order.
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, work, chunksize=1))


def _chaos_seed_task(task: tuple) -> Any:
    """One sweep unit, run inside a worker process."""
    from repro.chaos.runner import run_chaos_seed

    seed, sites, db_size, txns, plan, mutate = task
    return run_chaos_seed(
        seed, sites=sites, db_size=db_size, txns=txns, plan=plan, mutate=mutate
    )


def run_parallel_seed_sweep(
    seeds: Iterable[int],
    *,
    sites: int = 4,
    db_size: int = 32,
    txns: int = 60,
    plan: Optional["FaultPlan"] = None,
    mutate: bool = False,
    jobs: Optional[int] = None,
) -> "ChaosSweepReport":
    """A chaos seed sweep fanned across worker processes.

    Produces a report equal to ``run_seed_sweep(seeds, ...)`` — same
    results, same order — in roughly ``1/jobs`` the wall-clock time for
    sweeps long enough to amortize worker startup.  Callers normally go
    through :func:`repro.chaos.runner.run_seed_sweep` with ``jobs=N``
    (or ``repro chaos --jobs N``) rather than calling this directly.
    """
    from repro.chaos.faults import FaultPlan
    from repro.chaos.runner import ChaosSweepReport

    if plan is None:
        plan = FaultPlan()
    if jobs is None:
        jobs = default_jobs()
    tasks = [(seed, sites, db_size, txns, plan, mutate) for seed in seeds]
    report = ChaosSweepReport(plan=plan, mutated=mutate)
    report.results.extend(parallel_map(_chaos_seed_task, tasks, jobs=jobs))
    return report
