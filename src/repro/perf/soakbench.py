"""Memory-flatness benchmark for the soak engine (``repro bench --soak``).

The whole point of :mod:`repro.soak` is O(1)-memory streaming: a run 20x
longer must not use meaningfully more memory.  This harness proves it by
running a *short* and a *long* soak (same config, ``scale`` times the
transactions) in **fresh subprocesses** and comparing their peaks:

* ``peak_rss_kb`` — ``ru_maxrss``, the OS-level high-water mark.  It is
  process-lifetime, which is exactly why each measurement needs its own
  child process: measured in-process, the long run would inherit the
  short run's high-water mark (or vice versa) and the comparison would
  be meaningless.
* ``traced_peak_kb`` — ``tracemalloc``'s peak of Python-allocated memory
  over the run.  Sharper than RSS (no interpreter baseline, no allocator
  slack), so it gets the same gate; it is the one that actually fails
  when someone reintroduces a per-transaction list.

The gate: the long run's peak must stay within ``RSS_FLATNESS_RATIO``
(rss) and ``TRACED_FLATNESS_RATIO`` (traced) of the short run's.  A
truly O(n) structure (e.g. retaining one record per transaction) shows
up as a ~20x traced ratio; streaming aggregates land near 1.0 with the
allowances absorbing allocator noise and bounded log-ish residue (the
windowed series is capped at ``SoakConfig.max_windows`` points by
up-front window widening, so it cannot grow with run length either).

The document is written to ``BENCH_soak.json`` next to the other bench
artifacts, under the same schema version, and validated/gated by CI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.perf.bench import BENCH_SCHEMA, _validate_header

# Long-run peaks must stay within these factors of the short run's.
# Traced peak gets a slightly looser allowance: it resolves growth RSS
# can't see (so it is the gate that catches a reintroduced per-txn
# list at ~20x), but that same sharpness picks up bounded log-ish
# residue — quantile-sketch buckets widening with rare tail latencies,
# GC timing at peak — worth tolerating.
RSS_FLATNESS_RATIO = 1.5
TRACED_FLATNESS_RATIO = 1.75

# Short-run transaction counts; the long run is SCALE times bigger.
# The short run must already be at memory steady state — every bounded
# structure (decision-log tails, redo-log windows, the windowed series)
# filled to its cap — or the comparison measures caps filling rather
# than growth.  With the caps below, steady state is reached well before
# SHORT_TXNS_QUICK transactions.
SCALE = 20
SHORT_TXNS_QUICK = 1000
SHORT_TXNS_FULL = 2000

# The soak default targets 240 series points; the bench children use a
# smaller target so even the short run saturates its series (the series
# is bounded by construction — the gate is about per-transaction state).
BENCH_MAX_WINDOWS = 48

_CHILD_FIELDS = ("txns", "commits", "events", "wall_s",
                 "peak_rss_kb", "traced_peak_kb")

# Runs one soak and prints its measurements as JSON.  Executed via
# ``python -c`` so every measurement starts from a cold interpreter.
_CHILD_SCRIPT = """\
import json, resource, sys, time, tracemalloc
from repro.soak import SoakConfig, run_soak

txns, seed, max_windows = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
tracemalloc.start()
start = time.perf_counter()
result = run_soak(SoakConfig(seed=seed, txns=txns, max_windows=max_windows))
wall = time.perf_counter() - start
_, traced_peak = tracemalloc.get_traced_memory()
tracemalloc.stop()
print(json.dumps({
    "txns": result.txns,
    "commits": result.commits,
    "events": result.events_fired,
    "wall_s": round(wall, 6),
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "traced_peak_kb": round(traced_peak / 1024.0, 1),
}))
"""


def _measure_child(txns: int, seed: int) -> dict[str, Any]:
    """Run one soak in a fresh interpreter; return its measurements."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(txns), str(seed),
         str(BENCH_MAX_WINDOWS)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise ReproError(
            f"soak bench child ({txns} txns) failed:\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def run_soak_bench(quick: bool = False, seed: int = 42) -> dict[str, Any]:
    """Short vs. 20x-long soak in fresh processes; the BENCH_soak document."""
    short_txns = SHORT_TXNS_QUICK if quick else SHORT_TXNS_FULL
    short = _measure_child(short_txns, seed)
    long_run = _measure_child(short_txns * SCALE, seed)
    rss_ratio = long_run["peak_rss_kb"] / short["peak_rss_kb"]
    traced_ratio = long_run["traced_peak_kb"] / short["traced_peak_kb"]
    return {
        "schema": BENCH_SCHEMA,
        "kind": "soak",
        "quick": quick,
        "seed": seed,
        "scale": SCALE,
        "short": short,
        "long": long_run,
        "rss_ratio": round(rss_ratio, 3),
        "traced_ratio": round(traced_ratio, 3),
        "rss_allowed": RSS_FLATNESS_RATIO,
        "traced_allowed": TRACED_FLATNESS_RATIO,
        "flat": (
            rss_ratio <= RSS_FLATNESS_RATIO
            and traced_ratio <= TRACED_FLATNESS_RATIO
        ),
    }


def validate_soak_bench_doc(doc: Any) -> list[str]:
    """Schema problems in a ``BENCH_soak.json`` document ([] if none)."""
    problems = _validate_header(doc, "soak")
    if problems:
        return problems
    for run_name in ("short", "long"):
        entry = doc.get(run_name)
        if not isinstance(entry, dict):
            problems.append(f"{run_name}: missing")
            continue
        for fieldname in _CHILD_FIELDS:
            value = entry.get(fieldname)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"{run_name}.{fieldname}: expected a positive number, "
                    f"got {value!r}"
                )
    if not problems:
        expected = doc["short"]["txns"] * doc.get("scale", 0)
        if doc["long"]["txns"] != expected:
            problems.append(
                f"long.txns: expected short * scale = {expected}, "
                f"got {doc['long']['txns']}"
            )
    for fieldname in ("rss_ratio", "traced_ratio"):
        value = doc.get(fieldname)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"{fieldname}: expected a positive number, got {value!r}"
            )
    if doc.get("flat") is not True:
        problems.append(
            f"flat: memory grew with run length "
            f"(rss_ratio={doc.get('rss_ratio')} vs {doc.get('rss_allowed')}, "
            f"traced_ratio={doc.get('traced_ratio')} vs "
            f"{doc.get('traced_allowed')})"
        )
    return problems


def render_soak_bench(doc: dict[str, Any]) -> str:
    """Human-readable summary of the flatness measurement."""
    short, long_run = doc["short"], doc["long"]
    lines = [
        f"soak flatness (seed {doc['seed']}, scale {doc['scale']}x):",
        f"  short: {short['txns']} txns, {short['wall_s']:.2f} s, "
        f"rss {short['peak_rss_kb']} kB, "
        f"traced peak {short['traced_peak_kb']} kB",
        f"  long:  {long_run['txns']} txns, {long_run['wall_s']:.2f} s, "
        f"rss {long_run['peak_rss_kb']} kB, "
        f"traced peak {long_run['traced_peak_kb']} kB",
        f"  ratios: rss {doc['rss_ratio']:.2f} "
        f"(allowed {doc['rss_allowed']:.2f}), "
        f"traced {doc['traced_ratio']:.2f} "
        f"(allowed {doc['traced_allowed']:.2f}) -> "
        f"{'FLAT' if doc['flat'] else 'NOT FLAT'}",
    ]
    return "\n".join(lines)


def write_soak_bench(doc: dict[str, Any], path: str = "BENCH_soak.json") -> None:
    """Write the artifact in the house style (insertion order, indent 2)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
