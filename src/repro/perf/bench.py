"""Continuous benchmark harness (``repro bench``).

Times the simulator's hot loop on three fixed presets and reports
**events/sec** (scheduler events fired per wall-clock second — the
simulator's native throughput unit), wall-clock seconds, and peak RSS:

``concurrent``
    One open-loop run: 400 transactions under strict 2PL + global
    deadlock detection (the preset dominated by lock/deadlock work).
``chaos``
    An 8-seed fault-injection sweep with online invariant auditing
    (the preset dominated by message flow and the audit probes).
``serial``
    The paper's Figure 1 failure/recovery scenario (serial
    transactions, fail-locks, copiers).

Methodology (matches how the baselines were captured; see
docs/PERFORMANCE.md): events are counted by wrapping
:meth:`EventScheduler.run`, each preset gets one warm run (imports,
code caches) and then the best of N timed runs is reported — best, not
mean, because scheduling noise only ever adds time.  Peak RSS comes
from ``resource.getrusage`` and is a process-lifetime high-water mark,
so it is attributed to the preset that first reaches it.

The harness writes two schema-stable JSON artifacts at the repo root:

* ``BENCH_simcore.json`` — the three presets above, each with the
  pre-optimization baseline and the resulting speedup.
* ``BENCH_sweep.json`` — serial vs. parallel wall-clock for the same
  chaos sweep, plus an ``identical`` bit asserting the parallel report
  equalled the serial one (the determinism contract, re-checked on
  every benchmark run).

``repro bench --check`` re-measures and fails (exit 1) when any preset
regresses more than ``--tolerance`` (default 30 %) below the committed
artifact — loose enough to absorb machine noise, tight enough to catch
a real fast-path regression.  CI runs it with ``--quick``.
"""

from __future__ import annotations

import json
import resource
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.sim.scheduler import EventScheduler

BENCH_SCHEMA = "repro.bench/1"

# Pre-optimization throughput (events/sec), measured on these exact
# presets at the commit before the fast-path work (9c4beba) on the
# reference container: warm run + best of 3, Python 3.12.  Committed
# artifacts carry these alongside current numbers so the speedup is
# auditable without checking out the old tree.
BASELINE_EVENTS_PER_SEC = {
    "concurrent": 17995.0,
    "chaos": 66799.0,
    "serial": 69370.0,
}

_PRESET_FIELDS = (
    "events",
    "wall_s",
    "events_per_sec",
    "peak_rss_kb",
    "baseline_events_per_sec",
    "speedup",
)


@contextmanager
def _count_fired() -> Iterator[dict[str, int]]:
    """Count scheduler events fired inside the block (all instances)."""
    counter = {"fired": 0}
    original = EventScheduler.run

    def counting_run(self: EventScheduler, max_events: int = 10_000_000) -> int:
        fired = original(self, max_events)
        counter["fired"] += fired
        return fired

    EventScheduler.run = counting_run  # type: ignore[method-assign]
    try:
        yield counter
    finally:
        EventScheduler.run = original  # type: ignore[method-assign]


def _preset_concurrent(quick: bool) -> Callable[[], None]:
    def run() -> None:
        from repro.system.config import SystemConfig
        from repro.system.openloop import run_open_loop

        run_open_loop(
            SystemConfig(seed=42, concurrency_control=True),
            txn_count=120 if quick else 400,
            arrival_rate_tps=12.0,
        )

    return run


def _preset_chaos(quick: bool) -> Callable[[], None]:
    def run() -> None:
        from repro.chaos import run_seed_sweep

        # Quick mode halves the seeds but keeps txns at 60: per-cluster
        # fixed costs stay amortized the same way, so the events/sec RATE
        # remains comparable to the full preset (which the --check gate
        # relies on).
        run_seed_sweep(range(42, 46 if quick else 50), txns=60)

    return run


def _preset_serial(quick: bool) -> Callable[[], None]:
    def run() -> None:
        from repro.experiments.exp2 import run_figure1

        run_figure1(seed=42)

    return run


PRESETS: dict[str, Callable[[bool], Callable[[], None]]] = {
    "concurrent": _preset_concurrent,
    "chaos": _preset_chaos,
    "serial": _preset_serial,
}


def run_simcore_bench(quick: bool = False) -> dict[str, Any]:
    """Time every preset; return the ``BENCH_simcore.json`` document."""
    # Best-of-N even in quick mode: single-shot walls on the sub-100 ms
    # quick presets swing +-30% under ambient load, which is exactly the
    # regression-gate tolerance — best-of-3 pulls both sides of a
    # write-then-check comparison toward the same floor.
    reps = 3
    presets: dict[str, Any] = {}
    for name, make in PRESETS.items():
        thunk = make(quick)
        with _count_fired() as counter:
            thunk()  # warm: imports, bytecode/attribute caches
        events = counter["fired"]
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            thunk()
            best = min(best, time.perf_counter() - start)
        eps = events / best if best > 0 else 0.0
        baseline = BASELINE_EVENTS_PER_SEC[name]
        presets[name] = {
            "events": events,
            "wall_s": round(best, 6),
            "events_per_sec": round(eps, 1),
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "baseline_events_per_sec": baseline,
            "speedup": round(eps / baseline, 2),
        }
    return {
        "schema": BENCH_SCHEMA,
        "kind": "simcore",
        "quick": quick,
        "presets": presets,
    }


def run_sweep_bench(
    quick: bool = False, jobs: Optional[int] = None
) -> dict[str, Any]:
    """Serial vs. parallel sweep timing; the ``BENCH_sweep.json`` document.

    Also re-asserts the determinism contract: the parallel report must
    equal the serial one (``identical``), every benchmark run.

    Two parallel walls are reported: **cold** (first sweep in the
    process — includes creating the persistent pool and warming its
    workers) and **warm** (a second sweep reusing the same pool, the
    steady-state number every subsequent sweep in a process sees).  The
    headline ``parallel_wall_s``/``speedup`` are the warm measurements —
    the committed 0.95x that motivated the persistent pool was a
    cold-start artifact on a sub-200 ms workload.  ``cpus`` records the
    cores the kernel granted; on a 1-core box a >1x speedup is
    physically impossible and the parallel floor gate does not apply.
    """
    import os

    from repro.chaos import run_seed_sweep
    from repro.perf.pool import shutdown_pool

    if jobs is None:
        # At least 2, even on a single-core box: the point of this
        # benchmark is as much the identical-to-serial contract as the
        # wall-clock, and jobs=1 would take the serial path entirely.
        jobs = max(2, min(4, os.cpu_count() or 1))
    # Big enough that dispatch overhead cannot dominate: the full sweep
    # runs for multiple seconds, the quick one for around a second.
    seeds = list(range(42, 50 if quick else 58))
    txns = 40 if quick else 80
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1

    start = time.perf_counter()
    serial = run_seed_sweep(seeds, txns=txns)
    serial_wall = time.perf_counter() - start

    # Cold: pool creation + worker warmup charged to this sweep.
    shutdown_pool()
    start = time.perf_counter()
    parallel_cold = run_seed_sweep(seeds, txns=txns, jobs=jobs)
    cold_wall = time.perf_counter() - start

    # Warm: the same pool, reused — what every later sweep pays.
    start = time.perf_counter()
    parallel_warm = run_seed_sweep(seeds, txns=txns, jobs=jobs)
    warm_wall = time.perf_counter() - start

    # Leave the process as we found it: live forked workers keep the
    # parent paying copy-on-write faults on every dirtied page, which
    # taxes any measurement that runs after this one in-process.
    shutdown_pool()

    return {
        "schema": BENCH_SCHEMA,
        "kind": "sweep",
        "quick": quick,
        "seeds": seeds,
        "txns": txns,
        "jobs": jobs,
        "cpus": cpus,
        "serial_wall_s": round(serial_wall, 6),
        "parallel_wall_s": round(warm_wall, 6),
        "parallel_cold_wall_s": round(cold_wall, 6),
        "parallel_warm_wall_s": round(warm_wall, 6),
        "speedup": round(serial_wall / warm_wall, 2) if warm_wall > 0 else 0.0,
        "cold_speedup": round(serial_wall / cold_wall, 2) if cold_wall > 0 else 0.0,
        "identical": serial.results == parallel_cold.results
        and serial.results == parallel_warm.results,
    }


# -- validation and the CI gate ---------------------------------------------


def validate_simcore_doc(doc: Any) -> list[str]:
    """Schema problems in a ``BENCH_simcore.json`` document ([] if none)."""
    problems = _validate_header(doc, "simcore")
    if problems:
        return problems
    presets = doc.get("presets")
    if not isinstance(presets, dict):
        return ["presets: expected an object"]
    for name in PRESETS:
        entry = presets.get(name)
        if not isinstance(entry, dict):
            problems.append(f"presets.{name}: missing")
            continue
        for fieldname in _PRESET_FIELDS:
            value = entry.get(fieldname)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"presets.{name}.{fieldname}: expected a positive number,"
                    f" got {value!r}"
                )
    return problems


def validate_sweep_doc(doc: Any) -> list[str]:
    """Schema problems in a ``BENCH_sweep.json`` document ([] if none)."""
    problems = _validate_header(doc, "sweep")
    if problems:
        return problems
    if not isinstance(doc.get("seeds"), list) or not doc["seeds"]:
        problems.append("seeds: expected a non-empty list")
    for fieldname in ("txns", "jobs", "serial_wall_s", "parallel_wall_s"):
        value = doc.get(fieldname)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"{fieldname}: expected a positive number, got {value!r}"
            )
    if doc.get("identical") is not True:
        problems.append("identical: parallel sweep diverged from serial")
    # Warm/cold walls and cpus are additive (schema stays repro.bench/1);
    # validate them only when present so older artifacts still read.
    for fieldname in ("parallel_cold_wall_s", "parallel_warm_wall_s", "cpus"):
        value = doc.get(fieldname)
        if value is not None and (
            not isinstance(value, (int, float)) or value <= 0
        ):
            problems.append(
                f"{fieldname}: expected a positive number, got {value!r}"
            )
    return problems


def _validate_header(doc: Any, kind: str) -> list[str]:
    if not isinstance(doc, dict):
        return ["expected a JSON object"]
    problems = []
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema: expected {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if doc.get("kind") != kind:
        problems.append(f"kind: expected {kind!r}, got {doc.get('kind')!r}")
    return problems


def check_regression(
    committed: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float = 0.30,
) -> list[str]:
    """Presets where ``fresh`` fell > ``tolerance`` below ``committed``.

    Compares events/sec *rates*, which are comparable between quick and
    full workloads; the tolerance absorbs machine and size noise.
    """
    problems = []
    for name, entry in committed.get("presets", {}).items():
        fresh_entry = fresh.get("presets", {}).get(name)
        if fresh_entry is None:
            problems.append(
                f"preset '{name}': metric events_per_sec missing from "
                f"fresh measurement"
            )
            continue
        committed_eps = entry["events_per_sec"]
        fresh_eps = fresh_entry["events_per_sec"]
        floor = committed_eps * (1.0 - tolerance)
        if fresh_eps < floor:
            drop = 1.0 - fresh_eps / committed_eps
            problems.append(
                f"preset '{name}': metric events_per_sec regressed "
                f"{drop:.0%} (fresh {fresh_eps:.0f} vs committed "
                f"{committed_eps:.0f}, tolerance {tolerance:.0%})"
            )
    return problems


PARALLEL_SPEEDUP_FLOOR = 1.2


def check_parallel_floor(
    committed: dict[str, Any],
    fresh: dict[str, Any],
    floor: float = PARALLEL_SPEEDUP_FLOOR,
) -> list[str]:
    """The parallel-speedup floor: fresh warm speedup must stay >= ``floor``.

    Applies only when the fresh run had ``jobs >= 2`` **and** at least
    two CPUs (``cpus`` in the artifact): with one core the kernel
    serializes the workers and a >1x speedup is physically impossible,
    so the gate reports nothing rather than failing on hardware it
    cannot pass on.  Failures name fresh-vs-committed numbers the same
    way the simcore gate does.
    """
    jobs = fresh.get("jobs", 0)
    cpus = fresh.get("cpus", 1)
    if jobs < 2 or cpus < 2:
        return []
    fresh_speedup = fresh.get("speedup", 0.0)
    committed_speedup = committed.get("speedup", 0.0)
    if fresh_speedup < floor:
        return [
            f"sweep: parallel speedup {fresh_speedup:.2f}x at jobs={jobs} "
            f"fell below the {floor:.1f}x floor (committed "
            f"{committed_speedup:.2f}x, cpus={cpus})"
        ]
    return []


def render_bench_table(simcore: dict[str, Any], sweep: dict[str, Any]) -> str:
    """Human-readable summary of both benchmark documents."""
    from repro.experiments.report import format_table

    rows = [
        (
            name,
            f"{entry['events']}",
            f"{entry['wall_s'] * 1000:.1f} ms",
            f"{entry['events_per_sec']:,.0f}",
            f"{entry['baseline_events_per_sec']:,.0f}",
            f"{entry['speedup']:.2f}x",
        )
        for name, entry in simcore["presets"].items()
    ]
    lines = [
        format_table(
            ["preset", "events", "wall", "events/sec", "baseline", "speedup"],
            rows,
        ),
        "",
        f"sweep ({len(sweep['seeds'])} seeds x {sweep['txns']} txns, "
        f"cpus={sweep.get('cpus', '?')}): "
        f"serial {sweep['serial_wall_s'] * 1000:.0f} ms, "
        f"parallel(jobs={sweep['jobs']}) "
        f"warm {sweep['parallel_wall_s'] * 1000:.0f} ms "
        f"({sweep['speedup']:.2f}x)"
        + (
            f", cold {sweep['parallel_cold_wall_s'] * 1000:.0f} ms "
            f"({sweep.get('cold_speedup', 0.0):.2f}x)"
            if "parallel_cold_wall_s" in sweep
            else ""
        )
        + f", identical={'yes' if sweep['identical'] else 'NO'}",
    ]
    return "\n".join(lines)


def write_bench_files(
    simcore: dict[str, Any],
    sweep: dict[str, Any],
    simcore_path: str = "BENCH_simcore.json",
    sweep_path: str = "BENCH_sweep.json",
) -> None:
    """Write both artifacts (sorted keys off: insertion order is the schema
    order, which keeps diffs readable)."""
    for path, doc in ((simcore_path, simcore), (sweep_path, sweep)):
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
