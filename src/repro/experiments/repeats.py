"""Multi-seed replication of the experiments.

The paper ran "sets of transactions ... repeatedly over a two month
period" and reported averages.  These helpers re-run each experiment
across many seeds and summarize the distribution, giving the reproduction
confidence intervals instead of single draws — and giving tests a way to
assert that the headline results are stable properties, not lucky seeds.

Each replication takes a ``jobs`` parameter: ``jobs > 1`` fans the seeds
across worker processes (:func:`repro.perf.parallel.parallel_map`).  The
per-seed workers are module-level functions returning plain floats, so
they pickle cheaply, and results are merged in seed order — the summary
is identical to a serial run's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.experiments.exp1 import run_faillock_overhead
from repro.experiments.exp2 import run_figure1
from repro.experiments.exp3 import run_scenario1, run_scenario2
from repro.metrics.stats import mean, stddev
from repro.perf.parallel import parallel_map


@dataclass(slots=True)
class Replicated:
    """A statistic replicated across seeds."""

    name: str
    values: list[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def ci95_half_width(self) -> float:
        """Normal-approximation 95 % confidence half-width."""
        if len(self.values) < 2:
            return 0.0
        return 1.96 * stddev(self.values) / math.sqrt(len(self.values))

    @property
    def low(self) -> float:
        return min(self.values)

    @property
    def high(self) -> float:
        return max(self.values)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.1f} ± {self.ci95_half_width:.1f} "
            f"(range {self.low:.1f}..{self.high:.1f}, n={len(self.values)})"
        )


def _figure1_stats(seed: int) -> tuple[float, float, float, float]:
    result = run_figure1(seed=seed)
    return (
        100.0 * result.peak_fraction,
        float(result.report.txns_to_recover),
        float(result.copiers),
        float(result.aborts),
    )


def _scenario1_aborts(seed: int) -> float:
    return float(run_scenario1(seed=seed, settle=False).aborts)


def _scenario2_aborts(seed: int) -> float:
    return float(run_scenario2(seed=seed, settle=False).aborts)


def _faillock_pcts(seed: int) -> tuple[float, float]:
    result = run_faillock_overhead(seed=seed, txns=150)
    return (result.coord_overhead_pct, result.part_overhead_pct)


def replicate_figure1(
    seeds: tuple[int, ...] = tuple(range(1, 11)),
    jobs: Optional[int] = None,
) -> dict[str, Replicated]:
    """Figure 1 headline numbers across seeds."""
    peaks, recoveries, copiers, aborts = [], [], [], []
    for peak, recovery, copier, abort in parallel_map(
        _figure1_stats, seeds, jobs=jobs
    ):
        peaks.append(peak)
        recoveries.append(recovery)
        copiers.append(copier)
        aborts.append(abort)
    return {
        "peak_pct": Replicated("peak fail-locked %", peaks),
        "txns_to_recover": Replicated("txns to recover", recoveries),
        "copiers": Replicated("copier txns", copiers),
        "aborts": Replicated("aborts", aborts),
    }


def replicate_scenario1(
    seeds: tuple[int, ...] = tuple(range(1, 11)),
    jobs: Optional[int] = None,
) -> Replicated:
    """Scenario 1's abort count across seeds (paper's single draw: 13)."""
    return Replicated(
        "scenario 1 aborts", parallel_map(_scenario1_aborts, seeds, jobs=jobs)
    )


def replicate_scenario2(
    seeds: tuple[int, ...] = tuple(range(1, 11)),
    jobs: Optional[int] = None,
) -> Replicated:
    """Scenario 2's abort count across seeds (paper: 0, structurally)."""
    return Replicated(
        "scenario 2 aborts", parallel_map(_scenario2_aborts, seeds, jobs=jobs)
    )


def replicate_faillock_overhead(
    seeds: tuple[int, ...] = tuple(range(1, 6)),
    jobs: Optional[int] = None,
) -> dict[str, Replicated]:
    """Experiment 1's fail-lock overhead percentages across seeds."""
    coord, part = [], []
    for coord_pct, part_pct in parallel_map(_faillock_pcts, seeds, jobs=jobs):
        coord.append(coord_pct)
        part.append(part_pct)
    return {
        "coord_pct": Replicated("coordinator overhead %", coord),
        "part_pct": Replicated("participant overhead %", part),
    }
