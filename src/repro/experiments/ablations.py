"""Ablation studies for the design choices the paper calls out.

Each function isolates one question raised in the paper's discussion
sections (§2.2.3, §3.2, §5) or conclusions:

* **two-step recovery** (§3.2): does switching to batch copier
  transactions below a fail-lock threshold shorten the recovery tail?
* **embedded clearing** (§2.2.3): how much copier overhead disappears if
  the clear-fail-locks information rides in the commit protocol?
* **read/write ratio** (§5): fewer writes set fail-locks more slowly but
  leave more refreshing to copier transactions during recovery.
* **strategy comparison**: ROWAA vs strict ROWA vs quorum consensus under
  the Experiment 3 failure script.
* **failure detection**: announced (managing-site) vs timeout (Appendix A)
  detection and the aborts the latter costs.
* **benchmark workloads** (§5 future work): the Figure 1 scenario under
  ET1 and Wisconsin-shaped transaction mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recovery import RecoveryPolicy
from repro.metrics.availability import availability_of
from repro.metrics.stats import mean
from repro.system.cluster import Cluster
from repro.system.config import (
    ClearNoticeMode,
    CopyControlStrategy,
    FailureDetection,
    SystemConfig,
)
from repro.system.scenario import FailSite, RecoverSite, Scenario, Weighted
from repro.workload.base import WorkloadGenerator
from repro.workload.et1 import Et1Workload
from repro.workload.readwrite import ReadWriteWorkload
from repro.workload.uniform import UniformWorkload
from repro.workload.wisconsin import WisconsinWorkload


# -- A1: two-step recovery (§3.2) -----------------------------------------------


@dataclass(slots=True)
class RecoveryPolicyResult:
    """Recovery length under one policy/threshold."""

    policy: str
    threshold: float
    txns_to_recover: int
    copiers: int
    batch_copiers: int


def run_two_step_recovery(
    seed: int = 42, thresholds: tuple[float, ...] = (0.1, 0.2, 0.4)
) -> list[RecoveryPolicyResult]:
    """Figure-1 scenario under on-demand vs two-step recovery."""
    results = []
    configs = [("on_demand", RecoveryPolicy.ON_DEMAND, 0.0)]
    configs += [("two_step", RecoveryPolicy.TWO_STEP, t) for t in thresholds]
    for name, policy, threshold in configs:
        config = SystemConfig.paper_experiment2(
            seed=seed, recovery_policy=policy, batch_threshold=threshold
        )
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=100,
            policy=Weighted({0: 0.05, 1: 0.95}),
            until_recovered=(0,),
            max_txns=2000,
        )
        scenario.add_action(1, FailSite(0))
        scenario.add_action(101, RecoverSite(0))
        metrics = cluster.run(scenario)
        report = availability_of(metrics.faillock_samples, 0, config.db_size)
        results.append(
            RecoveryPolicyResult(
                policy=name,
                threshold=threshold,
                txns_to_recover=report.txns_to_recover,
                copiers=metrics.counters.get("copiers"),
                batch_copiers=metrics.counters.get("batch_copiers"),
            )
        )
    return results


# -- A2: embedded clear-fail-locks (§2.2.3) ------------------------------------------


@dataclass(slots=True)
class ClearNoticeResult:
    """Copier-transaction cost under one clear-notice mode."""

    mode: str
    txn_with_copier: float
    samples: int


def run_embedded_clearing(seed: int = 17) -> list[ClearNoticeResult]:
    """Copier transaction cost: special transactions vs embedded clears."""
    results = []
    for mode in (ClearNoticeMode.SPECIAL_TXN, ClearNoticeMode.EMBEDDED):
        config = SystemConfig.paper_experiment1(seed=seed, clear_notice_mode=mode)
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=260,
            policy=Weighted({0: 1.0, 1: 0.001, 2: 0.001, 3: 0.001}),
        )
        scenario.add_action(3, FailSite(0))
        scenario.add_action(60, RecoverSite(0))
        metrics = cluster.run(scenario)
        times = [
            t.coordinator_elapsed
            for t in metrics.committed
            if t.copiers_requested == 1
        ]
        results.append(
            ClearNoticeResult(
                mode=mode.value,
                txn_with_copier=mean(times),
                samples=len(times),
            )
        )
    return results


# -- A3: read/write ratio (§5) -----------------------------------------------------


@dataclass(slots=True)
class ReadWriteResult:
    """Failure/recovery dynamics at one write probability."""

    write_probability: float
    peak_locks: int
    txns_to_recover: int
    copiers: int


def run_read_write_ratio(
    seed: int = 42, write_probs: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7)
) -> list[ReadWriteResult]:
    """The §5 prediction: read-heavy mixes lock more slowly and need more
    copier transactions during recovery."""
    results = []
    for wp in write_probs:
        config = SystemConfig.paper_experiment2(seed=seed, write_probability=wp)
        cluster = Cluster(config)
        workload = ReadWriteWorkload(config.item_ids, config.max_txn_size, wp)
        scenario = Scenario(
            workload=workload,
            txn_count=100,
            policy=Weighted({0: 0.5, 1: 0.5}),
            until_recovered=(0,),
            max_txns=4000,
        )
        scenario.add_action(1, FailSite(0))
        scenario.add_action(101, RecoverSite(0))
        metrics = cluster.run(scenario)
        report = availability_of(metrics.faillock_samples, 0, config.db_size)
        results.append(
            ReadWriteResult(
                write_probability=wp,
                peak_locks=report.peak_locks,
                txns_to_recover=report.txns_to_recover,
                copiers=metrics.counters.get("copiers"),
            )
        )
    return results


# -- A4: strategy comparison ----------------------------------------------------------


@dataclass(slots=True)
class StrategyResult:
    """Outcome counts for one strategy under the scenario-2 script."""

    strategy: str
    commits: int
    aborts: int
    abort_reasons: dict[str, int]


def run_strategy_comparison(seed: int = 42) -> list[StrategyResult]:
    """Scenario 2's failure script under ROWAA, strict ROWA, and quorum.

    ROWAA commits everything (the paper's result); strict ROWA aborts every
    write transaction while any site is down; majority quorum commits
    everything here (one failure out of four leaves a majority) but would
    collapse below quorum with two failures.
    """
    results = []
    for strategy in (
        CopyControlStrategy.ROWAA,
        CopyControlStrategy.ROWA,
        CopyControlStrategy.QUORUM,
    ):
        config = SystemConfig.paper_experiment3_scenario2(
            seed=seed, strategy=strategy
        )
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=160,
        )
        for site in range(4):
            scenario.add_action(25 * site + 1, FailSite(site))
            scenario.add_action(25 * (site + 1) + 1, RecoverSite(site))
        metrics = cluster.run(scenario)
        reasons: dict[str, int] = {}
        for record in metrics.aborted:
            key = record.abort_reason.value
            reasons[key] = reasons.get(key, 0) + 1
        results.append(
            StrategyResult(
                strategy=strategy.value,
                commits=metrics.counters.get("commits"),
                aborts=metrics.counters.get("aborts"),
                abort_reasons=reasons,
            )
        )
    return results


# -- A5: failure detection mode ---------------------------------------------------------


@dataclass(slots=True)
class DetectionResult:
    """Outcome counts under one failure-detection mode."""

    detection: str
    commits: int
    aborts: int
    type2_controls: int


def run_failure_detection(seed: int = 42) -> list[DetectionResult]:
    """Announced vs timeout detection under the scenario-2 script.

    Timeout detection (Appendix A taken literally) costs one aborted
    transaction per failure: the first post-failure coordinator discovers
    the down participant mid-phase-one.
    """
    results = []
    for detection in (FailureDetection.ANNOUNCED, FailureDetection.TIMEOUT):
        config = SystemConfig.paper_experiment3_scenario2(
            seed=seed, detection=detection
        )
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=160,
        )
        for site in range(4):
            scenario.add_action(25 * site + 1, FailSite(site))
            scenario.add_action(25 * (site + 1) + 1, RecoverSite(site))
        metrics = cluster.run(scenario)
        results.append(
            DetectionResult(
                detection=detection.value,
                commits=metrics.counters.get("commits"),
                aborts=metrics.counters.get("aborts"),
                type2_controls=metrics.counters.get("control_type2"),
            )
        )
    return results


# -- A6: benchmark workloads (§5 future work) ----------------------------------------------


@dataclass(slots=True)
class WorkloadResult:
    """Figure-1 dynamics under one workload."""

    workload: str
    peak_locks: int
    txns_to_recover: int
    copiers: int
    aborts: int


def run_benchmark_workloads(seed: int = 42) -> list[WorkloadResult]:
    """The Figure 1 scenario under the paper's future-work benchmarks."""
    config = SystemConfig.paper_experiment2(seed=seed)
    workloads: list[WorkloadGenerator] = [
        UniformWorkload(config.item_ids, config.max_txn_size),
        Et1Workload(config.item_ids),
        WisconsinWorkload(config.item_ids),
    ]
    results = []
    for workload in workloads:
        cluster = Cluster(SystemConfig.paper_experiment2(seed=seed))
        scenario = Scenario(
            workload=workload,
            txn_count=100,
            policy=Weighted({0: 0.05, 1: 0.95}),
            until_recovered=(0,),
            max_txns=4000,
        )
        scenario.add_action(1, FailSite(0))
        scenario.add_action(101, RecoverSite(0))
        metrics = cluster.run(scenario)
        report = availability_of(metrics.faillock_samples, 0, config.db_size)
        results.append(
            WorkloadResult(
                workload=workload.describe(),
                peak_locks=report.peak_locks,
                txns_to_recover=report.txns_to_recover,
                copiers=metrics.counters.get("copiers"),
                aborts=metrics.counters.get("aborts"),
            )
        )
    return results


# -- A9: warm vs cold recovery (crash model) -------------------------------------------


@dataclass(slots=True)
class CrashModelResult:
    """Recovery dynamics under one crash model."""

    model: str
    initial_stale: int
    txns_to_recover: int
    copiers: int


def run_crash_models(seed: int = 42) -> list[CrashModelResult]:
    """Figure-1 scenario under the paper's warm crash (process memory
    survives) vs a cold crash (volatile database lost).

    Mini-RAID simulated failures by muting the process, so a recovering
    site only misses the updates committed during its outage; a cold crash
    fail-locks the *entire* database, lengthening recovery accordingly.
    """
    results = []
    for name, cold in (("warm", False), ("cold", True)):
        config = SystemConfig.paper_experiment2(seed=seed, cold_recovery=cold)
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=30,
            policy=Weighted({0: 0.05, 1: 0.95}),
            until_recovered=(0,),
            max_txns=4000,
        )
        scenario.add_action(1, FailSite(0))
        scenario.add_action(31, RecoverSite(0))
        metrics = cluster.run(scenario)
        report = availability_of(metrics.faillock_samples, 0, config.db_size)
        results.append(
            CrashModelResult(
                model=name,
                initial_stale=report.peak_locks,
                txns_to_recover=report.txns_to_recover,
                copiers=metrics.counters.get("copiers"),
            )
        )
    return results


# -- A10: §2.2.2 scaling claims ---------------------------------------------------------


@dataclass(slots=True)
class ScalingResult:
    """Control-transaction costs at one (num_sites, db_size) point."""

    num_sites: int
    db_size: int
    type1_recovering: float
    type1_operational: float
    type2: float


def run_control_scaling(
    seed: int = 13,
    site_counts: tuple[int, ...] = (2, 4, 8),
    db_sizes: tuple[int, ...] = (50, 200),
) -> list[ScalingResult]:
    """Validate the paper's §2.2.2 scaling claims.

    "The time for a type 1 control transaction [at the recovering site] is
    dependent on the number of sites in the system"; the operational-site
    side "is independent of the number of sites ... [but] dependent on the
    size of the database"; type 2 "is independent of the number of sites".
    """
    results = []
    for num_sites in site_counts:
        for db_size in db_sizes:
            config = SystemConfig(
                db_size=db_size,
                num_sites=num_sites,
                max_txn_size=5,
                seed=seed,
            )
            cluster = Cluster(config)
            scenario = Scenario(
                workload=UniformWorkload(config.item_ids, config.max_txn_size),
                txn_count=20,
                policy=Weighted({0: 1.0, **{s: 0.0001 for s in range(1, num_sites)}}),
            )
            victim = num_sites - 1
            scenario.add_action(5, FailSite(victim))
            scenario.add_action(15, RecoverSite(victim))
            metrics = cluster.run(scenario)
            results.append(
                ScalingResult(
                    num_sites=num_sites,
                    db_size=db_size,
                    type1_recovering=mean(metrics.control_times(1, "recovering")),
                    type1_operational=mean(metrics.control_times(1, "operational")),
                    # Type 2 per-destination cost: take the first (queue-
                    # free) announcement; later ones include shared-CPU
                    # queueing behind each other, which the paper's
                    # isolated measurement excludes.
                    type2=min(metrics.control_times(2)),
                )
            )
    return results


# -- A11: network partitions — the ROWAA anomaly vs quorum safety ---------------------


@dataclass(slots=True)
class PartitionResult:
    """What one strategy did during and after a network partition."""

    strategy: str
    commits_during_partition: int
    aborts_during_partition: int
    divergent_items: int  # copies claiming currency with conflicting values


def run_partition_anomaly(seed: int = 42) -> list[PartitionResult]:
    """Demonstrate why ROWAA needs reliable failure knowledge.

    Under a clean site *failure* the failed site stops writing, so
    write-all-available stays one-copy serializable.  Under a *partition*
    with timeout detection, both halves decide the other failed and both
    keep accepting writes — the copies diverge, and after healing each
    half's fail-lock table wrongly certifies its own stale copies as
    current (the audit catches it).  Majority quorum consensus refuses to
    operate in the minority half and stays safe.  This is the classical
    argument for quorums that the paper's §1.1 partition remark glosses;
    the substrate makes it measurable.
    """
    from repro.system.scenario import HealNetwork, PartitionNetwork

    results = []
    for strategy in (CopyControlStrategy.ROWAA, CopyControlStrategy.QUORUM):
        config = SystemConfig(
            db_size=20,
            num_sites=4,
            max_txn_size=4,
            seed=seed,
            strategy=strategy,
            detection=FailureDetection.TIMEOUT,
        )
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=60,
        )
        scenario.add_action(11, PartitionNetwork(groups=((0, 1, 2), (3,))))
        scenario.add_action(51, HealNetwork())
        metrics = cluster.run(scenario)
        window = [t for t in metrics.txns if 11 <= t.seq <= 50]
        commits = sum(1 for t in window if t.committed)
        aborts = len(window) - commits
        # Divergence: items whose copies disagree at the newest version
        # while no table flags the discrepancy.
        divergent = len(cluster.audit_consistency())
        results.append(
            PartitionResult(
                strategy=strategy.value,
                commits_during_partition=commits,
                aborts_during_partition=aborts,
                divergent_items=divergent,
            )
        )
    return results


# -- A12: submission bias during recovery (the Experiment 2 fidelity choice) ----------


@dataclass(slots=True)
class SubmissionBiasResult:
    """Recovery dynamics at one recovering-site submission share."""

    recovering_share: float
    txns_to_recover: int
    copiers: int
    refreshed_by_copier: int
    refreshed_by_write: int


def run_submission_bias(
    seed: int = 42, shares: tuple[float, ...] = (0.0, 0.05, 0.25, 0.5)
) -> list[SubmissionBiasResult]:
    """How the coordinator mix during recovery shapes copier traffic.

    The paper reports only two copier transactions during Figure 1's
    160-transaction recovery — evidence that transactions kept flowing to
    the long-operational site (see DESIGN.md).  This sweep makes the
    dependence explicit: the more transactions the recovering site
    coordinates, the more of its refreshing is done by on-demand copiers
    instead of incidental writes.
    """
    results = []
    for share in shares:
        config = SystemConfig.paper_experiment2(seed=seed)
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=100,
            policy=Weighted({0: share, 1: 1.0 - share}) if share > 0
            else Weighted({1: 1.0}),
            until_recovered=(0,),
            max_txns=4000,
        )
        scenario.add_action(1, FailSite(0))
        scenario.add_action(101, RecoverSite(0))
        metrics = cluster.run(scenario)
        report = availability_of(metrics.faillock_samples, 0, config.db_size)
        stats = cluster.site(0).recovery.stats
        results.append(
            SubmissionBiasResult(
                recovering_share=share,
                txns_to_recover=report.txns_to_recover,
                copiers=metrics.counters.get("copiers"),
                refreshed_by_copier=stats.refreshed_by_copier,
                refreshed_by_write=stats.refreshed_by_write,
            )
        )
    return results
