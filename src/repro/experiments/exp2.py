"""Experiment 2: data availability on a recovering site (paper §3, Figure 1).

Two sites, database of 50 items, maximum transaction size 5.  Site 0 fails
before transaction 1; transactions 1-100 run on site 1, fail-locking most
of site 0's copies; site 0 recovers before transaction 101 and transactions
continue until it is completely recovered.

The paper reports: over 90 % of site 0's copies fail-locked at the peak,
about 160 further transactions to full recovery, only two copier
transactions requested, and a clearing rate proportional to the locked
fraction ("the first 10 fail-locks were cleared in only 6 transactions and
the last 10 fail-locks were cleared in 106").

Submission policy: transactions keep flowing predominantly to the
long-operational site (see DESIGN.md on why the paper's copier count
implies this); ``recovering_share`` controls the bias.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.availability import AvailabilityReport, availability_of
from repro.metrics.collector import MetricsCollector
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite, Scenario, Weighted
from repro.viz.ascii_chart import render_series
from repro.workload.base import WorkloadGenerator
from repro.workload.uniform import UniformWorkload

PAPER_PEAK_FRACTION = 0.90          # ">90% of the copies"
PAPER_TXNS_TO_RECOVER = 160.0
PAPER_COPIERS = 2
PAPER_FIRST_BUCKET_TXNS = 6         # first 10 fail-locks cleared in 6 txns
PAPER_LAST_BUCKET_TXNS = 106        # last 10 took 106


@dataclass(slots=True)
class Figure1Result:
    """The Figure 1 series plus the §3 headline numbers."""

    series: dict[int, list[tuple[int, int]]]
    report: AvailabilityReport
    copiers: int
    aborts: int
    total_txns: int
    metrics: MetricsCollector = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def peak_fraction(self) -> float:
        return self.report.peak_locks / self.report.db_size

    def chart(self, width: int = 72, height: int = 18) -> str:
        """Render the figure as an ASCII chart."""
        named = {
            f"site {site}": [(float(x), float(y)) for x, y in points]
            for site, points in self.series.items()
        }
        return render_series(
            named,
            title=(
                "Figure 1: data availability during failure and recovery "
                f"(db=50, max txn size=5)"
            ),
            width=width,
            height=height,
        )


def run_figure1(
    seed: int = 42,
    recovering_share: float = 0.05,
    workload: WorkloadGenerator | None = None,
    down_txns: int = 100,
    max_txns: int = 2000,
) -> Figure1Result:
    """Run the §3.1 scenario and return the Figure 1 series."""
    config = SystemConfig.paper_experiment2(seed=seed)
    cluster = Cluster(config)
    if workload is None:
        workload = UniformWorkload(config.item_ids, config.max_txn_size)
    scenario = Scenario(
        workload=workload,
        txn_count=down_txns,
        policy=Weighted({0: recovering_share, 1: 1.0 - recovering_share}),
        until_recovered=(0,),
        max_txns=max_txns,
    )
    scenario.add_action(1, FailSite(0))
    scenario.add_action(down_txns + 1, RecoverSite(0))
    metrics = cluster.run(scenario)
    series = {site: metrics.faillock_series(site) for site in config.site_ids}
    report = availability_of(metrics.faillock_samples, 0, config.db_size)
    return Figure1Result(
        series=series,
        report=report,
        copiers=metrics.counters.get("copiers"),
        aborts=metrics.counters.get("aborts"),
        total_txns=len(metrics.txns),
        metrics=metrics,
    )
