"""Experiment 1: overhead measurements (paper §2).

Three overheads of keeping replicated copies consistent, measured with the
paper's configuration (database of 50 frequently-referenced items, 4 sites,
maximum transaction size 10):

* fail-lock maintenance during commit (§2.2.1),
* control transactions (§2.2.2),
* copier transactions (§2.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.stats import mean
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, FixedSite, RecoverSite, Scenario
from repro.workload.uniform import UniformWorkload

# Published values (ms) for side-by-side reporting.
PAPER_COORD_NO_FL = 176.0
PAPER_COORD_FL = 186.0
PAPER_PART_NO_FL = 90.0
PAPER_PART_FL = 97.0
PAPER_TYPE1_RECOVERING = 190.0
PAPER_TYPE1_OPERATIONAL = 50.0
PAPER_TYPE2 = 68.0
PAPER_TXN_WITH_COPIER = 270.0
PAPER_COPY_REQUEST = 25.0
PAPER_CLEAR_FAILLOCKS = 20.0


@dataclass(slots=True)
class FaillockOverheadResult:
    """§2.2.1: transaction times with and without the fail-locks code."""

    coord_without: float
    coord_with: float
    part_without: float
    part_with: float

    @property
    def coord_overhead_pct(self) -> float:
        return 100.0 * (self.coord_with - self.coord_without) / self.coord_without

    @property
    def part_overhead_pct(self) -> float:
        return 100.0 * (self.part_with - self.part_without) / self.part_without

    def rows(self) -> list[tuple[str, float, float, float, float]]:
        """(role, measured w/o, paper w/o, measured w/, paper w/)."""
        return [
            ("coordinating site", self.coord_without, PAPER_COORD_NO_FL,
             self.coord_with, PAPER_COORD_FL),
            ("participating site", self.part_without, PAPER_PART_NO_FL,
             self.part_with, PAPER_PART_FL),
        ]


def run_faillock_overhead(seed: int = 11, txns: int = 300) -> FaillockOverheadResult:
    """Re-run the same transaction set with and without fail-locks code.

    The paper removed the fail-lock maintenance code from the software and
    re-ran the set; ``faillocks_enabled`` is the equivalent switch.  No
    failures are injected, so no copier transactions are generated.
    """
    times = {}
    for enabled in (False, True):
        config = SystemConfig.paper_experiment1(seed=seed, faillocks_enabled=enabled)
        cluster = Cluster(config)
        scenario = Scenario(
            workload=UniformWorkload(config.item_ids, config.max_txn_size),
            txn_count=txns,
        )
        metrics = cluster.run(scenario)
        times[enabled] = (
            mean(metrics.coordinator_times()),
            mean(metrics.participant_times()),
        )
    return FaillockOverheadResult(
        coord_without=times[False][0],
        coord_with=times[True][0],
        part_without=times[False][1],
        part_with=times[True][1],
    )


@dataclass(slots=True)
class ControlOverheadResult:
    """§2.2.2: control transaction completion times."""

    type1_recovering: float
    type1_operational: float
    type2: float

    def rows(self) -> list[tuple[str, float, float]]:
        return [
            ("type 1 at recovering site", self.type1_recovering, PAPER_TYPE1_RECOVERING),
            ("type 1 at operational site", self.type1_operational, PAPER_TYPE1_OPERATIONAL),
            ("type 2", self.type2, PAPER_TYPE2),
        ]


def run_control_overhead(seed: int = 13) -> ControlOverheadResult:
    """Measure type-1 and type-2 control transactions.

    Type 1 is measured in the paper's 4-site configuration (its duration
    at the recovering site depends on the site count).  Type 2 is measured
    in isolation — announcement to a single site — matching the paper's
    "sending of the failure announcement to a particular site and the
    updating of the session vector at that site".
    """
    # Type 1: fail a site, run some transactions, recover it.
    config = SystemConfig.paper_experiment1(seed=seed)
    cluster = Cluster(config)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=40,
        policy=FixedSite(0),
    )
    scenario.add_action(5, FailSite(3))
    scenario.add_action(35, RecoverSite(3))
    metrics = cluster.run(scenario)
    type1_recovering = mean(metrics.control_times(1, "recovering"))
    type1_operational = mean(metrics.control_times(1, "operational"))

    # Type 2 in isolation: three sites, fail one; with TIMEOUT detection
    # the coordinator discovers the failure and announces to the single
    # remaining peer — one announcement, no queueing behind others.
    from repro.system.config import FailureDetection

    config2 = SystemConfig(
        db_size=50,
        num_sites=3,
        max_txn_size=10,
        seed=seed,
        detection=FailureDetection.TIMEOUT,
    )
    cluster2 = Cluster(config2)
    scenario2 = Scenario(
        workload=UniformWorkload(config2.item_ids, config2.max_txn_size),
        txn_count=20,
        policy=FixedSite(0),
    )
    scenario2.add_action(10, FailSite(2))
    metrics2 = cluster2.run(scenario2)
    type2 = mean(metrics2.control_times(2))
    return ControlOverheadResult(
        type1_recovering=type1_recovering,
        type1_operational=type1_operational,
        type2=type2,
    )


@dataclass(slots=True)
class CopierOverheadResult:
    """§2.2.3: copier transaction overheads."""

    txn_with_copier: float
    txn_without_copier: float
    copy_request_overhead: float
    clear_faillocks_time: float
    clear_notices_per_copier_txn: float = 0.0
    samples: int = 0

    @property
    def increase_pct(self) -> float:
        if self.txn_without_copier <= 0:
            return 0.0
        return 100.0 * (self.txn_with_copier - self.txn_without_copier) / (
            self.txn_without_copier
        )

    @property
    def clearing_share_pct(self) -> float:
        """Share of the copier overhead attributable to the clear-fail-locks
        special transactions (the paper's ≈30-percentage-point finding)."""
        extra = self.txn_with_copier - self.txn_without_copier
        if extra <= 0:
            return 0.0
        clearing = self.clear_notices_per_copier_txn * self.clear_faillocks_time
        return 100.0 * clearing / self.txn_without_copier

    def rows(self) -> list[tuple[str, float, float]]:
        return [
            ("database txn with one copier", self.txn_with_copier, PAPER_TXN_WITH_COPIER),
            ("database txn without copier", self.txn_without_copier, PAPER_COORD_FL),
            ("copy request at responder", self.copy_request_overhead, PAPER_COPY_REQUEST),
            ("clear fail-locks per site", self.clear_faillocks_time, PAPER_CLEAR_FAILLOCKS),
        ]


def run_copier_overhead(seed: int = 17, warm_txns: int = 60) -> CopierOverheadResult:
    """Measure transactions that generate exactly one copier transaction.

    Scenario: 4 sites; site 0 fails, misses updates, recovers; further
    transactions are submitted *to site 0* so reads of its fail-locked
    copies generate copiers (the paper's recovering-coordinator scenario).
    The baseline is the same configuration's copier-free transactions.
    """
    from repro.system.scenario import Weighted

    config = SystemConfig.paper_experiment1(seed=seed)
    cluster = Cluster(config)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=warm_txns + 200,
        # Site 0 coordinates whenever it is up (the recovering-coordinator
        # scenario); while it is down, the weights renormalize over the
        # survivors, so the warm-up transactions spread across them.
        policy=Weighted({0: 1.0, 1: 0.001, 2: 0.001, 3: 0.001}),
    )
    scenario.add_action(3, FailSite(0))
    scenario.add_action(warm_txns, RecoverSite(0))
    metrics = cluster.run(scenario)

    # Transactions that needed a copier skew large (more operations means
    # more chances to read a fail-locked copy), so the honest baseline is
    # size-matched: for each copier transaction, compare against
    # copier-free transactions of the same operation count.
    copier_txns = [t for t in metrics.committed if t.copiers_requested == 1]
    baseline_by_size: dict[int, list[float]] = {}
    for t in metrics.committed:
        if t.copiers_requested == 0 and t.seq > warm_txns:
            baseline_by_size.setdefault(t.size, []).append(t.coordinator_elapsed)
    with_one_copier = []
    without = []
    for t in copier_txns:
        matched = baseline_by_size.get(t.size)
        if matched:
            with_one_copier.append(t.coordinator_elapsed)
            without.append(mean(matched))
    clear_counts = [t.clear_notices_sent for t in copier_txns]
    costs = config.costs
    # The two micro-overheads follow directly from the calibrated cost
    # model (they are single activations, not emergent interleavings).
    copy_request_overhead = (
        costs.msg_recv_cost + costs.copy_response_cost(1) + costs.msg_send_cost
    )
    clear_time = costs.communication_cost + costs.clear_notice_apply_cost
    return CopierOverheadResult(
        txn_with_copier=mean(with_one_copier),
        txn_without_copier=mean(without),
        copy_request_overhead=copy_request_overhead,
        clear_faillocks_time=clear_time,
        clear_notices_per_copier_txn=mean([float(c) for c in clear_counts]),
        samples=len(with_one_copier),
    )
