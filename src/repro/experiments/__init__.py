"""Experiment runners: one per table/figure in the paper, plus ablations.

=========  ==========================================================
paper      runner
=========  ==========================================================
§2.2.1     :func:`repro.experiments.exp1.run_faillock_overhead`
§2.2.2     :func:`repro.experiments.exp1.run_control_overhead`
§2.2.3     :func:`repro.experiments.exp1.run_copier_overhead`
Figure 1   :func:`repro.experiments.exp2.run_figure1`
Figure 2   :func:`repro.experiments.exp3.run_scenario1`
Figure 3   :func:`repro.experiments.exp3.run_scenario2`
§3.2/§5    :mod:`repro.experiments.ablations`
=========  ==========================================================
"""

from repro.experiments.exp1 import (
    run_faillock_overhead,
    run_control_overhead,
    run_copier_overhead,
    FaillockOverheadResult,
    ControlOverheadResult,
    CopierOverheadResult,
)
from repro.experiments.exp2 import run_figure1, Figure1Result
from repro.experiments.exp3 import run_scenario1, run_scenario2, ScenarioResult

__all__ = [
    "run_faillock_overhead",
    "run_control_overhead",
    "run_copier_overhead",
    "FaillockOverheadResult",
    "ControlOverheadResult",
    "CopierOverheadResult",
    "run_figure1",
    "Figure1Result",
    "run_scenario1",
    "run_scenario2",
    "ScenarioResult",
]
