"""Experiment 3: consistency of replicated copies (paper §4, Figures 2-3).

"Since each set fail-lock represents an inconsistent copy, the number of
fail-locks set is a measure of inconsistency."  Two scenarios with multiple
sites recovering concurrently:

* Scenario 1 (Figure 2): two sites, db=50, max txn size 5.  Site 0 down
  for transactions 1-25; site 1 down (and site 0 recovering) for 26-50;
  both up for 51-120.  Site 1's absence during site 0's recovery makes
  some items totally unavailable, forcing aborted transactions (13 in the
  paper's run).
* Scenario 2 (Figure 3): four sites failing singly in succession, 25
  transactions apart, all up from 101; with an up-to-date copy always
  available somewhere, no transaction aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.collector import MetricsCollector
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite, Scenario
from repro.txn.transaction import AbortReason
from repro.viz.ascii_chart import render_series
from repro.workload.uniform import UniformWorkload

PAPER_SCENARIO1_ABORTS = 13
PAPER_SCENARIO2_ABORTS = 0


@dataclass(slots=True)
class ScenarioResult:
    """A Figure 2/3 run: per-site fail-lock series and outcome counts."""

    name: str
    series: dict[int, list[tuple[int, int]]]
    aborts: int
    commits: int
    abort_reasons: dict[str, int]
    final_locks: dict[int, int]
    consistency_violations: list[str]
    metrics: MetricsCollector = field(repr=False, default=None)  # type: ignore[assignment]

    def peak(self, site: int) -> int:
        """Peak fail-lock count for ``site``."""
        points = self.series.get(site, [])
        return max((v for _s, v in points), default=0)

    def chart(self, width: int = 72, height: int = 18) -> str:
        named = {
            f"site {site}": [(float(x), float(y)) for x, y in points]
            for site, points in self.series.items()
        }
        return render_series(
            named,
            title=f"{self.name} (db=50, max txn size=5)",
            width=width,
            height=height,
        )


def _run(config: SystemConfig, scenario: Scenario, name: str) -> ScenarioResult:
    cluster = Cluster(config)
    metrics = cluster.run(scenario)
    reasons: dict[str, int] = {}
    for record in metrics.aborted:
        reasons[record.abort_reason.value] = reasons.get(record.abort_reason.value, 0) + 1
    return ScenarioResult(
        name=name,
        series={site: metrics.faillock_series(site) for site in config.site_ids},
        aborts=metrics.counters.get("aborts"),
        commits=metrics.counters.get("commits"),
        abort_reasons=reasons,
        final_locks=cluster.faillock_counts(),
        consistency_violations=cluster.audit_consistency(),
        metrics=metrics,
    )


def run_scenario1(seed: int = 42, settle: bool = True) -> ScenarioResult:
    """Figure 2: two sites with alternating failures.

    ``settle`` extends the run past transaction 120 until both sites are
    fully recovered (the paper's graph tails off to zero around there).
    """
    config = SystemConfig.paper_experiment2(seed=seed)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=120,
        until_recovered=(0, 1) if settle else (),
        max_txns=1000,
    )
    scenario.add_action(1, FailSite(0))
    scenario.add_action(26, RecoverSite(0))
    scenario.add_action(26, FailSite(1))
    scenario.add_action(51, RecoverSite(1))
    return _run(config, scenario, "Figure 2: database inconsistency (scenario 1)")


def run_scenario2(seed: int = 42, settle: bool = True) -> ScenarioResult:
    """Figure 3: four sites failing singly in succession."""
    config = SystemConfig.paper_experiment3_scenario2(seed=seed)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=160,
        until_recovered=(0, 1, 2, 3) if settle else (),
        max_txns=1000,
    )
    for site in range(4):
        scenario.add_action(25 * site + 1, FailSite(site))
        scenario.add_action(25 * (site + 1) + 1, RecoverSite(site))
    return _run(config, scenario, "Figure 3: database inconsistency (scenario 2)")
