"""First-class seeded Zipf item selection.

Zipf popularity used to live as a private detail of
:class:`repro.workload.hotset.ZipfHotSetWorkload`; the soak engine's
hot-key storms need the same skewed picker over arbitrary item sets, so
it is promoted here.  :class:`ZipfGenerator` is the picker (one
``rng.random()`` per draw, byte-compatible with the hot-set scan it
replaces) and :class:`ZipfWorkload` is a full workload generator over a
whole item range — the "what if popularity is skewed across the entire
database" counterpart to :class:`repro.workload.uniform.UniformWorkload`.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator

__all__ = ["ZipfGenerator", "ZipfWorkload"]


class ZipfGenerator:
    """Seeded Zipf(s) selection over a ranked item list.

    Rank 1 (the first item) is the most popular; weight of rank ``r`` is
    ``1 / r**skew``.  ``skew=0`` degenerates to uniform.  Each ``pick``
    consumes exactly one ``rng.random()`` and returns the first rank
    whose CDF value reaches the draw — identical semantics (and identical
    bytes on the same stream) as the linear scan previously embedded in
    ``ZipfHotSetWorkload``, but via bisection so large item sets stay fast.
    """

    __slots__ = ("items", "skew", "_cdf")

    def __init__(self, items: list[int], skew: float) -> None:
        if not items:
            raise WorkloadError("zipf item set is empty")
        if skew < 0:
            raise WorkloadError(f"skew must be non-negative: {skew}")
        self.items = list(items)
        self.skew = skew
        weights = [1.0 / (rank**skew) for rank in range(1, len(self.items) + 1)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)

    def pick_index(self, rng: RandomStream) -> int:
        """Draw a rank index (0-based, 0 = most popular)."""
        point = rng.random()
        # First index with cdf >= point; rounding can leave cdf[-1] just
        # under 1.0, so clamp like the scan's fallback-to-last did.
        return min(bisect_left(self._cdf, point), len(self.items) - 1)

    def pick(self, rng: RandomStream) -> int:
        """Draw an item."""
        return self.items[self.pick_index(rng)]

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"ZipfGenerator(n={len(self.items)}, skew={self.skew})"


class ZipfWorkload(WorkloadGenerator):
    """Transactions whose items follow a Zipf popularity over all items."""

    def __init__(
        self,
        items: list[int],
        max_txn_size: int,
        skew: float = 0.8,
        write_probability: float = 0.5,
    ) -> None:
        if max_txn_size < 1:
            raise WorkloadError(f"max_txn_size must be >= 1: {max_txn_size}")
        if not 0.0 <= write_probability <= 1.0:
            raise WorkloadError(
                f"write_probability must be in [0, 1]: {write_probability}"
            )
        self.zipf = ZipfGenerator(items, skew)
        self.max_txn_size = max_txn_size
        self.write_probability = write_probability

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        count = rng.randint(1, self.max_txn_size)
        ops = []
        for _ in range(count):
            item = self.zipf.pick(rng)
            kind = (
                OpKind.WRITE if rng.random() < self.write_probability else OpKind.READ
            )
            ops.append(Operation(kind=kind, item_id=item))
        return ops

    def describe(self) -> str:
        return f"zipf-all(n={len(self.zipf)}, skew={self.zipf.skew})"
