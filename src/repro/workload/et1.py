"""ET1 (DebitCredit) workload — Anon et al., "A measure of transaction
processing power" (the paper's [Anon85] future-work benchmark).

The classic DebitCredit transaction updates an account, its teller, and its
branch, and appends a history record.  We map the four record types onto
disjoint regions of the item space, preserving the benchmark's access
shape: three read-modify-write pairs plus one blind write.
"""

from __future__ import annotations

from repro.sim.rng import RandomStream

from repro.errors import WorkloadError
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator


class Et1Workload(WorkloadGenerator):
    """DebitCredit-shaped transactions over a partitioned item space.

    The item space splits as: accounts (70 %), tellers (10 %), branches
    (5 %), history slots (15 %) — small-scale proportions of the ET1
    schema.  Each transaction touches one of each.
    """

    def __init__(self, item_ids: list[int]) -> None:
        if len(item_ids) < 8:
            raise WorkloadError(
                f"ET1 needs at least 8 items for its four regions, got {len(item_ids)}"
            )
        items = list(item_ids)
        n = len(items)
        a_end = max(1, int(n * 0.70))
        t_end = a_end + max(1, int(n * 0.10))
        b_end = t_end + max(1, int(n * 0.05))
        self.accounts = items[:a_end]
        self.tellers = items[a_end:t_end]
        self.branches = items[t_end:b_end]
        self.history = items[b_end:]
        if not self.history:
            raise WorkloadError("ET1 item space too small to carve a history region")

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        account = rng.choice(self.accounts)
        teller = rng.choice(self.tellers)
        branch = rng.choice(self.branches)
        history = rng.choice(self.history)
        return [
            Operation(OpKind.READ, account),
            Operation(OpKind.WRITE, account),
            Operation(OpKind.READ, teller),
            Operation(OpKind.WRITE, teller),
            Operation(OpKind.READ, branch),
            Operation(OpKind.WRITE, branch),
            Operation(OpKind.WRITE, history),
        ]

    def describe(self) -> str:
        return (
            f"et1(accounts={len(self.accounts)}, tellers={len(self.tellers)}, "
            f"branches={len(self.branches)}, history={len(self.history)})"
        )
