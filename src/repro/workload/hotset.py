"""Zipf-skewed hot-set workload.

The paper argues (§5) that modelling only the frequently-referenced subset
with equal probabilities is adequate; this generator lets that assumption
be probed by skewing accesses within the hot set with a Zipf distribution
and occasionally touching a cold region.
"""

from __future__ import annotations

from repro.sim.rng import RandomStream

from repro.errors import WorkloadError
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator
from repro.workload.zipf import ZipfGenerator


class ZipfHotSetWorkload(WorkloadGenerator):
    """Zipf(s) access over a hot set, with a cold-access probability."""

    def __init__(
        self,
        hot_items: list[int],
        max_txn_size: int,
        skew: float = 1.0,
        cold_items: list[int] | None = None,
        cold_probability: float = 0.0,
        write_probability: float = 0.5,
    ) -> None:
        if not hot_items:
            raise WorkloadError("hot item set is empty")
        if max_txn_size < 1:
            raise WorkloadError(f"max_txn_size must be >= 1: {max_txn_size}")
        if skew < 0:
            raise WorkloadError(f"skew must be non-negative: {skew}")
        if cold_probability and not cold_items:
            raise WorkloadError("cold_probability > 0 requires cold_items")
        if not 0.0 <= cold_probability <= 1.0:
            raise WorkloadError(f"cold_probability must be in [0, 1]: {cold_probability}")
        self.hot_items = list(hot_items)
        self.cold_items = list(cold_items or [])
        self.cold_probability = cold_probability
        self.max_txn_size = max_txn_size
        self.skew = skew
        self.write_probability = write_probability
        # Zipf selection over hot-item ranks (promoted to its own class;
        # draw-for-draw identical to the linear CDF scan it replaces).
        self._zipf = ZipfGenerator(self.hot_items, skew)

    def _pick_hot(self, rng: RandomStream) -> int:
        return self._zipf.pick(rng)

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        count = rng.randint(1, self.max_txn_size)
        ops = []
        for _ in range(count):
            if self.cold_items and rng.random() < self.cold_probability:
                item = rng.choice(self.cold_items)
            else:
                item = self._pick_hot(rng)
            kind = (
                OpKind.WRITE if rng.random() < self.write_probability else OpKind.READ
            )
            ops.append(Operation(kind=kind, item_id=item))
        return ops

    def describe(self) -> str:
        return (
            f"zipf(hot={len(self.hot_items)}, skew={self.skew}, "
            f"cold_p={self.cold_probability})"
        )
