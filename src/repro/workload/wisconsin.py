"""Wisconsin-benchmark-shaped workload — Bitton, DeWitt & Turbyfill (the
paper's [Bitt83] future-work benchmark).

The Wisconsin benchmark mixes selections (range scans) with targeted
updates.  At mini-RAID's data-item granularity that becomes: transactions
that read a contiguous run of items (a selection over a clustered range)
interleaved with transactions that update a few scattered items.
"""

from __future__ import annotations

from repro.sim.rng import RandomStream

from repro.errors import WorkloadError
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator


class WisconsinWorkload(WorkloadGenerator):
    """Alternating range-scan reads and scattered updates."""

    def __init__(
        self,
        item_ids: list[int],
        scan_length: int = 5,
        update_count: int = 2,
        scan_fraction: float = 0.5,
    ) -> None:
        if not item_ids:
            raise WorkloadError("item set is empty")
        if scan_length < 1 or scan_length > len(item_ids):
            raise WorkloadError(
                f"scan_length must be in [1, {len(item_ids)}]: {scan_length}"
            )
        if update_count < 1:
            raise WorkloadError(f"update_count must be >= 1: {update_count}")
        if not 0.0 <= scan_fraction <= 1.0:
            raise WorkloadError(f"scan_fraction must be in [0, 1]: {scan_fraction}")
        self.item_ids = sorted(item_ids)
        self.scan_length = scan_length
        self.update_count = update_count
        self.scan_fraction = scan_fraction

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        if rng.random() < self.scan_fraction:
            start = rng.randint(0, len(self.item_ids) - self.scan_length)
            return [
                Operation(OpKind.READ, self.item_ids[start + offset])
                for offset in range(self.scan_length)
            ]
        targets = rng.sample(
            self.item_ids, min(self.update_count, len(self.item_ids))
        )
        ops = []
        for item in targets:
            ops.append(Operation(OpKind.READ, item))
            ops.append(Operation(OpKind.WRITE, item))
        return ops

    def describe(self) -> str:
        return (
            f"wisconsin(items={len(self.item_ids)}, scan={self.scan_length}, "
            f"updates={self.update_count}, scan_frac={self.scan_fraction})"
        )
