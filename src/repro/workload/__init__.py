"""Workload generators.

The paper's managing site generated transactions with "a random number of
operations (from 1 to the maximum specified for the system)", each
operation equally likely a read or a write, each on a uniformly random item
from the frequently-referenced portion of the database (§1.2).  That is
:class:`UniformWorkload`.

The paper's §5 discussion and future work motivate the rest: a tunable
read/write ratio ("studies have shown that typically reads are far more
common than writes"), a skewed hot set, and the ET1 (DebitCredit) and
Wisconsin benchmarks the authors planned to repeat the experiments with.
"""

from repro.workload.base import WorkloadGenerator
from repro.workload.uniform import UniformWorkload
from repro.workload.readwrite import ReadWriteWorkload
from repro.workload.zipf import ZipfGenerator, ZipfWorkload
from repro.workload.hotset import ZipfHotSetWorkload
from repro.workload.et1 import Et1Workload
from repro.workload.wisconsin import WisconsinWorkload
from repro.workload.shapes import (
    ConstantShape,
    DebitCreditWorkload,
    DiurnalShape,
    FlashCrowdShape,
    HotKeyStormWorkload,
    LoadShape,
    RampShape,
    WisconsinMixWorkload,
    next_arrival_ms,
)

__all__ = [
    "WorkloadGenerator",
    "UniformWorkload",
    "ReadWriteWorkload",
    "ZipfGenerator",
    "ZipfWorkload",
    "ZipfHotSetWorkload",
    "Et1Workload",
    "WisconsinWorkload",
    "DebitCreditWorkload",
    "WisconsinMixWorkload",
    "LoadShape",
    "ConstantShape",
    "RampShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "HotKeyStormWorkload",
    "next_arrival_ms",
]
