"""The paper's workload: uniform items, equal read/write probability."""

from __future__ import annotations

from repro.sim.rng import RandomStream

from repro.errors import WorkloadError
from repro.txn.operations import Operation, random_transaction_ops
from repro.workload.base import WorkloadGenerator


class UniformWorkload(WorkloadGenerator):
    """Random transactions exactly as the managing site generated them.

    Length uniform in ``[1, max_txn_size]``; each operation a read or write
    with equal probability on a uniformly random frequently-referenced item
    (paper §1.2).
    """

    def __init__(self, item_ids: list[int], max_txn_size: int) -> None:
        if not item_ids:
            raise WorkloadError("item set is empty")
        if max_txn_size < 1:
            raise WorkloadError(f"max_txn_size must be >= 1: {max_txn_size}")
        self.item_ids = list(item_ids)
        self.max_txn_size = max_txn_size

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        return random_transaction_ops(
            rng, self.item_ids, self.max_txn_size, write_probability=0.5
        )

    def describe(self) -> str:
        return (
            f"uniform(items={len(self.item_ids)}, max_size={self.max_txn_size}, "
            f"write_p=0.5)"
        )
