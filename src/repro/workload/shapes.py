"""Time-varying load shapes and hot-key storms for soak runs.

The open-loop driver models a constant-rate Poisson source; production
traffic is not constant.  A :class:`LoadShape` gives the instantaneous
arrival rate ``rate_at(t_ms)`` (transactions per second) and soak runs
sample arrivals from the resulting non-homogeneous Poisson process via
Lewis–Shedler thinning (:func:`next_arrival_ms`) — all draws from the
injected seeded stream, so a seed fully determines the arrival sequence.

:class:`HotKeyStormWorkload` adds the item-popularity counterpart: Zipf
popularity whose *rank-to-item mapping* rotates every ``storm_every_ms``,
so a different key set is hot in each epoch.  The rotation is a pure
function of the epoch number (no RNG draws), which keeps the stream
consumption of a transaction independent of when it is generated.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import WorkloadError
from repro.sim.rng import RandomStream
from repro.txn.operations import OpKind, Operation
from repro.workload.base import WorkloadGenerator
from repro.workload.wisconsin import WisconsinWorkload
from repro.workload.zipf import ZipfGenerator

__all__ = [
    "LoadShape",
    "ConstantShape",
    "RampShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "next_arrival_ms",
    "HotKeyStormWorkload",
    "DebitCreditWorkload",
    "WisconsinMixWorkload",
]


class LoadShape(ABC):
    """Instantaneous arrival rate as a function of simulated time."""

    @abstractmethod
    def rate_at(self, t_ms: float) -> float:
        """Arrival rate in transactions/second at ``t_ms``."""

    @abstractmethod
    def peak_rate(self) -> float:
        """An upper bound on ``rate_at`` — the thinning envelope."""

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable label for reports."""

    def mean_rate(self, horizon_ms: float, steps: int = 256) -> float:
        """Midpoint-rule average rate over ``[0, horizon_ms]`` — used to
        estimate how long draining a fixed transaction count takes."""
        if horizon_ms <= 0:
            return self.peak_rate()
        step = horizon_ms / steps
        total = sum(self.rate_at((i + 0.5) * step) for i in range(steps))
        return total / steps


class ConstantShape(LoadShape):
    """The classic homogeneous Poisson source."""

    def __init__(self, rate_tps: float) -> None:
        if rate_tps <= 0:
            raise WorkloadError(f"rate must be positive: {rate_tps}")
        self.rate_tps = rate_tps

    def rate_at(self, t_ms: float) -> float:
        return self.rate_tps

    def peak_rate(self) -> float:
        return self.rate_tps

    def describe(self) -> str:
        return f"constant({self.rate_tps:g} tps)"


class RampShape(LoadShape):
    """Linear ramp from ``start_tps`` to ``end_tps`` over ``duration_ms``,
    holding ``end_tps`` afterwards."""

    def __init__(self, start_tps: float, end_tps: float, duration_ms: float) -> None:
        if start_tps <= 0 or end_tps <= 0:
            raise WorkloadError("ramp rates must be positive")
        if duration_ms <= 0:
            raise WorkloadError(f"ramp duration must be positive: {duration_ms}")
        self.start_tps = start_tps
        self.end_tps = end_tps
        self.duration_ms = duration_ms

    def rate_at(self, t_ms: float) -> float:
        if t_ms >= self.duration_ms:
            return self.end_tps
        frac = max(t_ms, 0.0) / self.duration_ms
        return self.start_tps + (self.end_tps - self.start_tps) * frac

    def peak_rate(self) -> float:
        return max(self.start_tps, self.end_tps)

    def describe(self) -> str:
        return (
            f"ramp({self.start_tps:g}->{self.end_tps:g} tps "
            f"over {self.duration_ms:g} ms)"
        )


class DiurnalShape(LoadShape):
    """Sinusoidal day/night curve: ``base`` at t=0, ``peak`` mid-period."""

    def __init__(self, base_tps: float, peak_tps: float, period_ms: float) -> None:
        if base_tps <= 0 or peak_tps < base_tps:
            raise WorkloadError(
                f"need 0 < base <= peak: base={base_tps}, peak={peak_tps}"
            )
        if period_ms <= 0:
            raise WorkloadError(f"period must be positive: {period_ms}")
        self.base_tps = base_tps
        self.peak_tps = peak_tps
        self.period_ms = period_ms

    def rate_at(self, t_ms: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t_ms / self.period_ms))
        return self.base_tps + (self.peak_tps - self.base_tps) * swing

    def peak_rate(self) -> float:
        return self.peak_tps

    def describe(self) -> str:
        return (
            f"diurnal({self.base_tps:g}..{self.peak_tps:g} tps, "
            f"period {self.period_ms:g} ms)"
        )


class FlashCrowdShape(LoadShape):
    """Baseline traffic with a sudden spike: linear rise at ``at_ms`` over
    ``rise_ms``, then exponential decay back with time constant ``fall_ms``."""

    def __init__(
        self,
        base_tps: float,
        peak_tps: float,
        at_ms: float,
        rise_ms: float = 1000.0,
        fall_ms: float = 5000.0,
    ) -> None:
        if base_tps <= 0 or peak_tps < base_tps:
            raise WorkloadError(
                f"need 0 < base <= peak: base={base_tps}, peak={peak_tps}"
            )
        if at_ms < 0 or rise_ms <= 0 or fall_ms <= 0:
            raise WorkloadError("flash crowd timing must be positive")
        self.base_tps = base_tps
        self.peak_tps = peak_tps
        self.at_ms = at_ms
        self.rise_ms = rise_ms
        self.fall_ms = fall_ms

    def rate_at(self, t_ms: float) -> float:
        if t_ms < self.at_ms:
            return self.base_tps
        surge = self.peak_tps - self.base_tps
        if t_ms < self.at_ms + self.rise_ms:
            return self.base_tps + surge * (t_ms - self.at_ms) / self.rise_ms
        decay = math.exp(-(t_ms - self.at_ms - self.rise_ms) / self.fall_ms)
        return self.base_tps + surge * decay

    def peak_rate(self) -> float:
        return self.peak_tps

    def describe(self) -> str:
        return (
            f"flash({self.base_tps:g}->{self.peak_tps:g} tps at "
            f"{self.at_ms:g} ms)"
        )


def next_arrival_ms(shape: LoadShape, rng: RandomStream, now_ms: float) -> float:
    """Next arrival time after ``now_ms`` via Lewis–Shedler thinning.

    Candidate gaps come from a homogeneous process at ``peak_rate()`` and
    are accepted with probability ``rate_at(t) / peak_rate()``; the
    accepted sequence is a non-homogeneous Poisson process with intensity
    ``rate_at``.  Consumes a deterministic-per-acceptance number of draws
    from ``rng``.
    """
    peak_per_ms = shape.peak_rate() / 1000.0
    if peak_per_ms <= 0:
        raise WorkloadError(f"load shape has no positive peak: {shape.describe()}")
    t = now_ms
    while True:
        t += rng.expovariate(peak_per_ms)
        if rng.random() * shape.peak_rate() <= shape.rate_at(t):
            return t


class HotKeyStormWorkload(WorkloadGenerator):
    """Zipf-popular transactions whose hot keys rotate every epoch.

    Within one epoch (``storm_every_ms``) popularity is Zipf(``skew``)
    over a permuted rank order; at each epoch boundary the rank-to-item
    mapping rotates by a multiplicative-hash offset, so the previously
    cold region of the database suddenly becomes the contention hot spot.
    The soak engine calls :meth:`generate_at` with the submission time;
    plain :meth:`generate` (the base interface) pins epoch 0.
    """

    # Knuth's multiplicative hash constant — spreads successive epochs
    # far apart in item space without consuming any RNG draws.
    _EPOCH_STRIDE = 2654435761

    def __init__(
        self,
        items: list[int],
        max_txn_size: int,
        skew: float = 0.8,
        storm_every_ms: float = 10_000.0,
        write_probability: float = 0.5,
    ) -> None:
        if max_txn_size < 1:
            raise WorkloadError(f"max_txn_size must be >= 1: {max_txn_size}")
        if storm_every_ms <= 0:
            raise WorkloadError(
                f"storm_every_ms must be positive: {storm_every_ms}"
            )
        self.items = list(items)
        self.zipf = ZipfGenerator(self.items, skew)
        self.max_txn_size = max_txn_size
        self.storm_every_ms = storm_every_ms
        self.write_probability = write_probability

    def epoch_of(self, t_ms: float) -> int:
        return max(0, int(t_ms // self.storm_every_ms))

    def _item_for(self, rank_index: int, epoch: int) -> int:
        offset = (epoch * self._EPOCH_STRIDE) % len(self.items)
        return self.items[(rank_index + offset) % len(self.items)]

    def generate_at(
        self, txn_seq: int, rng: RandomStream, t_ms: float
    ) -> list[Operation]:
        epoch = self.epoch_of(t_ms)
        count = rng.randint(1, self.max_txn_size)
        ops = []
        for _ in range(count):
            item = self._item_for(self.zipf.pick_index(rng), epoch)
            kind = (
                OpKind.WRITE if rng.random() < self.write_probability else OpKind.READ
            )
            ops.append(Operation(kind=kind, item_id=item))
        return ops

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        return self.generate_at(txn_seq, rng, 0.0)

    def describe(self) -> str:
        return (
            f"hotkey-storm(n={len(self.items)}, skew={self.zipf.skew}, "
            f"storm_every={self.storm_every_ms:g} ms)"
        )


class DebitCreditWorkload(WorkloadGenerator):
    """The DebitCredit (TP1) update mix over a generic item space.

    The canonical early-80s OLTP benchmark, contemporaneous with the
    paper: every transaction debits one account and posts the delta to
    the account's teller and branch.  Unlike :class:`repro.workload.et1
    .Et1Workload` — which draws its four regions independently — this
    preset keeps the TP1 *hierarchy*: the item space is partitioned by
    position (roughly 1 branch and 10 tellers per 100 accounts, floored
    at one each) and account→teller→branch assignment is a pure function
    of the account index.  A transaction is exactly one uniform account
    draw followed by three writes, and the branch rows form a tiny
    always-written hot set: the classic lock-convoy contention shape,
    which independent draws dilute.

    One RNG draw per transaction, independent of submission time, which
    keeps seed determinism trivial to audit.
    """

    def __init__(self, items: list[int]) -> None:
        if len(items) < 3:
            raise WorkloadError(
                f"debitcredit needs >= 3 items (branch/teller/account): "
                f"{len(items)}"
            )
        self.items = list(items)
        total = len(self.items)
        self.branches = max(1, total // 100)
        self.tellers = max(1, total // 10 - self.branches)
        self.accounts = total - self.branches - self.tellers

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        account_index = rng.randint(0, self.accounts - 1)
        teller_index = account_index % self.tellers
        branch_index = teller_index % self.branches
        account = self.items[self.branches + self.tellers + account_index]
        teller = self.items[self.branches + teller_index]
        branch = self.items[branch_index]
        # The three partitions occupy disjoint index ranges, so the items
        # are always distinct — three writes, never a double-lock.
        return [
            Operation(kind=OpKind.WRITE, item_id=account),
            Operation(kind=OpKind.WRITE, item_id=teller),
            Operation(kind=OpKind.WRITE, item_id=branch),
        ]

    def describe(self) -> str:
        return (
            f"debitcredit(branches={self.branches}, tellers={self.tellers}, "
            f"accounts={self.accounts})"
        )


class WisconsinMixWorkload(WisconsinWorkload):
    """Soak-selectable preset of the Wisconsin read/write mix.

    A thin configuration of :class:`repro.workload.wisconsin
    .WisconsinWorkload` in soak terms: scans are sized to the soak run's
    ``max_txn_size`` cap, updates touch a single tuple (the Wisconsin
    update queries are point updates), and ``read_fraction`` is the
    probability a transaction is a scan.  Scans create shared-lock
    pressure across contiguous item ranges while the scattered point
    updates provide the write conflicts — the complementary shape to
    DebitCredit's hot-spot writes.
    """

    def __init__(
        self,
        items: list[int],
        max_txn_size: int,
        read_fraction: float = 0.7,
    ) -> None:
        super().__init__(
            list(items),
            scan_length=min(max_txn_size, len(items)),
            update_count=1,
            scan_fraction=read_fraction,
        )
