"""Read/write-ratio workload (the §5 discussion).

The paper notes its 50/50 read/write mix sets fail-locks faster than a
realistic read-heavy mix would, but also clears them faster during
recovery; "if reads occur more commonly than writes then more copier
transactions would probably be requested".  This generator makes the ratio
a parameter so that trade-off can be measured (bench A3).
"""

from __future__ import annotations

from repro.sim.rng import RandomStream

from repro.errors import WorkloadError
from repro.txn.operations import Operation, random_transaction_ops
from repro.workload.base import WorkloadGenerator


class ReadWriteWorkload(WorkloadGenerator):
    """Uniform items with a configurable write probability."""

    def __init__(
        self, item_ids: list[int], max_txn_size: int, write_probability: float
    ) -> None:
        if not item_ids:
            raise WorkloadError("item set is empty")
        if max_txn_size < 1:
            raise WorkloadError(f"max_txn_size must be >= 1: {max_txn_size}")
        if not 0.0 <= write_probability <= 1.0:
            raise WorkloadError(
                f"write_probability must be in [0, 1]: {write_probability}"
            )
        self.item_ids = list(item_ids)
        self.max_txn_size = max_txn_size
        self.write_probability = write_probability

    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        return random_transaction_ops(
            rng,
            self.item_ids,
            self.max_txn_size,
            write_probability=self.write_probability,
        )

    def describe(self) -> str:
        return (
            f"readwrite(items={len(self.item_ids)}, max_size={self.max_txn_size}, "
            f"write_p={self.write_probability})"
        )
