"""Workload generator interface."""

from __future__ import annotations

import abc
from repro.sim.rng import RandomStream

from repro.txn.operations import Operation


class WorkloadGenerator(abc.ABC):
    """Produces the operation list for each successive transaction."""

    @abc.abstractmethod
    def generate(self, txn_seq: int, rng: RandomStream) -> list[Operation]:
        """Operations for the ``txn_seq``-th transaction (1-based)."""

    def describe(self) -> str:
        """Human-readable one-liner for experiment reports."""
        return type(self).__name__
