"""repro — replicated copy control during site failure and recovery.

A faithful, laptop-scale reproduction of Bhargava, Noll & Sabo, "An
Experimental Analysis of Replicated Copy Control During Site Failure and
Recovery" (Purdue CSD-TR-692 / ICDE 1988): the mini-RAID prototype, its
ROWAA copy-control protocol (session numbers, nominal session vectors,
fail-locks, control and copier transactions), and the paper's three
experiments, rebuilt on a deterministic discrete-event simulator.

Quickstart::

    from repro import Cluster, SystemConfig, Scenario, FailSite, RecoverSite
    from repro.workload import UniformWorkload

    config = SystemConfig(db_size=50, num_sites=2, max_txn_size=5, seed=7)
    cluster = Cluster(config)
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=120,
    )
    scenario.add_action(1, FailSite(0))
    scenario.add_action(51, RecoverSite(0))
    metrics = cluster.run(scenario)
    print(cluster.faillock_counts(), cluster.audit_consistency())
"""

from repro.system import (
    Cluster,
    SystemConfig,
    CostModel,
    FailureDetection,
    ClearNoticeMode,
    CopyControlStrategy,
    Scenario,
    FailSite,
    RecoverSite,
    PartitionNetwork,
    HealNetwork,
    FixedSite,
    RoundRobin,
    UniformRandom,
    Weighted,
)
from repro.core import (
    SiteState,
    NominalSessionVector,
    FailLockTable,
    RecoveryPolicy,
)
from repro.chaos import FaultPlan, InvariantAuditor, run_seed_sweep
from repro.metrics import MetricsCollector, availability_of
from repro.txn import Transaction, TxnStatus, AbortReason

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "SystemConfig",
    "CostModel",
    "FailureDetection",
    "ClearNoticeMode",
    "CopyControlStrategy",
    "Scenario",
    "FailSite",
    "RecoverSite",
    "PartitionNetwork",
    "HealNetwork",
    "FixedSite",
    "RoundRobin",
    "UniformRandom",
    "Weighted",
    "SiteState",
    "NominalSessionVector",
    "FailLockTable",
    "RecoveryPolicy",
    "FaultPlan",
    "InvariantAuditor",
    "run_seed_sweep",
    "MetricsCollector",
    "availability_of",
    "Transaction",
    "TxnStatus",
    "AbortReason",
    "__version__",
]
