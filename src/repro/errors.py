"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything from one root.  Protocol-level outcomes that are
*expected* under the paper's model (e.g. a transaction abort because no
up-to-date copy is reachable) are reported through return values and metrics,
not exceptions; exceptions signal misuse or broken invariants.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the repro exception hierarchy."""


class ConfigurationError(ReproError):
    """A :class:`~repro.system.config.SystemConfig` value is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class SchedulerError(SimulationError):
    """Events were scheduled in the past or the scheduler was misused."""


class NetworkError(ReproError):
    """Message-passing substrate misuse (unknown site, bad address...)."""


class UnknownSiteError(NetworkError):
    """A message was addressed to a site id that was never registered."""


class StorageError(ReproError):
    """Database substrate misuse."""


class UnknownItemError(StorageError):
    """A data item id is not present in a site's database."""


class NoCopyError(StorageError):
    """A site does not hold a replica of the requested item (partial
    replication only; under full replication this indicates a bug)."""


class ProtocolError(ReproError):
    """A replicated-copy-control invariant was violated."""


class SessionError(ProtocolError):
    """Session number / nominal session vector misuse."""


class FailLockError(ProtocolError):
    """Fail-lock table misuse (e.g. site index out of range)."""


class TransactionError(ReproError):
    """Transaction object misuse (e.g. committing twice)."""


class LockError(ReproError):
    """Lock manager misuse."""


class WorkloadError(ReproError):
    """Workload generator misconfiguration."""


class CheckError(ReproError):
    """A :mod:`repro.check` schedule or exploration request is invalid."""
