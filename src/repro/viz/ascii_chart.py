"""ASCII line charts for the fail-lock figures.

Figures 1-3 of the paper plot "number of fail-locks set" against
"number of transactions", one line per site.  :class:`AsciiChart` renders
the same picture in a terminal so experiment runs are self-contained.
"""

from __future__ import annotations

from repro.errors import ReproError

# One plotting glyph per series, cycled.
_GLYPHS = "o*+x#@%&"


class AsciiChart:
    """A multi-series scatter/line chart on a character grid."""

    def __init__(
        self,
        width: int = 72,
        height: int = 20,
        title: str = "",
        x_label: str = "Number of Transactions",
        y_label: str = "Fail-Locks",
    ) -> None:
        if width < 10 or height < 4:
            raise ReproError(f"chart too small: {width}x{height}")
        self.width = width
        self.height = height
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._series: list[tuple[str, list[tuple[float, float]]]] = []

    def add_series(self, name: str, points: list[tuple[float, float]]) -> None:
        """Add one named line (e.g. ``site 0``)."""
        self._series.append((name, list(points)))

    def render(self) -> str:
        """The chart as a multi-line string."""
        all_points = [p for _name, pts in self._series for p in pts]
        if not all_points:
            return f"{self.title}\n(no data)"
        x_min = min(p[0] for p in all_points)
        x_max = max(p[0] for p in all_points)
        y_min = 0.0
        y_max = max(max(p[1] for p in all_points), 1.0)
        x_span = max(x_max - x_min, 1e-9)
        y_span = max(y_max - y_min, 1e-9)

        grid = [[" "] * self.width for _ in range(self.height)]
        for index, (_name, points) in enumerate(self._series):
            glyph = _GLYPHS[index % len(_GLYPHS)]
            for x, y in points:
                col = round((x - x_min) / x_span * (self.width - 1))
                row = self.height - 1 - round((y - y_min) / y_span * (self.height - 1))
                grid[row][col] = glyph

        label_width = max(len(f"{y_max:.0f}"), len(f"{y_min:.0f}")) + 1
        lines = []
        if self.title:
            lines.append(self.title)
        legend = "   ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
            for i, (name, _pts) in enumerate(self._series)
        )
        if legend:
            lines.append(legend)
        for row_index, row in enumerate(grid):
            frac = 1.0 - row_index / (self.height - 1)
            y_value = y_min + frac * y_span
            show_label = row_index % max(1, self.height // 5) == 0 or row_index == self.height - 1
            label = f"{y_value:>{label_width}.0f}" if show_label else " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        axis = " " * label_width + " +" + "-" * self.width
        lines.append(axis)
        left = f"{x_min:.0f}"
        right = f"{x_max:.0f}"
        gap = self.width - len(left) - len(right)
        lines.append(" " * (label_width + 2) + left + " " * max(gap, 1) + right)
        lines.append(" " * (label_width + 2) + self.x_label)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_series(
    series: dict[str, list[tuple[float, float]]],
    title: str = "",
    width: int = 72,
    height: int = 20,
) -> str:
    """One-call helper: ``{name: [(x, y), ...]}`` to an ASCII chart."""
    chart = AsciiChart(width=width, height=height, title=title)
    for name in series:
        chart.add_series(name, series[name])
    return chart.render()
