"""Hand-rolled SVG line charts — viewable reproductions of Figures 1-3.

No plotting dependency: the chart is assembled as SVG elements directly,
which keeps the library self-contained and the output deterministic (same
data, byte-identical file).  The styling mimics the paper's figures: a
plain frame, tick labels, a dashed/solid line per site, and a legend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

# Dash patterns cycled per series, echoing the paper's line styles.
_DASHES = ["", "6,3", "2,3", "8,3,2,3", "4,2", "1,2"]
_STROKE = "#1a1a1a"


@dataclass(slots=True)
class _Series:
    name: str
    points: list[tuple[float, float]]
    dash: str


class SvgChart:
    """A multi-series line chart rendered to an SVG string."""

    def __init__(
        self,
        title: str = "",
        x_label: str = "Number of Transactions",
        y_label: str = "Fail-Locks Set",
        width: int = 640,
        height: int = 400,
    ) -> None:
        if width < 100 or height < 80:
            raise ReproError(f"chart too small: {width}x{height}")
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.margin = {"left": 56, "right": 16, "top": 40, "bottom": 48}
        self._series: list[_Series] = []

    def add_series(self, name: str, points: list[tuple[float, float]]) -> None:
        """Add one named line."""
        dash = _DASHES[len(self._series) % len(_DASHES)]
        self._series.append(_Series(name=name, points=list(points), dash=dash))

    # -- geometry ------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [p[0] for s in self._series for p in s.points]
        ys = [p[1] for s in self._series for p in s.points]
        if not xs:
            return 0.0, 1.0, 0.0, 1.0
        return min(xs), max(max(xs), min(xs) + 1e-9), 0.0, max(max(ys), 1.0)

    def _plot_rect(self) -> tuple[float, float, float, float]:
        x0 = self.margin["left"]
        y0 = self.margin["top"]
        return (
            x0,
            y0,
            self.width - x0 - self.margin["right"],
            self.height - y0 - self.margin["bottom"],
        )

    def _project(self, x: float, y: float) -> tuple[float, float]:
        x_min, x_max, y_min, y_max = self._bounds()
        px, py, pw, ph = self._plot_rect()
        fx = (x - x_min) / (x_max - x_min)
        fy = (y - y_min) / max(y_max - y_min, 1e-9)
        return px + fx * pw, py + (1.0 - fy) * ph

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def _ticks(low: float, high: float, count: int = 5) -> list[float]:
        if high <= low:
            return [low]
        step = (high - low) / count
        return [low + i * step for i in range(count + 1)]

    def render(self) -> str:
        """The complete SVG document as a string."""
        px, py, pw, ph = self._plot_rect()
        x_min, x_max, y_min, y_max = self._bounds()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<rect x="{px}" y="{py}" width="{pw}" height="{ph}" fill="none" '
            f'stroke="{_STROKE}" stroke-width="1"/>',
        ]
        if self.title:
            parts.append(
                f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
                f'font-family="serif" font-size="14">{_esc(self.title)}</text>'
            )
        # Axis ticks and labels.
        for tick in self._ticks(x_min, x_max):
            tx, _ = self._project(tick, y_min)
            parts.append(
                f'<line x1="{tx:.1f}" y1="{py + ph}" x2="{tx:.1f}" '
                f'y2="{py + ph + 4}" stroke="{_STROKE}"/>'
            )
            parts.append(
                f'<text x="{tx:.1f}" y="{py + ph + 18}" text-anchor="middle" '
                f'font-family="serif" font-size="11">{tick:.0f}</text>'
            )
        for tick in self._ticks(y_min, y_max):
            _, ty = self._project(x_min, tick)
            parts.append(
                f'<line x1="{px - 4}" y1="{ty:.1f}" x2="{px}" y2="{ty:.1f}" '
                f'stroke="{_STROKE}"/>'
            )
            parts.append(
                f'<text x="{px - 8}" y="{ty + 4:.1f}" text-anchor="end" '
                f'font-family="serif" font-size="11">{tick:.0f}</text>'
            )
        parts.append(
            f'<text x="{px + pw / 2}" y="{self.height - 8}" '
            f'text-anchor="middle" font-family="serif" font-size="12">'
            f"{_esc(self.x_label)}</text>"
        )
        parts.append(
            f'<text x="14" y="{py + ph / 2}" text-anchor="middle" '
            f'font-family="serif" font-size="12" '
            f'transform="rotate(-90 14 {py + ph / 2})">{_esc(self.y_label)}</text>'
        )
        # Series polylines.
        for series in self._series:
            if not series.points:
                continue
            coords = " ".join(
                f"{x:.1f},{y:.1f}"
                for x, y in (self._project(*p) for p in series.points)
            )
            dash = f' stroke-dasharray="{series.dash}"' if series.dash else ""
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{_STROKE}" '
                f'stroke-width="1.4"{dash}/>'
            )
        # Legend (top-right inside the frame).
        for index, series in enumerate(self._series):
            ly = py + 14 + index * 16
            lx = px + pw - 130
            dash = f' stroke-dasharray="{series.dash}"' if series.dash else ""
            parts.append(
                f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 28}" y2="{ly - 4}" '
                f'stroke="{_STROKE}" stroke-width="1.4"{dash}/>'
            )
            parts.append(
                f'<text x="{lx + 34}" y="{ly}" font-family="serif" '
                f'font-size="11">{_esc(series.name)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        """Write the SVG to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.render(), encoding="utf-8")
        return path


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def figure_svg(
    series: dict[str, list[tuple[float, float]]],
    title: str = "",
    path: str | Path | None = None,
) -> str:
    """One-call helper: render (and optionally save) a figure."""
    chart = SvgChart(title=title)
    for name in series:
        chart.add_series(name, series[name])
    svg = chart.render()
    if path is not None:
        Path(path).write_text(svg, encoding="utf-8")
    return svg
