"""Rendering of the paper's figures: ASCII for terminals, SVG for files."""

from repro.viz.ascii_chart import AsciiChart, render_series
from repro.viz.svg_chart import SvgChart, figure_svg

__all__ = ["AsciiChart", "render_series", "SvgChart", "figure_svg"]
