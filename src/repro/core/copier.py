"""Copier transactions (paper §1.1, §2.2.3).

A recovering site refreshes an out-of-date copy with a *copier
transaction*: read the good copy from an operational site, write it to the
local copy, clear the local fail-lock bit, and tell the other operational
sites — via a *special transaction* — which fail-lock bits were cleared.

The paper issues copiers *on demand*: when a database transaction at a
coordinating site contains a read of a fail-locked copy, the copier runs
before phase one of the commit protocol, and the whole database transaction
aborts if the copier cannot complete (no operational site has a good copy).
"""

from __future__ import annotations

from repro.core.faillocks import FailLockTable
from repro.core.rowaa import RowaaPlanner
from repro.storage.database import SiteDatabase


def choose_copier_source(
    planner: RowaaPlanner, item_ids: list[int], spread: bool = False
) -> dict[int, int]:
    """Pick an operational up-to-date source site for each item.

    Returns ``{item_id: site_id}``; an item maps to -1 when no operational
    site holds a current copy (the abort case).  Items are grouped so one
    request per source site suffices — mini-RAID batched multiple copier
    targets into one exchange where possible.

    With ``spread`` (the ``spread_copier_sources`` config flag), the donor
    is picked round-robin among *all* up-to-date sources by item id
    (``donors[item_id % len(donors)]``) instead of always the lowest —
    stateless, so replay determinism needs no extra counter in the site
    signature.  Default off: committed seeds elect the lowest donor.
    """
    if not spread:
        return {item: planner.up_to_date_source(item) for item in item_ids}
    chosen: dict[int, int] = {}
    for item in item_ids:
        donors = planner.up_to_date_sources(item)
        chosen[item] = donors[item % len(donors)] if donors else -1
    return chosen


def build_copy_request(item_ids: list[int]) -> dict:
    """COPY_REQ payload."""
    return {"items": sorted(item_ids)}


def build_copy_response(db: SiteDatabase, item_ids: list[int]) -> dict:
    """COPY_RESP payload: the responder's committed copies."""
    return {"copies": [db.get(item).snapshot() for item in sorted(item_ids)]}


def apply_copy_response(
    db: SiteDatabase,
    faillocks: FailLockTable,
    owner: int,
    copies: list[tuple[int, int, int]],
    time: float,
) -> list[int]:
    """Install fetched copies and clear the owner's fail-locks.

    Returns the item ids actually refreshed (a copy already newer locally is
    left alone but its fail-lock is still cleared — the copy is current).
    """
    refreshed = []
    for item_id, value, version in copies:
        if db.install_copy(item_id, value, version, time):
            refreshed.append(item_id)
        faillocks.clear_lock(item_id, owner)
    return refreshed


def build_clear_notice(owner: int, item_ids: list[int]) -> dict:
    """CLEAR_FAILLOCKS payload for the special transaction that tells other
    sites which of ``owner``'s fail-locks the copier cleared."""
    return {"site": owner, "items": sorted(item_ids)}


def apply_clear_notice(faillocks: FailLockTable, payload: dict) -> int:
    """A peer clears the announced fail-lock bits; returns bits cleared."""
    site = payload["site"]
    cleared = 0
    for item in payload["items"]:
        if faillocks.is_locked(item, site):
            faillocks.clear_lock(item, site)
            cleared += 1
    return cleared
