"""Read-one / write-all-available planning (paper §1.1).

ROWAA allows transaction processing as long as a single copy is available:
reads are served from one up-to-date copy (the coordinator's own, in
mini-RAID's fully replicated setting), and writes go to every *operational*
copy — a site known to be down is simply skipped, which "saves the time
that would be wasted in waiting for responses from an unavailable site".

The planner is pure: it inspects the coordinator's nominal session vector,
fail-lock table, and the replication catalog, and returns decisions; the
coordinator state machine executes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.faillocks import FailLockTable
from repro.core.sessions import NominalSessionVector
from repro.storage.catalog import ReplicationCatalog


class ReadSource(enum.Enum):
    """Where a read of an item can be satisfied."""

    LOCAL = "local"                  # own copy, up to date
    REMOTE = "remote"                # no local copy; read a peer's
    COPIER_NEEDED = "copier_needed"  # own copy exists but is fail-locked
    UNAVAILABLE = "unavailable"      # no reachable up-to-date copy anywhere


@dataclass(slots=True)
class ReadPlan:
    """The planner's decision for one read operation."""

    item_id: int
    source: ReadSource
    site_id: int = -1  # peer to read from / copier source, when applicable


class RowaaPlanner:
    """Plans reads and write sets for one coordinating site."""

    def __init__(
        self,
        owner: int,
        vector: NominalSessionVector,
        faillocks: FailLockTable,
        catalog: ReplicationCatalog,
    ) -> None:
        self.owner = owner
        self.vector = vector
        self.faillocks = faillocks
        self.catalog = catalog

    def up_to_date_source(self, item_id: int, exclude_owner: bool = True) -> int:
        """An operational site holding a current copy of ``item_id``.

        Returns the lowest such site id, or -1 if none exists — the
        situation that forces a transaction abort in the paper's scenario 1.
        """
        current = set(self.faillocks.up_to_date_sites(item_id))
        for site in self.vector.operational_sites():
            if exclude_owner and site == self.owner:
                continue
            if site in current and self.catalog.holds(site, item_id):
                return site
        return -1

    def up_to_date_sources(self, item_id: int, exclude_owner: bool = True) -> list[int]:
        """All operational sites holding a current copy of ``item_id``.

        Sorted ascending (operational_sites() order); empty when no donor
        exists.  The multi-donor generalisation of
        :meth:`up_to_date_source`, used by donor spreading and the
        parallel recovery partition planner.
        """
        current = set(self.faillocks.up_to_date_sites(item_id))
        sources = []
        for site in self.vector.operational_sites():
            if exclude_owner and site == self.owner:
                continue
            if site in current and self.catalog.holds(site, item_id):
                sources.append(site)
        return sources

    def plan_read(self, item_id: int) -> ReadPlan:
        """Decide how a read of ``item_id`` at the owner is satisfied."""
        if self.catalog.holds(self.owner, item_id):
            if not self.faillocks.is_locked(item_id, self.owner):
                return ReadPlan(item_id=item_id, source=ReadSource.LOCAL)
            source = self.up_to_date_source(item_id)
            if source < 0:
                return ReadPlan(item_id=item_id, source=ReadSource.UNAVAILABLE)
            return ReadPlan(item_id=item_id, source=ReadSource.COPIER_NEEDED, site_id=source)
        source = self.up_to_date_source(item_id)
        if source < 0:
            return ReadPlan(item_id=item_id, source=ReadSource.UNAVAILABLE)
        return ReadPlan(item_id=item_id, source=ReadSource.REMOTE, site_id=source)

    def write_sites(self, item_id: int) -> list[int]:
        """All operational sites holding a copy of ``item_id`` (sorted).

        This is ROWAA's "write all available": the coordinator updates every
        copy it believes reachable, and fail-locks cover the rest.
        """
        holders = self.catalog.holders_view(item_id)
        return [s for s in self.vector.operational_sites() if s in holders]

    def participants_for(self, written_items: list[int]) -> list[int]:
        """Operational peers that must receive phase-1 copy updates."""
        sites: set[int] = set()
        for item in written_items:
            sites.update(self.write_sites(item))
        sites.discard(self.owner)
        return sorted(sites)
