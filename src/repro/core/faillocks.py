"""Fail-locks: the out-of-date marker for replicated copies (paper §1.1).

Each data item carries one fail-lock bit per site.  Bit ``k`` set on item
``x`` means: *site k's copy of x missed an update while k was unavailable*.
Operational sites set the bit on behalf of the failed site during commit;
the bit is cleared when the copy is refreshed — by a transaction write
reaching the site, or by a copier transaction.

The paper implements the table as a bit map per data item sized by the
number of sites, "allowing the fail-lock operations to be performed very
quickly" — we keep exactly that representation (a Python int used as a bit
mask per item).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import FailLockError
from repro.core.sessions import NominalSessionVector, SiteState


class FailLockTable:
    """Fail-lock bit maps for every data item, as kept by one site."""

    __slots__ = ("site_ids", "_bit_of", "_masks")

    def __init__(self, site_ids: Iterable[int], item_ids: Iterable[int]) -> None:
        self.site_ids = sorted(site_ids)
        self._bit_of = {site: 1 << index for index, site in enumerate(self.site_ids)}
        self._masks: dict[int, int] = {item: 0 for item in item_ids}

    # -- bit bookkeeping -----------------------------------------------------

    def _bit(self, site_id: int) -> int:
        try:
            return self._bit_of[site_id]
        except KeyError:
            raise FailLockError(f"unknown site {site_id}") from None

    def _mask(self, item_id: int) -> int:
        try:
            return self._masks[item_id]
        except KeyError:
            raise FailLockError(f"unknown item {item_id}") from None

    @property
    def item_ids(self) -> list[int]:
        """All item ids tracked, sorted."""
        return sorted(self._masks)

    def add_item(self, item_id: int) -> None:
        """Track a new item (type-3 control transaction support)."""
        if item_id in self._masks:
            raise FailLockError(f"item {item_id} already tracked")
        self._masks[item_id] = 0

    # -- single-bit operations -------------------------------------------------

    def set_lock(self, item_id: int, site_id: int) -> None:
        """Mark ``site_id``'s copy of ``item_id`` out-of-date."""
        self._masks[item_id] = self._mask(item_id) | self._bit(site_id)

    def clear_lock(self, item_id: int, site_id: int) -> None:
        """Mark ``site_id``'s copy of ``item_id`` refreshed."""
        self._masks[item_id] = self._mask(item_id) & ~self._bit(site_id)

    def is_locked(self, item_id: int, site_id: int) -> bool:
        """Whether ``site_id``'s copy of ``item_id`` is out-of-date."""
        try:
            return bool(self._masks[item_id] & self._bit_of[site_id])
        except KeyError:
            self._mask(item_id)
            self._bit(site_id)
            raise  # pragma: no cover - one of the two raised above

    def mask(self, item_id: int) -> int:
        """The raw bit mask for ``item_id``."""
        return self._mask(item_id)

    def signature(self) -> tuple:
        """Hashable snapshot of all *set* fail-locks (``repro.check``).

        Items with a zero mask are omitted so tables that track different
        (but all-clear) item sets compare equal.
        """
        return tuple(
            (item, mask) for item, mask in sorted(self._masks.items()) if mask
        )

    # -- commit-time maintenance (paper §1.2) -----------------------------------

    def update_on_commit(
        self, written_items: Iterable[int], vector: NominalSessionVector
    ) -> int:
        """Fail-lock maintenance for one committed transaction.

        For every written item and every site: a DOWN site missed the
        update, so its bit is *set*; an UP site received it, so its bit is
        *cleared* ("this resulted in some fail-lock bits being re-cleared
        for an operational site", §1.2 — the unconditional form the paper
        found more efficient than branching on site state).  RECOVERING and
        TERMINATING sites are treated as having missed the update.

        Returns the number of bit operations performed (for cost models).
        """
        set_mask = 0
        clear_mask = 0
        operations = 0
        for site in self.site_ids:
            operations += 1
            if vector.state_of(site) is SiteState.UP:
                clear_mask |= self._bit_of[site]
            else:
                set_mask |= self._bit_of[site]
        count = 0
        for item in written_items:
            self._masks[item] = (self._mask(item) | set_mask) & ~clear_mask
            count += operations
        return count

    def update_with_recipients(
        self, recipients_of: dict[int, Iterable[int]]
    ) -> int:
        """Commit maintenance from the *actual* update recipients.

        ``recipients_of[item]`` is the set of sites that received this
        commit's update for ``item`` (the coordinator's write-all-available
        set).  A recipient's copy is now current — clear its bit; every
        other site missed the update — set its bit.

        This is the exact form of the paper's §1.2 rule: examining the
        nominal session vector is equivalent *when the vector is accurate*,
        but a participant whose vector is stale (timeout detection, message
        races) would wrongly re-clear a down site's bit.  Deriving the
        clears from the recipient set closes that hole.

        Returns the number of bit operations performed.
        """
        count = 0
        sites = len(self.site_ids)
        all_mask = (1 << sites) - 1
        masks = self._masks
        bit_of = self._bit_of
        for item, recipients in recipients_of.items():
            if item not in masks:
                self._mask(item)  # raises with the right message
            recipient_mask = 0
            for site in recipients:
                recipient_mask |= bit_of[site] if site in bit_of else self._bit(site)
            # The written value is now THE copy: exactly the non-recipients
            # are stale, whatever the previous mask said.
            masks[item] = all_mask & ~recipient_mask
            count += sites
        return count

    # -- recovery-side queries ----------------------------------------------------

    def locked_items_for(self, site_id: int) -> list[int]:
        """Items whose copy on ``site_id`` is out-of-date, sorted."""
        bit = self._bit(site_id)
        return sorted(item for item, mask in self._masks.items() if mask & bit)

    def count_for(self, site_id: int) -> int:
        """Number of out-of-date copies on ``site_id``."""
        bit = self._bit(site_id)
        return sum(1 for mask in self._masks.values() if mask & bit)

    def total_locks(self) -> int:
        """Total set bits across all items (system-wide inconsistency)."""
        return sum(mask.bit_count() for mask in self._masks.values())

    def up_to_date_sites(self, item_id: int) -> list[int]:
        """Sites whose copy of ``item_id`` is current, sorted."""
        mask = self._mask(item_id)
        return [s for s in self.site_ids if not mask & self._bit_of[s]]

    # -- replication of the table itself ---------------------------------------

    def snapshot(self) -> dict[int, int]:
        """``{item_id: mask}`` — what a type-1 reply ships."""
        return dict(self._masks)

    def install(self, masks: dict[int, int]) -> None:
        """Adopt a peer's table wholesale (type-1 install).

        The recovering site has been away; the peer's table is strictly
        better informed, so this replaces rather than merges.
        """
        for item in masks:
            if item not in self._masks:
                raise FailLockError(f"unknown item {item} in installed table")
        for item, mask in masks.items():
            self._masks[item] = mask

    def merge(self, masks: dict[int, int]) -> None:
        """OR a peer's table into this one (conservative union)."""
        for item, mask in masks.items():
            self._masks[item] = self._mask(item) | mask

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailLockTable):
            return NotImplemented
        return self.site_ids == other.site_ids and self._masks == other._masks

    def __repr__(self) -> str:
        return (
            f"FailLockTable(sites={len(self.site_ids)}, items={len(self._masks)}, "
            f"locks={self.total_locks()})"
        )
