"""Control transactions (paper §1.1).

Control transactions signal nominal-session-vector changes:

* **Type 1** — issued by a recovering site.  It announces the site's new
  session number to every operational site (so they add it back to their
  vectors) and obtains, from one operational site, a copy of the session
  vector and fail-locks to install locally.
* **Type 2** — issued by a site that has determined one or more previously
  operational sites have failed; the survivors mark them DOWN.
* **Type 3** — proposed in §3.2 for partially replicated databases: the
  holder of the last up-to-date copy of an item creates a backup copy on a
  site that has none.

This module holds the *pure* halves — payload encoding/decoding and state
transitions — so they can be unit-tested without a network; the site state
machines drive the message exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.faillocks import FailLockTable
from repro.core.sessions import NominalSessionVector, SessionRecord, SiteState


def encode_vector(records: list[SessionRecord]) -> list[tuple[int, int, str]]:
    """Flatten session records for a message payload."""
    return [(r.site_id, r.session, r.state.value) for r in records]


def decode_vector(encoded: list[tuple[int, int, str]]) -> list[SessionRecord]:
    """Rebuild session records from a message payload."""
    return [
        SessionRecord(site_id=site, session=session, state=SiteState(state))
        for site, session, state in encoded
    ]


@dataclass(slots=True)
class RecoveryAnnouncement:
    """Type-1 announcement: ``site_id`` is preparing to become operational."""

    site_id: int
    new_session: int

    def to_payload(self) -> dict:
        return {"site": self.site_id, "session": self.new_session}

    @classmethod
    def from_payload(cls, payload: dict) -> "RecoveryAnnouncement":
        return cls(site_id=payload["site"], new_session=payload["session"])

    def apply_at_operational_site(self, vector: NominalSessionVector) -> None:
        """An operational site updates its NSV with the new session."""
        vector.mark_recovering(self.site_id, self.new_session)


@dataclass(slots=True)
class RecoveryState:
    """Type-1 reply: the session vector and fail-locks from a peer."""

    responder: int
    vector_records: list[SessionRecord]
    faillock_masks: dict[int, int]

    def to_payload(self) -> dict:
        return {
            "responder": self.responder,
            "vector": encode_vector(self.vector_records),
            "faillocks": dict(self.faillock_masks),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RecoveryState":
        return cls(
            responder=payload["responder"],
            vector_records=decode_vector(payload["vector"]),
            faillock_masks=dict(payload["faillocks"]),
        )

    @classmethod
    def capture(
        cls, responder: int, vector: NominalSessionVector, faillocks: FailLockTable
    ) -> "RecoveryState":
        """Snapshot a peer's state for shipping to the recovering site."""
        return cls(
            responder=responder,
            vector_records=vector.snapshot(),
            faillock_masks=faillocks.snapshot(),
        )

    def install_at_recovering_site(
        self, vector: NominalSessionVector, faillocks: FailLockTable
    ) -> None:
        """The recovering site adopts the shipped vector and fail-locks,
        then marks itself UP — it is now operational, with its stale items
        identified by its own fail-lock bits."""
        vector.install(self.vector_records)
        faillocks.install(self.faillock_masks)
        vector.mark_up(vector.owner)

    def size(self) -> int:
        """Item count — drives the transfer-cost model (§2.2.2 notes the
        type-1 reply cost grows with database size)."""
        return len(self.faillock_masks)


@dataclass(slots=True)
class FailureAnnouncement:
    """Type-2 announcement: ``failed_sites`` have been determined down.

    ``stale_items`` carries corrective fail-lock information for the
    Appendix A commit-phase case: a participant that died between acking
    phase one and receiving the commit never applied those items, so the
    survivors must (re)set its fail-lock bits even though they may have
    just cleared them while committing.
    """

    announcer: int
    failed_sites: list[int]
    stale_items: list[int] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "announcer": self.announcer,
            "failed": list(self.failed_sites),
            "stale_items": list(self.stale_items),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FailureAnnouncement":
        return cls(
            announcer=payload["announcer"],
            failed_sites=list(payload["failed"]),
            stale_items=list(payload.get("stale_items", [])),
        )

    def apply(self, vector: NominalSessionVector) -> list[int]:
        """Mark the announced sites DOWN; returns those newly marked."""
        changed = []
        for site in self.failed_sites:
            if vector.state_of(site) is not SiteState.DOWN:
                vector.mark_down(site)
                changed.append(site)
        return changed
