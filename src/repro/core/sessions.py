"""Session numbers and nominal session vectors (paper §1.1, §1.2).

A *session number* identifies a period in which a site is up; it grows by
one each time the site recovers.  A *nominal session vector* (NSV) is a
site's view of the whole system: its own session number plus the perceived
session numbers and states of every other site.  A site consults its NSV to
decide which sites may participate in a ROWAA transaction, and session
numbers carried on protocol messages expose status changes that happen
while a transaction is in flight.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SessionError


class SiteState(enum.Enum):
    """The four site states mini-RAID tracked (paper §1.2)."""

    UP = "up"
    DOWN = "down"
    RECOVERING = "waiting_to_recover"
    TERMINATING = "terminating"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class SessionRecord:
    """One NSV entry: a site's perceived session number and state."""

    site_id: int
    session: int = 1
    state: SiteState = SiteState.UP

    def copy(self) -> "SessionRecord":
        return SessionRecord(site_id=self.site_id, session=self.session, state=self.state)


class NominalSessionVector:
    """One site's array of :class:`SessionRecord`, one per system site."""

    __slots__ = ("owner", "_records", "_site_ids")

    def __init__(self, owner: int, site_ids: list[int]) -> None:
        if owner not in site_ids:
            raise SessionError(f"owner {owner} not among sites {site_ids}")
        self.owner = owner
        self._records: dict[int, SessionRecord] = {
            site: SessionRecord(site_id=site) for site in sorted(site_ids)
        }
        # The site set is fixed for the life of the vector; keep the sorted
        # ids (and the records in that order) precomputed.
        self._site_ids: list[int] = list(self._records)

    # -- basic access --------------------------------------------------------

    @property
    def site_ids(self) -> list[int]:
        """All system site ids, sorted."""
        return list(self._site_ids)

    @property
    def num_sites(self) -> int:
        """Number of system sites (no copy, unlike :attr:`site_ids`)."""
        return len(self._site_ids)

    def record(self, site_id: int) -> SessionRecord:
        """The entry for ``site_id``."""
        try:
            return self._records[site_id]
        except KeyError:
            raise SessionError(f"site {site_id} not in session vector") from None

    def session_of(self, site_id: int) -> int:
        """Perceived session number of ``site_id``."""
        return self.record(site_id).session

    def state_of(self, site_id: int) -> SiteState:
        """Perceived state of ``site_id``."""
        return self.record(site_id).state

    @property
    def my_session(self) -> int:
        """The owner's own session number."""
        return self.record(self.owner).session

    # -- queries the protocol needs -------------------------------------------

    def is_operational(self, site_id: int) -> bool:
        """Whether the owner believes ``site_id`` can process transactions.

        Only UP sites participate in ROWAA transactions (paper §1.1); a
        RECOVERING site is still installing state and a DOWN or TERMINATING
        site is unreachable.
        """
        try:
            return self._records[site_id].state is SiteState.UP
        except KeyError:
            raise SessionError(f"site {site_id} not in session vector") from None

    def operational_sites(self) -> list[int]:
        """All sites the owner believes are up (including itself if up)."""
        # Records were built in sorted order, so iteration is sorted.
        up = SiteState.UP
        return [s for s, r in self._records.items() if r.state is up]

    def operational_peers(self) -> list[int]:
        """Operational sites other than the owner."""
        up = SiteState.UP
        owner = self.owner
        return [
            s for s, r in self._records.items() if r.state is up and s != owner
        ]

    def down_sites(self) -> list[int]:
        """Sites perceived DOWN."""
        down = SiteState.DOWN
        return [s for s, r in self._records.items() if r.state is down]

    # -- transitions -----------------------------------------------------------

    def mark_down(self, site_id: int) -> None:
        """Record that ``site_id`` has failed (type-2 control transaction)."""
        self.record(site_id).state = SiteState.DOWN

    def mark_recovering(self, site_id: int, session: int) -> None:
        """Record that ``site_id`` announced recovery with a new session."""
        record = self.record(site_id)
        if session < record.session:
            raise SessionError(
                f"site {site_id} announced stale session {session} "
                f"(perceived {record.session})"
            )
        record.session = session
        record.state = SiteState.RECOVERING

    def mark_up(self, site_id: int, session: int | None = None) -> None:
        """Record that ``site_id`` is operational (after type-1 completes)."""
        record = self.record(site_id)
        if session is not None:
            if session < record.session:
                raise SessionError(
                    f"site {site_id} reported stale session {session} "
                    f"(perceived {record.session})"
                )
            record.session = session
        record.state = SiteState.UP

    def mark_terminating(self, site_id: int) -> None:
        """Record an orderly shutdown in progress."""
        self.record(site_id).state = SiteState.TERMINATING

    def begin_new_session(self) -> int:
        """Owner starts a new session (on recovery); returns its number."""
        record = self.record(self.owner)
        record.session += 1
        record.state = SiteState.RECOVERING
        return record.session

    def install(self, records: list[SessionRecord]) -> None:
        """Adopt a peer's vector (type-1 reply), keeping the owner's own
        entry — the recovering site knows its own state best."""
        own = self.record(self.owner)
        for incoming in records:
            if incoming.site_id == self.owner:
                continue
            if incoming.site_id not in self._records:
                raise SessionError(f"unknown site {incoming.site_id} in vector")
            self._records[incoming.site_id] = incoming.copy()
        self._records[self.owner] = own

    def snapshot(self) -> list[SessionRecord]:
        """A deep copy of all records (what a type-1 reply ships)."""
        return [self._records[s].copy() for s in self.site_ids]

    def signature(self) -> tuple:
        """Hashable snapshot of the whole vector (``repro.check``)."""
        return tuple(
            (r.site_id, r.session, r.state.value)
            for r in (self._records[s] for s in self._site_ids)
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r.site_id}:{r.session}{'+' if r.state is SiteState.UP else '-'}"
            for r in (self._records[s] for s in self.site_ids)
        )
        return f"NSV(owner={self.owner}, [{parts}])"
