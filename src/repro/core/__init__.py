"""Replicated copy control — the paper's contribution.

Implements the read-one/write-all-available (ROWAA) copy control protocol
of Bhargava, Noll & Sabo: session numbers and nominal session vectors to
track which sites are operational, fail-locks to mark out-of-date copies on
failed sites, control transactions (types 1, 2, and the proposed type 3) to
propagate status changes, and copier transactions to refresh stale copies
during recovery.
"""

from repro.core.sessions import SiteState, SessionRecord, NominalSessionVector
from repro.core.faillocks import FailLockTable
from repro.core.rowaa import ReadPlan, ReadSource, RowaaPlanner
from repro.core.control import (
    RecoveryAnnouncement,
    RecoveryState,
    FailureAnnouncement,
    encode_vector,
    decode_vector,
)
from repro.core.copier import choose_copier_source, build_copy_request, apply_copy_response
from repro.core.recovery import RecoveryManager, RecoveryPolicy

__all__ = [
    "SiteState",
    "SessionRecord",
    "NominalSessionVector",
    "FailLockTable",
    "ReadPlan",
    "ReadSource",
    "RowaaPlanner",
    "RecoveryAnnouncement",
    "RecoveryState",
    "FailureAnnouncement",
    "encode_vector",
    "decode_vector",
    "choose_copier_source",
    "build_copy_request",
    "apply_copy_response",
    "RecoveryManager",
    "RecoveryPolicy",
]
