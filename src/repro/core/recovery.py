"""Recovery management, including the paper's proposed two-step recovery.

After a type-1 control transaction completes, a site is operational but
some of its copies are fail-locked.  The *recovery period* lasts until the
last of its fail-locks clears.  The paper observes (Experiment 2) that the
clearing rate is proportional to the fraction of items still locked — the
first 10 locks cleared in 6 transactions, the last 10 took 106 — and
proposes a two-step scheme (§3.2): refresh on demand while many items are
locked, then switch to issuing *batch* copier transactions once the locked
fraction drops below a threshold, hastening the tail.

:class:`RecoveryManager` tracks one site's recovery period and implements
both the paper's measured on-demand policy and the proposed two-step
policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.faillocks import FailLockTable


class RecoveryPolicy(enum.Enum):
    """How a recovering site refreshes its out-of-date copies."""

    ON_DEMAND = "on_demand"    # the paper's measured implementation
    TWO_STEP = "two_step"      # §3.2 proposal: batch copiers below threshold
    PARALLEL = "parallel"      # repro.recovery: partitioned multi-donor fan-out


@dataclass(slots=True)
class RecoveryStats:
    """Bookkeeping for one recovery period."""

    started_at: float = 0.0
    finished_at: float = -1.0
    initial_stale: int = 0
    copier_requests: int = 0
    batch_copier_requests: int = 0
    refreshed_by_write: int = 0
    refreshed_by_copier: int = 0

    @property
    def complete(self) -> bool:
        return self.finished_at >= 0.0


class RecoveryManager:
    """Tracks the recovery period of one site."""

    def __init__(
        self,
        owner: int,
        faillocks: FailLockTable,
        policy: RecoveryPolicy = RecoveryPolicy.ON_DEMAND,
        batch_threshold: float = 0.2,
        batch_size: int = 5,
    ) -> None:
        if not 0.0 <= batch_threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1]: {batch_threshold}")
        if batch_size < 1:
            raise ValueError(f"batch size must be positive: {batch_size}")
        self.owner = owner
        self.faillocks = faillocks
        self.policy = policy
        self.batch_threshold = batch_threshold
        self.batch_size = batch_size
        self.in_recovery = False
        self.stats = RecoveryStats()
        # Fired when a recovery period ends: ``(stats, interrupted)``.
        # ``interrupted`` is True when a new period began (the site failed
        # again and re-recovered) before the previous one completed — the
        # flapping-site case.  None by default; metrics wiring sets it.
        self.on_period_end: Optional[Callable[[RecoveryStats, bool], None]] = None
        self._period_open = False

    # -- lifecycle ---------------------------------------------------------

    def begin(self, time: float) -> None:
        """Called when the type-1 control transaction completes."""
        if self._period_open and self.on_period_end is not None:
            # The previous period never completed: the site flapped.
            self.on_period_end(self.stats, True)
        self.in_recovery = True
        self._period_open = True
        self.stats = RecoveryStats(
            started_at=time,
            initial_stale=self.faillocks.count_for(self.owner),
        )
        # A site that comes back with nothing stale is instantly recovered.
        self._check_complete(time)

    @property
    def stale_count(self) -> int:
        """Out-of-date copies remaining on the owner."""
        return self.faillocks.count_for(self.owner)

    def stale_fraction(self) -> float:
        """Fraction of all items still fail-locked for the owner."""
        total = len(self.faillocks.item_ids)
        if total == 0:
            return 0.0
        return self.stale_count / total

    def stale_items(self) -> list[int]:
        """The owner's out-of-date items, sorted."""
        return self.faillocks.locked_items_for(self.owner)

    # -- progress notifications ------------------------------------------------

    def note_refreshed_by_write(self, count: int, time: float) -> None:
        """``count`` stale copies were refreshed by transaction writes."""
        self.stats.refreshed_by_write += count
        self._check_complete(time)

    def note_refreshed_by_copier(self, count: int, time: float) -> None:
        """``count`` stale copies were refreshed by copier transactions."""
        self.stats.refreshed_by_copier += count
        self._check_complete(time)

    def note_copier_request(self, batch: bool = False) -> None:
        """A copier exchange was issued (on demand or batch)."""
        self.stats.copier_requests += 1
        if batch:
            self.stats.batch_copier_requests += 1

    def _check_complete(self, time: float) -> None:
        if self.in_recovery and self.stale_count == 0:
            self.in_recovery = False
            self.stats.finished_at = time
            self._period_open = False
            if self.on_period_end is not None:
                self.on_period_end(self.stats, False)

    # -- the two-step policy (§3.2) --------------------------------------------

    def wants_batch_copier(self) -> bool:
        """Whether proactive batch copiers should be issued now.

        TWO_STEP waits until the stale fraction drops below the threshold
        (§3.2's step two); PARALLEL wants them for the whole recovery
        period — the parallel scheduler partitions the stale set across
        donors from the first instant.
        """
        if not self.in_recovery or self.stale_count == 0:
            return False
        if self.policy is RecoveryPolicy.PARALLEL:
            return True
        if self.policy is not RecoveryPolicy.TWO_STEP:
            return False
        return self.stale_fraction() <= self.batch_threshold

    def next_batch(self) -> list[int]:
        """The next ``batch_size`` stale items to refresh proactively."""
        return self.stale_items()[: self.batch_size]

    def __repr__(self) -> str:
        phase = "recovering" if self.in_recovery else "steady"
        return (
            f"RecoveryManager(site={self.owner}, {phase}, "
            f"stale={self.stale_count}, policy={self.policy.value})"
        )
