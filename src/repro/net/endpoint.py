"""Endpoint base class and the handler execution model.

A site in mini-RAID is a process that sleeps until a message arrives, does
some work, sends some messages, and sleeps again.  We reproduce that shape:
an :class:`Endpoint` implements ``handle(ctx, msg)`` as a *synchronous*
function that mutates its own state, charges simulated CPU milliseconds via
``ctx.charge``, and queues outgoing messages via ``ctx.send``.  The network
then runs the accumulated cost on the shared CPU and releases the outgoing
messages when the work completes — so all timing falls out of the cost
model, while protocol code stays straight-line and testable.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.net.message import Message, MessageType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.network import Network


class HandlerContext:
    """Per-activation scratchpad: accumulated cost, outbox, timers."""

    __slots__ = ("network", "endpoint", "cost", "outbox", "timers", "completions")

    def __init__(self, network: "Network", endpoint: "Endpoint") -> None:
        self.network = network
        self.endpoint = endpoint
        self.cost = 0.0
        self.outbox: list[Message] = []
        # Lazily allocated: most activations set no timers or completions,
        # and a context is created for every delivered message.
        self.timers: Optional[list[tuple[float, Callable[["HandlerContext"], None]]]] = None
        self.completions: Optional[list[Callable[[], None]]] = None

    @property
    def now(self) -> float:
        """Simulated time at which this activation began."""
        return self.network.scheduler.clock._now

    def charge(self, milliseconds: float) -> None:
        """Add processing cost to this activation."""
        if milliseconds < 0:
            raise ValueError(f"cannot charge negative time: {milliseconds}")
        self.cost += milliseconds

    def send(
        self,
        dst: int,
        mtype: MessageType,
        payload: Optional[dict[str, Any]] = None,
        txn_id: int = -1,
        session: int = -1,
    ) -> Message:
        """Queue a message; it leaves when this activation's work finishes."""
        msg = Message(
            src=self.endpoint.site_id,
            dst=dst,
            mtype=mtype,
            payload=payload if payload is not None else {},
            txn_id=txn_id,
            session=session,
        )
        self.outbox.append(msg)
        return msg

    def after(self, delay: float, fn: Callable[["HandlerContext"], None]) -> None:
        """Run ``fn`` in a fresh activation ``delay`` ms after this one ends."""
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        if self.timers is None:
            self.timers = []
        self.timers.append((delay, fn))

    def on_done(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` (no new activation) when this activation's work ends."""
        if self.completions is None:
            self.completions = []
        self.completions.append(fn)


class Endpoint(abc.ABC):
    """A message-driven process attached to the network."""

    def __init__(self, site_id: int) -> None:
        self.site_id = site_id
        self.alive = True

    @abc.abstractmethod
    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        """Process one delivered message."""

    def on_delivery_failed(self, ctx: HandlerContext, msg: Message) -> None:
        """Called when a message this endpoint sent could not be delivered
        (destination down or partitioned away).  Default: ignore."""

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}(site={self.site_id}, {state})"
