"""Protocol messages.

One message type per arrow in the paper's protocol (Appendix A plus the
control-transaction machinery of §1.1), and a handful of management-plane
messages that stand in for the managing site's "interactive control".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class MessageType(enum.Enum):
    """Every inter-site message kind in the system."""

    # Managing-site control plane (paper §1.2: the managing site causes
    # sites to fail and recover and initiates database transactions).
    MGR_SUBMIT_TXN = "mgr_submit_txn"
    MGR_TXN_DONE = "mgr_txn_done"
    MGR_FAIL = "mgr_fail"
    MGR_RECOVER = "mgr_recover"
    MGR_RECOVER_DONE = "mgr_recover_done"

    # Two-phase commit (Appendix A).
    VOTE_REQ = "vote_req"            # phase 1: copy update for written items
    VOTE_ACK = "vote_ack"            # participant ack of phase 1
    VOTE_NACK = "vote_nack"          # participant refusal (session changed)
    COMMIT = "commit"                # phase 2: commit indication
    COMMIT_ACK = "commit_ack"        # participant ack of phase 2
    ABORT = "abort"                  # abort indication

    # Copier transactions (§1.1, §2.2.3).
    COPY_REQ = "copy_req"            # ask an operational site for good copies
    COPY_RESP = "copy_resp"          # the copies
    COPY_DENIED = "copy_denied"      # responder has no up-to-date copy
    CLEAR_FAILLOCKS = "clear_faillocks"  # the "special transaction"

    # Control transactions (§1.1).
    RECOVERY_ANNOUNCE = "recovery_announce"   # type 1, from recovering site
    RECOVERY_STATE = "recovery_state"         # type 1 reply: vector+fail-locks
    FAILURE_ANNOUNCE = "failure_announce"     # type 2
    CREATE_COPY = "create_copy"               # type 3 (proposed extension)
    CREATE_COPY_ACK = "create_copy_ack"

    # Blocked-transaction resolution (cooperative termination): a
    # participant holding staged updates for a silent coordinator asks the
    # coordinator — or, failing that, its peers — for the outcome.
    TXN_STATUS_REQ = "txn_status_req"
    TXN_STATUS_RESP = "txn_status_resp"

    # Transport-level acknowledgement of the reliable-delivery sublayer
    # (repro.net.reliable).  Never reaches an endpoint's handler.
    NET_ACK = "net_ack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_msg_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """A single inter-site message.

    ``payload`` is a plain dict; the protocol layers define the keys.  The
    ``txn_id`` ties protocol messages to the transaction they serve, and
    ``session`` carries the sender's session number so receivers can detect
    status changes mid-transaction (paper §1.1).
    """

    src: int
    dst: int
    mtype: MessageType
    payload: dict[str, Any] = field(default_factory=dict)
    txn_id: int = -1
    session: int = -1
    msg_id: int = field(default_factory=_msg_ids.__next__)
    send_time: float = -1.0
    deliver_time: float = -1.0
    # Per-channel sequence number stamped by the reliable-delivery
    # sublayer (repro.net.reliable); -1 means the message is untracked
    # (reliability disabled, or transport-internal traffic).
    seq: int = -1
    # Causal handle for repro.obs: the trace-event seq of whatever caused
    # this message (the queueing activation's scope, then the msg.send
    # event once transmitted).  -1 with tracing disabled.
    trace_ref: int = -1

    def __repr__(self) -> str:
        return (
            f"Message(#{self.msg_id} {self.mtype.value} {self.src}->{self.dst} "
            f"txn={self.txn_id})"
        )
