"""Message tracing.

Every message the network carries (or fails to carry) is appended to a
bounded trace.  Experiments use the trace for per-transaction message
counting; tests use it to assert protocol shapes ("a four-site commit is
twelve messages").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.message import Message, MessageType


@dataclass(slots=True)
class TraceEntry:
    """One observed message, with its fate."""

    msg_id: int
    src: int
    dst: int
    mtype: MessageType
    txn_id: int
    send_time: float
    deliver_time: float
    delivered: bool
    reason: str = ""


class MessageTrace:
    """Append-only record of message traffic."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self.entries: list[TraceEntry] = []
        self.dropped_entries = 0

    def record(self, msg: Message, delivered: bool, reason: str = "") -> None:
        """Append ``msg`` with its delivery outcome."""
        entries = self.entries
        if len(entries) >= self.capacity:
            self.dropped_entries += 1
            return
        entries.append(
            TraceEntry(
                msg.msg_id,
                msg.src,
                msg.dst,
                msg.mtype,
                msg.txn_id,
                msg.send_time,
                msg.deliver_time,
                delivered,
                reason,
            )
        )

    def count(
        self,
        mtype: MessageType | None = None,
        txn_id: int | None = None,
        delivered: bool | None = None,
    ) -> int:
        """Number of trace entries matching the given filters."""
        total = 0
        for entry in self.entries:
            if mtype is not None and entry.mtype is not mtype:
                continue
            if txn_id is not None and entry.txn_id != txn_id:
                continue
            if delivered is not None and entry.delivered is not delivered:
                continue
            total += 1
        return total

    def for_txn(self, txn_id: int) -> list[TraceEntry]:
        """All entries belonging to transaction ``txn_id``."""
        return [entry for entry in self.entries if entry.txn_id == txn_id]

    def clear(self) -> None:
        """Discard all recorded entries."""
        self.entries.clear()
        self.dropped_entries = 0

    def __len__(self) -> int:
        return len(self.entries)
