"""Reliable message-passing substrate.

The paper assumes (its §1.2 assumption 1) a reliable transport: no loss, no
reordering, no corruption.  This package provides exactly that — FIFO
channels between registered endpoints — plus the pieces the paper's testbed
had implicitly: a latency/cost model for each communication (measured at
9 ms per inter-site message in mini-RAID), partition injection for the
network-partition scenarios the protocol is designed to survive, and a
message trace for debugging and metrics.  The network also owns the run's
structured-trace sink (:class:`repro.obs.sink.TraceSink`, off by
default): with ``cluster.obs.enabled = True`` every send, delivery, drop,
and handler activation is recorded with causal parent links — see
:mod:`repro.obs` and docs/OBSERVABILITY.md.

When the network itself is allowed to lose messages (the chaos layer's
``lossy_core`` mode), :mod:`repro.net.reliable` rebuilds the reliable
abstraction on top: per-channel sequence numbers, receiver-side dedup and
reordering, and sender-side ack tracking with exponential-backoff
retransmission — all driven by the deterministic event scheduler.
"""

from repro.net.message import Message, MessageType
from repro.net.latency import ConstantLatency, UniformLatency, LatencyModel
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.network import Network
from repro.net.partition import PartitionManager
from repro.net.reliable import ReliableDelivery, ReliableStats, RetransmitPolicy
from repro.net.trace import MessageTrace, TraceEntry

__all__ = [
    "Message",
    "MessageType",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "Endpoint",
    "HandlerContext",
    "Network",
    "PartitionManager",
    "ReliableDelivery",
    "ReliableStats",
    "RetransmitPolicy",
    "MessageTrace",
    "TraceEntry",
]
