"""Network partition injection.

The fail-lock machinery is designed to handle copies made unavailable "due
to site failure or network partitioning" (paper §1.1).  The experiments in
the paper only use site failures, but the substrate supports partitions so
the protocol's partition behaviour can be tested and benchmarked too.
"""

from __future__ import annotations

from repro.errors import NetworkError


class PartitionManager:
    """Tracks which groups of sites can currently talk to each other.

    With no partition installed, everyone reaches everyone.  Installing a
    partition replaces any previous one.
    """

    def __init__(self) -> None:
        self._group_of: dict[int, int] = {}
        self._active = False

    @property
    def active(self) -> bool:
        """Whether a partition is currently installed."""
        return self._active

    def partition(self, groups: list[list[int]]) -> None:
        """Split sites into the given disjoint ``groups``.

        Sites not mentioned in any group form an implicit extra group
        together (they can still reach each other, but no listed group).
        """
        seen: set[int] = set()
        for group in groups:
            for site in group:
                if site in seen:
                    raise NetworkError(f"site {site} appears in two groups")
                seen.add(site)
        self._group_of = {}
        for index, group in enumerate(groups):
            for site in group:
                self._group_of[site] = index
        self._active = True

    def heal(self) -> None:
        """Remove the partition; full connectivity is restored."""
        self._group_of = {}
        self._active = False

    def connected(self, a: int, b: int) -> bool:
        """True if sites ``a`` and ``b`` can currently exchange messages."""
        if not self._active or a == b:
            return True
        # Unlisted sites share the implicit group (-1).
        return self._group_of.get(a, -1) == self._group_of.get(b, -1)

    def group_of(self, site: int) -> int:
        """The partition-group index of ``site`` (-1 for the implicit group)."""
        return self._group_of.get(site, -1)

    def __repr__(self) -> str:
        return f"PartitionManager(active={self._active}, map={self._group_of})"
