"""The network: routing, delivery, failure notices, CPU accounting.

Responsibilities:

* route messages between registered endpoints with FIFO order per channel;
* charge each activation's cost (receive cost + handler charges + per-message
  send cost) on the shared :class:`~repro.sim.cpu.CpuResource`, releasing
  outgoing messages when the work completes;
* drop messages to down or partitioned-away sites and notify the sender
  after a failure-detection delay (the paper's reliable transport plus the
  "transaction ... knows that a particular site k is down" machinery);
* record every message in the :class:`~repro.net.trace.MessageTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.reliable import ReliableDelivery

from repro.errors import NetworkError, UnknownSiteError
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, MessageType
from repro.net.partition import PartitionManager
from repro.net.trace import MessageTrace
from repro.obs.events import EventKind
from repro.obs.sink import TraceSink
from repro.sim.cpu import CpuResource
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import EventScheduler

# Messages that must reach a site even while it is marked down.  A down
# site ignores all traffic until the managing site tells it to recover
# (paper §1.2: "A failed site would remain inactive until recovery was
# initiated from the managing site").
_DELIVER_WHEN_DOWN = frozenset({MessageType.MGR_RECOVER})


@dataclass(slots=True)
class MessageFate:
    """An interposer's verdict on one in-flight message.

    ``drop`` severs the link for this message exactly as a partition would:
    the message is undeliverable and the sender gets a failure notice —
    unless ``silent`` is also set, in which case the message simply
    vanishes (true message loss: nobody is told, and only the
    retransmission sublayer can recover it).  ``delay`` adds latency on
    top of the latency model (FIFO per channel is preserved).
    ``duplicate`` delivers a second copy ``duplicate_gap`` ms after the
    first.  ``reorder`` lets the message deliver up to ``reorder_shift``
    ms *early*, before earlier traffic on its channel — deliberately
    violating the FIFO guarantee the protocol assumes.
    """

    drop: bool = False
    silent: bool = False
    delay: float = 0.0
    duplicate: bool = False
    duplicate_gap: float = 0.0
    reorder: bool = False
    reorder_shift: float = 0.0


class MessageInterposer(Protocol):
    """Decides the fate of each transmitted message (fault injection)."""

    def intercept(self, msg: Message) -> Optional[MessageFate]:
        """Return a fate for ``msg``, or None for normal delivery."""
        ...  # pragma: no cover - protocol definition


class Network:
    """Reliable FIFO message fabric over the event scheduler."""

    def __init__(
        self,
        scheduler: EventScheduler,
        cpu: CpuResource,
        rng: DeterministicRng,
        latency_model: Optional[LatencyModel] = None,
        msg_send_cost: float = 4.5,
        msg_recv_cost: float = 4.5,
        failure_detect_delay: float = 0.0,
        trace: Optional[MessageTrace] = None,
    ) -> None:
        self.scheduler = scheduler
        self.cpu = cpu
        self.latency_model = latency_model if latency_model is not None else ConstantLatency(0.0)
        # Constant-latency fast path: ConstantLatency.sample consumes no
        # randomness, so the per-message polymorphic call can be skipped
        # without perturbing any RNG stream.
        self._fixed_latency: Optional[float] = (
            self.latency_model.latency_ms
            if type(self.latency_model) is ConstantLatency
            else None
        )
        if msg_send_cost < 0 or msg_recv_cost < 0:
            raise NetworkError("message costs must be non-negative")
        self.msg_send_cost = msg_send_cost
        self.msg_recv_cost = msg_recv_cost
        self.failure_detect_delay = failure_detect_delay
        self.partitions = PartitionManager()
        # Addresses exempt from partitions (the managing site: it is the
        # experimenter's control plane, not part of the network under test).
        # Fault interposition honours the same exemption.
        self.partition_exempt: set[int] = set()
        # Optional fault-injection hook consulted for every non-exempt
        # transmission (see repro.chaos.interpose).
        self.interposer: Optional[MessageInterposer] = None
        # Optional retransmission sublayer (repro.net.reliable): sequence
        # numbers, receiver-side dedup/ordering, sender-side ack tracking.
        # None by default — the stock network is the paper's reliable FIFO
        # transport and behaves byte-identically with the layer absent.
        self.reliable: Optional["ReliableDelivery"] = None
        # Observers invoked for every successfully delivered message, in
        # delivery order (online invariant auditing).
        self.delivery_probes: list[Callable[[Message], None]] = []
        self.trace = trace if trace is not None else MessageTrace()
        # Structured tracing (repro.obs).  Disabled by default: every emit
        # site guards on ``obs.enabled``, and tracing never touches the
        # scheduler, CPU, or RNG, so enabling it cannot change a run.
        self.obs = TraceSink()
        self._endpoints: dict[int, Endpoint] = {}
        self._latency_rng = rng.stream("net.latency")
        self._fifo_last: dict[tuple[int, int], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_undeliverable = 0

    # -- registration ------------------------------------------------------

    def register(self, endpoint: Endpoint) -> None:
        """Attach ``endpoint``; its ``site_id`` becomes its address."""
        if endpoint.site_id in self._endpoints:
            raise NetworkError(f"site id {endpoint.site_id} already registered")
        self._endpoints[endpoint.site_id] = endpoint

    def replace_endpoint(self, endpoint: Endpoint) -> None:
        """Swap in a new endpoint at an existing address (e.g. the open-loop
        driver taking over the managing site's address)."""
        if endpoint.site_id not in self._endpoints:
            raise UnknownSiteError(
                f"no endpoint at site {endpoint.site_id} to replace"
            )
        self._endpoints[endpoint.site_id] = endpoint

    def endpoint(self, site_id: int) -> Endpoint:
        """The endpoint registered at ``site_id``."""
        try:
            return self._endpoints[site_id]
        except KeyError:
            raise UnknownSiteError(f"no endpoint registered for site {site_id}") from None

    @property
    def site_ids(self) -> list[int]:
        """All registered addresses, sorted."""
        return sorted(self._endpoints)

    # -- activations -------------------------------------------------------

    def spawn(
        self,
        endpoint: Endpoint,
        fn: Callable[[HandlerContext], None],
        delay: float = 0.0,
    ) -> None:
        """Run ``fn`` as a fresh activation of ``endpoint`` after ``delay``.

        Used to kick off activity that is not a response to a message (the
        managing site starting a scenario, batch-copier timers, ...).
        """
        self.scheduler.post(delay, self._run_activation, (endpoint, fn))

    def _run_activation(
        self,
        endpoint: Endpoint,
        fn: Callable[[HandlerContext], None],
        parent: int = -1,
    ) -> None:
        obs = self.obs
        if obs.enabled:
            obs.scope = parent
        ctx = HandlerContext(self, endpoint)
        fn(ctx)
        self._finish_activation(ctx)
        if obs.enabled:
            obs.scope = -1

    def _finish_activation(self, ctx: HandlerContext) -> None:
        # The context dies here, so its lists transfer to the release step
        # without copying.
        outbox = ctx.outbox
        total = ctx.cost + len(outbox) * self.msg_send_cost
        # Causality: everything this activation queued — messages released
        # later, timers firing later — is caused by the activation's scope
        # event, which must be captured *now* (release runs after the CPU
        # work completes, under someone else's scope).
        scope = -1
        if self.obs.enabled:
            scope = self.obs.scope
            for msg in outbox:
                msg.trace_ref = scope
        self.cpu.execute(
            total,
            self._release_activation,
            args=(ctx.endpoint, outbox, ctx.timers, ctx.completions, scope),
        )

    def _release_activation(
        self,
        endpoint: Endpoint,
        outbox: list[Message],
        timers: Optional[list[tuple[float, Callable[[HandlerContext], None]]]],
        completions: Optional[list[Callable[[], None]]],
        scope: int,
    ) -> None:
        """The activation's CPU work is done: release its queued effects."""
        release_time = self.scheduler.clock._now
        for msg in outbox:
            self._transmit(msg, release_time)
        if timers:
            for delay, timer_fn in timers:
                self.scheduler.post(
                    delay, self._run_activation, (endpoint, timer_fn, scope)
                )
        if completions:
            for done_fn in completions:
                done_fn()

    # -- transmission ------------------------------------------------------

    def _transmit(self, msg: Message, release_time: float) -> None:
        msg.send_time = release_time
        self.messages_sent += 1
        if msg.dst not in self._endpoints:
            raise UnknownSiteError(f"message to unregistered site {msg.dst}: {msg}")
        if self.obs.enabled:
            # The send event becomes the message's causal handle: the
            # receive (or drop) it leads to parents itself here.
            msg.trace_ref = self.obs.emit(
                release_time,
                EventKind.MSG_SEND,
                site=msg.src,
                txn=msg.txn_id,
                parent=msg.trace_ref,
                mtype=msg.mtype.value,
                dst=msg.dst,
            )
        exempt = msg.src in self.partition_exempt or msg.dst in self.partition_exempt
        if not exempt and not self.partitions.connected(msg.src, msg.dst):
            self.messages_undeliverable += 1
            self.trace.record(msg, delivered=False, reason="partitioned")
            self._obs_drop(msg, "partitioned")
            # A partition is a *detectable* severance: stop any
            # retransmission and unblock the channel slot.
            if self.reliable is not None:
                self.reliable.cancel(msg)
            self._notify_sender_failure(msg)
            return
        if self.reliable is not None and msg.seq < 0 and self.reliable.tracks(msg):
            self.reliable.track(msg)
        fate = None
        if self.interposer is not None and not exempt:
            fate = self.interposer.intercept(msg)
        if fate is not None and fate.drop:
            self.messages_undeliverable += 1
            if fate.silent:
                # True message loss: nobody learns anything.  Only the
                # retransmission sublayer can recover the message — silent
                # drops are only injected when it is installed.
                self.trace.record(msg, delivered=False, reason="chaos-drop-silent")
                self._obs_drop(msg, "chaos-drop-silent")
                return
            self.trace.record(msg, delivered=False, reason="chaos-drop")
            self._obs_drop(msg, "chaos-drop")
            if self.reliable is not None:
                self.reliable.cancel(msg)
            self._notify_sender_failure(msg)
            return
        if self._fixed_latency is not None:
            latency = self._fixed_latency
        else:
            latency = self.latency_model.sample(msg.src, msg.dst, self._latency_rng)
        if fate is not None:
            latency += fate.delay
        deliver_at = release_time + latency
        # Reliable FIFO per (src, dst): never deliver before an earlier
        # message on the same channel.
        channel = (msg.src, msg.dst)
        fifo_last = self._fifo_last
        if fate is not None and fate.reorder:
            # Injected reorder: allow delivery before earlier same-channel
            # traffic, but never before the send instant.
            deliver_at = max(release_time, deliver_at - fate.reorder_shift)
            fifo_last[channel] = max(fifo_last.get(channel, 0.0), deliver_at)
        else:
            last = fifo_last.get(channel, 0.0)
            if last > deliver_at:
                deliver_at = last
            fifo_last[channel] = deliver_at
        msg.deliver_time = deliver_at
        self.scheduler.post_at(deliver_at, self._deliver, (msg,))
        if fate is not None and fate.duplicate:
            self._transmit_duplicate(msg, release_time, deliver_at + fate.duplicate_gap)

    def _obs_drop(self, msg: Message, reason: str) -> None:
        """Emit the msg.drop trace event for an undeliverable message."""
        if self.obs.enabled:
            self.obs.emit(
                self.scheduler.now,
                EventKind.MSG_DROP,
                site=msg.dst,
                txn=msg.txn_id,
                parent=msg.trace_ref,
                mtype=msg.mtype.value,
                reason=reason,
            )

    def _transmit_duplicate(
        self, msg: Message, release_time: float, deliver_at: float
    ) -> None:
        """Deliver a second copy of ``msg`` (chaos duplication fault)."""
        dup = Message(
            src=msg.src,
            dst=msg.dst,
            mtype=msg.mtype,
            payload=dict(msg.payload),
            txn_id=msg.txn_id,
            session=msg.session,
            seq=msg.seq,  # the receiver-side dedup window catches the copy
        )
        dup.send_time = release_time
        if self.obs.enabled:
            dup.trace_ref = self.obs.emit(
                release_time,
                EventKind.MSG_SEND,
                site=dup.src,
                txn=dup.txn_id,
                parent=msg.trace_ref,
                mtype=dup.mtype.value,
                dst=dup.dst,
                duplicate=True,
            )
        self.messages_sent += 1
        channel = (dup.src, dup.dst)
        deliver_at = max(deliver_at, self._fifo_last.get(channel, 0.0))
        self._fifo_last[channel] = deliver_at
        dup.deliver_time = deliver_at
        self.scheduler.post_at(deliver_at, self._deliver, (dup,))

    def _deliver(self, msg: Message) -> None:
        endpoint = self._endpoints[msg.dst]
        if msg.mtype is MessageType.NET_ACK:
            # Transport-internal: consumed by the reliable layer, never
            # surfaced to the endpoint.  An ack to a dead sender is moot.
            if not endpoint.alive or self.reliable is None:
                self.messages_undeliverable += 1
                self.trace.record(msg, delivered=False, reason="site down")
                self._obs_drop(msg, "site-down")
                return
            self.messages_delivered += 1
            self.trace.record(msg, delivered=True)
            self.reliable.on_ack(msg)
            return
        if not endpoint.alive and msg.mtype not in _DELIVER_WHEN_DOWN:
            self.messages_undeliverable += 1
            self.trace.record(msg, delivered=False, reason="site down")
            self._obs_drop(msg, "site-down")
            if self.reliable is not None:
                self.reliable.cancel(msg)
            self._notify_sender_failure(msg)
            return
        if self.reliable is not None and msg.seq >= 0:
            deliverable, status = self.reliable.on_arrival(msg)
            if status == "dup":
                self.messages_undeliverable += 1
                self.trace.record(msg, delivered=False, reason="transport-dedup")
                if self.obs.enabled:
                    self.obs.emit(
                        self.scheduler.now,
                        EventKind.MSG_DUP,
                        site=msg.dst,
                        txn=msg.txn_id,
                        parent=msg.trace_ref,
                        mtype=msg.mtype.value,
                        seq=msg.seq,
                    )
            for ready in deliverable:
                self._deliver_to_endpoint(ready)
            return
        self._deliver_to_endpoint(msg, endpoint)

    def _deliver_to_endpoint(self, msg: Message, endpoint: Endpoint | None = None) -> None:
        """Hand a (logically deliverable) message to its endpoint."""
        if endpoint is None:
            endpoint = self._endpoints[msg.dst]
        if not endpoint.alive and msg.mtype not in _DELIVER_WHEN_DOWN:
            # The site died while the message sat in the reorder buffer.
            self.messages_undeliverable += 1
            self.trace.record(msg, delivered=False, reason="site down")
            self._obs_drop(msg, "site-down")
            self._notify_sender_failure(msg)
            return
        self.messages_delivered += 1
        self.trace.record(msg, delivered=True)
        obs = self.obs
        if obs.enabled:
            # The receive event scopes the delivery probes and the whole
            # handler activation: every event emitted (and message queued)
            # inside them parents here.
            obs.scope = obs.emit(
                self.scheduler.now,
                EventKind.MSG_RECV,
                site=msg.dst,
                txn=msg.txn_id,
                parent=msg.trace_ref,
                mtype=msg.mtype.value,
                src=msg.src,
            )
        for probe in self.delivery_probes:
            probe(msg)
        ctx = HandlerContext(self, endpoint)
        # Fresh context: assigning is charge() without the call (the cost
        # was validated non-negative at construction).
        ctx.cost = self.msg_recv_cost
        endpoint.handle(ctx, msg)
        self._finish_activation(ctx)
        if obs.enabled:
            obs.scope = -1

    def _notify_sender_failure(self, msg: Message) -> None:
        if msg.mtype is MessageType.NET_ACK:
            return
        sender = self._endpoints.get(msg.src)
        if sender is None or not sender.alive:
            return
        self.scheduler.post(
            self.failure_detect_delay, self._run_failure_notice, (sender, msg)
        )

    def _run_failure_notice(self, sender: Endpoint, msg: Message) -> None:
        """Activation delivering a failure notice to ``msg``'s sender."""
        ctx = HandlerContext(self, sender)
        sender.on_delivery_failed(ctx, msg)
        self._finish_activation(ctx)

    def __repr__(self) -> str:
        return (
            f"Network(sites={len(self._endpoints)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, "
            f"undeliverable={self.messages_undeliverable})"
        )
