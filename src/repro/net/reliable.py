"""Reliable delivery over a lossy network: retransmission and dedup.

The paper's protocol (and everything built on it here) assumes the
transport never loses a message.  :class:`ReliableDelivery` discharges
that assumption on top of a network that *does* lose messages (the chaos
layer's ``lossy_core`` mode): it turns at-most-once physical delivery
into exactly-once, in-order logical delivery per channel, the way a real
replicated system's transport (TCP, or an application-level session
layer) would.

Mechanics, all driven by the one deterministic event scheduler:

* **sequence numbers** — every tracked transmission is stamped with a
  per-``(src, dst)`` channel sequence number (``Message.seq``);
  retransmissions reuse the original number.
* **receiver-side dedup and ordering** — the receiving end delivers
  channel traffic strictly in sequence order: early arrivals are held in
  a reorder buffer, repeats of an already-delivered sequence number are
  counted and discarded.  Every arrival is acknowledged (``NET_ACK``),
  including repeats, so a lost ack cannot wedge the sender.
* **sender-side ack tracking** — each unacked transmission carries a
  retransmission timer with exponential backoff; after ``max_retries``
  unacknowledged attempts the destination is reported *genuinely
  unreachable* through the network's ordinary failure-notice path, which
  is exactly the signal the protocol's Appendix-A failure branches (and
  the coordinator's type-2 fallback) already consume.

State here is transport state, not site state: it survives the crash of
the endpoints it serves (like a NIC's counters), and a bounced message —
destination down or partitioned away — cancels its tracking and *skips*
its sequence number at the receiver so later traffic is never wedged
behind a message that can no longer arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageType
from repro.obs.events import EventKind
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(slots=True)
class RetransmitPolicy:
    """Timer constants of the reliable-delivery sublayer.

    ``rto_ms`` is the initial retransmission timeout; each unacknowledged
    attempt multiplies it by ``backoff`` up to ``rto_max_ms``.  After
    ``max_retries`` transmissions without an ack the destination is
    declared unreachable.
    """

    rto_ms: float = 60.0
    backoff: float = 2.0
    rto_max_ms: float = 480.0
    max_retries: int = 8

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any bad value."""
        if self.rto_ms <= 0:
            raise ConfigurationError(f"rto_ms must be positive: {self.rto_ms}")
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1: {self.backoff}"
            )
        if self.rto_max_ms < self.rto_ms:
            raise ConfigurationError(
                f"rto_max_ms must be >= rto_ms: {self.rto_max_ms}"
            )
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1: {self.max_retries}"
            )

    def rto_for_attempt(self, attempt: int) -> float:
        """The timeout armed after transmission number ``attempt`` (1-based)."""
        return min(self.rto_ms * self.backoff ** (attempt - 1), self.rto_max_ms)


@dataclass(slots=True)
class ReliableStats:
    """Transport-layer event counts for one run."""

    tracked: int = 0           # first transmissions given a sequence number
    retransmissions: int = 0   # timer-driven resends
    acks_sent: int = 0
    duplicates_suppressed: int = 0  # arrivals of an already-seen seq
    buffered_out_of_order: int = 0  # early arrivals parked for ordering
    gave_up: int = 0           # retry cap hit -> unreachable report

    def describe(self) -> str:
        """Deterministic summary cell: retransmit/dedup/gave-up."""
        return f"{self.retransmissions}/{self.duplicates_suppressed}/{self.gave_up}"


@dataclass(slots=True)
class _Pending:
    """One unacknowledged transmission at the sender."""

    msg: Message
    attempts: int = 1
    timer: Optional[Event] = None


class _ChannelReceiver:
    """Receiver-side ordering state for one (src, dst) channel."""

    __slots__ = ("next_seq", "buffer", "skipped")

    def __init__(self) -> None:
        self.next_seq = 0
        self.buffer: dict[int, Message] = {}
        self.skipped: set[int] = set()

    def advance(self) -> list[Message]:
        """Pop the in-order run now deliverable at the head of the window."""
        ready: list[Message] = []
        while True:
            if self.next_seq in self.skipped:
                self.skipped.discard(self.next_seq)
                self.next_seq += 1
                continue
            msg = self.buffer.pop(self.next_seq, None)
            if msg is None:
                return ready
            ready.append(msg)
            self.next_seq += 1


class ReliableDelivery:
    """The retransmission sublayer attached to a :class:`Network`.

    The network consults it at three points: when releasing a tracked
    message (:meth:`track`), when a tracked message physically arrives
    (:meth:`on_arrival`), and when a tracked message becomes permanently
    undeliverable — destination down or partitioned (:meth:`cancel`).

    Usage — normally switched on through configuration rather than built
    by hand::

        config = SystemConfig(reliable_delivery=True, timeouts_enabled=True)
        cluster = Cluster(config)          # installs the sublayer
        ...
        cluster.network.reliable.stats     # retransmissions, dedup, give-ups

    or attached to a bare :class:`~repro.net.network.Network`::

        net.reliable = ReliableDelivery(net, RetransmitPolicy(rto_ms=40.0))

    The sublayer defaults OFF: with ``reliable_delivery=False`` (the stock
    configuration) the network behaves byte-identically to a build without
    this module, which is what keeps the paper-experiment seeds stable.
    """

    __slots__ = ("network", "policy", "stats", "_next_seq", "_pending", "_receivers")

    def __init__(self, network: "Network", policy: Optional[RetransmitPolicy] = None) -> None:
        self.network = network
        self.policy = policy if policy is not None else RetransmitPolicy()
        self.policy.validate()
        self.stats = ReliableStats()
        self._next_seq: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int, int], _Pending] = {}
        self._receivers: dict[tuple[int, int], _ChannelReceiver] = {}

    # -- eligibility -------------------------------------------------------

    def tracks(self, msg: Message) -> bool:
        """Whether ``msg`` travels under retransmission protection.

        Transport acks are never tracked (no ack-of-ack), and the managing
        site's control plane is exempt for the same reason it is exempt
        from partitions and fault interposition: it is the experimenter's
        harness, not the network under test.
        """
        if msg.mtype is MessageType.NET_ACK:
            return False
        exempt = self.network.partition_exempt
        return msg.src not in exempt and msg.dst not in exempt

    # -- sender side -------------------------------------------------------

    def track(self, msg: Message) -> None:
        """Stamp a first transmission with its sequence number and arm its
        retransmission timer (retransmissions re-arm from the timer path)."""
        channel = (msg.src, msg.dst)
        msg.seq = self._next_seq.get(channel, 0)
        self._next_seq[channel] = msg.seq + 1
        self.stats.tracked += 1
        pending = _Pending(msg=msg)
        self._pending[(msg.src, msg.dst, msg.seq)] = pending
        self._arm_timer(pending)

    def _arm_timer(self, pending: _Pending) -> None:
        msg = pending.msg
        key = (msg.src, msg.dst, msg.seq)
        delay = self.policy.rto_for_attempt(pending.attempts)
        # Pre-bound method + args tuple + static label: this is the heap's
        # highest-churn producer (most timers are cancelled by an ack), so
        # per-timer closures and f-string labels would dominate its cost.
        pending.timer = self.network.scheduler.schedule(
            delay, self._on_timer, label="rto", args=(key,)
        )

    def _on_timer(self, key: tuple[int, int, int]) -> None:
        pending = self._pending.get(key)
        if pending is None:
            return  # acked or cancelled; timer was stale
        msg = pending.msg
        sender = self.network._endpoints.get(msg.src)
        if sender is None or not sender.alive:
            # A dead sender retransmits nothing; its state is gone.
            self._pending.pop(key, None)
            return
        obs = self.network.obs
        if pending.attempts >= self.policy.max_retries:
            # The destination has ignored every attempt: report it
            # genuinely unreachable through the ordinary failure-notice
            # path (the protocol's Appendix-A branches take it from here).
            self._pending.pop(key, None)
            self.stats.gave_up += 1
            if obs.enabled:
                obs.emit(
                    self.network.scheduler.now,
                    EventKind.MSG_GIVEUP,
                    site=msg.src,
                    txn=msg.txn_id,
                    parent=msg.trace_ref,
                    mtype=msg.mtype.value,
                    dst=msg.dst,
                    attempts=pending.attempts,
                )
            self._skip_at_receiver(msg)
            self.network._notify_sender_failure(msg)
            return
        pending.attempts += 1
        self.stats.retransmissions += 1
        clone = Message(
            src=msg.src,
            dst=msg.dst,
            mtype=msg.mtype,
            payload=dict(msg.payload),
            txn_id=msg.txn_id,
            session=msg.session,
            seq=msg.seq,
        )
        if obs.enabled:
            clone.trace_ref = obs.emit(
                self.network.scheduler.now,
                EventKind.MSG_RETRANSMIT,
                site=msg.src,
                txn=msg.txn_id,
                parent=msg.trace_ref,
                mtype=msg.mtype.value,
                dst=msg.dst,
                attempt=pending.attempts,
            )
        pending.msg = clone
        self._arm_timer(pending)
        self.network._transmit(clone, self.network.scheduler.now)

    def on_ack(self, ack: Message) -> None:
        """A ``NET_ACK`` arrived at the original sender: stop retransmitting."""
        key = (ack.dst, ack.src, ack.payload["seq"])
        pending = self._pending.pop(key, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    def cancel(self, msg: Message) -> None:
        """``msg`` is permanently undeliverable (destination down or
        partitioned): drop its tracking and skip its slot at the receiver
        so later channel traffic is not wedged behind it."""
        if msg.seq < 0:
            return
        pending = self._pending.pop((msg.src, msg.dst, msg.seq), None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()
        self._skip_at_receiver(msg)

    def _skip_at_receiver(self, msg: Message) -> None:
        receiver = self._receivers.setdefault((msg.src, msg.dst), _ChannelReceiver())
        if msg.seq >= receiver.next_seq and msg.seq not in receiver.buffer:
            receiver.skipped.add(msg.seq)
            if receiver.next_seq in receiver.skipped:
                # Skipping the head of the window may unblock buffered
                # successors (e.g. traffic sent right after the destination
                # recovered, parked behind a message that bounced while it
                # was down): deliver them now.
                for ready in receiver.advance():
                    self.network._deliver_to_endpoint(ready)

    # -- receiver side -----------------------------------------------------

    def on_arrival(self, msg: Message) -> tuple[list[Message], str]:
        """A tracked message physically reached an alive destination.

        Returns ``(deliverable, status)``: the messages now deliverable to
        the endpoint in channel order (possibly empty, possibly several if
        ``msg`` filled a gap), and what happened to the arriving message
        itself — ``"ready"``, ``"held"`` (parked for ordering), or
        ``"dup"`` (already seen).  Every arrival is acknowledged, repeats
        included, so a lost ack cannot wedge the sender.
        """
        receiver = self._receivers.setdefault((msg.src, msg.dst), _ChannelReceiver())
        self._send_ack(msg)
        if (
            msg.seq < receiver.next_seq
            or msg.seq in receiver.buffer
            or msg.seq in receiver.skipped
        ):
            self.stats.duplicates_suppressed += 1
            return [], "dup"
        if msg.seq > receiver.next_seq:
            receiver.buffer[msg.seq] = msg
            self.stats.buffered_out_of_order += 1
            return [], "held"
        receiver.buffer[msg.seq] = msg
        return receiver.advance(), "ready"

    def _send_ack(self, msg: Message) -> None:
        self.stats.acks_sent += 1
        ack = Message(
            src=msg.dst,
            dst=msg.src,
            mtype=MessageType.NET_ACK,
            payload={"seq": msg.seq},
            txn_id=msg.txn_id,
            # Trace the ack as caused by the send it acknowledges.
            trace_ref=msg.trace_ref,
        )
        self.network._transmit(ack, self.network.scheduler.now)

    # -- introspection -----------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Unacknowledged tracked transmissions."""
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"ReliableDelivery(in_flight={self.in_flight}, "
            f"retransmissions={self.stats.retransmissions}, "
            f"dedup={self.stats.duplicates_suppressed})"
        )
