"""Wire latency models.

In mini-RAID all sites lived on one machine, so the 9 ms per communication
was interprocess *processing* cost, not wire time; the cost model charges it
as CPU.  Wire latency models exist for the "complete RAID" configuration
(sites on separate machines over Ethernet), where messages spend real time
in flight while CPUs stay free.
"""

from __future__ import annotations

import abc
from repro.sim.rng import RandomStream

from repro.errors import NetworkError


class LatencyModel(abc.ABC):
    """Strategy that assigns an in-flight delay to each message."""

    @abc.abstractmethod
    def sample(self, src: int, dst: int, rng: RandomStream) -> float:
        """Milliseconds a message from ``src`` to ``dst`` spends in flight."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``latency_ms`` (default 0: same-machine)."""

    def __init__(self, latency_ms: float = 0.0) -> None:
        if latency_ms < 0:
            raise NetworkError(f"latency must be non-negative: {latency_ms}")
        self.latency_ms = float(latency_ms)

    def sample(self, src: int, dst: int, rng: RandomStream) -> float:
        return self.latency_ms

    def __repr__(self) -> str:
        return f"ConstantLatency({self.latency_ms}ms)"


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low_ms, high_ms]`` — crude Ethernet jitter."""

    def __init__(self, low_ms: float, high_ms: float) -> None:
        if low_ms < 0 or high_ms < low_ms:
            raise NetworkError(f"bad latency range [{low_ms}, {high_ms}]")
        self.low_ms = float(low_ms)
        self.high_ms = float(high_ms)

    def sample(self, src: int, dst: int, rng: RandomStream) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low_ms}, {self.high_ms}]ms)"
