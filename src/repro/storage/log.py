"""Redo logging for commit processing.

The paper's sites commit buffered copy updates during phase two of the
commit protocol.  The redo log records each applied write so that tests can
audit exactly which writes a site saw (and in what order), and so recovery
semantics (a refreshed copy's version) are externally checkable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class LogRecord:
    """One applied write."""

    lsn: int
    txn_id: int
    item_id: int
    old_value: int
    new_value: int
    old_version: int
    new_version: int
    time: float


class RedoLog:
    """Append-only per-site redo log.

    ``capacity`` bounds retention for long soak runs (the lsn keeps
    counting, further records are dropped and tallied — same contract as
    :class:`repro.net.trace.MessageTrace`); ``None`` retains everything,
    which is what the tests and recovery audits rely on.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self.dropped_records = 0
        self._lsn = 0
        self._records: list[LogRecord] = []

    def append(
        self,
        txn_id: int,
        item_id: int,
        old_value: int,
        new_value: int,
        old_version: int,
        new_version: int,
        time: float,
    ) -> LogRecord:
        """Record one write; returns the new record."""
        self._lsn += 1
        record = LogRecord(
            self._lsn,
            txn_id,
            item_id,
            old_value,
            new_value,
            old_version,
            new_version,
            time,
        )
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped_records += 1
        else:
            self._records.append(record)
        return record

    @property
    def records(self) -> list[LogRecord]:
        """All records, oldest first (do not mutate)."""
        return self._records

    def for_txn(self, txn_id: int) -> list[LogRecord]:
        """Records written on behalf of ``txn_id``."""
        return [r for r in self._records if r.txn_id == txn_id]

    def for_item(self, item_id: int) -> list[LogRecord]:
        """Records that touched ``item_id``."""
        return [r for r in self._records if r.item_id == item_id]

    def __len__(self) -> int:
        return len(self._records)
