"""Per-site database substrate.

Mini-RAID kept each site's copy of the database in the virtual memory of
the site's process (paper assumption 3 factors out I/O).  We do the same:
an in-memory versioned store per site, a redo log for commit processing,
and a replication catalog saying which sites hold which items (trivially
"everyone" under the paper's full-replication assumption 4, but general
enough for the proposed type-3 control transaction's partial replication).
"""

from repro.storage.item import DataItem
from repro.storage.database import SiteDatabase
from repro.storage.log import LogRecord, RedoLog
from repro.storage.catalog import ReplicationCatalog

__all__ = ["DataItem", "SiteDatabase", "LogRecord", "RedoLog", "ReplicationCatalog"]
