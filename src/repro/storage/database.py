"""One site's in-memory database with staged (pre-commit) updates.

Phase one of the commit protocol ships copy updates that a participant must
hold without applying until the commit indication arrives (Appendix A:
"discard the copy updates" on abort).  ``stage`` / ``commit_staged`` /
``abort_staged`` model exactly that buffer.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import StorageError, UnknownItemError
from repro.storage.item import DataItem
from repro.storage.log import RedoLog


class SiteDatabase:
    """The replicated copies held by one site."""

    def __init__(self, site_id: int, item_ids: Iterable[int]) -> None:
        self.site_id = site_id
        self._items: dict[int, DataItem] = {
            item_id: DataItem(item_id=item_id) for item_id in item_ids
        }
        self._staged: dict[int, list[tuple[int, int, int]]] = {}
        self.log = RedoLog()

    # -- reads -------------------------------------------------------------

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def item_ids(self) -> list[int]:
        """Sorted ids of items this site holds a copy of."""
        return sorted(self._items)

    def get(self, item_id: int) -> DataItem:
        """The committed copy of ``item_id``."""
        try:
            return self._items[item_id]
        except KeyError:
            raise UnknownItemError(
                f"site {self.site_id} holds no copy of item {item_id}"
            ) from None

    def read(self, item_id: int) -> int:
        """Committed value of ``item_id``."""
        return self.get(item_id).value

    def version(self, item_id: int) -> int:
        """Committed version of ``item_id``."""
        return self.get(item_id).version

    # -- staged updates (two-phase commit) -----------------------------------

    def stage(self, txn_id: int, updates: Iterable[tuple[int, int, int]]) -> None:
        """Buffer ``(item_id, value, version)`` updates for ``txn_id``.

        Staging validates the items exist but touches nothing committed.
        """
        if txn_id in self._staged:
            raise StorageError(
                f"site {self.site_id}: txn {txn_id} already has staged updates"
            )
        updates = list(updates)
        for item_id, _value, _version in updates:
            if item_id not in self._items:
                raise UnknownItemError(
                    f"site {self.site_id} holds no copy of item {item_id}"
                )
        self._staged[txn_id] = updates

    def has_staged(self, txn_id: int) -> bool:
        """Whether ``txn_id`` has buffered updates on this site."""
        return txn_id in self._staged

    def commit_staged(self, txn_id: int, time: float) -> list[int]:
        """Apply ``txn_id``'s buffered updates; returns written item ids."""
        try:
            updates = self._staged.pop(txn_id)
        except KeyError:
            raise StorageError(
                f"site {self.site_id}: no staged updates for txn {txn_id}"
            ) from None
        written = []
        for item_id, value, version in updates:
            self._apply(txn_id, item_id, value, version, time)
            written.append(item_id)
        return written

    def abort_staged(self, txn_id: int) -> None:
        """Discard ``txn_id``'s buffered updates (no-op if none)."""
        self._staged.pop(txn_id, None)

    # -- direct writes (coordinator local commit, copier refresh) ----------

    def apply_write(
        self, txn_id: int, item_id: int, value: int, version: int, time: float
    ) -> None:
        """Apply one committed write immediately (no staging)."""
        self._apply(txn_id, item_id, value, version, time)

    def install_copy(
        self, item_id: int, value: int, version: int, time: float, source_txn: int = -1
    ) -> bool:
        """Install a copy fetched by a copier transaction.

        Refuses to go backwards: if the local copy is already at least as
        new, nothing changes.  Returns True if the copy was installed.
        """
        local = self.get(item_id)
        if local.version >= version:
            return False
        self._apply(source_txn, item_id, value, version, time)
        return True

    def create_item(self, item_id: int, value: int, version: int, time: float) -> None:
        """Materialize a brand-new copy (type-3 control transaction)."""
        if item_id in self._items:
            raise StorageError(
                f"site {self.site_id} already holds a copy of item {item_id}"
            )
        self._items[item_id] = DataItem(
            item_id=item_id, value=value, version=version, committed_at=time
        )

    def drop_item(self, item_id: int) -> None:
        """Remove a copy (the cleanup cost the paper notes for type 3)."""
        if item_id not in self._items:
            raise UnknownItemError(
                f"site {self.site_id} holds no copy of item {item_id}"
            )
        del self._items[item_id]

    def _apply(
        self, txn_id: int, item_id: int, value: int, version: int, time: float
    ) -> None:
        item = self.get(item_id)
        self.log.append(
            txn_id=txn_id,
            item_id=item_id,
            old_value=item.value,
            new_value=value,
            old_version=item.version,
            new_version=version,
            time=time,
        )
        item.value = value
        item.version = version
        item.committed_at = time

    def drop_staged(self) -> None:
        """Lose every pre-commit buffer (a warm crash): committed copies
        survive, but the staging area is volatile memory."""
        self._staged.clear()

    def wipe(self) -> None:
        """Lose all volatile state (a cold crash): every copy reverts to
        the initial value/version, staged updates and the log are gone."""
        for item in self._items.values():
            item.value = 0
            item.version = 0
            item.committed_at = 0.0
        self._staged.clear()
        self.log = RedoLog(self.log.capacity)

    def dump(self) -> dict[int, tuple[int, int]]:
        """``{item_id: (value, version)}`` — for consistency audits."""
        return {i: (d.value, d.version) for i, d in self._items.items()}

    def signature(self) -> tuple:
        """Hashable snapshot of committed + staged state (``repro.check``).

        Excludes the redo log and commit timestamps: states that agree on
        every copy's (value, version) and on the staged buffers behave
        identically under the protocol regardless of when they got there.
        """
        return (
            tuple(
                (i, d.value, d.version)
                for i, d in sorted(self._items.items())
            ),
            tuple(
                (txn, tuple(updates))
                for txn, updates in sorted(self._staged.items())
            ),
        )

    def __repr__(self) -> str:
        return (
            f"SiteDatabase(site={self.site_id}, items={len(self._items)}, "
            f"staged_txns={len(self._staged)})"
        )
