"""A single replicated data item copy.

``version`` is the identifier of the transaction that last wrote the copy.
Under the paper's serial execution, transaction ids are issued in
processing order, so version comparison tells which of two copies is newer
— the property copier transactions and the consistency checker rely on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class DataItem:
    """One site's copy of a logical data item."""

    item_id: int
    value: int = 0
    version: int = 0
    committed_at: float = 0.0

    def newer_than(self, other: "DataItem") -> bool:
        """True if this copy reflects a later write than ``other``."""
        return self.version > other.version

    def snapshot(self) -> tuple[int, int, int]:
        """(item_id, value, version) — what a copier transaction ships."""
        return (self.item_id, self.value, self.version)

    def __repr__(self) -> str:
        return f"DataItem(id={self.item_id}, value={self.value}, v={self.version})"
