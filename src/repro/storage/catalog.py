"""Replication catalog: which sites hold which items.

The paper assumes full replication (assumption 4) but sketches, in §3.2, a
type-3 control transaction for *partially* replicated databases where a
back-up copy is created on a site that had none.  The catalog is the shared
directory both cases consult.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StorageError


class ReplicationCatalog:
    """Directory mapping item ids to the sites holding a copy."""

    def __init__(self, item_ids: Iterable[int], site_ids: Iterable[int]) -> None:
        self.site_ids = sorted(site_ids)
        self._holders: dict[int, set[int]] = {item: set() for item in item_ids}

    @classmethod
    def fully_replicated(
        cls, item_ids: Iterable[int], site_ids: Iterable[int]
    ) -> "ReplicationCatalog":
        """Every site holds every item (the paper's configuration)."""
        catalog = cls(item_ids, site_ids)
        for item in catalog._holders:
            catalog._holders[item] = set(catalog.site_ids)
        return catalog

    @property
    def item_ids(self) -> list[int]:
        """All logical item ids, sorted."""
        return sorted(self._holders)

    def holders(self, item_id: int) -> set[int]:
        """Sites that hold a copy of ``item_id`` (a fresh set)."""
        try:
            return set(self._holders[item_id])
        except KeyError:
            raise StorageError(f"unknown item {item_id}") from None

    def holders_view(self, item_id: int) -> set[int]:
        """The live holder set for ``item_id`` — treat as read-only.

        Hot-path variant of :meth:`holders` without the defensive copy.
        """
        try:
            return self._holders[item_id]
        except KeyError:
            raise StorageError(f"unknown item {item_id}") from None

    def holds(self, site_id: int, item_id: int) -> bool:
        """Whether ``site_id`` holds a copy of ``item_id``."""
        try:
            return site_id in self._holders[item_id]
        except KeyError:
            raise StorageError(f"unknown item {item_id}") from None

    def items_on(self, site_id: int) -> list[int]:
        """All items a site holds, sorted."""
        return sorted(i for i, sites in self._holders.items() if site_id in sites)

    def add_copy(self, item_id: int, site_id: int) -> None:
        """Record a new copy (type-3 control transaction)."""
        if site_id not in self.site_ids:
            raise StorageError(f"unknown site {site_id}")
        self._holders[item_id].add(site_id)

    def remove_copy(self, item_id: int, site_id: int) -> None:
        """Record removal of a copy."""
        holders = self._holders[item_id]
        if site_id not in holders:
            raise StorageError(f"site {site_id} holds no copy of item {item_id}")
        if len(holders) == 1:
            raise StorageError(f"refusing to remove the last copy of item {item_id}")
        holders.remove(site_id)

    def is_fully_replicated(self) -> bool:
        """True if every site holds every item."""
        full = set(self.site_ids)
        return all(holders == full for holders in self._holders.values())

    def __repr__(self) -> str:
        return (
            f"ReplicationCatalog(items={len(self._holders)}, "
            f"sites={len(self.site_ids)}, full={self.is_fully_replicated()})"
        )
