"""Deterministic partitioning of a stale-item set across donor sites.

The planner assigns each fail-locked item to one up-to-date donor so the
recovering site can fetch all shards concurrently.  Determinism matters:
`repro.check` fingerprints protocol state, and chaos seeds must replay
byte-identically — so the plan is a pure function of the (sorted) item
list and the planner's current fail-lock/session view, with no RNG.

Balancing rule: items are considered in ascending id order; each goes to
the *least-loaded* eligible donor so far (ties broken by lowest donor
id).  Under full replication this degenerates to an even round-robin;
under partial replication it load-balances whatever donor sets exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rowaa import RowaaPlanner


def plan_partitions(
    planner: "RowaaPlanner",
    item_ids: Iterable[int],
    exclude: Iterable[int] = (),
    max_donors: int = 0,
) -> dict[int, list[int]]:
    """Shard ``item_ids`` across up-to-date donor sites.

    Returns ``{donor_site: [item, ...]}`` with every item list ascending.
    Items with no eligible donor (none operational and current, or all in
    ``exclude``) are simply absent — they cannot be fetched this round and
    will be re-planned once the donor picture changes.

    ``exclude`` removes donors from consideration (busy with an
    outstanding shard, or denied this epoch).  ``max_donors`` > 0 caps how
    many *distinct* donors the plan may open; once the cap is reached,
    items whose donor sets do not intersect the opened set are deferred to
    a later round rather than over-committing.
    """
    excluded = frozenset(exclude)
    shards: dict[int, list[int]] = {}
    loads: dict[int, int] = {}
    for item in sorted(item_ids):
        donors = [
            d for d in planner.up_to_date_sources(item) if d not in excluded
        ]
        if not donors:
            continue
        if max_donors > 0 and len(loads) >= max_donors:
            donors = [d for d in donors if d in loads]
            if not donors:
                continue
        best = min(donors, key=lambda d: (loads.get(d, 0), d))
        shards.setdefault(best, []).append(item)
        loads[best] = loads.get(best, 0) + 1
    return shards
