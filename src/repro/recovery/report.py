"""Byte-deterministic recovery-time report: build, validate, render, write.

Schema ``repro.recovery/1``.  Same discipline as ``repro.soak/1``: every
number derives from the seeded simulation, floats are rounded to fixed
precision, dict insertion order is fixed — so the same matrix always
serializes to the same bytes, which CI asserts by re-running and
comparing artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.recovery.experiment import RecoveryCell

__all__ = [
    "RECOVERY_SCHEMA",
    "build_recovery_report",
    "validate_recovery_report",
    "render_recovery_text",
    "write_recovery_report",
    "write_recovery_svg",
]

RECOVERY_SCHEMA = "repro.recovery/1"


def _round(value: float, digits: int = 3) -> float:
    return round(value, digits)


def build_recovery_report(
    cells: list[RecoveryCell],
    *,
    seed: int,
    wire_latency_ms: float = 9.0,
) -> dict:
    """Assemble the ``repro.recovery/1`` document from a finished matrix."""
    if not cells:
        raise ConfigurationError("recovery report needs at least one cell")
    donor_counts = sorted({c.donors for c in cells})
    stale_sizes = sorted({c.stale_items for c in cells})
    policies = sorted({c.policy for c in cells})
    cell_docs = [
        {
            "policy": c.policy,
            "donors": c.donors,
            "stale_items": c.stale_items,
            "recovery_ms": _round(c.recovery_ms),
            "initial_stale": c.initial_stale,
            "copier_requests": c.copier_requests,
            "batch_copier_requests": c.batch_copier_requests,
            "refreshed_by_write": c.refreshed_by_write,
            "refreshed_by_copier": c.refreshed_by_copier,
        }
        for c in sorted(
            cells, key=lambda c: (c.policy, c.donors, c.stale_items)
        )
    ]
    # Pairwise speedup: sequential two_step over parallel, per matrix
    # point present for both policies.
    by_key = {(c.policy, c.donors, c.stale_items): c for c in cells}
    speedups = []
    for donors in donor_counts:
        for stale in stale_sizes:
            sequential = by_key.get(("two_step", donors, stale))
            parallel = by_key.get(("parallel", donors, stale))
            if sequential is None or parallel is None:
                continue
            speedups.append(
                {
                    "donors": donors,
                    "stale_items": stale,
                    "two_step_ms": _round(sequential.recovery_ms),
                    "parallel_ms": _round(parallel.recovery_ms),
                    "speedup": _round(
                        sequential.recovery_ms / parallel.recovery_ms
                    ),
                }
            )
    at_4plus = [s["speedup"] for s in speedups if s["donors"] >= 4]
    return {
        "schema": RECOVERY_SCHEMA,
        "config": {
            "seed": seed,
            "wire_latency_ms": wire_latency_ms,
            "donor_counts": donor_counts,
            "stale_sizes": stale_sizes,
            "policies": policies,
        },
        "cells": cell_docs,
        "speedup": {
            "pairs": speedups,
            # The acceptance quantity: the WORST parallel-vs-sequential
            # ratio across all 4+-donor matrix points.
            "min_at_4plus_donors": min(at_4plus) if at_4plus else None,
        },
    }


def validate_recovery_report(doc: dict) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != RECOVERY_SCHEMA:
        problems.append(
            f"schema: expected {RECOVERY_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for section, kind in (("config", dict), ("cells", list), ("speedup", dict)):
        if not isinstance(doc.get(section), kind):
            problems.append(f"doc.{section}: expected {kind.__name__}")
    if problems:
        return problems
    if not doc["cells"]:
        problems.append("cells: empty matrix")
    for i, cell in enumerate(doc["cells"]):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: expected object")
            continue
        for key in ("policy", "donors", "stale_items", "recovery_ms",
                    "initial_stale", "refreshed_by_copier"):
            if key not in cell:
                problems.append(f"{where}: missing key {key!r}")
        recovery_ms = cell.get("recovery_ms")
        if isinstance(recovery_ms, (int, float)) and recovery_ms <= 0:
            problems.append(f"{where}.recovery_ms not positive: {recovery_ms}")
        initial = cell.get("initial_stale")
        stale = cell.get("stale_items")
        if (
            isinstance(initial, int)
            and isinstance(stale, int)
            and initial != stale
        ):
            # A cold crash stales the full database at the riser; a
            # mismatch means the cell measured something else.
            problems.append(
                f"{where}: initial_stale {initial} != stale_items {stale}"
            )
    speedup = doc["speedup"]
    if not isinstance(speedup.get("pairs"), list):
        problems.append("speedup.pairs: expected list")
        return problems
    for i, pair in enumerate(speedup["pairs"]):
        where = f"speedup.pairs[{i}]"
        two_step = pair.get("two_step_ms")
        parallel = pair.get("parallel_ms")
        ratio = pair.get("speedup")
        if not all(
            isinstance(v, (int, float)) for v in (two_step, parallel, ratio)
        ):
            problems.append(f"{where}: missing or non-numeric timings")
            continue
        if parallel > 0 and abs(ratio - two_step / parallel) > 0.01:
            problems.append(
                f"{where}: speedup {ratio} inconsistent with timings"
            )
    return problems


def _series_by_policy(doc: dict, stale_items: int) -> dict[str, list]:
    """recovery_ms vs donor count, one series per policy, at one stale size."""
    series: dict[str, list] = {}
    for cell in doc["cells"]:
        if cell["stale_items"] != stale_items:
            continue
        series.setdefault(cell["policy"], []).append(
            (float(cell["donors"]), cell["recovery_ms"])
        )
    for points in series.values():
        points.sort()
    return series


def render_recovery_text(doc: dict) -> str:
    """Human-readable report: matrix table, speedups, ASCII chart."""
    from repro.viz.ascii_chart import AsciiChart

    config = doc["config"]
    lines = [
        f"recovery-time matrix (seed={config['seed']}, "
        f"wire={config['wire_latency_ms']} ms): "
        f"donors {config['donor_counts']} x stale {config['stale_sizes']} "
        f"x policies {config['policies']}",
        "",
        f"{'policy':>10} {'donors':>6} {'stale':>6} {'recovery_ms':>12} "
        f"{'by_copier':>9} {'by_write':>8} {'batches':>7}",
    ]
    for cell in doc["cells"]:
        lines.append(
            f"{cell['policy']:>10} {cell['donors']:>6} "
            f"{cell['stale_items']:>6} {cell['recovery_ms']:>12.1f} "
            f"{cell['refreshed_by_copier']:>9} "
            f"{cell['refreshed_by_write']:>8} "
            f"{cell['batch_copier_requests']:>7}"
        )
    pairs = doc["speedup"]["pairs"]
    if pairs:
        lines.append("")
        lines.append("speedup (two_step / parallel):")
        for pair in pairs:
            lines.append(
                f"  donors={pair['donors']} stale={pair['stale_items']}: "
                f"{pair['two_step_ms']:.1f} ms / {pair['parallel_ms']:.1f} ms "
                f"= {pair['speedup']:.2f}x"
            )
        floor = doc["speedup"]["min_at_4plus_donors"]
        if floor is not None:
            lines.append(f"  minimum at 4+ donors: {floor:.2f}x")
    largest = max(config["stale_sizes"])
    series = _series_by_policy(doc, largest)
    if series:
        chart = AsciiChart(
            height=10,
            title=f"recovery time vs donors (stale={largest})",
            x_label="donors",
        )
        for policy in sorted(series):
            chart.add_series(policy, series[policy])
        lines.append("")
        lines.append(chart.render())
    return "\n".join(lines)


def write_recovery_report(doc: dict, path: str | Path) -> Path:
    """Write the report with fixed formatting (byte-deterministic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def write_recovery_svg(doc: dict, path: str | Path) -> Path:
    """Figure hook: recovery time vs donor count, one line per policy,
    at the largest stale size in the matrix."""
    from repro.viz.svg_chart import SvgChart

    largest = max(doc["config"]["stale_sizes"])
    series = _series_by_policy(doc, largest)
    if not series:
        raise ConfigurationError("recovery report has no plottable series")
    chart = SvgChart(
        title=f"recovery time vs donor count (stale={largest} items)",
        x_label="donor count",
        y_label="recovery time (ms)",
    )
    for policy in sorted(series):
        chart.add_series(policy, series[policy])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(chart.render(), encoding="utf-8")
    return path
