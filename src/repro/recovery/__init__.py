"""repro.recovery — parallel partitioned recovery.

The paper's two-step batch copier (§3.2) drains a recovering site's
fail-locked items sequentially: one outstanding batch, always from the
lowest up-to-date donor.  Production systems (RAMCloud being the
canonical example) recover by *partitioning* the stale data and replaying
from many peers at once, so recovery time is bounded by the slowest
shard, not the sum.

This package provides:

- :mod:`repro.recovery.partition` — the deterministic partition planner
  that shards a stale-item set across all up-to-date donors;
- :mod:`repro.recovery.scheduler` — :class:`ParallelCopierScheduler`, the
  bounded-concurrency fan-out engine behind ``RecoveryPolicy.PARALLEL``,
  with incremental re-planning as fail-locks clear or donors fail;
- :mod:`repro.recovery.experiment` — the recovery-time experiment family
  (time-to-last-faillock-clear vs. stale size vs. donor count vs. policy);
- :mod:`repro.recovery.report` — the byte-deterministic ``repro.recovery/1``
  report with ASCII/SVG charts;
- :mod:`repro.recovery.bench` — the ``repro bench --recovery`` regression
  gate behind ``BENCH_recovery.json``.

See docs/RECOVERY.md.
"""

from repro.recovery.partition import plan_partitions
from repro.recovery.scheduler import ParallelCopierScheduler

__all__ = [
    "plan_partitions",
    "ParallelCopierScheduler",
    "RecoveryCell",
    "run_recovery_cell",
    "run_recovery_matrix",
    "RECOVERY_SCHEMA",
    "build_recovery_report",
    "validate_recovery_report",
    "render_recovery_text",
    "write_recovery_report",
    "write_recovery_svg",
]


def __getattr__(name: str):
    # Experiment/report helpers import the full system stack; load them
    # lazily so `import repro.recovery` from the site layer (which
    # constructs the scheduler) stays cycle-free and cheap.
    if name in ("RecoveryCell", "run_recovery_cell", "run_recovery_matrix"):
        from repro.recovery import experiment

        return getattr(experiment, name)
    if name in (
        "RECOVERY_SCHEMA",
        "build_recovery_report",
        "validate_recovery_report",
        "render_recovery_text",
        "write_recovery_report",
        "write_recovery_svg",
    ):
        from repro.recovery import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
