"""The parallel copier scheduler behind ``RecoveryPolicy.PARALLEL``.

Where two-step recovery (§3.2) keeps a single outstanding batch copier,
this scheduler partitions the recovering site's remaining stale items
across *all* up-to-date donors (:func:`repro.recovery.plan_partitions`)
and keeps one bounded-size batch in flight per donor.  Donor-side CPU in
the :class:`~repro.system.costs.CostModel` is what then limits throughput:
with enough cores, each donor formats its COPY_RESP concurrently and
recovery time is governed by the largest shard, not the whole stale set.

Incremental catch-up is structural rather than event-driven: ``pump()``
re-reads the *current* stale set and donor picture every time it runs
(at recovery start, after every commit that cleared locks, after every
batch response, after a donor bounce or denial), so shards shrink as
transaction writes refresh copies, and work re-routes when a donor fails
mid-recovery.

Determinism: no RNG, no wall-clock; everything derives from the site's
protocol state.  The only scheduler-private state is the denied-donor set
for the current recovery epoch, exposed via :meth:`signature` so
``repro.check`` fingerprints cover it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import copier as copier_mod
from repro.core.recovery import RecoveryPolicy
from repro.metrics.records import CopierRecord
from repro.net.message import MessageType
from repro.recovery.partition import plan_partitions

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import HandlerContext
    from repro.site.site import DatabaseSite


def _batch_txn_id() -> int:
    # Imported lazily: repro.site.site constructs this scheduler, so a
    # module-level import back into it would be circular.
    from repro.site.site import BATCH_COPIER_TXN

    return BATCH_COPIER_TXN


class ParallelCopierScheduler:
    """Fan-out batch-copier engine for one recovering site.

    Owned by a :class:`~repro.site.site.DatabaseSite` whose configured
    recovery policy is PARALLEL; shares the site's ``_batch_pending``
    in-flight map so the existing response/denial/bounce plumbing (and the
    site signature) sees parallel shards exactly like two-step batches.
    """

    __slots__ = ("site", "_denied", "_epoch")

    def __init__(self, site: "DatabaseSite") -> None:
        self.site = site
        # Donors that answered COPY_DENIED this recovery epoch: our
        # fail-lock view said they were current but theirs disagreed.
        # Excluded from re-planning until the next epoch so a stale view
        # cannot produce an infinite request/deny loop.
        self._denied: set[int] = set()
        self._epoch: float = -1.0

    def crash_reset(self) -> None:
        """The owning site crashed: scheduler state is volatile."""
        self._denied.clear()
        self._epoch = -1.0

    def note_denied(self, donor: int) -> None:
        """A batch COPY_REQ to ``donor`` came back COPY_DENIED."""
        self._denied.add(donor)

    def pump(self, ctx: "HandlerContext") -> None:
        """(Re-)plan and issue batch copiers for every free donor.

        Safe to call at any point; does nothing unless the site is in a
        PARALLEL recovery period with stale items not already in flight.
        """
        site = self.site
        recovery = site.recovery
        if (
            recovery.policy is not RecoveryPolicy.PARALLEL
            or not recovery.in_recovery
        ):
            return
        if self._epoch != recovery.stats.started_at:
            # New recovery period: denials from the previous epoch are
            # stale knowledge (the donor may have recovered since).
            self._epoch = recovery.stats.started_at
            self._denied.clear()
        pending = site._batch_pending
        in_flight: set[int] = set()
        for items in pending.values():
            in_flight.update(items)
        remaining = [i for i in recovery.stale_items() if i not in in_flight]
        if not remaining:
            return
        fanout = site.config.recovery_fanout
        slots = 0
        if fanout > 0:
            slots = fanout - len(pending)
            if slots <= 0:
                return
        shards = plan_partitions(
            site.planner,
            remaining,
            exclude=set(pending) | self._denied,
            max_donors=slots,
        )
        if not shards:
            return
        ctx.charge(site.costs.recovery_plan_cost)
        batch_txn = _batch_txn_id()
        batch_size = recovery.batch_size
        for donor, items in sorted(shards.items()):
            batch = items[:batch_size]
            pending[donor] = batch
            ctx.charge(site.costs.copy_request_cost)
            ctx.send(
                donor,
                MessageType.COPY_REQ,
                copier_mod.build_copy_request(batch),
                txn_id=batch_txn,
                session=site.nsv.my_session,
            )
            recovery.note_copier_request(batch=True)
            site.metrics.record_copier(
                CopierRecord(
                    txn_id=batch_txn,
                    requester=site.site_id,
                    source=donor,
                    items=len(batch),
                    batch=True,
                    started_at=ctx.now,
                    finished_at=ctx.now,
                )
            )

    def signature(self) -> tuple:
        """Scheduler-private protocol-visible state (``repro.check``)."""
        return (tuple(sorted(self._denied)), self._epoch != -1.0)

    def __repr__(self) -> str:
        return (
            f"ParallelCopierScheduler(site={self.site.site_id}, "
            f"denied={sorted(self._denied)})"
        )
