"""The recovery-time experiment family.

One *cell* of the matrix measures a single recovery period end to end:
a cluster of ``donors + 1`` sites is built, site 0 is crashed cold (so
every one of its ``stale_items`` copies is stale on return), brought
back up, and driven until its last fail-lock clears.  The measured
quantity is the paper's recovery-window length — type-1 completion to
last fail-lock clear — read straight from the site's
:class:`~repro.core.recovery.RecoveryStats`.

The matrix sweeps that cell over donor count x stale-data size x
recovery policy.  ``two_step`` runs with ``batch_threshold=1.0`` so it
batch-copies *everything* from a single donor (the sequential baseline
the parallel engine is compared against); ``parallel`` fans out to every
donor.  Everything is seeded simulation, so the whole matrix — and the
``repro.recovery/1`` report built from it — is byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.recovery import RecoveryPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import FailSite, RecoverSite, Scenario, Weighted
from repro.workload.uniform import UniformWorkload

__all__ = ["RecoveryCell", "run_recovery_cell", "run_recovery_matrix"]

# Matrix defaults.  Donor counts bracket the acceptance point (>= 1.5x at
# 4+ donors); stale sizes span "a few batches" to "most of a database".
DEFAULT_DONORS = (1, 2, 4, 6)
DEFAULT_STALE_SIZES = (16, 32, 64)
DEFAULT_POLICIES = ("two_step", "parallel")


@dataclass(slots=True)
class RecoveryCell:
    """One measured recovery period (one matrix point)."""

    policy: str
    donors: int
    stale_items: int
    recovery_ms: float
    initial_stale: int
    copier_requests: int
    batch_copier_requests: int
    refreshed_by_write: int
    refreshed_by_copier: int


def run_recovery_cell(
    policy: str,
    donors: int,
    stale_items: int,
    *,
    seed: int = 42,
    wire_latency_ms: float = 9.0,
) -> RecoveryCell:
    """Measure one recovery period under ``policy`` with ``donors`` fresh
    sources and ``stale_items`` stale copies at the riser.

    The cluster gets ``donors + 2`` cores: enough that every donor's
    COPY_RESP formatting can overlap (the parallelism the engine
    exploits), while the wire latency keeps each exchange long enough
    that overlap matters.  Site 0 never coordinates (zero submission
    weight), so its recovery window is driven purely by copier traffic
    and incoming writes — the paper's §4 shape.
    """
    if donors < 1:
        raise ConfigurationError(f"donors must be >= 1: {donors}")
    if stale_items < 1:
        raise ConfigurationError(f"stale_items must be >= 1: {stale_items}")
    config = SystemConfig(
        num_sites=donors + 1,
        db_size=stale_items,
        seed=seed,
        cores=donors + 2,
        wire_latency_ms=wire_latency_ms,
        # A cold crash wipes site 0's copies, so every item it holds is
        # stale when it returns — stale_items IS the stale-data size.
        cold_recovery=True,
        recovery_policy=RecoveryPolicy(policy),
        # two_step with threshold 1.0 batch-copies the full stale set
        # from one donor per round: the sequential baseline.  parallel
        # ignores the threshold (it always fans out).
        batch_threshold=1.0,
    )
    cluster = Cluster(config)
    weights = {0: 0.0}
    weights.update({s: 1.0 for s in range(1, donors + 1)})
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=2,
        policy=Weighted(weights),
        until_recovered=(0,),
        max_txns=200,
    )
    scenario.add_action(1, FailSite(0))
    scenario.add_action(2, RecoverSite(0))
    cluster.run(scenario)
    stats = cluster.site(0).recovery.stats
    if not stats.complete:
        raise SimulationError(
            f"recovery cell did not close its period "
            f"(policy={policy}, donors={donors}, stale={stale_items})"
        )
    return RecoveryCell(
        policy=policy,
        donors=donors,
        stale_items=stale_items,
        recovery_ms=stats.finished_at - stats.started_at,
        initial_stale=stats.initial_stale,
        copier_requests=stats.copier_requests,
        batch_copier_requests=stats.batch_copier_requests,
        refreshed_by_write=stats.refreshed_by_write,
        refreshed_by_copier=stats.refreshed_by_copier,
    )


def run_recovery_matrix(
    *,
    donor_counts: Iterable[int] = DEFAULT_DONORS,
    stale_sizes: Iterable[int] = DEFAULT_STALE_SIZES,
    policies: Iterable[str] = DEFAULT_POLICIES,
    seed: int = 42,
    wire_latency_ms: float = 9.0,
) -> list[RecoveryCell]:
    """The full sweep, in fixed (policy, donors, stale) nesting order so
    the cell list — and every report built from it — is deterministic."""
    cells: list[RecoveryCell] = []
    for policy in policies:
        for donor_count in donor_counts:
            for stale in stale_sizes:
                cells.append(
                    run_recovery_cell(
                        policy,
                        donor_count,
                        stale,
                        seed=seed,
                        wire_latency_ms=wire_latency_ms,
                    )
                )
    return cells
