"""Recovery benchmark + regression gate (``repro bench --recovery``).

Two measurements in one document, ``BENCH_recovery.json``:

* **Deterministic sim timings** — the recovery-window lengths (sim-ms)
  of the two_step and parallel policies at the acceptance point
  (4 donors, 64 stale items), and their ratio.  These are pure
  functions of the seed, so the gate compares them *exactly* against
  the committed artifact: any drift means simulation behaviour changed,
  not machine noise.  The gate also enforces the subsystem's floor —
  parallel must beat sequential two_step by at least
  ``MIN_PARALLEL_SPEEDUP``.
* **Wall-clock throughput** — events/sec through a small recovery
  matrix (warm run, then best-of-3, the ``repro.perf.bench``
  methodology), gated with the same fractional tolerance as the other
  bench presets.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.perf.bench import _count_fired
from repro.recovery.experiment import run_recovery_cell, run_recovery_matrix

__all__ = [
    "RECOVERY_BENCH_SCHEMA",
    "MIN_PARALLEL_SPEEDUP",
    "run_recovery_bench",
    "validate_recovery_bench_doc",
    "check_recovery_regression",
    "render_recovery_bench",
    "write_recovery_bench",
]

RECOVERY_BENCH_SCHEMA = "repro.bench.recovery/1"

# The acceptance floor: parallel recovery must clear the last fail-lock
# at least this much faster than sequential two_step at the gate point.
MIN_PARALLEL_SPEEDUP = 1.5

# The gate point (4+ donors is where the issue's acceptance bar sits).
GATE_DONORS = 4
GATE_STALE = 64


def run_recovery_bench(quick: bool = False, seed: int = 42) -> dict[str, Any]:
    """Measure both halves; return the ``BENCH_recovery.json`` document.

    The deterministic gate cells are identical in quick and full mode
    (they are cheap and must stay comparable to the committed artifact);
    quick mode only shrinks the wall-clock matrix.
    """
    sequential = run_recovery_cell("two_step", GATE_DONORS, GATE_STALE, seed=seed)
    parallel = run_recovery_cell("parallel", GATE_DONORS, GATE_STALE, seed=seed)
    speedup = sequential.recovery_ms / parallel.recovery_ms

    donor_counts = (2, 4) if quick else (1, 2, 4, 6)
    stale_sizes = (32,) if quick else (32, 64)

    def matrix() -> None:
        run_recovery_matrix(
            donor_counts=donor_counts, stale_sizes=stale_sizes, seed=seed
        )

    with _count_fired() as counter:
        matrix()  # warm: imports, bytecode/attribute caches
    events = counter["fired"]
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        matrix()
        best = min(best, time.perf_counter() - start)
    return {
        "schema": RECOVERY_BENCH_SCHEMA,
        "quick": quick,
        "seed": seed,
        "gate": {
            "donors": GATE_DONORS,
            "stale_items": GATE_STALE,
            "two_step_ms": round(sequential.recovery_ms, 3),
            "parallel_ms": round(parallel.recovery_ms, 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_PARALLEL_SPEEDUP,
        },
        "throughput": {
            "donor_counts": list(donor_counts),
            "stale_sizes": list(stale_sizes),
            "events": events,
            "wall_s": round(best, 6),
            "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
        },
    }


def validate_recovery_bench_doc(doc: Any) -> list[str]:
    """Schema problems in a ``BENCH_recovery.json`` document ([] if none)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != RECOVERY_BENCH_SCHEMA:
        problems.append(
            f"schema: expected {RECOVERY_BENCH_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    gate = doc.get("gate")
    if not isinstance(gate, dict):
        problems.append("gate: expected object")
    else:
        for key in ("two_step_ms", "parallel_ms", "speedup", "min_speedup"):
            if not isinstance(gate.get(key), (int, float)):
                problems.append(f"gate.{key}: missing or non-numeric")
        if not problems and gate["speedup"] < gate["min_speedup"]:
            problems.append(
                f"gate: parallel speedup {gate['speedup']}x below the "
                f"{gate['min_speedup']}x floor"
            )
    throughput = doc.get("throughput")
    if not isinstance(throughput, dict):
        problems.append("throughput: expected object")
    else:
        for key in ("events", "wall_s", "events_per_sec"):
            if not isinstance(throughput.get(key), (int, float)):
                problems.append(f"throughput.{key}: missing or non-numeric")
    return problems


def check_recovery_regression(
    committed: dict[str, Any], current: dict[str, Any], tolerance: float = 0.30
) -> list[str]:
    """Gate the current measurement against the committed artifact.

    Sim timings compare exactly (they are deterministic — a drift is a
    behaviour change, and the artifact must be regenerated *knowingly*
    with ``--write``); events/sec compares with ``tolerance`` slack.
    """
    problems: list[str] = []
    committed_gate = committed.get("gate", {})
    current_gate = current.get("gate", {})
    for key in ("two_step_ms", "parallel_ms"):
        old = committed_gate.get(key)
        new = current_gate.get(key)
        if old != new:
            problems.append(
                f"gate.{key}: sim timing drifted from committed "
                f"{old} to {new} (deterministic value — simulation "
                f"behaviour changed; regenerate with --recovery --write "
                f"if intended)"
            )
    old_eps = committed.get("throughput", {}).get("events_per_sec")
    new_eps = current.get("throughput", {}).get("events_per_sec")
    if isinstance(old_eps, (int, float)) and isinstance(new_eps, (int, float)):
        floor = old_eps * (1.0 - tolerance)
        if new_eps < floor:
            problems.append(
                f"throughput: {new_eps:.0f} events/sec is more than "
                f"{tolerance:.0%} below committed {old_eps:.0f}"
            )
    return problems


def render_recovery_bench(doc: dict[str, Any]) -> str:
    """One-screen summary of the document."""
    gate = doc["gate"]
    throughput = doc["throughput"]
    return "\n".join(
        [
            f"recovery bench (seed={doc['seed']}, quick={doc['quick']}):",
            f"  gate ({gate['donors']} donors, {gate['stale_items']} stale): "
            f"two_step={gate['two_step_ms']:.1f} ms "
            f"parallel={gate['parallel_ms']:.1f} ms "
            f"speedup={gate['speedup']:.2f}x (floor {gate['min_speedup']}x)",
            f"  throughput: {throughput['events']} events in "
            f"{throughput['wall_s']:.3f} s = "
            f"{throughput['events_per_sec']:.0f} events/sec",
        ]
    )


def write_recovery_bench(
    doc: dict[str, Any], path: str | Path = "BENCH_recovery.json"
) -> Path:
    """Write the artifact with fixed formatting."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path
