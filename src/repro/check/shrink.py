"""Delta-debugging a violating schedule to a minimal counterexample.

A decision vector is a list of deviations from the default schedule:
entry 0 *is* the default, so "remove this deviation" means "zero this
position" — no list surgery, and (because vectors are advice, degrading
to defaults wherever they go stale) every candidate the minimizer
proposes is a well-defined run.  Three passes:

1. **ddmin** over the nonzero positions (Zeller & Hildebrandt's
   algorithm): try keeping only chunks / only complements of chunks of
   the deviation set, refining the chunk size until single deviations
   can't be removed.
2. **Value lowering**: for each surviving position, try each smaller
   nonzero alternative (closer to the default order).
3. **Canonicalization**: re-run the minimized vector and keep the
   *executed* decisions (truncated of trailing defaults), so the
   reported counterexample is exactly what a replay will do.

The result is 1-minimal with respect to the target invariant: zeroing
any single remaining deviation loses the violation.  Like everything in
:mod:`repro.check`, shrinking is deterministic — same config + vector
in, same minimal schedule out, in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.check.runner import CheckConfig, CheckRunResult, run_schedule
from repro.errors import CheckError

__all__ = ["ShrinkResult", "shrink"]


@dataclass(slots=True)
class ShrinkResult:
    """A minimized counterexample and the effort spent reaching it."""

    vector: list[int] = field(default_factory=list)
    invariant: str = ""
    tests_run: int = 0
    removed: int = 0   # deviations eliminated from the original vector
    run: Optional[CheckRunResult] = None


def shrink(
    config: CheckConfig,
    vector: Sequence[int],
    invariant: Optional[str] = None,
) -> ShrinkResult:
    """Minimize ``vector`` while preserving a violation.

    ``invariant`` pins which violation must survive; by default it is the
    first invariant the unshrunk schedule violates (shrinking must not
    "succeed" by trading the reported bug for a different one).
    """
    base = list(vector)
    tests = 0

    first = run_schedule(config, base)
    tests += 1
    if not first.violations:
        raise CheckError(
            "schedule does not violate any invariant under this config; "
            "nothing to shrink"
        )
    if invariant is None:
        invariant = first.violations[0].invariant

    def failing(candidate: list[int]) -> bool:
        nonlocal tests
        tests += 1
        run = run_schedule(config, candidate)
        return any(v.invariant == invariant for v in run.violations)

    if not any(v.invariant == invariant for v in first.violations):
        raise CheckError(
            f"schedule does not violate invariant {invariant!r}"
        )

    positions = [i for i, v in enumerate(base) if v != 0]
    original_deviations = len(positions)

    def keeping(keep: Sequence[int]) -> list[int]:
        kept = set(keep)
        return [v if i in kept else 0 for i, v in enumerate(base)]

    # Pass 1: ddmin over deviation positions.
    granularity = 2
    while len(positions) >= 2:
        chunk_size = max(1, len(positions) // granularity)
        chunks = [
            positions[i : i + chunk_size]
            for i in range(0, len(positions), chunk_size)
        ]
        reduced = False
        for i, chunk in enumerate(chunks):
            if len(chunk) < len(positions) and failing(keeping(chunk)):
                positions = chunk
                granularity = 2
                reduced = True
                break
            complement = [p for j, c in enumerate(chunks) if j != i for p in c]
            if complement and len(complement) < len(positions) and failing(
                keeping(complement)
            ):
                positions = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(positions):
                break
            granularity = min(len(positions), granularity * 2)
    if len(positions) == 1 and failing(keeping([])):
        positions = []
    base = keeping(positions)

    # Pass 2: lower surviving deviations toward the default.
    for position in positions:
        for lower in range(1, base[position]):
            candidate = list(base)
            candidate[position] = lower
            if failing(candidate):
                base = candidate
                break

    # Pass 3: canonicalize against an actual execution.
    final = run_schedule(config, base)
    tests += 1
    minimal = [d.chosen for d in final.decisions]
    while minimal and minimal[-1] == 0:
        minimal.pop()

    return ShrinkResult(
        vector=minimal,
        invariant=invariant,
        tests_run=tests,
        removed=original_deviations - sum(1 for v in minimal if v != 0),
        run=final,
    )
