"""State fingerprinting for visited-state pruning.

A fingerprint must identify cluster states that will *behave*
identically: two runs that reach the same fingerprint can only diverge
through future choice points, so the explorer needs to expand the
alternatives at such a state once.  The digest therefore covers exactly
the protocol-visible state —

* every site's :meth:`DatabaseSite.signature` (committed + staged
  copies, session vector, fail-locks, both 2PC roles, lock table),
* the managing site's drive-loop progress, and
* the *pending event set*: live scheduler entries described by relative
  due time, action, and a stable payload summary.

— and excludes everything that is history, not state: metrics, logs,
absolute timestamps, and process-local identifiers (``Message.msg_id``
is a process-global counter and would poison cross-process stability;
so would Python's built-in ``hash()`` for strings, which is
``PYTHONHASHSEED``-randomized — hence :mod:`hashlib`).
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, TYPE_CHECKING

from repro.net.message import Message
from repro.net.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.cluster import Cluster

__all__ = ["cluster_fingerprint", "message_signature", "pending_signature"]


def message_signature(msg: Message) -> tuple:
    """Stable identity of an in-flight message (no ``msg_id``, no times)."""
    return (
        "msg",
        msg.src,
        msg.dst,
        msg.mtype.value,
        msg.txn_id,
        msg.session,
        msg.seq,
        _canon(msg.payload),
    )


def _canon(value: Any) -> Any:
    """Recursively canonicalize payload data into hashable, stable terms."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return tuple(
            (_canon(k), _canon(v)) for k, v in sorted(value.items(), key=repr)
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canon(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return tuple(items)
    if isinstance(value, Message):
        return message_signature(value)
    signature = getattr(value, "signature", None)
    if callable(signature):
        return (type(value).__name__, signature())
    # Dataclass-style objects (SessionRecord, Transaction) have stable,
    # address-free reprs; anything else degrades to its type name.
    text = repr(value)
    return text if "0x" not in text else type(value).__name__


def _action_name(action: Any) -> str:
    """A process-stable name for a heap-entry callable."""
    name = getattr(action, "__qualname__", None)
    if name is None:
        func = getattr(action, "__func__", None)
        name = getattr(func, "__qualname__", type(action).__name__)
    return name


def _entry_signature(entry: tuple, now: float) -> tuple:
    """Stable description of one live heap entry, relative to ``now``."""
    time, _seq, action, payload = entry
    relative = round(time - now, 9)
    if action is None:  # cancellable Event wrapper
        event = payload
        return (
            relative,
            "timer",
            event.label,
            _action_name(event.action),
            tuple(_canon(a) for a in event.args),
        )
    func = getattr(action, "__func__", None)
    if func is Network._deliver:
        return (relative, "deliver", message_signature(payload[0]))
    if func is Network._release_activation or func is Network._run_activation:
        # The trailing arg is the obs trace scope id: -1 untraced, an
        # event counter when a TraceSink is enabled.  It is observation,
        # not protocol state — hashing it would make tracing perturb
        # exploration.
        payload = payload[:-1]
    return (
        relative,
        _action_name(action),
        tuple(_canon(a) for a in payload),
    )


def pending_signature(cluster: "Cluster") -> tuple:
    """Signatures of all live pending events, sorted for stability.

    Sorted by repr rather than heap position: the heap's internal layout
    depends on push/pop history, which is schedule history — exactly what
    a state fingerprint must not observe.
    """
    scheduler = cluster.scheduler
    now = scheduler.clock._now
    sigs = []
    for entry in scheduler._heap:
        if entry[2] is None and entry[3].cancelled:
            continue
        sigs.append(_entry_signature(entry, now))
    sigs.sort(key=repr)
    return tuple(sigs)


def cluster_fingerprint(cluster: "Cluster") -> str:
    """Digest of the whole protocol-visible cluster state."""
    signature = (
        tuple(site.signature() for site in cluster.sites),
        cluster.manager.signature(),
        pending_signature(cluster),
    )
    return hashlib.blake2b(repr(signature).encode(), digest_size=16).hexdigest()
