"""Choice points and decision vectors — the model checker's steering wheel.

The checker never forks the interpreter.  Every exploration step
re-executes the *whole* deterministic simulation from scratch, steered by
a **decision vector**: a list of small integers consumed in encounter
order, one per choice point.  Index ``i`` of the vector picks the
alternative at the ``i``-th choice point the run encounters; past the
end of the vector (or when the entry is out of range for the arity the
run actually presents) the run takes alternative ``0``, the *default* —
which is defined, at every choice kind, to be exactly what the
unmodified simulator would do.  Two consequences shape everything else:

* **Any vector is a well-defined run.**  Decision vectors are advice,
  not a script; a vector that no longer matches the run (because an
  earlier deviation changed which choice points exist downstream) simply
  degrades to defaults.  This is what makes delta-debugging sound: every
  candidate the shrinker proposes is executable.
* **The empty vector is the unperturbed run.**  With every hook
  installed and an empty vector, the simulation is event-for-event
  identical to a run with no hooks at all (pinned by
  ``tests/test_check_runner.py``).

A :class:`ChoiceController` carries the vector through one run and
records a :class:`Decision` for every choice point *consulted* (hooks
skip degenerate arity-1 points entirely, so vectors stay short).  The
recorded trace is the run's schedule: replaying the chosen values
reproduces it bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

__all__ = ["Decision", "ChoiceController"]


@dataclass(slots=True, frozen=True)
class Decision:
    """One consulted choice point in one run.

    ``fingerprint`` hashes the cluster state *at the moment of the
    choice* together with the choice kind and candidate labels; the
    explorer uses it for visited-state pruning, so it must be stable
    across processes (labels exclude process-local ids like
    ``Message.msg_id``).
    """

    kind: str                      # "order" | "fate" | "fault"
    arity: int
    chosen: int
    labels: tuple[str, ...]
    # One key per candidate describing what the alternative touches
    # (e.g. ("deliver", src, dst)); drives sleep-set-style pruning.
    dep_keys: tuple[tuple, ...] = ()
    fingerprint: str = ""


class ChoiceController:
    """Threads one decision vector through one simulation run.

    ``state_fn`` (optional) returns a stable digest of the cluster state;
    when set, every recorded :class:`Decision` carries a fingerprint of
    (state, kind, labels) — the identity of the choice point itself.
    """

    def __init__(
        self,
        advice: Optional[Sequence[int]] = None,
        state_fn: Optional[Callable[[], str]] = None,
    ) -> None:
        self.advice: list[int] = list(advice or [])
        self.state_fn = state_fn
        self.trace: list[Decision] = []

    def choose(
        self,
        kind: str,
        labels: Sequence[str],
        dep_keys: Iterable[tuple] = (),
    ) -> int:
        """Resolve one choice point; returns the index to take.

        The next unconsumed advice entry wins if it is in range for this
        arity; anything else (vector exhausted, stale advice) falls back
        to the default alternative 0.
        """
        arity = len(labels)
        index = len(self.trace)
        chosen = 0
        if index < len(self.advice):
            want = self.advice[index]
            if 0 <= want < arity:
                chosen = want
        fingerprint = ""
        if self.state_fn is not None:
            raw = "|".join((self.state_fn(), kind, "\x1f".join(labels)))
            fingerprint = hashlib.blake2b(
                raw.encode(), digest_size=12
            ).hexdigest()
        self.trace.append(
            Decision(
                kind=kind,
                arity=arity,
                chosen=chosen,
                labels=tuple(labels),
                dep_keys=tuple(dep_keys),
                fingerprint=fingerprint,
            )
        )
        return chosen

    @property
    def chosen_vector(self) -> list[int]:
        """The decisions this run actually executed, as a replay vector."""
        return [d.chosen for d in self.trace]

    def __repr__(self) -> str:
        return (
            f"ChoiceController(advice={self.advice}, "
            f"consulted={len(self.trace)})"
        )
