"""Bounded DFS over the schedule space, with pruning.

Stateless-search style: the explorer holds no simulator state, only a
stack of decision-vector prefixes.  Popping a prefix re-executes the
whole run (cheap — these are small configurations by design), then
expands every *new* branch point the run encountered past its prefix:

* **Visited-state pruning** — each :class:`Decision` carries a
  fingerprint of (cluster state, choice kind, candidate labels).  Two
  runs that arrive at the same fingerprint face the same subtree, so the
  alternatives at it are expanded once, ever.
* **Sleep-set-style pruning** (heuristic, on by default) — at an order
  point, the alternative "fire the delivery to site X first" is skipped
  when every candidate ahead of it is a delivery to a *different* site:
  same-instant deliveries to distinct sites commute (distinct endpoint
  state, distinct channels), so the permuted interleaving reaches a
  state the default order also reaches.  It is labelled a heuristic
  because downstream tie-break *sequence numbers* still differ; disable
  with ``sleep_sets=False`` (or ``--no-sleep-sets``) to search the
  unpruned space.
* **Budgets** — ``max_runs`` bounds total re-executions, ``max_depth``
  bounds how deep in the decision sequence new branches are opened.
  ``budget_exhausted`` in the stats says the frontier was not empty when
  the explorer stopped.

Fault/fate alternatives are expanded before order alternatives (the
bug-dense part of the space first); within a priority class, shallower
branch points first.  The whole search is a pure function of
(config, budgets): same inputs, same visited-state count, same
counterexample — byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.check.choices import Decision
from repro.check.runner import CheckConfig, CheckRunResult, run_schedule
from repro.metrics.records import ViolationRecord

__all__ = ["ExplorationStats", "ExplorationResult", "explore"]

# Expansion priority by choice kind: crash/drop placements find protocol
# bugs far more often than event permutations, so they go first.
_KIND_PRIORITY = {"fault": 0, "fate": 0, "order": 1}


@dataclass(slots=True)
class ExplorationStats:
    """Search-effort accounting (deterministic per config + budgets)."""

    runs: int = 0
    states: int = 0          # distinct branch-point fingerprints expanded
    pruned_visited: int = 0  # branch points skipped: fingerprint seen
    pruned_sleep: int = 0    # alternatives skipped: commuting deliveries
    violations_found: int = 0
    budget_exhausted: bool = False


@dataclass(slots=True)
class ExplorationResult:
    """What a bounded exploration established."""

    config: CheckConfig
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    # First violating schedule found (canonical executed vector), if any.
    counterexample: Optional[list[int]] = None
    violation: Optional[ViolationRecord] = None
    counterexample_run: Optional[CheckRunResult] = None

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def _sleep_prunable(decision: Decision, alt: int) -> bool:
    """Whether alternative ``alt`` commutes with every earlier candidate."""
    if decision.kind != "order" or len(decision.dep_keys) != decision.arity:
        return False
    key = decision.dep_keys[alt]
    if key[0] != "deliver":
        return False
    dst = key[2]
    for earlier in decision.dep_keys[:alt]:
        if earlier[0] != "deliver" or earlier[2] == dst:
            return False
    return True


def explore(
    config: CheckConfig,
    *,
    max_runs: int = 200,
    max_depth: int = 40,
    stop_on_violation: bool = True,
    sleep_sets: bool = True,
) -> ExplorationResult:
    """Bounded-DFS the schedule space of ``config``.

    Returns when a violation is found (unless ``stop_on_violation`` is
    False), the frontier empties (the bounded space is exhausted), or
    ``max_runs`` re-executions are spent.
    """
    stats = ExplorationStats()
    result = ExplorationResult(config=config, stats=stats)
    expanded: set[str] = set()
    # LIFO frontier of decision-vector prefixes; starts at the root (the
    # unperturbed run).
    frontier: list[list[int]] = [[]]

    while frontier:
        if stats.runs >= max_runs:
            stats.budget_exhausted = True
            break
        prefix = frontier.pop()
        run = run_schedule(config, prefix)
        stats.runs += 1

        if run.violations:
            stats.violations_found += 1
            if result.counterexample is None:
                result.counterexample = run.chosen
                result.violation = run.violations[0]
                result.counterexample_run = run
            if stop_on_violation:
                break
            continue  # don't open branches below a violating schedule

        children: list[tuple[int, int, list[int]]] = []
        for index, decision in enumerate(run.decisions):
            if index < len(prefix):
                continue  # fixed by the prefix; expanded by an ancestor
            if index >= max_depth:
                break
            if decision.arity < 2:
                continue
            if decision.fingerprint in expanded:
                stats.pruned_visited += 1
                continue
            expanded.add(decision.fingerprint)
            base = [d.chosen for d in run.decisions[:index]]
            priority = _KIND_PRIORITY.get(decision.kind, 1)
            for alt in range(1, decision.arity):
                if sleep_sets and _sleep_prunable(decision, alt):
                    stats.pruned_sleep += 1
                    continue
                children.append((priority, index, base + [alt]))
        # Highest-priority, shallowest child on top of the LIFO frontier.
        children.sort(key=lambda c: (c[0], c[1], c[2]))
        frontier.extend(vec for _p, _i, vec in reversed(children))

    stats.states = len(expanded)
    return result
