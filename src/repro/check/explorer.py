"""Bounded DFS over the schedule space, with pruning.

Stateless-search style: the explorer holds no simulator state, only a
stack of decision-vector prefixes.  Popping a prefix re-executes the
whole run (cheap — these are small configurations by design), then
expands every *new* branch point the run encountered past its prefix:

* **Visited-state pruning** — each :class:`Decision` carries a
  fingerprint of (cluster state, choice kind, candidate labels).  Two
  runs that arrive at the same fingerprint face the same subtree, so the
  alternatives at it are expanded once, ever.
* **Sleep-set-style pruning** (heuristic, on by default) — at an order
  point, the alternative "fire the delivery to site X first" is skipped
  when every candidate ahead of it is a delivery to a *different* site:
  same-instant deliveries to distinct sites commute (distinct endpoint
  state, distinct channels), so the permuted interleaving reaches a
  state the default order also reaches.  It is labelled a heuristic
  because downstream tie-break *sequence numbers* still differ; disable
  with ``sleep_sets=False`` (or ``--no-sleep-sets``) to search the
  unpruned space.
* **Budgets** — ``max_runs`` bounds total re-executions, ``max_depth``
  bounds how deep in the decision sequence new branches are opened.
  ``budget_exhausted`` in the stats says the frontier was not empty when
  the explorer stopped.

Fault/fate alternatives are expanded before order alternatives (the
bug-dense part of the space first); within a priority class, shallower
branch points first.  The whole search is a pure function of
(config, budgets): same inputs, same visited-state count, same
counterexample — byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.check.choices import Decision
from repro.check.runner import CheckConfig, CheckRunResult, run_schedule
from repro.metrics.records import ViolationRecord

__all__ = ["ExplorationStats", "ExplorationResult", "explore", "explore_parallel"]

# Expansion priority by choice kind: crash/drop placements find protocol
# bugs far more often than event permutations, so they go first.
_KIND_PRIORITY = {"fault": 0, "fate": 0, "order": 1}


@dataclass(slots=True)
class ExplorationStats:
    """Search-effort accounting (deterministic per config + budgets)."""

    runs: int = 0
    states: int = 0          # distinct branch-point fingerprints expanded
    pruned_visited: int = 0  # branch points skipped: fingerprint seen
    pruned_sleep: int = 0    # alternatives skipped: commuting deliveries
    violations_found: int = 0
    budget_exhausted: bool = False


@dataclass(slots=True)
class ExplorationResult:
    """What a bounded exploration established."""

    config: CheckConfig
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    # First violating schedule found (canonical executed vector), if any.
    counterexample: Optional[list[int]] = None
    violation: Optional[ViolationRecord] = None
    counterexample_run: Optional[CheckRunResult] = None
    # Every branch-point fingerprint expanded by the search, sorted.  For
    # a parallel exploration this is the deterministic merge of the
    # workers' sets (input-order union — independent of worker timing).
    fingerprints: tuple[str, ...] = ()

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def _sleep_prunable(decision: Decision, alt: int) -> bool:
    """Whether alternative ``alt`` commutes with every earlier candidate."""
    if decision.kind != "order" or len(decision.dep_keys) != decision.arity:
        return False
    key = decision.dep_keys[alt]
    if key[0] != "deliver":
        return False
    dst = key[2]
    for earlier in decision.dep_keys[:alt]:
        if earlier[0] != "deliver" or earlier[2] == dst:
            return False
    return True


def _expand_children(
    run: CheckRunResult,
    prefix: list[int],
    expanded: set[str],
    stats: ExplorationStats,
    *,
    max_depth: int,
    sleep_sets: bool,
) -> list[tuple[int, int, list[int]]]:
    """New branch alternatives below ``prefix``, as (priority, depth, vector)."""
    children: list[tuple[int, int, list[int]]] = []
    for index, decision in enumerate(run.decisions):
        if index < len(prefix):
            continue  # fixed by the prefix; expanded by an ancestor
        if index >= max_depth:
            break
        if decision.arity < 2:
            continue
        if decision.fingerprint in expanded:
            stats.pruned_visited += 1
            continue
        expanded.add(decision.fingerprint)
        base = [d.chosen for d in run.decisions[:index]]
        priority = _KIND_PRIORITY.get(decision.kind, 1)
        for alt in range(1, decision.arity):
            if sleep_sets and _sleep_prunable(decision, alt):
                stats.pruned_sleep += 1
                continue
            children.append((priority, index, base + [alt]))
    return children


def _search(
    config: CheckConfig,
    frontier: list[list[int]],
    expanded: set[str],
    stats: ExplorationStats,
    result: ExplorationResult,
    *,
    max_runs: int,
    max_depth: int,
    stop_on_violation: bool,
    sleep_sets: bool,
) -> None:
    """The bounded-DFS loop shared by serial and per-worker exploration.

    Mutates ``frontier``, ``expanded``, ``stats``, and ``result`` in
    place; a pure function of its arguments otherwise (same inputs, same
    visited-state count, same counterexample — byte for byte).
    """
    while frontier:
        if stats.runs >= max_runs:
            stats.budget_exhausted = True
            break
        prefix = frontier.pop()
        run = run_schedule(config, prefix)
        stats.runs += 1

        if run.violations:
            stats.violations_found += 1
            if result.counterexample is None:
                result.counterexample = run.chosen
                result.violation = run.violations[0]
                result.counterexample_run = run
            if stop_on_violation:
                break
            continue  # don't open branches below a violating schedule

        children = _expand_children(
            run, prefix, expanded, stats, max_depth=max_depth, sleep_sets=sleep_sets
        )
        # Highest-priority, shallowest child on top of the LIFO frontier.
        children.sort(key=lambda c: (c[0], c[1], c[2]))
        frontier.extend(vec for _p, _i, vec in reversed(children))


def explore(
    config: CheckConfig,
    *,
    max_runs: int = 200,
    max_depth: int = 40,
    stop_on_violation: bool = True,
    sleep_sets: bool = True,
) -> ExplorationResult:
    """Bounded-DFS the schedule space of ``config``.

    Returns when a violation is found (unless ``stop_on_violation`` is
    False), the frontier empties (the bounded space is exhausted), or
    ``max_runs`` re-executions are spent.
    """
    stats = ExplorationStats()
    result = ExplorationResult(config=config, stats=stats)
    expanded: set[str] = set()
    # LIFO frontier of decision-vector prefixes; starts at the root (the
    # unperturbed run).
    frontier: list[list[int]] = [[]]
    _search(
        config,
        frontier,
        expanded,
        stats,
        result,
        max_runs=max_runs,
        max_depth=max_depth,
        stop_on_violation=stop_on_violation,
        sleep_sets=sleep_sets,
    )
    stats.states = len(expanded)
    result.fingerprints = tuple(sorted(expanded))
    return result


def _explore_worker(shared: tuple, prefixes: list[list[int]]) -> tuple:
    """One worker's share of a parallel exploration (runs in the pool).

    ``shared`` is ``(config, max_runs, max_depth, sleep_sets,
    stop_on_violation, preexpanded)`` where ``preexpanded`` holds the
    fingerprints the parent expanded at the root — seeding the visited
    set with them keeps workers from re-opening root branch points.
    Returns plain data only: a stats tuple, the sorted fingerprints this
    worker newly expanded, and the counterexample (vector + violation)
    if it found one.
    """
    config, max_runs, max_depth, sleep_sets, stop_on_violation, preexpanded = shared
    stats = ExplorationStats()
    result = ExplorationResult(config=config, stats=stats)
    expanded = set(preexpanded)
    # Reversed so the LIFO pop visits this worker's prefixes in the
    # priority order the parent assigned them.
    frontier = [list(prefix) for prefix in reversed(prefixes)]
    _search(
        config,
        frontier,
        expanded,
        stats,
        result,
        max_runs=max_runs,
        max_depth=max_depth,
        stop_on_violation=stop_on_violation,
        sleep_sets=sleep_sets,
    )
    new_fingerprints = sorted(expanded.difference(preexpanded))
    stats_tuple = (
        stats.runs,
        stats.pruned_visited,
        stats.pruned_sleep,
        stats.violations_found,
        stats.budget_exhausted,
    )
    return (stats_tuple, new_fingerprints, result.counterexample, result.violation)


def explore_parallel(
    config: CheckConfig,
    *,
    max_runs: int = 200,
    max_depth: int = 40,
    stop_on_violation: bool = True,
    sleep_sets: bool = True,
    jobs: int = 2,
) -> ExplorationResult:
    """Frontier-parallel bounded exploration across the worker pool.

    The parent executes the root schedule, expands its branch points,
    and deals the resulting subtree prefixes round-robin to ``jobs``
    workers — *disjoint* subtrees by construction, since each prefix
    fixes a different first divergence.  Workers search independently
    (no shared visited set, so cross-worker duplicates are possible —
    the price of zero coordination) and return plain data; the parent
    merges in **input order**: fingerprint sets unioned, stats summed,
    and the winning counterexample taken from the lowest-numbered worker
    that found one.  The merged result is therefore a pure function of
    (config, budgets, jobs) no matter how the OS schedules the workers.

    Note the search *frontier policy* differs from serial ``explore``
    (serial shares one visited set and one LIFO; workers do not), so
    stats and the specific counterexample may legitimately differ from a
    serial run with the same budgets — but not between two parallel runs
    with the same ``jobs``.
    """
    from repro.perf.pool import run_chunked

    stats = ExplorationStats()
    result = ExplorationResult(config=config, stats=stats)
    root = run_schedule(config, [])
    stats.runs = 1
    if root.violations:
        stats.violations_found = 1
        result.counterexample = root.chosen
        result.violation = root.violations[0]
        result.counterexample_run = root
        stats.states = 0
        return result

    expanded: set[str] = set()
    children = _expand_children(
        root, [], expanded, stats, max_depth=max_depth, sleep_sets=sleep_sets
    )
    children.sort(key=lambda c: (c[0], c[1], c[2]))
    prefixes = [vec for _p, _i, vec in children]
    if not prefixes:
        stats.states = len(expanded)
        result.fingerprints = tuple(sorted(expanded))
        return result

    jobs = max(1, min(jobs, len(prefixes)))
    # Round-robin in priority order: every worker gets a share of the
    # bug-dense (fault/fate) subtrees instead of worker 0 taking them all.
    slices = [prefixes[index::jobs] for index in range(jobs)]
    budget = max(1, -(-(max_runs - 1) // jobs))  # ceil split of what's left
    preexpanded = tuple(sorted(expanded))
    shared = (config, budget, max_depth, sleep_sets, stop_on_violation, preexpanded)
    outcomes = run_chunked(
        "check-prefixes", shared, slices, jobs=jobs, chunks_per_worker=1
    )

    merged = set(expanded)
    for stats_tuple, new_fingerprints, counterexample, violation in outcomes:
        runs, pruned_visited, pruned_sleep, violations_found, exhausted = stats_tuple
        stats.runs += runs
        stats.pruned_visited += pruned_visited
        stats.pruned_sleep += pruned_sleep
        stats.violations_found += violations_found
        stats.budget_exhausted = stats.budget_exhausted or exhausted
        merged.update(new_fingerprints)
        if counterexample is not None and result.counterexample is None:
            result.counterexample = counterexample
            result.violation = violation
    stats.states = len(merged)
    result.fingerprints = tuple(sorted(merged))
    if result.counterexample is not None:
        # Re-execute the winning schedule in-process: deterministic, and
        # it spares workers from shipping a rich CheckRunResult back.
        result.counterexample_run = run_schedule(config, result.counterexample)
    return result
