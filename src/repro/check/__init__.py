"""repro.check — deterministic schedule-space exploration.

The chaos layer (PR 1/2) *samples* the schedule space; this subsystem
*searches* it.  The deterministic simulator makes that cheap: a run is a
pure function of (config, decision vector), so the checker explores by
re-execution — no state forking, no snapshots — and every branch it
visits is a replayable schedule file.

Pipeline: :func:`~repro.check.explorer.explore` drives a bounded DFS
with visited-state and sleep-set-style pruning over the choice points
(:mod:`~repro.check.hooks`: same-time event orderings, deliver-vs-drop
fates, crash/recover placements); on a violation —  judged by the same
:class:`~repro.chaos.invariants.InvariantAuditor` as the chaos sweeps —
:func:`~repro.check.shrink.shrink` delta-debugs the schedule to a
1-minimal counterexample, and
:func:`~repro.check.schedule.export_counterexample` ships it with full
``repro.obs`` causal-trace artifacts.  ``repro check`` is the CLI;
docs/MODELCHECK.md is the guided tour.
"""

from repro.check.choices import ChoiceController, Decision
from repro.check.explorer import ExplorationResult, ExplorationStats, explore
from repro.check.runner import CheckConfig, CheckRunResult, run_schedule
from repro.check.schedule import (
    SCHEDULE_SCHEMA,
    build_schedule_doc,
    export_counterexample,
    load_schedule,
    save_schedule,
)
from repro.check.shrink import ShrinkResult, shrink

__all__ = [
    "CheckConfig",
    "CheckRunResult",
    "ChoiceController",
    "Decision",
    "ExplorationResult",
    "ExplorationStats",
    "SCHEDULE_SCHEMA",
    "ShrinkResult",
    "build_schedule_doc",
    "explore",
    "export_counterexample",
    "load_schedule",
    "run_schedule",
    "save_schedule",
    "shrink",
]
