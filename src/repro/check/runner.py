"""One steered simulation run — the checker's unit of work.

:func:`run_schedule` builds a fresh conservative-mode cluster, installs
the choice hooks selected by :class:`CheckConfig`, threads a decision
vector through it, and audits the run with the same
:class:`~repro.chaos.invariants.InvariantAuditor` the chaos sweeps use.
The run is a pure function of (config, vector): same inputs, same
decisions, same violations, same event count — in this process or any
other.

Conservative mode deliberately: no retransmission sublayer, no 2PC
timeouts, round-robin submission (deterministic and crash-tolerant — a
fixed-site policy would fault when a choice crashes its site), and
drops restricted to the message types whose loss the bare protocol is
specified to survive.  The checker's subject is the *protocol*, not the
recovery machinery layered around it.

``mutate=True`` re-introduces the PR-1 protocol mutation
(:func:`repro.chaos.runner.neuter_faillocks` — fail-lock *setting*
disabled while clearing still works), which is how the self-test proves
the explorer finds real bugs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Optional, Sequence, TYPE_CHECKING

from repro.chaos.invariants import InvariantAuditor
from repro.chaos.runner import neuter_faillocks
from repro.check.choices import ChoiceController, Decision
from repro.check.fingerprint import cluster_fingerprint
from repro.check.hooks import FateChoiceHook, FaultChoiceHook, OrderChoiceHook
from repro.core.recovery import RecoveryPolicy
from repro.errors import SimulationError
from repro.metrics.records import ViolationRecord
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.scenario import RoundRobin, Scenario
from repro.workload.uniform import UniformWorkload

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.sink import TraceSink

__all__ = ["CheckConfig", "CheckRunResult", "run_schedule"]


@dataclass(slots=True)
class CheckConfig:
    """The explored system's shape plus per-run choice budgets.

    Everything here is part of the schedule file: a (config, decision
    vector) pair fully determines a run.
    """

    sites: int = 3
    db_size: int = 8
    txns: int = 3
    seed: int = 42
    mutate: bool = False
    # Which nondeterminism to expose as choice points.
    explore_order: bool = True
    explore_fates: bool = False
    explore_faults: bool = True
    # Recovery policy for explored clusters (on_demand | two_step |
    # parallel).  The default keeps every pre-existing schedule file —
    # and the explorer's default search — byte-identical; "parallel"
    # points the search at the fan-out recovery engine.
    recovery_policy: str = "on_demand"
    # Per-choice-point and per-run budgets.
    max_branch: int = 3
    max_drops: int = 1
    max_crashes: int = 1
    max_recoveries: int = 1
    min_up: int = 1

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CheckConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(slots=True)
class CheckRunResult:
    """Everything one steered run produced."""

    decisions: list[Decision] = field(default_factory=list)
    violations: list[ViolationRecord] = field(default_factory=list)
    commits: int = 0
    aborts: int = 0
    stalled: bool = False
    events_fired: int = 0
    sim_time_ms: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def chosen(self) -> list[int]:
        """The executed decision vector in canonical form.

        Trailing defaults are truncated: they steer nothing, and the
        canonical form makes equal schedules compare equal as lists.
        """
        vector = [d.chosen for d in self.decisions]
        while vector and vector[-1] == 0:
            vector.pop()
        return vector


def run_schedule(
    config: CheckConfig,
    advice: Sequence[int] = (),
    trace: Optional["TraceSink"] = None,
) -> CheckRunResult:
    """Execute one run of ``config`` steered by ``advice``.

    ``advice`` past the run's actual choice points — or stale entries out
    of range for a point's arity — silently become defaults, so *any*
    integer vector is a well-defined run (the property delta-debugging
    relies on).  Pass an enabled :class:`~repro.obs.sink.TraceSink` to
    capture the run for export; tracing is pure observation.
    """
    sys_config = SystemConfig(
        db_size=config.db_size,
        num_sites=config.sites,
        seed=config.seed,
        wire_latency_ms=2.0,
        recovery_policy=RecoveryPolicy(config.recovery_policy),
    )
    cluster = Cluster(sys_config)
    if trace is not None:
        cluster.network.obs = trace
    if config.mutate:
        neuter_faillocks(cluster)

    controller = ChoiceController(
        advice, state_fn=lambda: cluster_fingerprint(cluster)
    )
    if config.explore_order:
        cluster.scheduler.tie_breaker = OrderChoiceHook(
            controller, max_branch=config.max_branch
        )
    if config.explore_fates:
        cluster.network.interposer = FateChoiceHook(
            controller, max_drops=config.max_drops
        )

    auditor = InvariantAuditor(cluster)
    cluster.install_probe(auditor)

    scenario = Scenario(
        workload=UniformWorkload(sys_config.item_ids, sys_config.max_txn_size),
        txn_count=config.txns,
        policy=RoundRobin(),
    )
    if config.explore_faults:
        scenario.actions = FaultChoiceHook(  # type: ignore[assignment]
            controller,
            sys_config.site_ids,
            max_crashes=config.max_crashes,
            max_recoveries=config.max_recoveries,
            min_up=config.min_up,
            max_branch=config.max_branch,
        )

    stalled = False
    try:
        cluster.run(scenario)
    except SimulationError:
        # The drive loop stalled: under steered faults that is a liveness
        # finding for the auditor, not a tooling crash.
        stalled = True
        auditor.note_stall()
    auditor.check_quiescence()

    return CheckRunResult(
        decisions=list(controller.trace),
        violations=list(auditor.violations),
        commits=cluster.metrics.counters.get("commits"),
        aborts=cluster.metrics.counters.get("aborts"),
        stalled=stalled,
        events_fired=cluster.scheduler.fired,
        sim_time_ms=cluster.now,
    )
