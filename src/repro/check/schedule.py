"""Schedule files: replayable, shrinkable, byte-deterministic.

A schedule file is the checker's exchange format — ``explore --out``
writes one, ``replay`` / ``shrink`` / ``stats`` read one.  It carries
everything a fresh process needs to reproduce the run exactly:

* the :class:`~repro.check.runner.CheckConfig` (system shape + budgets),
* the decision vector,
* what the recording process observed (violation, events fired, commits)
  so a replay can *verify* rather than trust.

Serialization is ``json.dumps(..., sort_keys=True)`` over plain data
with no wall-clock anywhere, so the same schedule saved twice — by any
process — is byte-identical (pinned by ``tests/test_check_replay.py``).

:func:`export_counterexample` additionally re-runs the schedule with an
enabled :class:`~repro.obs.sink.TraceSink` and ships the full
``repro.obs`` run artifact (manifest + events.jsonl + causal
trace.json) next to the schedule file, so a shrunk counterexample
arrives with its causal timeline attached.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.check.runner import CheckConfig, CheckRunResult, run_schedule
from repro.errors import CheckError

__all__ = [
    "SCHEDULE_SCHEMA",
    "build_schedule_doc",
    "save_schedule",
    "load_schedule",
    "export_counterexample",
]

SCHEDULE_SCHEMA = "repro.check/1"


def build_schedule_doc(
    config: CheckConfig,
    vector: Sequence[int],
    result: Optional[CheckRunResult] = None,
    note: str = "",
) -> dict[str, Any]:
    """The plain-data schedule document for (config, vector)."""
    doc: dict[str, Any] = {
        "schema": SCHEDULE_SCHEMA,
        "config": config.to_dict(),
        "decisions": list(vector),
        "note": note,
    }
    if result is not None:
        doc["observed"] = {
            "events_fired": result.events_fired,
            "commits": result.commits,
            "aborts": result.aborts,
            "stalled": result.stalled,
            "sim_time_ms": result.sim_time_ms,
            "choice_points": len(result.decisions),
            "violations": [asdict(v) for v in result.violations],
        }
    return doc


def save_schedule(path: Path, doc: dict[str, Any]) -> None:
    """Write a schedule document, byte-deterministically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )


def load_schedule(path: Path) -> dict[str, Any]:
    """Read and structurally validate a schedule document."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckError(f"cannot read schedule file {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != SCHEDULE_SCHEMA:
        raise CheckError(
            f"{path}: not a {SCHEDULE_SCHEMA} schedule file "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    decisions = doc.get("decisions")
    if not isinstance(decisions, list) or not all(
        isinstance(v, int) for v in decisions
    ):
        raise CheckError(f"{path}: decisions must be a list of integers")
    if not isinstance(doc.get("config"), dict):
        raise CheckError(f"{path}: config must be an object")
    return doc


def export_counterexample(
    out_dir: Path,
    config: CheckConfig,
    vector: Sequence[int],
    note: str = "",
) -> tuple[dict[str, Any], CheckRunResult]:
    """Re-run (config, vector) traced; write schedule + obs artifacts.

    Produces ``schedule.json`` plus the standard ``repro.obs`` run
    artifact set (``run.json``, ``events.jsonl``, ``trace.json``) in
    ``out_dir``.  Returns (manifest, run result).  Tracing is pure
    observation, so the traced run makes exactly the decisions the
    untraced one did.
    """
    from repro.obs.export import export_run
    from repro.obs.sink import TraceSink

    out_dir = Path(out_dir)
    sink = TraceSink(enabled=True)
    result = run_schedule(config, vector, trace=sink)
    violations = [
        {str(k): v for k, v in asdict(record).items()}
        for record in result.violations
    ]
    manifest = export_run(
        out_dir,
        sink,
        scenario="check",
        seed=config.seed,
        sites=config.sites,
        db_size=config.db_size,
        sim_time_ms=result.sim_time_ms,
        violations=violations,
    )
    save_schedule(
        out_dir / "schedule.json",
        build_schedule_doc(config, vector, result, note=note),
    )
    return manifest, result
