"""The three choice-point hooks that plug the controller into a cluster.

Each hook turns one source of nondeterminism the real system would have
— but the deterministic simulator resolves by fiat — into an explicit,
enumerable choice:

``OrderChoiceHook`` (kind ``"order"``)
    Installed as :attr:`EventScheduler.tie_breaker`.  The scheduler's
    tie-break contract resolves same-time events in posting order; a real
    distributed system promises no such thing.  The hook offers the tied
    group's *eligible* entries as alternatives.  Eligibility preserves
    per-channel FIFO (which the protocol legitimately assumes of its
    links): a tied message delivery is a candidate only if no
    earlier-posted tied delivery shares its (src, dst) channel.
    Everything else — CPU completions, timers, deliveries on distinct
    channels — may be permuted freely.

``FateChoiceHook`` (kind ``"fate"``)
    Installed as :attr:`Network.interposer`.  Offers deliver-vs-drop for
    each message whose loss the bare protocol is specified to survive
    (``repro.chaos.faults.DROPPABLE``); drops are non-silent, so the
    sender gets the same failure notice a partition would produce.

``FaultChoiceHook`` (kind ``"fault"``)
    Substituted for ``Scenario.actions`` (duck-typed: the managing site
    only calls ``.get(seq, default)``).  At every transaction boundary it
    offers crash/recover placements within the failure budget, tracking
    believed-up sites exactly as the manager does.

All hooks consult the controller only at genuine branch points (arity
≥ 2); a degenerate point is taken silently so decision vectors index
only real choices.  With an empty vector every hook reproduces the
default behaviour exactly — the basis of the replay-identity guarantee.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.chaos.faults import DROPPABLE
from repro.check.choices import ChoiceController
from repro.net.network import MessageFate, Network
from repro.system.scenario import FailSite, RecoverSite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import Message

__all__ = ["OrderChoiceHook", "FateChoiceHook", "FaultChoiceHook"]


def _delivery_message(entry: tuple) -> Optional["Message"]:
    """The message if this heap entry is a network delivery, else None."""
    action = entry[2]
    if action is not None and getattr(action, "__func__", None) is Network._deliver:
        return entry[3][0]
    return None


def _entry_label(entry: tuple) -> str:
    """Human-stable label for a tied heap entry (no process-local ids)."""
    msg = _delivery_message(entry)
    if msg is not None:
        return (
            f"deliver {msg.mtype.value} {msg.src}->{msg.dst} txn={msg.txn_id}"
        )
    action = entry[2]
    if action is None:  # cancellable Event
        event = entry[3]
        label = event.label or getattr(
            event.action, "__qualname__", type(event.action).__name__
        )
        return f"timer {label}"
    name = getattr(action, "__qualname__", None)
    if name is None:
        func = getattr(action, "__func__", None)
        name = getattr(func, "__qualname__", type(action).__name__)
    return f"run {name}"


class OrderChoiceHook:
    """``scheduler.tie_breaker``: pick which tied entry fires first."""

    def __init__(self, controller: ChoiceController, max_branch: int = 3) -> None:
        self.controller = controller
        self.max_branch = max(2, max_branch)

    def __call__(self, tied: list[tuple]) -> int:
        # Candidate filter: walk the group in (time, seq) order; a message
        # delivery is eligible only if its channel has not already been
        # seen (firing it first would reorder that channel); everything
        # else is always eligible.  Entry 0 has the minimal seq, so it is
        # always eligible and alternative 0 is always the default order.
        candidates: list[int] = []
        dep_keys: list[tuple] = []
        seen_channels: set[tuple[int, int]] = set()
        for i, entry in enumerate(tied):
            if len(candidates) >= self.max_branch:
                break
            msg = _delivery_message(entry)
            if msg is not None:
                channel = (msg.src, msg.dst)
                if channel in seen_channels:
                    continue
                seen_channels.add(channel)
                candidates.append(i)
                dep_keys.append(("deliver", msg.src, msg.dst))
            else:
                candidates.append(i)
                dep_keys.append(("any",))
        if len(candidates) < 2:
            return 0
        labels = [_entry_label(tied[i]) for i in candidates]
        pick = self.controller.choose("order", labels, dep_keys)
        return candidates[pick]


class FateChoiceHook:
    """``network.interposer``: deliver vs. drop, for survivable messages."""

    def __init__(self, controller: ChoiceController, max_drops: int = 1) -> None:
        self.controller = controller
        self.max_drops = max_drops
        self.drops = 0

    def intercept(self, msg: "Message") -> Optional[MessageFate]:
        if self.drops >= self.max_drops or msg.mtype not in DROPPABLE:
            return None
        stem = f"{msg.mtype.value} {msg.src}->{msg.dst} txn={msg.txn_id}"
        pick = self.controller.choose(
            "fate",
            (f"deliver {stem}", f"drop {stem}"),
            (("deliver", msg.src, msg.dst), ("drop", msg.src, msg.dst)),
        )
        if pick == 1:
            self.drops += 1
            # Non-silent: the sender is notified, as with a partition.
            # The bare protocol (no retransmission layer in check runs)
            # is specified to survive exactly this.
            return MessageFate(drop=True)
        return None


class FaultChoiceHook:
    """Duck-typed ``Scenario.actions``: crash/recover placement by choice.

    The managing site calls ``actions.get(seq, [])`` once per transaction
    boundary; this object answers with a chosen (possibly empty) action
    list instead of a scripted one, within the failure budget.
    """

    def __init__(
        self,
        controller: ChoiceController,
        site_ids: list[int],
        max_crashes: int = 1,
        max_recoveries: int = 1,
        min_up: int = 1,
        max_branch: int = 4,
    ) -> None:
        self.controller = controller
        self.site_ids = list(site_ids)
        self.max_crashes = max_crashes
        self.max_recoveries = max_recoveries
        self.min_up = max(1, min_up)
        self.max_branch = max(2, max_branch)
        self._up = set(site_ids)
        self._crashes = 0
        self._recoveries = 0

    def get(self, seq: int, default: Any = None) -> list:
        options: list[tuple[str, tuple, list]] = [("no fault", ("none",), [])]
        if self._crashes < self.max_crashes and len(self._up) > self.min_up:
            for site in sorted(self._up):
                options.append(
                    (f"crash site {site}", ("crash", site), [FailSite(site)])
                )
        if self._recoveries < self.max_recoveries:
            for site in sorted(set(self.site_ids) - self._up):
                options.append(
                    (
                        f"recover site {site}",
                        ("recover", site),
                        [RecoverSite(site)],
                    )
                )
        options = options[: self.max_branch]
        if len(options) < 2:
            return []
        pick = self.controller.choose(
            "fault",
            tuple(f"txn {seq}: {label}" for label, _key, _acts in options),
            tuple(key for _label, key, _acts in options),
        )
        actions = options[pick][2]
        for action in actions:
            if isinstance(action, FailSite):
                self._up.discard(action.site_id)
                self._crashes += 1
            else:
                self._up.add(action.site_id)
                self._recoveries += 1
        return actions
