"""The participating-site role (paper Appendix A.2).

Phase one: receive the copy updates from the coordinating site, buffer
them, acknowledge.  Phase two: on the commit indication, apply the buffered
updates, perform fail-lock maintenance, acknowledge; on an abort
indication, discard the buffered updates.

The participant also measures its own elapsed time — "between the start of
the site's participation in phase one of the protocol and the completion of
the site's participation in phase two" (§2.2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import copier as copier_mod
from repro.net.endpoint import HandlerContext
from repro.net.message import Message, MessageType
from repro.obs.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.site.site import DatabaseSite


class ParticipantRole:
    """Participant-side protocol logic for one site."""

    def __init__(self, site: "DatabaseSite") -> None:
        self.site = site
        # txn_id -> (phase-one start, updates, per-item recipients, coordinator)
        self._in_flight: dict[
            int,
            tuple[float, list[tuple[int, int, int]], dict[int, list[int]], int],
        ] = {}
        # Outcomes this site applied as a participant, kept to answer
        # TXN_STATUS_REQ inquiries from blocked peers after the in-flight
        # record is gone: txn_id -> ("committed"|"aborted", version).
        self._decided: dict[int, tuple[str, int]] = {}
        # Retention cap for _decided; see CoordinatorRole.decision_log_cap.
        self.decision_log_cap: int | None = None
        # Cooperative-termination inquiries in flight: txn_id -> remaining
        # candidate sites to ask (coordinator first, then peers).
        self._inquiries: dict[int, list[int]] = {}

    def _note_decided(self, txn_id: int, outcome: tuple[str, int]) -> None:
        """Record an outcome, truncating the oldest entries past the cap."""
        decided = self._decided
        decided[txn_id] = outcome
        cap = self.decision_log_cap
        if cap is not None:
            while len(decided) > cap:
                del decided[next(iter(decided))]

    def crash_reset(self) -> None:
        """Crash: drop volatile participant state (in-flight phase-one
        entries and termination inquiries).  ``_decided`` survives as the
        stable decision log — see ``CoordinatorRole.crash_reset``."""
        self._in_flight.clear()
        self._inquiries.clear()

    def signature(self) -> tuple:
        """Hashable snapshot of participant 2PC state (``repro.check``).

        Excludes the phase-one start *time* — two states that differ only
        in when a vote arrived make the same protocol decisions.
        """
        return (
            tuple(
                (
                    txn,
                    tuple(updates),
                    tuple(
                        (item, tuple(sites))
                        for item, sites in sorted(recipients.items())
                    ),
                    coordinator,
                )
                for txn, (_started, updates, recipients, coordinator) in sorted(
                    self._in_flight.items()
                )
            ),
            tuple(sorted(self._decided.items())),
            tuple(
                (txn, tuple(candidates))
                for txn, candidates in sorted(self._inquiries.items())
            ),
        )

    def on_vote_req(self, ctx: HandlerContext, msg: Message) -> None:
        """Phase one: buffer the copy updates and acknowledge.

        In the concurrent ("complete RAID") mode, the copy updates are
        buffered only once this site's exclusive locks on the written items
        are granted — the acknowledgement waits with them.
        """
        site = self.site
        txn_id = msg.txn_id
        # Session-number check (§1.1: "a session number is also useful in
        # determining if the status of a site has changed during the
        # execution of a transaction").  A coordinator presenting an older
        # session than we perceive is a ghost from before its own failure:
        # refuse to participate.  A *newer* session means we missed its
        # recovery announcement; adopt it and proceed.
        if msg.session >= 0:
            perceived = site.nsv.session_of(msg.src)
            if msg.session < perceived:
                ctx.send(
                    msg.src,
                    MessageType.VOTE_NACK,
                    {"reason": "stale_session", "perceived": perceived},
                    txn_id=txn_id,
                    session=site.nsv.my_session,
                )
                return
            if msg.session > perceived:
                site.nsv.mark_up(msg.src, msg.session)
        # Under partial replication, buffer only the items we hold.
        updates = [tuple(u) for u in msg.payload["updates"] if u[0] in site.db]
        started = ctx.now
        if site.lock_service is not None and updates:
            from repro.txn.locks import LockMode

            requests = [(item, LockMode.EXCLUSIVE) for item, _v, _ver in updates]
            site.lock_service.acquire(
                ctx,
                txn_id,
                requests,
                lambda ctx2: self._stage_and_ack(ctx2, msg, updates, started),
            )
            return
        self._stage_and_ack(ctx, msg, updates, started)

    def _stage_and_ack(
        self,
        ctx: HandlerContext,
        msg: Message,
        updates: list[tuple[int, int, int]],
        started: float,
    ) -> None:
        site = self.site
        txn_id = msg.txn_id
        if site.db.has_staged(txn_id):
            return  # duplicate phase-1 delivery
        ctx.charge(site.costs.write_stage_cost * len(updates))
        site.db.stage(txn_id, updates)
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.PART_STAGE,
                site=site.site_id,
                txn=txn_id,
                items=len(updates),
                coordinator=msg.src,
            )
        recipients = {
            int(item): list(sites)
            for item, sites in msg.payload.get("recipients", {}).items()
        }
        self._in_flight[txn_id] = (started, updates, recipients, msg.src)
        if site.config.timeouts_enabled:
            # Blocked-transaction watchdog: if neither COMMIT nor ABORT has
            # arrived by then, run the TXN_STATUS_REQ termination inquiry.
            ctx.after(
                site.config.status_inquiry_ms,
                lambda ctx2: self._on_status_timer(ctx2, txn_id),
            )

        # Embedded clear-fail-locks information (the §2.2.3 optimization).
        embedded = msg.payload.get("cleared_faillocks")
        if embedded:
            ctx.charge(site.costs.clear_notice_apply_cost)
            for owner, items in embedded.items():
                copier_mod.apply_clear_notice(
                    site.faillocks, {"site": owner, "items": items}
                )

        ack_payload: dict = {}
        read_items = msg.payload.get("read_items")
        if read_items is not None:
            # Quorum strategy: report our versions so the coordinator can
            # pick the newest copy for each read.
            ack_payload["read_versions"] = [
                site.db.get(item).snapshot() for item in read_items
            ]
        ctx.send(
            msg.src,
            MessageType.VOTE_ACK,
            ack_payload,
            txn_id=txn_id,
            session=site.nsv.my_session,
        )

    def on_commit(self, ctx: HandlerContext, msg: Message) -> None:
        """Phase two: apply the buffered updates and acknowledge."""
        site = self.site
        txn_id = msg.txn_id
        entry = self._in_flight.pop(txn_id, None)
        if entry is None or not site.db.has_staged(txn_id):
            # Commit for a transaction we never staged (should not happen
            # under the serial driver); acknowledge to unblock the
            # coordinator and move on.
            ctx.send(msg.src, MessageType.COMMIT_ACK, {}, txn_id=txn_id)
            return
        started, updates, recipients, _coordinator = entry
        version = msg.payload.get("version", -1)
        self._apply_commit(ctx, txn_id, updates, recipients, version)
        ctx.send(
            msg.src,
            MessageType.COMMIT_ACK,
            {},
            txn_id=txn_id,
            session=site.nsv.my_session,
        )

        def record_elapsed() -> None:
            site.metrics.note_participant(
                txn_id, site.site_id, site.network.scheduler.now - started
            )

        ctx.on_done(record_elapsed)

    def _apply_commit(
        self,
        ctx: HandlerContext,
        txn_id: int,
        updates: list[tuple[int, int, int]],
        recipients: dict[int, list[int]],
        version: int,
    ) -> None:
        """Apply staged updates at the commit point (phase two or a
        cooperative-termination "committed" answer)."""
        site = self.site
        site.db.abort_staged(txn_id)  # re-apply through the shared path
        stamped = [(item, value, version) for item, value, _v in updates]
        site.commit_writes(ctx, txn_id, stamped, recipients=recipients)
        if site.lock_service is not None:
            site.lock_service.release(ctx, txn_id)
        self._note_decided(txn_id, ("committed", version))
        self._inquiries.pop(txn_id, None)

    def on_abort(self, ctx: HandlerContext, msg: Message) -> None:
        """Abort indication: discard the buffered copy updates (and, in
        concurrent mode, cancel any parked lock acquisition)."""
        self._discard(ctx, msg.txn_id)

    def _discard(self, ctx: HandlerContext, txn_id: int) -> None:
        self.site.db.abort_staged(txn_id)
        if self._in_flight.pop(txn_id, None) is not None:
            self._note_decided(txn_id, ("aborted", -1))
        self._inquiries.pop(txn_id, None)
        if self.site.lock_service is not None:
            self.site.lock_service.cancel(ctx, txn_id)

    # -- cooperative termination (blocked-transaction resolution) ------------------

    def _on_status_timer(self, ctx: HandlerContext, txn_id: int) -> None:
        """The commit/abort indication is overdue: ask around.

        The coordinator is asked first (it knows; it may merely be slow or
        behind a lossy channel), then every operational peer — any
        participant that already applied the outcome can answer.
        """
        site = self.site
        if not site.alive:
            return
        entry = self._in_flight.get(txn_id)
        if entry is None:
            return  # resolved before the timer fired
        coordinator = entry[3]
        site.metrics.counters.incr("status_inquiries")
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.TERM_PROBE,
                site=site.site_id,
                txn=txn_id,
                coordinator=coordinator,
            )
        candidates = [coordinator] + [
            peer
            for peer in sorted(site.nsv.operational_peers())
            if peer != coordinator
        ]
        self._inquiries[txn_id] = candidates
        self._send_next_inquiry(ctx, txn_id)

    def _send_next_inquiry(self, ctx: HandlerContext, txn_id: int) -> None:
        site = self.site
        if txn_id not in self._in_flight:
            self._inquiries.pop(txn_id, None)
            return
        candidates = self._inquiries.get(txn_id)
        if not candidates:
            self._presume_abort(ctx, txn_id)
            return
        target = candidates.pop(0)
        ctx.send(
            target,
            MessageType.TXN_STATUS_REQ,
            {},
            txn_id=txn_id,
            session=site.nsv.my_session,
        )

    def on_status_resp(self, ctx: HandlerContext, msg: Message) -> None:
        """A status answer arrived for a blocked transaction."""
        site = self.site
        txn_id = msg.txn_id
        entry = self._in_flight.get(txn_id)
        if entry is None:
            self._inquiries.pop(txn_id, None)
            return  # the real indication raced the answer in; done
        status = msg.payload["status"]
        obs = site.network.obs
        if obs.enabled and status in ("committed", "aborted"):
            obs.emit(
                ctx.now,
                EventKind.TERM_RESULT,
                site=site.site_id,
                txn=txn_id,
                status=status,
                answered_by=msg.src,
            )
        if status == "committed":
            site.metrics.counters.incr("termination_committed")
            started, updates, recipients, coordinator = entry
            del self._in_flight[txn_id]
            self._apply_commit(
                ctx, txn_id, updates, recipients, msg.payload.get("version", -1)
            )
            # Best-effort: let the coordinator (if it is still the one
            # waiting) cross us off its pending-ack set.
            ctx.send(
                coordinator,
                MessageType.COMMIT_ACK,
                {},
                txn_id=txn_id,
                session=site.nsv.my_session,
            )

            def record_elapsed() -> None:
                site.metrics.note_participant(
                    txn_id, site.site_id, site.network.scheduler.now - started
                )

            ctx.on_done(record_elapsed)
        elif status == "aborted":
            site.metrics.counters.incr("termination_aborted")
            self._discard(ctx, txn_id)
        elif status == "pending":
            # The decision genuinely has not been taken yet; back off and
            # re-run the whole inquiry later.
            ctx.after(
                site.config.status_inquiry_ms,
                lambda ctx2: self._on_status_timer(ctx2, txn_id),
            )
        else:  # "unknown" — this candidate cannot help; try the next
            self._send_next_inquiry(ctx, txn_id)

    def on_status_req_failed(self, ctx: HandlerContext, msg: Message) -> None:
        """Our TXN_STATUS_REQ bounced (candidate down/unreachable): treat it
        like an "unknown" answer and move to the next candidate."""
        self._send_next_inquiry(ctx, msg.txn_id)

    def _presume_abort(self, ctx: HandlerContext, txn_id: int) -> None:
        """Every candidate is unreachable or ignorant: presume abort.

        Safe in this system because the coordinator ships the COMMIT to all
        participants in one activation and commits locally only after every
        COMMIT_ACK: if any site had applied the commit, some operational
        participant (or the coordinator) would have answered "committed".
        All candidates answering "unknown" means no copy of the decision
        survives — discarding the staged updates leaves every site
        consistent with the transaction never having committed.
        """
        site = self.site
        if txn_id not in self._in_flight:
            self._inquiries.pop(txn_id, None)
            return
        site.metrics.counters.incr("termination_presumed_abort")
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.TERM_RESULT,
                site=site.site_id,
                txn=txn_id,
                status="presumed_abort",
            )
        self._discard(ctx, txn_id)

    def txn_status(self, txn_id: int) -> tuple[str, int]:
        """Answer a peer's TXN_STATUS_REQ from this site's participant view.

        A transaction merely staged here is reported "unknown", not
        "pending" — a participant has no say in the decision, and two
        mutually blocked participants reporting "pending" to each other
        would inquire forever.
        """
        return self._decided.get(txn_id, ("unknown", -1))

    @property
    def staged_txns(self) -> list[int]:
        """Transactions currently buffered at this participant, sorted."""
        return sorted(self._in_flight)
