"""The participating-site role (paper Appendix A.2).

Phase one: receive the copy updates from the coordinating site, buffer
them, acknowledge.  Phase two: on the commit indication, apply the buffered
updates, perform fail-lock maintenance, acknowledge; on an abort
indication, discard the buffered updates.

The participant also measures its own elapsed time — "between the start of
the site's participation in phase one of the protocol and the completion of
the site's participation in phase two" (§2.2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import copier as copier_mod
from repro.net.endpoint import HandlerContext
from repro.net.message import Message, MessageType

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.site.site import DatabaseSite


class ParticipantRole:
    """Participant-side protocol logic for one site."""

    def __init__(self, site: "DatabaseSite") -> None:
        self.site = site
        # txn_id -> (phase-one start time, updates, per-item recipients)
        self._in_flight: dict[
            int, tuple[float, list[tuple[int, int, int]], dict[int, list[int]]]
        ] = {}

    def on_vote_req(self, ctx: HandlerContext, msg: Message) -> None:
        """Phase one: buffer the copy updates and acknowledge.

        In the concurrent ("complete RAID") mode, the copy updates are
        buffered only once this site's exclusive locks on the written items
        are granted — the acknowledgement waits with them.
        """
        site = self.site
        txn_id = msg.txn_id
        # Session-number check (§1.1: "a session number is also useful in
        # determining if the status of a site has changed during the
        # execution of a transaction").  A coordinator presenting an older
        # session than we perceive is a ghost from before its own failure:
        # refuse to participate.  A *newer* session means we missed its
        # recovery announcement; adopt it and proceed.
        if msg.session >= 0:
            perceived = site.nsv.session_of(msg.src)
            if msg.session < perceived:
                ctx.send(
                    msg.src,
                    MessageType.VOTE_NACK,
                    {"reason": "stale_session", "perceived": perceived},
                    txn_id=txn_id,
                    session=site.nsv.my_session,
                )
                return
            if msg.session > perceived:
                site.nsv.mark_up(msg.src, msg.session)
        # Under partial replication, buffer only the items we hold.
        updates = [tuple(u) for u in msg.payload["updates"] if u[0] in site.db]
        started = ctx.now
        if site.lock_service is not None and updates:
            from repro.txn.locks import LockMode

            requests = [(item, LockMode.EXCLUSIVE) for item, _v, _ver in updates]
            site.lock_service.acquire(
                ctx,
                txn_id,
                requests,
                lambda ctx2: self._stage_and_ack(ctx2, msg, updates, started),
            )
            return
        self._stage_and_ack(ctx, msg, updates, started)

    def _stage_and_ack(
        self,
        ctx: HandlerContext,
        msg: Message,
        updates: list[tuple[int, int, int]],
        started: float,
    ) -> None:
        site = self.site
        txn_id = msg.txn_id
        if site.db.has_staged(txn_id):
            return  # duplicate phase-1 delivery
        ctx.charge(site.costs.write_stage_cost * len(updates))
        site.db.stage(txn_id, updates)
        recipients = {
            int(item): list(sites)
            for item, sites in msg.payload.get("recipients", {}).items()
        }
        self._in_flight[txn_id] = (started, updates, recipients)

        # Embedded clear-fail-locks information (the §2.2.3 optimization).
        embedded = msg.payload.get("cleared_faillocks")
        if embedded:
            ctx.charge(site.costs.clear_notice_apply_cost)
            for owner, items in embedded.items():
                copier_mod.apply_clear_notice(
                    site.faillocks, {"site": owner, "items": items}
                )

        ack_payload: dict = {}
        read_items = msg.payload.get("read_items")
        if read_items is not None:
            # Quorum strategy: report our versions so the coordinator can
            # pick the newest copy for each read.
            ack_payload["read_versions"] = [
                site.db.get(item).snapshot() for item in read_items
            ]
        ctx.send(
            msg.src,
            MessageType.VOTE_ACK,
            ack_payload,
            txn_id=txn_id,
            session=site.nsv.my_session,
        )

    def on_commit(self, ctx: HandlerContext, msg: Message) -> None:
        """Phase two: apply the buffered updates and acknowledge."""
        site = self.site
        txn_id = msg.txn_id
        entry = self._in_flight.pop(txn_id, None)
        if entry is None or not site.db.has_staged(txn_id):
            # Commit for a transaction we never staged (should not happen
            # under the serial driver); acknowledge to unblock the
            # coordinator and move on.
            ctx.send(msg.src, MessageType.COMMIT_ACK, {}, txn_id=txn_id)
            return
        started, updates, recipients = entry
        site.db.abort_staged(txn_id)  # re-apply through the shared path
        version = msg.payload.get("version", -1)
        updates = [(item, value, version) for item, value, _v in updates]
        site.commit_writes(ctx, txn_id, updates, recipients=recipients)
        if site.lock_service is not None:
            site.lock_service.release(ctx, txn_id)
        ctx.send(
            msg.src,
            MessageType.COMMIT_ACK,
            {},
            txn_id=txn_id,
            session=site.nsv.my_session,
        )

        def record_elapsed() -> None:
            site.metrics.note_participant(
                txn_id, site.site_id, site.network.scheduler.now - started
            )

        ctx.on_done(record_elapsed)

    def on_abort(self, ctx: HandlerContext, msg: Message) -> None:
        """Abort indication: discard the buffered copy updates (and, in
        concurrent mode, cancel any parked lock acquisition)."""
        self.site.db.abort_staged(msg.txn_id)
        self._in_flight.pop(msg.txn_id, None)
        if self.site.lock_service is not None:
            self.site.lock_service.cancel(ctx, msg.txn_id)

    @property
    def staged_txns(self) -> list[int]:
        """Transactions currently buffered at this participant, sorted."""
        return sorted(self._in_flight)
