"""Database sites.

A :class:`~repro.site.site.DatabaseSite` is one mini-RAID site: it holds a
full copy of the database, a nominal session vector, and a fail-lock table,
and it plays both protocol roles — coordinator for transactions the
managing site hands it, participant for everyone else's (paper §1.2 and
Appendix A).
"""

from repro.site.site import DatabaseSite
from repro.site.coordinator import CoordinatorRole
from repro.site.participant import ParticipantRole

__all__ = ["DatabaseSite", "CoordinatorRole", "ParticipantRole"]
