"""The coordinating-site role (paper Appendix A.1).

The site that receives a database transaction from the managing site
coordinates it:

1. If the transaction reads any fail-locked copy, run copier transactions
   first (and abort if no operational site can supply a good copy).
2. Phase one: ship the copy updates for written items to every operational
   participant and collect acks.
3. Phase two: ship the commit indication, collect commit acks, commit
   locally, and perform fail-lock maintenance.

A participant discovered down mid-protocol triggers a type-2 control
transaction; in phase one that aborts the transaction, in phase two the
commit still completes among the survivors (Appendix A).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core import copier as copier_mod
from repro.core.rowaa import ReadSource
from repro.metrics.records import CopierRecord
from repro.net.endpoint import HandlerContext
from repro.net.message import Message, MessageType
from repro.obs.events import EventKind
from repro.system.config import ClearNoticeMode, CopyControlStrategy
from repro.txn.locks import LockMode
from repro.txn.transaction import AbortReason, Transaction
from repro.txn.twophase import CommitPhase, CoordinatorState

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.site.site import DatabaseSite


def write_value(txn_id: int, item_id: int) -> int:
    """The deterministic value a transaction writes to an item.

    Encoding the writer and the item makes every copy's provenance
    auditable in consistency checks.
    """
    return txn_id * 100_000 + item_id


class CoordinatorRole:
    """Coordinator-side protocol logic for one site."""

    def __init__(self, site: "DatabaseSite") -> None:
        self.site = site
        self.active: dict[int, CoordinatorState] = {}
        # Outcomes of finished transactions, kept so TXN_STATUS_REQ
        # inquiries from blocked participants can be answered after the
        # active record is gone: txn_id -> ("committed"|"aborted", version).
        self._decided: dict[int, tuple[str, int]] = {}
        # Decision-log retention: ``None`` keeps every outcome (the
        # experiments' default — also what ``repro.check`` state
        # signatures expect).  Soak runs set a cap and the oldest entries
        # are truncated, like a real 2PC log: inquiries only ever concern
        # transactions still blocked somewhere, which at soak timeouts is
        # a few seconds of history, far inside any reasonable cap.
        self.decision_log_cap: int | None = None
        # Copier exchanges in flight: txn_id -> {source site: [item ids]}.
        self._copier_pending: dict[int, dict[int, list[int]]] = {}
        self._copier_records: dict[int, list[CopierRecord]] = {}
        # Fail-locks cleared by copiers, awaiting embedding in a future
        # VOTE_REQ (ClearNoticeMode.EMBEDDED only).  They accumulate until
        # this site next coordinates a transaction with participants — a
        # read-only transaction has no phase one to carry them.
        self._pending_embedded_clears: list[int] = []
        self._clear_notice_counts: dict[int, int] = {}
        # Commit decisions whose local apply was lost to a crash, replayed
        # by :meth:`redo_after_crash` at recovery: txn -> stamped updates.
        self._redo_pending: dict[int, list[tuple[int, int, int]]] = {}

    def crash_reset(self) -> None:
        """Crash: drop all volatile coordinator state.

        In-flight 2PC state, copier exchanges, and staged clear notices
        die with the site.  Two things survive, modelling the 2PC stable
        log: ``_decided`` (outcomes already reported), and — for
        transactions in phase two at the instant of the crash — the
        commit record itself.  Real presumed-abort 2PC force-writes the
        commit record *before* sending COMMITs, so a coordinator that
        crashed mid-phase-2 must still count the transaction committed:
        its participants may have applied the updates, and only this
        site's own local apply was lost.  The stamped updates are kept
        for the recovery-time REDO pass; without it the crashed
        coordinator's own copies would silently go stale with no
        fail-lock anywhere (participants saw a live recipient).
        """
        for txn_id, state in sorted(self.active.items()):
            if state.phase is CommitPhase.COMMITTING and state.updates:
                version = state.commit_version
                self._note_decided(txn_id, ("committed", version))
                self._redo_pending[txn_id] = [
                    (item, value, version) for item, value, _v in state.updates
                ]
        self.active.clear()
        self._copier_pending.clear()
        self._copier_records.clear()
        self._pending_embedded_clears.clear()
        self._clear_notice_counts.clear()

    def redo_after_crash(self, ctx: HandlerContext) -> int:
        """Recovery REDO: re-apply logged commit decisions to the local
        database (idempotent — ``install_copy`` refuses to go backwards).
        Returns the number of transactions replayed."""
        replayed = 0
        for txn_id, updates in sorted(self._redo_pending.items()):
            for item, value, version in updates:
                self.site.db.install_copy(
                    item, value, version, ctx.now, source_txn=txn_id
                )
            replayed += 1
        self._redo_pending.clear()
        return replayed

    def _note_decided(self, txn_id: int, outcome: tuple[str, int]) -> None:
        """Record an outcome, truncating the oldest entries past the cap."""
        decided = self._decided
        decided[txn_id] = outcome
        cap = self.decision_log_cap
        if cap is not None:
            while len(decided) > cap:
                del decided[next(iter(decided))]

    def signature(self) -> tuple:
        """Hashable snapshot of coordinator 2PC state (``repro.check``).

        Composes per-transaction :meth:`CoordinatorState.signature`;
        excludes :attr:`_copier_records` (metrics, carries timestamps).
        """
        return (
            tuple(
                (txn_id, state.signature())
                for txn_id, state in sorted(self.active.items())
            ),
            tuple(sorted(self._decided.items())),
            tuple(
                (
                    txn,
                    tuple(
                        (source, tuple(items))
                        for source, items in sorted(pending.items())
                    ),
                )
                for txn, pending in sorted(self._copier_pending.items())
            ),
            tuple(self._pending_embedded_clears),
        )

    # -- entry point ------------------------------------------------------------

    def begin(self, ctx: HandlerContext, txn: Transaction) -> None:
        """Process a transaction received from the managing site."""
        site = self.site
        costs = site.costs
        txn.coordinator = site.site_id
        txn.submitted_at = ctx.now
        state = CoordinatorState(txn=txn, started_at=ctx.now)
        self.active[txn.txn_id] = state
        obs = site.network.obs
        if obs.enabled:
            # txn.begin is stamped at started_at, the same instant the
            # elapsed-time window opens — the timeline's phase sums equal
            # the recorded elapsed time because both share this anchor.
            obs.emit(
                ctx.now,
                EventKind.TXN_BEGIN,
                site=site.site_id,
                txn=txn.txn_id,
                size=txn.size,
                reads=len(txn.read_items),
                writes=len(txn.write_items),
            )
        ctx.charge(costs.txn_base_cost + costs.op_execute_cost * txn.size)

        if site.lock_service is not None:
            self._acquire_coordinator_locks(ctx, state)
            return
        self._start_protocol(ctx, state)

    def _acquire_coordinator_locks(
        self, ctx: HandlerContext, state: CoordinatorState
    ) -> None:
        """Concurrent mode: take local S/X locks, then run the protocol.

        The abort hook registered with the global detector lets a deadlock
        victim be killed wherever its wait was detected.
        """
        site = self.site
        txn = state.txn
        write_set = set(txn.write_items)
        requests = [(item, LockMode.EXCLUSIVE) for item in sorted(write_set)]
        requests += [
            (item, LockMode.SHARED)
            for item in sorted(set(txn.read_items) - write_set)
        ]
        service = site.lock_service
        assert service is not None
        if service.detector is not None:
            txn_id = txn.txn_id

            def abort_victim(_ctx: HandlerContext) -> None:
                # Run at the coordinator, in its own activation.
                site.network.spawn(
                    site, lambda ctx2: self._abort_deadlock(ctx2, txn_id)
                )

            service.detector.register(txn_id, abort_victim)
        service.acquire(
            ctx, txn.txn_id, requests, lambda ctx2: self._start_protocol(ctx2, state)
        )

    def _abort_deadlock(self, ctx: HandlerContext, txn_id: int) -> None:
        state = self.active.get(txn_id)
        if state is None or state.txn.is_done:
            return
        self._abort(ctx, state, AbortReason.LOCK_DEADLOCK)

    def _start_protocol(self, ctx: HandlerContext, state: CoordinatorState) -> None:
        site = self.site
        txn = state.txn
        obs = site.network.obs
        if obs.enabled:
            # All site-local locks held (zero-length lock-wait phase in
            # serial mode, where this runs in the begin activation).
            obs.emit(
                ctx.now,
                EventKind.LOCK_GRANT,
                site=site.site_id,
                txn=txn.txn_id,
            )
        reason = self._strategy_blocks(txn)
        if reason is not AbortReason.NONE:
            self._abort(ctx, state, reason)
            return

        if site.config.strategy is CopyControlStrategy.QUORUM:
            # Quorum reads are resolved during voting (peers return their
            # versions); no fail-lock/copier machinery is involved.
            self._execute_and_vote(ctx, state)
            return

        # Appendix A: a read of a fail-locked copy demands a copier first.
        # Under partial replication, reads of items with no local copy
        # travel over the same exchange (fetched but not installed).
        stale_reads = []
        spread = site.config.spread_copier_sources
        for item in txn.read_items:
            plan = site.planner.plan_read(item)
            if plan.source is ReadSource.UNAVAILABLE:
                self._abort(ctx, state, AbortReason.COPY_UNAVAILABLE)
                return
            if plan.source in (ReadSource.COPIER_NEEDED, ReadSource.REMOTE):
                source = plan.site_id
                if spread:
                    # Donor spreading: round-robin by item id across all
                    # up-to-date sources instead of always the lowest.
                    source = copier_mod.choose_copier_source(
                        site.planner, [item], spread=True
                    )[item]
                stale_reads.append((item, source))
        if stale_reads:
            self._issue_copiers(ctx, state, stale_reads)
            return
        self._execute_and_vote(ctx, state)

    def _strategy_blocks(self, txn: Transaction) -> AbortReason:
        """Availability preconditions of the configured strategy."""
        site = self.site
        strategy = site.config.strategy
        if strategy is CopyControlStrategy.ROWA and txn.write_items:
            # Strict write-ALL: every copy must be reachable.
            if len(site.nsv.operational_sites()) < len(site.nsv.site_ids):
                return AbortReason.WRITE_ALL_BLOCKED
        if strategy is CopyControlStrategy.QUORUM:
            majority = len(site.nsv.site_ids) // 2 + 1
            if len(site.nsv.operational_sites()) < majority:
                return AbortReason.QUORUM_UNAVAILABLE
        return AbortReason.NONE

    # -- copier transactions (Appendix A step 1) ---------------------------------

    def _issue_copiers(
        self,
        ctx: HandlerContext,
        state: CoordinatorState,
        stale_reads: list[tuple[int, int]],
        batch: bool = False,
    ) -> None:
        site = self.site
        txn_id = state.txn.txn_id
        state.phase = CommitPhase.COPIER_WAIT
        by_source: dict[int, list[int]] = {}
        for item, source in stale_reads:
            by_source.setdefault(source, []).append(item)
        self._copier_pending[txn_id] = by_source
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.COPIER_BEGIN,
                site=site.site_id,
                txn=txn_id,
                sources=sorted(by_source),
                items=len(stale_reads),
                batch=batch,
            )
        records = self._copier_records.setdefault(txn_id, [])
        for source, items in sorted(by_source.items()):
            ctx.charge(site.costs.copy_request_cost)
            ctx.send(
                source,
                MessageType.COPY_REQ,
                copier_mod.build_copy_request(items),
                txn_id=txn_id,
                session=site.nsv.my_session,
            )
            state.copiers_requested += 1
            site.recovery.note_copier_request(batch=batch)
            records.append(
                CopierRecord(
                    txn_id=txn_id,
                    requester=site.site_id,
                    source=source,
                    items=len(items),
                    batch=batch,
                    started_at=ctx.now,
                )
            )

    def on_copy_resp(self, ctx: HandlerContext, msg: Message) -> None:
        """A source site returned good copies."""
        site = self.site
        txn_id = msg.txn_id
        state = self.active.get(txn_id)
        if state is None or state.phase is not CommitPhase.COPIER_WAIT:
            return  # stale response for an already-resolved transaction
        copies = msg.payload["copies"]
        ctx.charge(site.costs.copy_install_cost * len(copies))
        local = [c for c in copies if c[0] in site.db]
        refreshed = copier_mod.apply_copy_response(
            site.db, site.faillocks, site.site_id, local, ctx.now
        )
        if local:
            site.recovery.note_refreshed_by_copier(len(local), ctx.now)
        # Items we hold no copy of (partial replication): record the value
        # for the read, nothing to install or clear.
        for item, value, _version in copies:
            if item not in site.db:
                state.txn.reads[item] = value
        state.copier_items.extend(item for item, _v, _ver in local)
        pending = self._copier_pending.get(txn_id, {})
        pending.pop(msg.src, None)
        for record in self._copier_records.get(txn_id, []):
            if record.source == msg.src and record.finished_at < 0:
                record.finished_at = ctx.now
        del refreshed  # bookkeeping above is what matters
        if not pending:
            self._copiers_complete(ctx, state)

    def on_copy_denied(self, ctx: HandlerContext, msg: Message) -> None:
        """The source no longer has a good copy — abort (Appendix A)."""
        state = self.active.get(msg.txn_id)
        if state is None or state.phase is not CommitPhase.COPIER_WAIT:
            return
        self._copier_pending.pop(msg.txn_id, None)
        self._abort(ctx, state, AbortReason.COPY_UNAVAILABLE)

    def _copiers_complete(self, ctx: HandlerContext, state: CoordinatorState) -> None:
        """All copier responses installed: propagate the cleared fail-locks,
        then continue with the database transaction."""
        site = self.site
        self._copier_pending.pop(state.txn.txn_id, None)
        cleared = sorted(set(state.copier_items))
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.COPIER_END,
                site=site.site_id,
                txn=state.txn.txn_id,
                refreshed=len(cleared),
            )
        for record in self._copier_records.pop(state.txn.txn_id, []):
            site.metrics.record_copier(record)
        if cleared and site.config.clear_notice_mode is ClearNoticeMode.SPECIAL_TXN:
            # The special transaction (§2.2.3): one message per operational
            # peer, fire-and-forget, telling them which bits we cleared.
            payload = copier_mod.build_clear_notice(site.site_id, cleared)
            for peer in site.nsv.operational_peers():
                ctx.charge(site.costs.clear_notice_format_cost)
                ctx.send(
                    peer,
                    MessageType.CLEAR_FAILLOCKS,
                    payload,
                    txn_id=state.txn.txn_id,
                    session=site.nsv.my_session,
                )
            self._note_clear_notices(state, len(site.nsv.operational_peers()))
        elif cleared:
            # Embedded mode (§2.2.3's suggested optimization): ride along
            # with the next phase-1 copy updates this site sends.
            self._pending_embedded_clears.extend(cleared)
        self._execute_and_vote(ctx, state)

    def _note_clear_notices(self, state: CoordinatorState, count: int) -> None:
        self._clear_notice_counts[state.txn.txn_id] = (
            self._clear_notice_counts.get(state.txn.txn_id, 0) + count
        )

    # -- execution and phase one ---------------------------------------------------

    def _execute_and_vote(self, ctx: HandlerContext, state: CoordinatorState) -> None:
        site = self.site
        txn = state.txn

        # Reads: served from the local copy (fully replicated, and any
        # fail-locked copy was refreshed by a copier above).  Remote-fetched
        # values (partial replication) are already in txn.reads.  Under
        # quorum the local value is provisional until the vote returns
        # versions.
        for item in txn.read_items:
            if item in site.db:
                txn.reads[item] = site.db.read(item)

        # Writes: deterministic values.  The version is stamped at the
        # commit point (see _commit_version) so that per-item versions are
        # monotone in serialization order; -1 is the staging placeholder.
        state.updates = [
            (item, write_value(txn.txn_id, item), -1)
            for item in txn.write_items
        ]
        for item, value, _version in state.updates:
            txn.writes[item] = value
        # Who actually receives each item's update — the exact clear/set
        # sets for fail-lock maintenance at every site.
        state.recipients = {
            item: site.planner.write_sites(item) for item in txn.write_items
        }

        participants = site.planner.participants_for(txn.write_items)
        if site.config.strategy is CopyControlStrategy.QUORUM:
            # Quorum voting involves every operational peer (reads need
            # version answers even when nothing is written).
            participants = site.nsv.operational_peers()
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.PHASE1_BEGIN,
                site=site.site_id,
                txn=txn.txn_id,
                participants=sorted(participants),
            )
        if not participants:
            state.begin_voting([])
            self._local_commit(ctx, state)
            return

        state.begin_voting(participants)
        payload: dict = {"updates": state.updates, "recipients": state.recipients}
        if site.config.strategy is CopyControlStrategy.QUORUM:
            payload["read_items"] = txn.read_items
        if self._pending_embedded_clears:
            payload["cleared_faillocks"] = {
                site.site_id: sorted(set(self._pending_embedded_clears))
            }
            self._pending_embedded_clears.clear()
        for peer in participants:
            ctx.send(
                peer,
                MessageType.VOTE_REQ,
                payload,
                txn_id=txn.txn_id,
                session=site.nsv.my_session,
            )
        if site.config.timeouts_enabled:
            txn_id = txn.txn_id
            ctx.after(
                site.config.vote_timeout_ms,
                lambda ctx2: self._on_vote_timeout(ctx2, txn_id),
            )

    def _on_vote_timeout(self, ctx: HandlerContext, txn_id: int) -> None:
        """Phase-1 votes never (all) arrived: abort and tell everyone.

        Appendix A treats a missing vote as a participant failure; with
        message loss in the picture the safe reading is only "this
        participant is not answering", so the transaction aborts without a
        type-2 announcement — no site is declared down on a timeout alone.
        """
        site = self.site
        if not site.alive:
            return
        state = self.active.get(txn_id)
        if state is None or state.phase is not CommitPhase.VOTING:
            return  # resolved before the timer fired
        silent = sorted(state.pending_votes)
        site.metrics.counters.incr("timeout_vote_aborts")
        for peer in silent:
            state.drop_participant(peer)
        # The silent voters may well have staged the updates (their ack,
        # not the request, may be what was lost): send them the ABORT too.
        self._abort(
            ctx, state, AbortReason.PARTICIPANT_TIMEOUT, extra_targets=silent
        )

    def on_vote_ack(self, ctx: HandlerContext, msg: Message) -> None:
        """Phase-one ack from a participant."""
        site = self.site
        state = self.active.get(msg.txn_id)
        if state is None or state.phase is not CommitPhase.VOTING:
            return
        if "read_versions" in msg.payload:
            self._merge_quorum_reads(state, msg.payload["read_versions"])
        if state.record_vote(msg.src):
            state.begin_commit()
            version = self._commit_version(state)
            obs = site.network.obs
            if obs.enabled:
                obs.emit(
                    ctx.now,
                    EventKind.PHASE2_BEGIN,
                    site=site.site_id,
                    txn=msg.txn_id,
                    version=version,
                )
            for peer in state.participants:
                ctx.send(
                    peer,
                    MessageType.COMMIT,
                    {"version": version},
                    txn_id=msg.txn_id,
                    session=site.nsv.my_session,
                )
            if not state.participants:
                self._local_commit(ctx, state)
            elif site.config.timeouts_enabled:
                self._arm_commit_timer(ctx, msg.txn_id)

    def _arm_commit_timer(self, ctx: HandlerContext, txn_id: int) -> None:
        ctx.after(
            self.site.config.commit_retry_ms,
            lambda ctx2: self._on_commit_timeout(ctx2, txn_id),
        )

    def _on_commit_timeout(self, ctx: HandlerContext, txn_id: int) -> None:
        """Phase-2 acks are overdue.  The decision is commit, so there is
        nothing to abort: re-send the COMMIT to the silent participants,
        persistently.  The type-2 corrective path is reserved for
        participants the network reports genuinely unreachable (a bounce
        or a retransmission give-up, via :meth:`on_delivery_failed`);
        ``commit_max_retries`` is only a last-resort liveness backstop
        against an adversarial channel that swallows every re-send without
        ever producing such a report.
        """
        site = self.site
        if not site.alive:
            return
        state = self.active.get(txn_id)
        if state is None or state.phase is not CommitPhase.COMMITTING:
            return  # all acks arrived before the timer fired
        pending = sorted(state.pending_commit_acks)
        if state.commit_retries < site.config.commit_max_retries:
            state.commit_retries += 1
            site.metrics.counters.incr("commit_retransmits")
            version = self._commit_version(state)
            for peer in pending:
                ctx.send(
                    peer,
                    MessageType.COMMIT,
                    {"version": version},
                    txn_id=txn_id,
                    session=site.nsv.my_session,
                )
            self._arm_commit_timer(ctx, txn_id)
            return
        for peer in pending:
            self._commit_participant_unreachable(ctx, state, peer)
        if state.phase is CommitPhase.COMMITTING and not state.pending_commit_acks:
            self._local_commit(ctx, state)

    def _merge_quorum_reads(
        self, state: CoordinatorState, versions: list[tuple[int, int, int]]
    ) -> None:
        """Adopt any newer copies a quorum peer reported for read items."""
        txn = state.txn
        for item, value, version in versions:
            local_version = self.site.db.version(item)
            if version > local_version and item in txn.reads:
                txn.reads[item] = value

    def on_vote_nack(self, ctx: HandlerContext, msg: Message) -> None:
        """A participant refused phase one (stale session): the system's
        view of this site changed mid-transaction, so abort (§1.1)."""
        state = self.active.get(msg.txn_id)
        if state is None or state.phase is not CommitPhase.VOTING:
            return
        state.drop_participant(msg.src)
        self._abort(ctx, state, AbortReason.SESSION_CHANGED)

    def on_commit_ack(self, ctx: HandlerContext, msg: Message) -> None:
        """Phase-two ack from a participant."""
        state = self.active.get(msg.txn_id)
        if state is None or state.phase is not CommitPhase.COMMITTING:
            return
        if state.record_commit_ack(msg.src):
            self._local_commit(ctx, state)

    # -- completion ------------------------------------------------------------------

    def _commit_version(self, state: CoordinatorState) -> int:
        """Stamp the transaction's commit version (idempotent).

        Read-only transactions write nothing, so they consume no version.
        """
        if not state.updates:
            return -1
        if state.commit_version < 0:
            state.commit_version = self.site.version_clock.tick()
        return state.commit_version

    def _local_commit(self, ctx: HandlerContext, state: CoordinatorState) -> None:
        site = self.site
        txn = state.txn
        version = self._commit_version(state)
        updates = [(item, value, version) for item, value, _v in state.updates]
        site.commit_writes(ctx, txn.txn_id, updates, recipients=state.recipients)
        txn.mark_committed(ctx.now)
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.TXN_COMMIT,
                site=site.site_id,
                txn=txn.txn_id,
                version=version,
            )
        self._note_decided(txn.txn_id, ("committed", version))
        state.finish()
        if site.lock_service is not None:
            site.lock_service.release(ctx, txn.txn_id)
            if site.lock_service.detector is not None:
                site.lock_service.detector.forget(txn.txn_id)
        self._report(ctx, state)

    def _abort(
        self,
        ctx: HandlerContext,
        state: CoordinatorState,
        reason: AbortReason,
        extra_targets: Optional[list[int]] = None,
    ) -> None:
        site = self.site
        txn = state.txn
        # Tell any participant holding staged updates to discard them.
        # ``extra_targets`` covers participants already dropped from the
        # state (e.g. silent phase-1 voters) that may hold staged updates
        # all the same.
        targets = set(state.pending_votes) | set(state.participants)
        targets.update(extra_targets or [])
        for peer in sorted(targets):
            ctx.send(peer, MessageType.ABORT, {}, txn_id=txn.txn_id)
        for record in self._copier_records.pop(txn.txn_id, []):
            if record.finished_at < 0:
                record.finished_at = ctx.now
            site.metrics.record_copier(record)
        txn.mark_aborted(reason, ctx.now)
        obs = site.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.TXN_ABORT,
                site=site.site_id,
                txn=txn.txn_id,
                reason=reason.value,
            )
        self._note_decided(txn.txn_id, ("aborted", -1))
        state.finish()
        if site.probe is not None:
            site.probe.on_coordinator_abort(site.site_id, txn.txn_id, reason)
        if site.lock_service is not None:
            site.lock_service.cancel(ctx, txn.txn_id)
        self._report(ctx, state)

    def _report(self, ctx: HandlerContext, state: CoordinatorState) -> None:
        """Send the outcome back to the managing site once the activation's
        work (the commit processing) has finished."""
        site = self.site
        txn = state.txn
        start = state.started_at
        clear_notices = self._clear_notice_counts.pop(txn.txn_id, 0)
        obs = site.network.obs
        # finalize() runs after the activation's CPU work completes, under
        # someone else's scope — capture the causal parent now.
        trace_parent = obs.scope if obs.enabled else -1

        def finalize() -> None:
            elapsed = site.network.scheduler.now - start
            if obs.enabled:
                # txn.end is emitted at the exact instant elapsed is
                # computed, so the timeline window equals the recorded
                # coordinator elapsed time by construction.
                obs.emit(
                    site.network.scheduler.now,
                    EventKind.TXN_END,
                    site=site.site_id,
                    txn=txn.txn_id,
                    parent=trace_parent,
                    elapsed=elapsed,
                    committed=txn.status.value == "committed",
                )
            site.send_outcome(txn, elapsed, state.copiers_requested, clear_notices)

        ctx.on_done(finalize)
        self.active.pop(txn.txn_id, None)

    # -- status inquiries (cooperative termination) --------------------------------------

    def txn_status(self, txn_id: int) -> tuple[str, int]:
        """Answer a TXN_STATUS_REQ about a transaction this site coordinated.

        Returns ``(status, commit_version)`` where status is "committed",
        "aborted", "pending" (decision not yet taken) or "unknown" (never
        coordinated here).  Once phase two has begun the decision *is*
        commit — participants asking mid-phase-2 may apply it.
        """
        state = self.active.get(txn_id)
        if state is not None:
            if state.phase is CommitPhase.COMMITTING:
                return ("committed", state.commit_version)
            return ("pending", -1)
        return self._decided.get(txn_id, ("unknown", -1))

    # -- failure notices ---------------------------------------------------------------

    def _commit_participant_unreachable(
        self, ctx: HandlerContext, state: CoordinatorState, peer: int
    ) -> None:
        """Phase-2 participant declared unreachable: the commit completes
        among the survivors, but ``peer`` never applied its staged updates —
        its copies of the written items are stale.  The type-2 announcement
        carries that corrective fail-lock information (survivors may have
        just cleared those very bits)."""
        site = self.site
        stale = sorted(item for item, _v, _ver in state.updates)
        site.announce_failure(ctx, [peer], stale_items=stale)
        for item in list(state.recipients):
            state.recipients[item] = [
                s for s in state.recipients[item] if s != peer
            ]
        state.drop_participant(peer)

    def on_delivery_failed(self, ctx: HandlerContext, msg: Message) -> None:
        """A protocol message bounced: the destination is down (Appendix A's
        "site to which ... sent is now down" branches), or the
        retransmission sublayer exhausted its retries and declared it
        unreachable."""
        site = self.site
        state = self.active.get(msg.txn_id)
        if msg.mtype is MessageType.COMMIT:
            if state is None:
                # The transaction already completed (a re-sent COMMIT got
                # through, or another notice finished the job); a late
                # bounce changes nothing.
                return
            self._commit_participant_unreachable(ctx, state, msg.dst)
            if state.phase is CommitPhase.COMMITTING and not state.pending_commit_acks:
                self._local_commit(ctx, state)
            return
        site.announce_failure(ctx, [msg.dst])
        if state is None:
            return
        if msg.mtype is MessageType.COPY_REQ:
            self._copier_pending.pop(msg.txn_id, None)
            self._abort(ctx, state, AbortReason.COPIER_SOURCE_DOWN)
        elif msg.mtype is MessageType.VOTE_REQ:
            state.drop_participant(msg.dst)
            self._abort(ctx, state, AbortReason.PARTICIPANT_FAILED)
