"""A mini-RAID database site.

Each site keeps "a copy of the database, nominal session vector, and
fail-locks and execute[s] the same protocol to maintain the consistency of
these objects" (paper §1.2).  The site is a network endpoint: one message
handler dispatching to the coordinator role, the participant role, the
control-transaction machinery, and the copier-responder logic.
"""

from __future__ import annotations

from typing import Optional

from repro.core import copier as copier_mod
from repro.core.control import (
    FailureAnnouncement,
    RecoveryAnnouncement,
    RecoveryState,
)
from repro.core.faillocks import FailLockTable
from repro.core.recovery import RecoveryManager, RecoveryPolicy, RecoveryStats
from repro.core.rowaa import RowaaPlanner
from repro.core.sessions import NominalSessionVector, SiteState
from repro.errors import ProtocolError
from repro.metrics.collector import MetricsCollector
from repro.metrics.records import ControlRecord, CopierRecord, RecoveryPeriodRecord
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.message import Message, MessageType
from repro.net.network import Network
from repro.obs.events import EventKind
from repro.obs.sink import TraceSink
from repro.sim.logical import LogicalClock
from repro.site.coordinator import CoordinatorRole
from repro.site.participant import ParticipantRole
from repro.storage.catalog import ReplicationCatalog
from repro.storage.database import SiteDatabase
from repro.system.config import SystemConfig
from repro.txn.operations import Operation
from repro.txn.transaction import Transaction

# Sentinel transaction id for batch copier exchanges (two-step recovery),
# which are not tied to any database transaction.
BATCH_COPIER_TXN = -2


class DatabaseSite(Endpoint):
    """One replicated database site."""

    def __init__(
        self,
        site_id: int,
        config: SystemConfig,
        catalog: ReplicationCatalog,
        metrics: MetricsCollector,
        version_clock: Optional["LogicalClock"] = None,
    ) -> None:
        super().__init__(site_id)
        self.config = config
        self.costs = config.costs
        self.catalog = catalog
        self.metrics = metrics
        self.version_clock = version_clock if version_clock is not None else LogicalClock()
        self.db = SiteDatabase(site_id, catalog.items_on(site_id))
        self.nsv = NominalSessionVector(site_id, config.site_ids)
        self.faillocks = FailLockTable(config.site_ids, catalog.item_ids)
        self.recovery = RecoveryManager(
            owner=site_id,
            faillocks=self.faillocks,
            policy=config.recovery_policy,
            batch_threshold=config.batch_threshold,
            batch_size=config.batch_size,
        )
        self.recovery.on_period_end = self._on_recovery_period_end
        self.planner = RowaaPlanner(site_id, self.nsv, self.faillocks, self.catalog)
        self.coordinator = CoordinatorRole(self)
        self.participant = ParticipantRole(self)
        if config.concurrency_control:
            from repro.site.locking import SiteLockService

            self.lock_service: Optional[SiteLockService] = SiteLockService(self)
        else:
            self.lock_service = None
        if config.recovery_policy is RecoveryPolicy.PARALLEL:
            from repro.recovery.scheduler import ParallelCopierScheduler

            self.parallel_recovery: Optional[ParallelCopierScheduler] = (
                ParallelCopierScheduler(self)
            )
        else:
            self.parallel_recovery = None
        self.network: Network = None  # type: ignore[assignment] # set by attach()
        # Optional audit probe (repro.chaos.invariants): notified of commit
        # applications and coordinator aborts so protocol invariants can be
        # checked online, as the events happen.
        self.probe = None
        self._recovery_candidates: list[int] = []
        self._recovery_started_at = -1.0
        self._batch_pending: dict[int, list[int]] = {}
        self._type3_started: dict[tuple[int, int], float] = {}
        # Message dispatch: one dict lookup instead of a 20-branch
        # if/elif chain (handle() runs once per delivered message).
        self._dispatch = {
            MessageType.MGR_SUBMIT_TXN: self._on_submit_txn,
            MessageType.VOTE_REQ: self.participant.on_vote_req,
            MessageType.COMMIT: self.participant.on_commit,
            MessageType.ABORT: self.participant.on_abort,
            MessageType.VOTE_ACK: self.coordinator.on_vote_ack,
            MessageType.VOTE_NACK: self.coordinator.on_vote_nack,
            MessageType.COMMIT_ACK: self.coordinator.on_commit_ack,
            MessageType.TXN_STATUS_REQ: self._on_txn_status_req,
            MessageType.TXN_STATUS_RESP: self.participant.on_status_resp,
            MessageType.COPY_REQ: self._serve_copy_request,
            MessageType.COPY_RESP: self._on_copy_resp,
            MessageType.COPY_DENIED: self._on_copy_denied,
            MessageType.CLEAR_FAILLOCKS: self._on_clear_faillocks,
            MessageType.RECOVERY_ANNOUNCE: self._on_recovery_announce,
            MessageType.RECOVERY_STATE: self._on_recovery_state,
            MessageType.FAILURE_ANNOUNCE: self._on_failure_announce,
            MessageType.CREATE_COPY: self._on_create_copy,
            MessageType.CREATE_COPY_ACK: self._on_create_copy_ack,
            MessageType.MGR_FAIL: self._on_fail,
            MessageType.MGR_RECOVER: self._on_recover,
        }

    def attach(self, network: Network) -> None:
        """Wire the site to its network (done by the cluster builder)."""
        self.network = network
        network.register(self)

    @property
    def obs(self) -> TraceSink:
        """The run's trace sink (lives on the network)."""
        return self.network.obs

    # -- message dispatch ---------------------------------------------------------

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        fn = self._dispatch.get(msg.mtype)
        if fn is None:
            raise ProtocolError(f"site {self.site_id}: unexpected message {msg}")
        fn(ctx, msg)

    def _on_submit_txn(self, ctx: HandlerContext, msg: Message) -> None:
        self.coordinator.begin(ctx, self._decode_txn(msg))

    def _on_copy_resp(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.txn_id == BATCH_COPIER_TXN:
            self._on_batch_copy_resp(ctx, msg)
        else:
            self.coordinator.on_copy_resp(ctx, msg)

    def _on_copy_denied(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.txn_id == BATCH_COPIER_TXN:
            self._batch_pending.pop(msg.src, None)
            if self.parallel_recovery is not None:
                # The donor's own fail-lock view disagreed with ours:
                # exclude it for this recovery epoch and re-plan the shard
                # onto the remaining donors.
                self.parallel_recovery.note_denied(msg.src)
                self._maybe_issue_batch_copiers(ctx)
        else:
            self.coordinator.on_copy_denied(ctx, msg)

    @staticmethod
    def _decode_txn(msg: Message) -> Transaction:
        ops = [Operation(kind=k, item_id=i) for k, i in msg.payload["ops"]]
        return Transaction(txn_id=msg.txn_id, ops=ops)

    def _on_txn_status_req(self, ctx: HandlerContext, msg: Message) -> None:
        """Cooperative termination: a blocked participant asks what became
        of a transaction.  Consult the coordinator role first (it owns the
        decision), then our own participant view (we may have applied the
        outcome as a fellow participant)."""
        status, version = self.coordinator.txn_status(msg.txn_id)
        if status == "unknown":
            status, version = self.participant.txn_status(msg.txn_id)
        ctx.send(
            msg.src,
            MessageType.TXN_STATUS_RESP,
            {"status": status, "version": version},
            txn_id=msg.txn_id,
            session=self.nsv.my_session,
        )

    # -- shared commit processing ----------------------------------------------------

    def commit_writes(
        self,
        ctx: HandlerContext,
        txn_id: int,
        updates: list[tuple[int, int, int]],
        recipients: Optional[dict[int, list[int]]] = None,
    ) -> None:
        """Apply committed copy updates and do fail-lock maintenance.

        Used by the coordinator (local commit) and participants (phase two)
        alike — the paper incorporates fail-lock processing into the commit
        protocol at every site.

        ``recipients`` maps each written item to the sites the coordinator
        shipped the update to; fail-lock bits are cleared exactly for them
        and set for everyone else.  (The paper's formulation — examine the
        nominal session vector — is the ``recipients is None`` fallback; it
        is equivalent only when the local vector is accurate, which stale
        views under timeout detection are not.)
        """
        # Under partial replication a transaction may write items this
        # site holds no copy of; only local copies are applied.
        db = self.db
        updates = [u for u in updates if u[0] in db]
        ctx.cost += self.costs.commit_apply_cost * len(updates)
        now = ctx.now
        written_items = []
        for item_id, value, version in updates:
            db.apply_write(txn_id, item_id, value, version, now)
            written_items.append(item_id)
        obs = self.network.obs
        if obs.enabled and written_items:
            obs.emit(
                now,
                EventKind.COMMIT_APPLIED,
                site=self.site_id,
                txn=txn_id,
                items=len(written_items),
            )
        if self.config.faillocks_enabled and written_items:
            faillocks = self.faillocks
            site_id = self.site_id
            refreshed = 0
            for item in written_items:
                if faillocks.is_locked(item, site_id):
                    refreshed += 1
            ctx.cost += self.costs.faillock_maintenance_cost(
                len(written_items), self.nsv.num_sites
            )
            if recipients is not None:
                self.faillocks.update_with_recipients(
                    {item: recipients.get(item, []) for item in written_items}
                )
            else:
                self.faillocks.update_on_commit(written_items, self.nsv)
            if obs.enabled:
                obs.emit(
                    ctx.now,
                    EventKind.FAILLOCK_UPDATE,
                    site=self.site_id,
                    txn=txn_id,
                    items=len(written_items),
                    refreshed=refreshed,
                )
            if refreshed and self.recovery.in_recovery:
                self.recovery.note_refreshed_by_write(refreshed, ctx.now)
        if self.probe is not None and written_items:
            self.probe.on_commit_applied(self, txn_id, written_items, recipients)
        self._maybe_issue_batch_copiers(ctx)

    # -- copier responder (the 25 ms side of §2.2.3) -----------------------------------

    def _serve_copy_request(self, ctx: HandlerContext, msg: Message) -> None:
        items = msg.payload["items"]
        for item in items:
            if not self.catalog.holds(self.site_id, item) or self.faillocks.is_locked(
                item, self.site_id
            ):
                ctx.send(msg.src, MessageType.COPY_DENIED, {"item": item}, txn_id=msg.txn_id)
                return
        ctx.charge(self.costs.copy_response_cost(len(items)))
        ctx.send(
            msg.src,
            MessageType.COPY_RESP,
            copier_mod.build_copy_response(self.db, items),
            txn_id=msg.txn_id,
            session=self.nsv.my_session,
        )

    def _on_clear_faillocks(self, ctx: HandlerContext, msg: Message) -> None:
        ctx.charge(self.costs.clear_notice_apply_cost)
        copier_mod.apply_clear_notice(self.faillocks, msg.payload)
        obs = self.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.FAILLOCK_CLEAR,
                site=self.site_id,
                txn=msg.txn_id,
                owner=msg.payload.get("site", -1),
                items=len(msg.payload.get("items", ())),
            )

    # -- batch copiers (two-step recovery, §3.2 proposal) -------------------------------

    def _maybe_issue_batch_copiers(self, ctx: HandlerContext) -> None:
        if self.parallel_recovery is not None:
            # PARALLEL policy: the partitioned fan-out scheduler owns
            # batch-copier issue (multiple shards in flight at once).
            self.parallel_recovery.pump(ctx)
            return
        if not self.recovery.wants_batch_copier() or self._batch_pending:
            return
        items = self.recovery.next_batch()
        sources = copier_mod.choose_copier_source(
            self.planner, items, spread=self.config.spread_copier_sources
        )
        by_source: dict[int, list[int]] = {}
        for item in items:
            source = sources[item]
            if source >= 0:
                by_source.setdefault(source, []).append(item)
        if not by_source:
            return
        for source, batch_items in sorted(by_source.items()):
            self._batch_pending[source] = batch_items
            ctx.charge(self.costs.copy_request_cost)
            ctx.send(
                source,
                MessageType.COPY_REQ,
                copier_mod.build_copy_request(batch_items),
                txn_id=BATCH_COPIER_TXN,
                session=self.nsv.my_session,
            )
            self.recovery.note_copier_request(batch=True)
            self.metrics.record_copier(
                CopierRecord(
                    txn_id=BATCH_COPIER_TXN,
                    requester=self.site_id,
                    source=source,
                    items=len(batch_items),
                    batch=True,
                    started_at=ctx.now,
                    finished_at=ctx.now,
                )
            )

    def _on_batch_copy_resp(self, ctx: HandlerContext, msg: Message) -> None:
        copies = msg.payload["copies"]
        ctx.charge(self.costs.copy_install_cost * len(copies))
        copier_mod.apply_copy_response(
            self.db, self.faillocks, self.site_id, copies, ctx.now
        )
        self.recovery.note_refreshed_by_copier(len(copies), ctx.now)
        self._batch_pending.pop(msg.src, None)
        cleared = sorted(item for item, _v, _ver in copies)
        payload = copier_mod.build_clear_notice(self.site_id, cleared)
        for peer in self.nsv.operational_peers():
            ctx.charge(self.costs.clear_notice_format_cost)
            ctx.send(peer, MessageType.CLEAR_FAILLOCKS, payload, txn_id=BATCH_COPIER_TXN)
        # Keep draining until recovery completes.
        self._maybe_issue_batch_copiers(ctx)

    # -- control transaction type 2 ------------------------------------------------------

    def announce_failure(
        self,
        ctx: HandlerContext,
        failed_sites: list[int],
        stale_items: Optional[list[int]] = None,
    ) -> None:
        """Run a type-2 control transaction for ``failed_sites``.

        ``stale_items`` carries corrective fail-lock information for the
        commit-phase failure case (see
        :class:`~repro.core.control.FailureAnnouncement`).
        """
        newly = [
            s for s in failed_sites if self.nsv.state_of(s) is not SiteState.DOWN
        ]
        if not newly and not stale_items:
            return
        obs = self.network.obs
        for site in newly:
            self.nsv.mark_down(site)
            if obs.enabled:
                obs.emit(
                    ctx.now,
                    EventKind.NSV_MARK_DOWN,
                    site=self.site_id,
                    peer=site,
                    role="announcer",
                )
        stale_items = sorted(stale_items or [])
        if self.config.faillocks_enabled:
            for site in failed_sites:
                for item in stale_items:
                    self.faillocks.set_lock(item, site)
            if obs.enabled and stale_items:
                obs.emit(
                    ctx.now,
                    EventKind.FAILLOCK_SET,
                    site=self.site_id,
                    peers=sorted(failed_sites),
                    items=len(stale_items),
                )
        announcement = FailureAnnouncement(
            announcer=self.site_id, failed_sites=failed_sites, stale_items=stale_items
        )
        for peer in self.nsv.operational_peers():
            ctx.send(
                peer,
                MessageType.FAILURE_ANNOUNCE,
                announcement.to_payload(),
                session=self.nsv.my_session,
            )

    def _on_failure_announce(self, ctx: HandlerContext, msg: Message) -> None:
        started = msg.send_time - self.costs.msg_send_cost
        ctx.charge(self.costs.control2_update_cost)
        announcement = FailureAnnouncement.from_payload(msg.payload)
        announcement.apply(self.nsv)
        obs = self.network.obs
        if obs.enabled:
            for failed in announcement.failed_sites:
                obs.emit(
                    ctx.now,
                    EventKind.NSV_MARK_DOWN,
                    site=self.site_id,
                    peer=failed,
                    role="operational",
                )
        if self.config.faillocks_enabled:
            for failed in announcement.failed_sites:
                for item in announcement.stale_items:
                    self.faillocks.set_lock(item, failed)
            if obs.enabled and announcement.stale_items:
                obs.emit(
                    ctx.now,
                    EventKind.FAILLOCK_SET,
                    site=self.site_id,
                    peers=sorted(announcement.failed_sites),
                    items=len(announcement.stale_items),
                )

        def record() -> None:
            self.metrics.record_control(
                ControlRecord(
                    kind=2,
                    site_id=self.site_id,
                    role="operational",
                    started_at=max(started, 0.0),
                    finished_at=self.network.scheduler.now,
                )
            )

        ctx.on_done(record)

    # -- failure and recovery of this site ---------------------------------------------

    def _on_fail(self, ctx: HandlerContext, msg: Message) -> None:
        """The managing site ordered a (simulated) crash: stop participating
        in any further system actions.  Under the cold crash model, the
        volatile database (and with it the fail-lock table's content) is
        lost; only the session number survives (it is stable storage)."""
        self.alive = False
        self.nsv.mark_down(self.site_id)
        if self.config.cold_recovery:
            self.db.wipe()
        else:
            self.db.drop_staged()
        # Volatile protocol state dies with the site: in-flight 2PC roles,
        # the lock table, parked lock waiters, copier exchanges, and batch
        # staging.  Decision logs (_decided) survive as stable storage.
        # Under the serial managing site these containers are always empty
        # here (failures land between transactions); the soak engine
        # crashes sites mid-protocol, where this wipe is what lets
        # post-recovery transactions acquire locks again.
        self.coordinator.crash_reset()
        self.participant.crash_reset()
        if self.lock_service is not None:
            self.lock_service.wipe()
        self._batch_pending.clear()
        if self.parallel_recovery is not None:
            self.parallel_recovery.crash_reset()
        self._recovery_candidates = []
        obs = self.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.SITE_FAIL,
                site=self.site_id,
                cold=self.config.cold_recovery,
            )

    def _on_recover(self, ctx: HandlerContext, msg: Message) -> None:
        """The managing site initiated recovery: run the type-1 control
        transaction (announce the new session, fetch vector + fail-locks)."""
        self.alive = True
        new_session = self.nsv.begin_new_session()
        self._recovery_started_at = ctx.now
        # REDO pass: re-apply commit decisions whose local write was lost
        # when this site crashed mid-phase-2 (the participants applied;
        # only our own copy is stale, and no fail-lock covers it because
        # we were a live recipient at commit time).
        self.coordinator.redo_after_crash(ctx)
        obs = self.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.SITE_RECOVER,
                site=self.site_id,
                new_session=new_session,
            )
        ctx.charge(self.costs.control1_begin_cost)
        peers = [s for s in self.nsv.site_ids if s != self.site_id]
        if not peers:
            self._complete_recovery_solo(ctx)
            return
        # Candidates to answer with state, best-guess order: sites we last
        # knew operational first, then the rest.
        believed_up = [s for s in peers if self.nsv.is_operational(s)]
        believed_down = [s for s in peers if s not in believed_up]
        self._recovery_candidates = believed_up + believed_down
        responder = self._recovery_candidates.pop(0)
        announcement = RecoveryAnnouncement(
            site_id=self.site_id, new_session=new_session
        )
        for peer in peers:
            payload = announcement.to_payload()
            payload["respond"] = responder
            # A cold crash lost every copy: peers must fail-lock our whole
            # database so recovery refreshes all of it.
            payload["cold"] = self.config.cold_recovery
            ctx.send(
                peer,
                MessageType.RECOVERY_ANNOUNCE,
                payload,
                session=new_session,
            )

    def _complete_recovery_solo(self, ctx: HandlerContext) -> None:
        """No peers exist: become operational with our own state."""
        self.nsv.mark_up(self.site_id)
        self.recovery.begin(ctx.now)
        self._record_recovery_done(ctx)

    def _on_recovery_announce(self, ctx: HandlerContext, msg: Message) -> None:
        announcement = RecoveryAnnouncement.from_payload(msg.payload)
        ctx.charge(self.costs.control1_announce_cost)
        # The announced site becomes operational in our vector: in the
        # serial system no transaction can slip between its announcement
        # and its install, so marking it UP here is equivalent to the
        # paper's "preparing to become operational".
        self.nsv.mark_up(announcement.site_id, announcement.new_session)
        obs = self.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.NSV_MARK_UP,
                site=self.site_id,
                peer=announcement.site_id,
                session=announcement.new_session,
            )
        if msg.payload.get("cold"):
            # Cold crash: every copy the site holds is now out of date.
            items = self.catalog.items_on(announcement.site_id)
            ctx.charge(self.costs.faillock_bit_cost * len(items))
            for item in items:
                self.faillocks.set_lock(item, announcement.site_id)
        if msg.payload.get("respond") == self.site_id:
            started = ctx.now
            ctx.charge(self.costs.control1_format_cost(len(self.db)))
            state = RecoveryState.capture(self.site_id, self.nsv, self.faillocks)
            ctx.send(
                msg.src,
                MessageType.RECOVERY_STATE,
                state.to_payload(),
                session=self.nsv.my_session,
            )

            def record() -> None:
                self.metrics.record_control(
                    ControlRecord(
                        kind=1,
                        site_id=self.site_id,
                        role="operational",
                        started_at=started,
                        finished_at=self.network.scheduler.now,
                    )
                )

            ctx.on_done(record)

    def _on_recovery_state(self, ctx: HandlerContext, msg: Message) -> None:
        state = RecoveryState.from_payload(msg.payload)
        ctx.charge(self.costs.control1_install_cost(state.size()))
        state.install_at_recovering_site(self.nsv, self.faillocks)
        self.recovery.begin(ctx.now)
        self._record_recovery_done(ctx)
        self._maybe_issue_batch_copiers(ctx)

    def _on_recovery_period_end(self, stats: RecoveryStats, interrupted: bool) -> None:
        """A recovery period closed (completed, or interrupted by a re-fail):
        keep a summary row.  Pure metrics append — no scheduling, costs, or
        RNG — so recording it unconditionally cannot perturb replay."""
        self.metrics.record_recovery_period(
            RecoveryPeriodRecord(
                site_id=self.site_id,
                policy=self.recovery.policy.value,
                started_at=stats.started_at,
                finished_at=stats.finished_at,
                initial_stale=stats.initial_stale,
                copier_requests=stats.copier_requests,
                batch_copier_requests=stats.batch_copier_requests,
                refreshed_by_write=stats.refreshed_by_write,
                refreshed_by_copier=stats.refreshed_by_copier,
                interrupted=interrupted,
            )
        )

    def _record_recovery_done(self, ctx: HandlerContext) -> None:
        started = self._recovery_started_at
        obs = self.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.SITE_RECOVER_DONE,
                site=self.site_id,
                session=self.nsv.my_session,
                took=ctx.now - started,
            )

        def record() -> None:
            self.metrics.record_control(
                ControlRecord(
                    kind=1,
                    site_id=self.site_id,
                    role="recovering",
                    started_at=started,
                    finished_at=self.network.scheduler.now,
                )
            )

        ctx.on_done(record)
        ctx.send(
            self.config.manager_id,
            MessageType.MGR_RECOVER_DONE,
            {"site": self.site_id, "session": self.nsv.my_session},
        )

    # -- outcomes and bounced messages -----------------------------------------------

    def send_outcome(
        self, txn: Transaction, elapsed: float, copiers: int, clear_notices: int
    ) -> None:
        """Report a finished transaction to the managing site (spawned as a
        fresh activation so the measured window stays closed)."""

        def report(ctx: HandlerContext) -> None:
            ctx.send(
                self.config.manager_id,
                MessageType.MGR_TXN_DONE,
                {
                    "committed": txn.status.value == "committed",
                    "reason": txn.abort_reason.value,
                    "coordinator_elapsed": elapsed,
                    "copiers": copiers,
                    "clear_notices": clear_notices,
                    "size": txn.size,
                    "items_read": len(txn.read_items),
                    "items_written": len(txn.write_items),
                    "submitted_at": txn.submitted_at,
                },
                txn_id=txn.txn_id,
            )

        self.network.spawn(self, report)

    def on_delivery_failed(self, ctx: HandlerContext, msg: Message) -> None:
        """One of our messages bounced off a down or unreachable site."""
        if msg.mtype is MessageType.COPY_REQ and msg.txn_id == BATCH_COPIER_TXN:
            # A batch-copier source died: clear the in-flight slot so the
            # two-step recovery keeps draining via the remaining sources.
            self._batch_pending.pop(msg.dst, None)
            self.announce_failure(ctx, [msg.dst])
            self._maybe_issue_batch_copiers(ctx)
        elif msg.mtype in (
            MessageType.COPY_REQ,
            MessageType.VOTE_REQ,
            MessageType.COMMIT,
        ):
            self.coordinator.on_delivery_failed(ctx, msg)
        elif msg.mtype is MessageType.TXN_STATUS_REQ:
            # A termination-inquiry candidate is unreachable: move on to
            # the next one (no type-2 announcement for an inquiry bounce).
            self.participant.on_status_req_failed(ctx, msg)
        elif msg.mtype is MessageType.RECOVERY_ANNOUNCE:
            if msg.payload.get("respond") == msg.dst:
                self._retry_recovery_responder(ctx, msg)
        elif msg.mtype is MessageType.RECOVERY_STATE:
            # The recovering site died again mid-type-1; nothing to do.
            pass
        # FAILURE_ANNOUNCE / CLEAR_FAILLOCKS bounces need no action: the
        # destination is down and will install fresh state on recovery.

    def _retry_recovery_responder(self, ctx: HandlerContext, msg: Message) -> None:
        """Our chosen type-1 responder is down: mark it, try the next.

        Every remaining candidate is tried regardless of what our own
        (stale — we just woke up) session vector says about it: a site we
        last saw down may have recovered while we were away, and its table
        is exactly the fresh knowledge we need.  Only an actual bounce
        advances past a candidate.
        """
        self.announce_failure(ctx, [msg.dst])
        if self._recovery_candidates:
            responder = self._recovery_candidates.pop(0)
            payload = dict(msg.payload)
            payload["respond"] = responder
            ctx.send(
                responder,
                MessageType.RECOVERY_ANNOUNCE,
                payload,
                session=self.nsv.my_session,
            )
            return
        # Nobody left to ask: we are the only site up; recover solo.
        self._complete_recovery_solo(ctx)

    # -- control transaction type 3 (§3.2 proposal, partial replication) -----------------

    def initiate_backup(self, ctx: HandlerContext, item_id: int, target: int) -> None:
        """Type-3 control transaction: ship a backup copy of ``item_id`` to
        ``target``, a site that holds no copy.  Used when this site holds
        the last up-to-date copy (the §3.2 availability proposal)."""
        if self.catalog.holds(target, item_id):
            raise ProtocolError(
                f"site {target} already holds a copy of item {item_id}"
            )
        copy = self.db.get(item_id)
        self._type3_started[(item_id, target)] = ctx.now
        ctx.charge(self.costs.create_copy_cost)
        ctx.send(
            target,
            MessageType.CREATE_COPY,
            {"item": item_id, "value": copy.value, "version": copy.version},
            session=self.nsv.my_session,
        )

    def _on_create_copy(self, ctx: HandlerContext, msg: Message) -> None:
        item = msg.payload["item"]
        ctx.charge(self.costs.create_copy_cost)
        self.db.create_item(item, msg.payload["value"], msg.payload["version"], ctx.now)
        self.catalog.add_copy(item, self.site_id)
        if item not in self.faillocks.item_ids:
            self.faillocks.add_item(item)
        ctx.send(msg.src, MessageType.CREATE_COPY_ACK, {"item": item})

    def _on_create_copy_ack(self, ctx: HandlerContext, msg: Message) -> None:
        item = msg.payload["item"]
        started = self._type3_started.pop((item, msg.src), None)
        if started is None:
            return

        def record() -> None:
            self.metrics.record_control(
                ControlRecord(
                    kind=3,
                    site_id=self.site_id,
                    role="announcer",
                    started_at=started,
                    finished_at=self.network.scheduler.now,
                )
            )

        ctx.on_done(record)

    def drop_backup_copy(self, item_id: int) -> None:
        """Remove a type-3 backup copy once it is no longer needed (the
        cleanup cost §3.2 mentions)."""
        self.db.drop_item(item_id)
        self.catalog.remove_copy(item_id, self.site_id)

    # -- orderly shutdown (the TERMINATING state) ----------------------------------------

    def terminate(self) -> None:
        """Mark this site terminating, then down (orderly shutdown)."""
        self.nsv.mark_terminating(self.site_id)
        self.alive = False
        self.nsv.mark_down(self.site_id)

    def signature(self) -> tuple:
        """Hashable snapshot of this site's protocol state (``repro.check``).

        Composes the per-layer signatures (database, session vector,
        fail-locks, both 2PC roles, lock table).  Deliberately excludes
        metrics, the redo log, and every wall-clock timestamp: the
        fingerprint must identify states that *behave* identically, not
        states reached at the same instant.
        """
        sig = (
            self.site_id,
            self.alive,
            self.nsv.signature(),
            self.db.signature(),
            self.faillocks.signature(),
            self.participant.signature(),
            self.coordinator.signature(),
            self.recovery.in_recovery,
            tuple(self._recovery_candidates),
            tuple(
                (source, tuple(items))
                for source, items in sorted(self._batch_pending.items())
            ),
            self.lock_service.manager.signature()
            if self.lock_service is not None
            else None,
        )
        if self.parallel_recovery is not None:
            # Appended only under the PARALLEL policy so fingerprints of
            # every pre-existing configuration keep their exact shape.
            sig = sig + (self.parallel_recovery.signature(),)
        return sig

    def __repr__(self) -> str:
        return (
            f"DatabaseSite(id={self.site_id}, "
            f"{'up' if self.alive else 'down'}, "
            f"session={self.nsv.my_session}, "
            f"stale={self.faillocks.count_for(self.site_id)})"
        )
