"""Per-site lock service for the "complete RAID" concurrent mode.

Mini-RAID processed transactions serially (paper assumption 2); the paper
defers concurrency control to the complete RAID system.  This module
supplies the site-local half of that future work: each site runs a strict
two-phase-locking table over its own copies, and a transaction's protocol
step at the site proceeds only once its locks are granted — otherwise the
step *parks* and resumes when a conflicting transaction releases.

Blocked requests report their blockers to the cluster's global deadlock
detector (see :mod:`repro.system.deadlock`), mirroring a System R*-style
centralized waits-for service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.net.endpoint import HandlerContext
from repro.obs.events import EventKind
from repro.txn.locks import LockManager, LockMode

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.site.site import DatabaseSite
    from repro.system.deadlock import GlobalDeadlockDetector


@dataclass(slots=True)
class _Parked:
    """A lock acquisition waiting at this site."""

    txn_id: int
    remaining: list[tuple[int, LockMode]]
    continuation: Callable[[HandlerContext], None]
    cancelled: bool = False
    # True while a resume activation is scheduled but not yet run; guards
    # against double-resume when several releases land in one instant.
    in_flight: bool = False


class SiteLockService:
    """Strict 2PL over one site's copies, with parked continuations."""

    __slots__ = ("site", "manager", "detector", "_parked", "parks")

    def __init__(self, site: "DatabaseSite") -> None:
        self.site = site
        self.manager = LockManager()
        self.detector: Optional["GlobalDeadlockDetector"] = None
        self._parked: dict[int, _Parked] = {}
        self.parks = 0

    # -- acquisition -------------------------------------------------------------

    def acquire(
        self,
        ctx: HandlerContext,
        txn_id: int,
        requests: list[tuple[int, LockMode]],
        continuation: Callable[[HandlerContext], None],
    ) -> None:
        """Acquire ``requests`` (in item order) then run ``continuation``.

        If every lock is free the continuation runs synchronously within
        the current activation (the fast path — no extra latency).  On
        conflict the request parks; the continuation later runs in a fresh
        activation once the final lock is granted.
        """
        ordered = sorted(requests, key=lambda r: r[0])
        self._try_acquire(ctx, _Parked(txn_id, ordered, continuation), first=True)

    def _try_acquire(self, ctx: HandlerContext, parked: _Parked, first: bool) -> None:
        site = self.site
        while parked.remaining:
            item, mode = parked.remaining[0]
            ctx.charge(site.costs.lock_request_cost)
            grant = self.manager.request(parked.txn_id, item, mode)
            if grant.granted:
                parked.remaining.pop(0)
                continue
            # Blocked: park and tell the global detector.
            self._parked[parked.txn_id] = parked
            if first:
                self.parks += 1
            obs = site.network.obs
            if obs.enabled:
                obs.emit(
                    ctx.now,
                    EventKind.LOCK_BLOCK,
                    site=site.site_id,
                    txn=parked.txn_id,
                    item=item,
                    waiting_for=sorted(grant.waiting_for),
                )
            if self.detector is not None:
                self.detector.block(
                    ctx, site.site_id, parked.txn_id, grant.waiting_for
                )
            return
        self._parked.pop(parked.txn_id, None)
        if self.detector is not None:
            self.detector.unblock(self.site.site_id, parked.txn_id)
        parked.continuation(ctx)

    # -- release -------------------------------------------------------------------

    def release(self, ctx: HandlerContext, txn_id: int) -> None:
        """Strict release at commit/abort; resumes newly granted waiters."""
        ctx.charge(self.site.costs.lock_release_cost)
        granted = self.manager.release_all(txn_id)
        self._parked.pop(txn_id, None)
        resumed: set[int] = set()
        for newly in granted.values():
            resumed.update(newly)
        for waiter in sorted(resumed):
            self._resume(waiter)

    def _resume(self, waiter: int) -> None:
        parked = self._parked.get(waiter)
        if parked is None or parked.cancelled or parked.in_flight:
            return
        if not parked.remaining:
            return
        head_item, mode = parked.remaining[0]
        held = self.manager.holders_of(head_item).get(waiter)
        granted = held is LockMode.EXCLUSIVE or (
            mode is LockMode.SHARED and held is LockMode.SHARED
        )
        if not granted:
            return  # spurious wake-up: the head lock was not granted to us
        parked.remaining.pop(0)
        parked.in_flight = True
        if self.detector is not None:
            self.detector.unblock(self.site.site_id, waiter)

        def go(ctx: HandlerContext) -> None:
            parked.in_flight = False
            if parked.cancelled:
                return
            self._try_acquire(ctx, parked, first=False)

        self.site.network.spawn(self.site, go)

    def cancel(self, ctx: HandlerContext, txn_id: int) -> None:
        """Abort path: drop any parked continuation and release locks."""
        parked = self._parked.pop(txn_id, None)
        if parked is not None:
            parked.cancelled = True
        self.release(ctx, txn_id)
        if self.detector is not None:
            self.detector.forget(txn_id)

    def wipe(self) -> None:
        """Crash: the lock table is volatile, so all of it is lost.

        Parked continuations are cancelled (their closures may still be
        scheduled; the flag makes them no-ops), the global detector drops
        this site's wait-for edges, and the lock table restarts empty.
        Waiters are deliberately *not* resumed — their transactions died
        with the site.
        """
        for parked in self._parked.values():
            parked.cancelled = True
            if self.detector is not None:
                self.detector.unblock(self.site.site_id, parked.txn_id)
        self._parked.clear()
        self.manager = LockManager()

    @property
    def parked_txns(self) -> list[int]:
        """Transactions currently waiting at this site, sorted."""
        return sorted(self._parked)

    def __repr__(self) -> str:
        return (
            f"SiteLockService(site={self.site.site_id}, "
            f"parked={self.parked_txns}, {self.manager!r})"
        )
