"""Protocol message anatomy.

The paper reasons about costs in units of inter-site communications (9 ms
each).  These helpers reconstruct, from the message trace, exactly which
communications each transaction generated — letting tests and reports
verify the protocol's message complexity analytically: a committed
transaction with ``p`` participants costs ``4p`` protocol messages, a
copier adds ``2 + peers`` more, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import mean
from repro.net.message import MessageType
from repro.net.trace import MessageTrace

# Message kinds that belong to transaction processing (not management).
_PROTOCOL_KINDS = (
    MessageType.VOTE_REQ,
    MessageType.VOTE_ACK,
    MessageType.VOTE_NACK,
    MessageType.COMMIT,
    MessageType.COMMIT_ACK,
    MessageType.ABORT,
    MessageType.COPY_REQ,
    MessageType.COPY_RESP,
    MessageType.COPY_DENIED,
    MessageType.CLEAR_FAILLOCKS,
)


def message_anatomy(trace: MessageTrace, txn_id: int) -> dict[str, int]:
    """``{message kind: count}`` for one transaction's protocol messages."""
    counts: dict[str, int] = {}
    for entry in trace.for_txn(txn_id):
        if entry.mtype in _PROTOCOL_KINDS:
            counts[entry.mtype.value] = counts.get(entry.mtype.value, 0) + 1
    return counts


def txn_message_count(trace: MessageTrace, txn_id: int) -> int:
    """Total protocol messages one transaction generated."""
    return sum(message_anatomy(trace, txn_id).values())


@dataclass(slots=True)
class AnatomyRow:
    """Average message anatomy for one class of transactions."""

    label: str
    txns: int
    avg_messages: float
    avg_communication_ms: float


def protocol_summary(
    trace: MessageTrace,
    metrics: MetricsCollector,
    communication_ms: float = 9.0,
) -> list[AnatomyRow]:
    """Message anatomy by transaction class (the §2 cost framing).

    Classes: committed without copiers, committed with copiers, aborted.
    """
    classes: dict[str, list[int]] = {
        "committed, no copier": [],
        "committed, with copier": [],
        "aborted": [],
    }
    for record in metrics.txns:
        total = txn_message_count(trace, record.txn_id)
        if not record.committed:
            classes["aborted"].append(total)
        elif record.copiers_requested:
            classes["committed, with copier"].append(total)
        else:
            classes["committed, no copier"].append(total)
    rows = []
    for label, counts in classes.items():
        rows.append(
            AnatomyRow(
                label=label,
                txns=len(counts),
                avg_messages=mean([float(c) for c in counts]),
                avg_communication_ms=mean(
                    [float(c) * communication_ms for c in counts]
                ),
            )
        )
    return rows
