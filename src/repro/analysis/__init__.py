"""Post-run analysis: exports and protocol anatomy.

Turns a run's metrics and message trace into artifacts a downstream user
can work with — CSV series for plotting the figures in other tools, and a
message-level breakdown of what each protocol interaction costs.
"""

from repro.analysis.export import (
    faillock_series_csv,
    txn_records_csv,
    control_records_csv,
    copier_records_csv,
    write_csv,
)
from repro.analysis.anatomy import (
    message_anatomy,
    txn_message_count,
    protocol_summary,
    AnatomyRow,
)

__all__ = [
    "faillock_series_csv",
    "txn_records_csv",
    "control_records_csv",
    "copier_records_csv",
    "write_csv",
    "message_anatomy",
    "txn_message_count",
    "protocol_summary",
    "AnatomyRow",
]
