"""CSV export of a run's measurement series.

Each function renders one series as CSV rows (lists of strings, header
first); :func:`write_csv` saves them.  Everything a figure needs —
per-transaction fail-lock counts, transaction outcomes/timings, control
and copier transaction records — can be exported and re-plotted outside
the simulator.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.metrics.collector import MetricsCollector


def faillock_series_csv(metrics: MetricsCollector) -> list[list[str]]:
    """``txn_seq, time_ms, site_<k>...`` — the Figures 1-3 data."""
    if not metrics.faillock_samples:
        return [["txn_seq", "time_ms"]]
    sites = sorted(metrics.faillock_samples[0].locks_per_site)
    rows = [["txn_seq", "time_ms"] + [f"site_{s}" for s in sites]]
    for sample in metrics.faillock_samples:
        rows.append(
            [str(sample.seq), f"{sample.time:.3f}"]
            + [str(sample.locks_per_site.get(s, 0)) for s in sites]
        )
    return rows


def txn_records_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per transaction: outcome, sizes, timings."""
    rows = [[
        "txn_id", "seq", "coordinator", "committed", "abort_reason", "size",
        "items_read", "items_written", "submitted_at", "finished_at",
        "coordinator_elapsed", "copiers_requested", "clear_notices_sent",
    ]]
    for t in metrics.txns:
        rows.append([
            str(t.txn_id), str(t.seq), str(t.coordinator),
            "1" if t.committed else "0", t.abort_reason.value, str(t.size),
            str(t.items_read), str(t.items_written),
            f"{t.submitted_at:.3f}", f"{t.finished_at:.3f}",
            f"{t.coordinator_elapsed:.3f}", str(t.copiers_requested),
            str(t.clear_notices_sent),
        ])
    return rows


def control_records_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per control transaction occurrence."""
    rows = [["kind", "site_id", "role", "started_at", "finished_at", "elapsed"]]
    for c in metrics.controls:
        rows.append([
            str(c.kind), str(c.site_id), c.role,
            f"{c.started_at:.3f}", f"{c.finished_at:.3f}", f"{c.elapsed:.3f}",
        ])
    return rows


def copier_records_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per copier exchange."""
    rows = [["txn_id", "requester", "source", "items", "batch",
             "started_at", "finished_at", "elapsed"]]
    for c in metrics.copiers:
        rows.append([
            str(c.txn_id), str(c.requester), str(c.source), str(c.items),
            "1" if c.batch else "0",
            f"{c.started_at:.3f}", f"{c.finished_at:.3f}", f"{c.elapsed:.3f}",
        ])
    return rows


def recovery_periods_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per recovery period (type-1 done -> last fail-lock clear).

    ``elapsed`` is -1 for interrupted periods (the site failed again
    before its recovery completed).
    """
    rows = [[
        "site_id", "policy", "started_at", "finished_at", "elapsed",
        "initial_stale", "copier_requests", "batch_copier_requests",
        "refreshed_by_write", "refreshed_by_copier", "interrupted",
    ]]
    for r in metrics.recoveries:
        rows.append([
            str(r.site_id), r.policy,
            f"{r.started_at:.3f}", f"{r.finished_at:.3f}", f"{r.elapsed:.3f}",
            str(r.initial_stale), str(r.copier_requests),
            str(r.batch_copier_requests), str(r.refreshed_by_write),
            str(r.refreshed_by_copier), "1" if r.interrupted else "0",
        ])
    return rows


def write_csv(rows: list[list[str]], path: str | Path) -> Path:
    """Write ``rows`` (header first) to ``path``; returns the path."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        csv.writer(fh).writerows(rows)
    return path
