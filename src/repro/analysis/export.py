"""CSV export of a run's measurement series.

Each function renders one series as CSV rows (lists of strings, header
first); :func:`write_csv` saves them.  Everything a figure needs —
per-transaction fail-lock counts, transaction outcomes/timings, control
and copier transaction records — can be exported and re-plotted outside
the simulator.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.metrics.collector import MetricsCollector


def faillock_series_csv(metrics: MetricsCollector) -> list[list[str]]:
    """``txn_seq, time_ms, site_<k>...`` — the Figures 1-3 data."""
    if not metrics.faillock_samples:
        return [["txn_seq", "time_ms"]]
    sites = sorted(metrics.faillock_samples[0].locks_per_site)
    rows = [["txn_seq", "time_ms"] + [f"site_{s}" for s in sites]]
    for sample in metrics.faillock_samples:
        rows.append(
            [str(sample.seq), f"{sample.time:.3f}"]
            + [str(sample.locks_per_site.get(s, 0)) for s in sites]
        )
    return rows


def txn_records_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per transaction: outcome, sizes, timings."""
    rows = [[
        "txn_id", "seq", "coordinator", "committed", "abort_reason", "size",
        "items_read", "items_written", "submitted_at", "finished_at",
        "coordinator_elapsed", "copiers_requested", "clear_notices_sent",
    ]]
    for t in metrics.txns:
        rows.append([
            str(t.txn_id), str(t.seq), str(t.coordinator),
            "1" if t.committed else "0", t.abort_reason.value, str(t.size),
            str(t.items_read), str(t.items_written),
            f"{t.submitted_at:.3f}", f"{t.finished_at:.3f}",
            f"{t.coordinator_elapsed:.3f}", str(t.copiers_requested),
            str(t.clear_notices_sent),
        ])
    return rows


def control_records_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per control transaction occurrence."""
    rows = [["kind", "site_id", "role", "started_at", "finished_at", "elapsed"]]
    for c in metrics.controls:
        rows.append([
            str(c.kind), str(c.site_id), c.role,
            f"{c.started_at:.3f}", f"{c.finished_at:.3f}", f"{c.elapsed:.3f}",
        ])
    return rows


def copier_records_csv(metrics: MetricsCollector) -> list[list[str]]:
    """One row per copier exchange."""
    rows = [["txn_id", "requester", "source", "items", "batch",
             "started_at", "finished_at", "elapsed"]]
    for c in metrics.copiers:
        rows.append([
            str(c.txn_id), str(c.requester), str(c.source), str(c.items),
            "1" if c.batch else "0",
            f"{c.started_at:.3f}", f"{c.finished_at:.3f}", f"{c.elapsed:.3f}",
        ])
    return rows


def write_csv(rows: list[list[str]], path: str | Path) -> Path:
    """Write ``rows`` (header first) to ``path``; returns the path."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        csv.writer(fh).writerows(rows)
    return path
