"""Two-phase commit bookkeeping (paper Appendix A).

The site that receives a transaction from the managing site coordinates;
the remaining operational sites participate.  Phase one ships the copy
updates for written items; phase two ships the commit indication.  The
coordinator commits locally and updates fail-locks after collecting the
commit acks.

This module holds the coordinator's per-transaction state record; the
actual message exchange lives in :mod:`repro.site.coordinator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.txn.transaction import Transaction


class CommitPhase(enum.Enum):
    """Where a coordinated transaction currently stands."""

    EXECUTING = "executing"        # local reads/writes, copiers if needed
    COPIER_WAIT = "copier_wait"    # waiting for COPY_RESP
    VOTING = "voting"              # phase 1: waiting for VOTE_ACKs
    COMMITTING = "committing"      # phase 2: waiting for COMMIT_ACKs
    DONE = "done"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class CoordinatorState:
    """Everything the coordinator tracks for one in-flight transaction."""

    txn: Transaction
    phase: CommitPhase = CommitPhase.EXECUTING
    participants: list[int] = field(default_factory=list)
    pending_votes: set[int] = field(default_factory=set)
    pending_commit_acks: set[int] = field(default_factory=set)
    updates: list[tuple[int, int, int]] = field(default_factory=list)
    # Per written item, the sites that receive the update (the coordinator's
    # write-all-available set); drives exact fail-lock maintenance.
    recipients: dict[int, list[int]] = field(default_factory=dict)
    commit_version: int = -1
    copier_items: list[int] = field(default_factory=list)
    copier_source: int = -1
    copiers_requested: int = 0
    started_at: float = 0.0
    # Phase-2 termination: how many times the coordinator's timeout has
    # re-sent the COMMIT to silent participants (repro.site.coordinator
    # escalates to the type-2 path past ``commit_max_retries``).
    commit_retries: int = 0

    def begin_voting(self, participants: list[int], time_unused: float = 0.0) -> None:
        """Enter phase one, expecting votes from ``participants``."""
        if self.phase not in (CommitPhase.EXECUTING, CommitPhase.COPIER_WAIT):
            raise ProtocolError(
                f"txn {self.txn.txn_id}: cannot start voting from {self.phase}"
            )
        self.participants = list(participants)
        self.pending_votes = set(participants)
        self.phase = CommitPhase.VOTING

    def record_vote(self, site_id: int) -> bool:
        """Record a VOTE_ACK.  Returns True when all votes are in."""
        if self.phase is not CommitPhase.VOTING:
            raise ProtocolError(
                f"txn {self.txn.txn_id}: vote from {site_id} in phase {self.phase}"
            )
        self.pending_votes.discard(site_id)
        return not self.pending_votes

    def begin_commit(self) -> None:
        """Enter phase two, expecting commit acks from all participants."""
        if self.phase is not CommitPhase.VOTING or self.pending_votes:
            raise ProtocolError(
                f"txn {self.txn.txn_id}: cannot commit yet "
                f"(phase={self.phase}, pending={self.pending_votes})"
            )
        self.pending_commit_acks = set(self.participants)
        self.phase = CommitPhase.COMMITTING

    def record_commit_ack(self, site_id: int) -> bool:
        """Record a COMMIT_ACK.  Returns True when all acks are in."""
        if self.phase is not CommitPhase.COMMITTING:
            raise ProtocolError(
                f"txn {self.txn.txn_id}: commit ack from {site_id} "
                f"in phase {self.phase}"
            )
        self.pending_commit_acks.discard(site_id)
        return not self.pending_commit_acks

    def drop_participant(self, site_id: int) -> None:
        """Remove a participant the coordinator has stopped waiting on.

        Reached from both detection paths: a delivery-failure notice (the
        network reports the site down or unreachable) and a protocol
        timeout (phase-1 votes or phase-2 acks overdue past the configured
        retry budget).  Dropping the site lets the protocol complete among
        the remainder, per Appendix A."""
        if site_id in self.participants:
            self.participants.remove(site_id)
        self.pending_votes.discard(site_id)
        self.pending_commit_acks.discard(site_id)

    def finish(self) -> None:
        """Mark the protocol complete for this transaction."""
        self.phase = CommitPhase.DONE

    def signature(self) -> tuple:
        """Hashable snapshot of the protocol-visible state (``repro.check``).

        Excludes ``started_at`` (wall-clock of the sim, not protocol
        state); vote/ack *sets* are sorted because their membership, not
        arrival order, drives the protocol.
        """
        return (
            self.phase.value,
            tuple(self.participants),
            tuple(sorted(self.pending_votes)),
            tuple(sorted(self.pending_commit_acks)),
            tuple(self.updates),
            tuple(
                (item, tuple(sites))
                for item, sites in sorted(self.recipients.items())
            ),
            self.commit_version,
            tuple(self.copier_items),
            self.copier_source,
            self.copiers_requested,
            self.commit_retries,
        )
