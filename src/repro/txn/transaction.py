"""The transaction object and its lifecycle."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionError
from repro.txn.operations import Operation


class TxnStatus(enum.Enum):
    """Lifecycle states of a database transaction."""

    PENDING = "pending"      # generated, not yet submitted
    ACTIVE = "active"        # executing at its coordinator
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AbortReason(enum.Enum):
    """Why a transaction aborted (the situations in Appendix A)."""

    NONE = "none"
    COPY_UNAVAILABLE = "copy_unavailable"     # copier had no source (§4.2.1)
    COPIER_SOURCE_DOWN = "copier_source_down"  # source failed mid-copier
    PARTICIPANT_FAILED = "participant_failed"  # phase-1 participant down
    PARTICIPANT_TIMEOUT = "participant_timeout"  # phase-1 votes never arrived
    COORDINATOR_FAILED = "coordinator_failed"
    SESSION_CHANGED = "session_changed"        # status change mid-transaction
    LOCK_DEADLOCK = "lock_deadlock"            # 2PL extension only
    WRITE_ALL_BLOCKED = "write_all_blocked"    # strict ROWA baseline only
    QUORUM_UNAVAILABLE = "quorum_unavailable"  # quorum baseline only

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class Transaction:
    """One database transaction."""

    txn_id: int
    ops: list[Operation]
    coordinator: int = -1
    status: TxnStatus = TxnStatus.PENDING
    abort_reason: AbortReason = AbortReason.NONE
    submitted_at: float = -1.0
    finished_at: float = -1.0
    reads: dict[int, int] = field(default_factory=dict)
    writes: dict[int, int] = field(default_factory=dict)
    # Lazily computed caches for read_items/write_items: ``ops`` never
    # changes after construction, and these are consulted on every hot
    # protocol step (planning, locking, reporting).
    _read_items: list[int] | None = field(default=None, repr=False, compare=False)
    _write_items: list[int] | None = field(default=None, repr=False, compare=False)

    @property
    def read_items(self) -> list[int]:
        """Distinct items read, in first-touch order."""
        items = self._read_items
        if items is None:
            items = self._read_items = list(
                dict.fromkeys(op.item_id for op in self.ops if op.is_read)
            )
        return items

    @property
    def write_items(self) -> list[int]:
        """Distinct items written, in first-touch order."""
        items = self._write_items
        if items is None:
            items = self._write_items = list(
                dict.fromkeys(op.item_id for op in self.ops if op.is_write)
            )
        return items

    @property
    def size(self) -> int:
        """Number of operations."""
        return len(self.ops)

    @property
    def is_done(self) -> bool:
        return self.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED)

    @property
    def elapsed(self) -> float:
        """Submission-to-completion time in simulated ms (-1 if unfinished)."""
        if self.finished_at < 0 or self.submitted_at < 0:
            return -1.0
        return self.finished_at - self.submitted_at

    def mark_committed(self, time: float) -> None:
        """Transition to COMMITTED (once)."""
        if self.is_done:
            raise TransactionError(f"txn {self.txn_id} already {self.status}")
        self.status = TxnStatus.COMMITTED
        self.finished_at = time

    def mark_aborted(self, reason: AbortReason, time: float) -> None:
        """Transition to ABORTED (once)."""
        if self.is_done:
            raise TransactionError(f"txn {self.txn_id} already {self.status}")
        self.status = TxnStatus.ABORTED
        self.abort_reason = reason
        self.finished_at = time

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, ops={self.ops}, "
            f"coord={self.coordinator}, {self.status.value})"
        )


@dataclass(slots=True)
class TxnOutcome:
    """What the managing site records when a transaction completes."""

    txn_id: int
    committed: bool
    abort_reason: AbortReason
    coordinator: int
    elapsed_ms: float
    copiers_requested: int = 0
    items_written: int = 0
    items_read: int = 0
