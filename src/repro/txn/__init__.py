"""Transactions and commit processing.

The paper processes database transactions with a two-phase commit protocol
(Appendix A), serially, without concurrency control (assumption 2).  This
package provides the transaction model and the coordinator/participant
bookkeeping for 2PC, plus — for the paper's declared future work of running
the protocol "in the complete RAID system ... taking into account
concurrency control" — a strict two-phase-locking lock manager with
waits-for deadlock detection.
"""

from repro.txn.operations import OpKind, Operation, random_transaction_ops
from repro.txn.transaction import Transaction, TxnStatus, TxnOutcome, AbortReason
from repro.txn.twophase import CommitPhase, CoordinatorState
from repro.txn.locks import LockMode, LockManager, LockGrant
from repro.txn.deadlock import WaitsForGraph

__all__ = [
    "OpKind",
    "Operation",
    "random_transaction_ops",
    "Transaction",
    "TxnStatus",
    "TxnOutcome",
    "AbortReason",
    "CommitPhase",
    "CoordinatorState",
    "LockMode",
    "LockManager",
    "LockGrant",
    "WaitsForGraph",
]
