"""Strict two-phase locking (the "complete RAID" extension).

Mini-RAID deliberately factored concurrency control out (paper assumption
2); the authors planned to re-introduce it when running the protocol in the
complete RAID system.  This lock manager supplies that substrate: shared /
exclusive item locks, FIFO queueing with the standard compatibility matrix,
and release-all-at-commit (strictness).  The concurrent cluster mode and
the deadlock detector build on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LockError


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """Standard S/X compatibility: only S+S coexist."""
        return self is LockMode.SHARED and other is LockMode.SHARED

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class _LockEntry:
    """The grant set and wait queue for one item."""

    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: list[tuple[int, LockMode]] = field(default_factory=list)


@dataclass(slots=True, frozen=True)
class LockGrant:
    """Result of a lock request."""

    granted: bool
    # Transactions the requester now waits for (empty when granted).
    waiting_for: tuple[int, ...] = ()


# Grants carry no per-request state, and LockGrant is frozen, so every
# successful request can share one instance instead of allocating.
_GRANTED = LockGrant(granted=True)


class LockManager:
    """Item-granularity S/X lock table for one site."""

    __slots__ = ("_table", "_touched", "grants", "waits")

    def __init__(self) -> None:
        self._table: dict[int, _LockEntry] = {}
        # txn -> items it holds or queues on.  Invariant: a transaction in
        # any entry's holders or queue has that item in its touched set, so
        # release_all visits only those entries instead of the whole table.
        self._touched: dict[int, set[int]] = {}
        self.grants = 0
        self.waits = 0

    def _entry(self, item_id: int) -> _LockEntry:
        entry = self._table.get(item_id)
        if entry is None:
            entry = self._table[item_id] = _LockEntry()
        return entry

    def holders_of(self, item_id: int) -> dict[int, LockMode]:
        """Current holders of ``item_id`` (copy)."""
        entry = self._table.get(item_id)
        return dict(entry.holders) if entry is not None else {}

    def waiters_of(self, item_id: int) -> list[int]:
        """Queued transactions on ``item_id``, FIFO order."""
        entry = self._table.get(item_id)
        if entry is None:
            return []
        return [txn for txn, _mode in entry.queue]

    def signature(self) -> tuple:
        """Hashable snapshot of every non-empty entry (``repro.check``).

        Holders are sorted (the grant *set* has no order); the wait queue
        keeps its FIFO order, which is protocol-visible.
        """
        return tuple(
            (
                item,
                tuple(sorted((t, m.value) for t, m in entry.holders.items())),
                tuple((t, m.value) for t, m in entry.queue),
            )
            for item, entry in sorted(self._table.items())
            if entry.holders or entry.queue
        )

    def request(self, txn_id: int, item_id: int, mode: LockMode) -> LockGrant:
        """Request ``mode`` on ``item_id`` for ``txn_id``.

        Re-requests are idempotent; S→X upgrade succeeds only when the
        requester is the sole holder, otherwise it queues.  A queued request
        returns the holder set it waits for (feeding the waits-for graph).
        """
        entry = self._entry(item_id)
        holders = entry.holders
        held = holders.get(txn_id)
        SHARED = LockMode.SHARED
        if held is mode or held is LockMode.EXCLUSIVE:
            return _GRANTED
        if held is SHARED and mode is LockMode.EXCLUSIVE:
            if len(holders) == 1:
                holders[txn_id] = LockMode.EXCLUSIVE
                self.grants += 1
                return _GRANTED
            blockers = tuple(t for t in holders if t != txn_id)
            entry.queue.append((txn_id, mode))
            self.waits += 1
            return LockGrant(granted=False, waiting_for=blockers)
        # Fresh request: grant if compatible with every holder and nobody
        # is already queued (queue-jumping would starve writers).  The
        # S/X matrix reduces to identity checks: only S+S coexist.
        touched = self._touched.get(txn_id)
        if touched is None:
            touched = self._touched[txn_id] = set()
        touched.add(item_id)
        if not entry.queue and (
            not holders
            or (mode is SHARED and all(m is SHARED for m in holders.values()))
        ):
            holders[txn_id] = mode
            self.grants += 1
            return _GRANTED
        blockers = tuple(holders) + tuple(t for t, _m in entry.queue)
        entry.queue.append((txn_id, mode))
        self.waits += 1
        return LockGrant(granted=False, waiting_for=blockers)

    def release_all(self, txn_id: int) -> dict[int, list[int]]:
        """Release every lock ``txn_id`` holds or waits for (strict 2PL).

        Returns ``{item_id: [txn_ids granted by this release]}`` so the
        caller can resume the newly unblocked transactions.
        """
        granted: dict[int, list[int]] = {}
        touched = self._touched.pop(txn_id, None)
        if not touched:
            return granted
        # Only entries the transaction touched can have changed; untouched
        # queues were already non-grantable and stay that way (requests
        # only ever add holders or queue tails, which never unblock a
        # queue head — promotion happens exclusively here).
        table = self._table
        for item_id in sorted(touched):
            entry = table[item_id]
            entry.holders.pop(txn_id, None)
            if entry.queue:
                entry.queue[:] = [(t, m) for t, m in entry.queue if t != txn_id]
            newly = self._promote(entry)
            if newly:
                granted[item_id] = newly
        return granted

    def _promote(self, entry: _LockEntry) -> list[int]:
        """Grant queued requests now compatible, in FIFO order."""
        newly: list[int] = []
        SHARED = LockMode.SHARED
        holders = entry.holders
        while entry.queue:
            txn_id, mode = entry.queue[0]
            held = holders.get(txn_id)
            if held is SHARED and mode is LockMode.EXCLUSIVE:
                # Upgrade waits for sole ownership.
                if len(holders) != 1:
                    break
                holders[txn_id] = LockMode.EXCLUSIVE
            else:
                if holders and not (
                    mode is SHARED and all(m is SHARED for m in holders.values())
                ):
                    break
                holders[txn_id] = mode
            entry.queue.pop(0)
            self.grants += 1
            newly.append(txn_id)
            if mode is LockMode.EXCLUSIVE:
                break
        return newly

    def held_by(self, txn_id: int) -> list[int]:
        """Items on which ``txn_id`` currently holds a lock, sorted."""
        return sorted(
            item for item, entry in self._table.items() if txn_id in entry.holders
        )

    def verify_integrity(self) -> None:
        """Assert the compatibility invariant on every item (test hook)."""
        for item_id, entry in self._table.items():
            modes = list(entry.holders.values())
            if len(modes) > 1 and any(m is LockMode.EXCLUSIVE for m in modes):
                raise LockError(f"item {item_id}: X lock coexists with others")

    def __repr__(self) -> str:
        held = sum(len(e.holders) for e in self._table.values())
        queued = sum(len(e.queue) for e in self._table.values())
        return f"LockManager(held={held}, queued={queued})"
