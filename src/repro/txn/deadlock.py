"""Waits-for graph deadlock detection (the "complete RAID" extension).

Used with :class:`~repro.txn.locks.LockManager` in the concurrent cluster
mode: every blocked lock request adds waits-for edges; a cycle means
deadlock, and the youngest transaction in the cycle is chosen as victim.
"""

from __future__ import annotations

from repro.errors import LockError

__all__ = ["WaitsForGraph", "find_cycle_in"]


def find_cycle_in(edges: "dict[int, set[int] | tuple[int, ...]]") -> list[int]:
    """A deadlock cycle in a waits-for mapping, or ``[]`` if none.

    The detection primitive shared by :class:`WaitsForGraph` and the
    global detector's union graph (:mod:`repro.system.deadlock`), which
    calls it directly on its incrementally-maintained adjacency so the
    hot path never materializes a graph object.

    Iterative DFS with colouring; deterministic (start nodes and each
    node's successors are visited in sorted order) so victim selection is
    reproducible.  Nodes with no outgoing edges can never lie on a cycle
    and are never used as DFS roots, which does not change which cycle is
    found: a root with no successors discovers nothing.
    """
    GREY, BLACK = 1, 2
    # Unvisited nodes are simply absent (the classic WHITE colour).
    colour: dict[int, int] = {}
    parent: dict[int, int] = {}
    colour_get = colour.get
    edges_get = edges.get
    for start in sorted(edges):
        if start in colour:
            continue
        colour[start] = GREY
        # Stack frames: [node, sorted successor list, next index] —
        # mutable so resuming a frame costs no tuple rebuild.
        stack: list[list] = [[start, sorted(edges[start]), 0]]
        while stack:
            frame = stack[-1]
            node, successors, index = frame
            advanced = False
            while index < len(successors):
                nxt = successors[index]
                index += 1
                seen = colour_get(nxt)
                if seen == GREY:
                    # Found a back edge: unwind the cycle.
                    cycle = [nxt]
                    current = node
                    while current != nxt:
                        cycle.append(current)
                        current = parent[current]
                    cycle.reverse()
                    return cycle
                if seen is None:
                    colour[nxt] = GREY
                    parent[nxt] = node
                    frame[2] = index
                    out = edges_get(nxt)
                    stack.append([nxt, sorted(out) if out else [], 0])
                    advanced = True
                    break
            if not advanced:
                frame[2] = index
                colour[node] = BLACK
                stack.pop()
    return []


class WaitsForGraph:
    """Directed graph: edge ``a -> b`` means txn ``a`` waits for txn ``b``."""

    __slots__ = ("_edges",)

    def __init__(self) -> None:
        self._edges: dict[int, set[int]] = {}

    def add_waits(self, waiter: int, blockers: tuple[int, ...] | list[int]) -> None:
        """Record that ``waiter`` is blocked by each of ``blockers``."""
        if waiter in blockers:
            raise LockError(f"txn {waiter} cannot wait for itself")
        self._edges.setdefault(waiter, set()).update(blockers)

    def remove_txn(self, txn_id: int) -> None:
        """Erase a finished transaction from both sides of the graph."""
        self._edges.pop(txn_id, None)
        for targets in self._edges.values():
            targets.discard(txn_id)

    def clear_waits(self, txn_id: int) -> None:
        """Drop ``txn_id``'s outgoing edges (it stopped waiting); edges
        *onto* it remain — others may still wait for it."""
        self._edges.pop(txn_id, None)

    def edges(self) -> list[tuple[int, int]]:
        """All edges, sorted (for tests and debugging)."""
        return sorted(
            (a, b) for a, targets in self._edges.items() for b in targets
        )

    def find_cycle(self) -> list[int]:
        """A deadlock cycle as a list of txn ids, or [] if none.

        Delegates to :func:`find_cycle_in` (deterministic sorted-order
        DFS) so this graph and the global detector's union graph share
        one detection primitive.
        """
        return find_cycle_in(self._edges)

    @staticmethod
    def choose_victim(cycle: list[int]) -> int:
        """Pick the youngest (highest-id) transaction in the cycle.

        Transaction ids are issued in start order, so the highest id has
        done the least work — the conventional cheap victim.
        """
        if not cycle:
            raise LockError("cannot choose a victim from an empty cycle")
        return max(cycle)

    def __len__(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def __repr__(self) -> str:
        return f"WaitsForGraph(edges={self.edges()})"
