"""Waits-for graph deadlock detection (the "complete RAID" extension).

Used with :class:`~repro.txn.locks.LockManager` in the concurrent cluster
mode: every blocked lock request adds waits-for edges; a cycle means
deadlock, and the youngest transaction in the cycle is chosen as victim.
"""

from __future__ import annotations

from repro.errors import LockError


class WaitsForGraph:
    """Directed graph: edge ``a -> b`` means txn ``a`` waits for txn ``b``."""

    def __init__(self) -> None:
        self._edges: dict[int, set[int]] = {}

    def add_waits(self, waiter: int, blockers: tuple[int, ...] | list[int]) -> None:
        """Record that ``waiter`` is blocked by each of ``blockers``."""
        if waiter in blockers:
            raise LockError(f"txn {waiter} cannot wait for itself")
        self._edges.setdefault(waiter, set()).update(blockers)

    def remove_txn(self, txn_id: int) -> None:
        """Erase a finished transaction from both sides of the graph."""
        self._edges.pop(txn_id, None)
        for targets in self._edges.values():
            targets.discard(txn_id)

    def clear_waits(self, txn_id: int) -> None:
        """Drop ``txn_id``'s outgoing edges (it stopped waiting); edges
        *onto* it remain — others may still wait for it."""
        self._edges.pop(txn_id, None)

    def edges(self) -> list[tuple[int, int]]:
        """All edges, sorted (for tests and debugging)."""
        return sorted(
            (a, b) for a, targets in self._edges.items() for b in targets
        )

    def find_cycle(self) -> list[int]:
        """A deadlock cycle as a list of txn ids, or [] if none.

        Iterative DFS with colouring; deterministic (nodes and edges are
        visited in sorted order) so victim selection is reproducible.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self._edges}
        for targets in self._edges.values():
            for node in targets:
                colour.setdefault(node, WHITE)

        parent: dict[int, int] = {}
        for start in sorted(colour):
            if colour[start] != WHITE:
                continue
            stack: list[tuple[int, list[int]]] = [
                (start, sorted(self._edges.get(start, ())))
            ]
            colour[start] = GREY
            while stack:
                node, successors = stack[-1]
                advanced = False
                while successors:
                    nxt = successors.pop(0)
                    if colour.get(nxt, WHITE) == GREY:
                        # Found a back edge: unwind the cycle.
                        cycle = [nxt]
                        current = node
                        while current != nxt:
                            cycle.append(current)
                            current = parent[current]
                        cycle.reverse()
                        return cycle
                    if colour.get(nxt, WHITE) == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, sorted(self._edges.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced and stack and stack[-1][0] == node and not successors:
                    colour[node] = BLACK
                    stack.pop()
        return []

    @staticmethod
    def choose_victim(cycle: list[int]) -> int:
        """Pick the youngest (highest-id) transaction in the cycle.

        Transaction ids are issued in start order, so the highest id has
        done the least work — the conventional cheap victim.
        """
        if not cycle:
            raise LockError("cannot choose a victim from an empty cycle")
        return max(cycle)

    def __len__(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def __repr__(self) -> str:
        return f"WaitsForGraph(edges={self.edges()})"
