"""Transaction operations.

A mini-RAID operation is "a read or write of a database data item"
(paper §1.2).  A generated transaction is a random-length list of such
operations over the frequently-referenced portion of the database, each
operation equally likely to be a read or a write, each on a uniformly
random item.
"""

from __future__ import annotations

import enum
from repro.sim.rng import RandomStream
from dataclasses import dataclass

from repro.errors import WorkloadError


class OpKind(enum.Enum):
    """Read or write."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True, frozen=True)
class Operation:
    """One operation on one data item."""

    kind: OpKind
    item_id: int

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def __repr__(self) -> str:
        return f"{self.kind.value[0]}({self.item_id})"


def random_transaction_ops(
    rng: RandomStream,
    item_ids: list[int],
    max_ops: int,
    write_probability: float = 0.5,
) -> list[Operation]:
    """Generate one transaction's operations exactly as the paper does.

    Length is uniform in ``[1, max_ops]``; each operation is a write with
    ``write_probability`` (0.5 in the paper) on a uniformly random item.
    """
    if not item_ids:
        raise WorkloadError("cannot generate operations over an empty item set")
    if max_ops < 1:
        raise WorkloadError(f"max_ops must be >= 1, got {max_ops}")
    if not 0.0 <= write_probability <= 1.0:
        raise WorkloadError(f"write probability must be in [0, 1]: {write_probability}")
    count = rng.randint(1, max_ops)
    ops = []
    for _ in range(count):
        kind = OpKind.WRITE if rng.random() < write_probability else OpKind.READ
        ops.append(Operation(kind=kind, item_id=rng.choice(item_ids)))
    return ops
