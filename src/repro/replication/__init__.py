"""Replicated-copy-control strategy baselines.

The paper's protocol is ROWAA; its introduction situates it against the
classic alternatives — strict read-one/write-all, quorum consensus
[Bern84] [ElAb85], and primary copy.  This package gives each strategy a
uniform interface for two uses:

* *operational predicates* (can this read/write proceed given which sites
  are up?) — the same rules the cluster's coordinator enforces when
  ``SystemConfig.strategy`` selects a baseline; and
* *analytic availability* (the steady-state probability an operation can
  proceed when each site is independently up with probability ``p``) —
  used by the strategy-comparison bench to check the simulated abort rates
  against closed forms.
"""

from repro.replication.strategy import ReplicationStrategy
from repro.replication.rowa import RowaStrategy
from repro.replication.rowaa import RowaaStrategy
from repro.replication.quorum import QuorumStrategy
from repro.replication.primarycopy import PrimaryCopyStrategy

__all__ = [
    "ReplicationStrategy",
    "RowaStrategy",
    "RowaaStrategy",
    "QuorumStrategy",
    "PrimaryCopyStrategy",
]
