"""Strategy interface: operational predicates + analytic availability."""

from __future__ import annotations

import abc
import math

from repro.errors import ConfigurationError


def _binomial(n: int, k: int) -> int:
    return math.comb(n, k)


class ReplicationStrategy(abc.ABC):
    """One replicated-copy-control discipline over ``num_sites`` copies."""

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"need at least one site: {num_sites}")
        self.num_sites = num_sites

    # -- operational predicates -------------------------------------------------

    @abc.abstractmethod
    def can_read(self, up_sites: set[int]) -> bool:
        """Whether a read can proceed with exactly ``up_sites`` operational."""

    @abc.abstractmethod
    def can_write(self, up_sites: set[int]) -> bool:
        """Whether a write can proceed with exactly ``up_sites`` operational."""

    # -- analytic availability ------------------------------------------------------

    def read_availability(self, p: float) -> float:
        """P(read proceeds) when each site is independently up w.p. ``p``.

        Default: exact enumeration over up-set sizes, assuming the
        predicate depends only on *how many* sites are up (true for all
        strategies here except primary copy, which overrides).
        """
        self._check_p(p)
        total = 0.0
        for k in range(self.num_sites + 1):
            if self._can_read_count(k):
                total += _binomial(self.num_sites, k) * p**k * (1 - p) ** (
                    self.num_sites - k
                )
        return total

    def write_availability(self, p: float) -> float:
        """P(write proceeds) when each site is independently up w.p. ``p``."""
        self._check_p(p)
        total = 0.0
        for k in range(self.num_sites + 1):
            if self._can_write_count(k):
                total += _binomial(self.num_sites, k) * p**k * (1 - p) ** (
                    self.num_sites - k
                )
        return total

    def _can_read_count(self, up_count: int) -> bool:
        """Count-only version of :meth:`can_read` (override if identity of
        the up sites matters)."""
        return self.can_read(set(range(up_count)))

    def _can_write_count(self, up_count: int) -> bool:
        return self.can_write(set(range(up_count)))

    @staticmethod
    def _check_p(p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"probability must be in [0, 1]: {p}")

    @property
    def name(self) -> str:
        """Short strategy name for reports."""
        return type(self).__name__.removesuffix("Strategy").lower()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_sites={self.num_sites})"
