"""Primary copy.

All writes funnel through a designated primary site; reads may use any
copy.  Availability hinges entirely on the primary: if it is down, no
writes proceed (absent an election protocol, which this baseline — like
the 1987-era systems the paper contrasts with — does not include).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.replication.strategy import ReplicationStrategy


class PrimaryCopyStrategy(ReplicationStrategy):
    """Writes require the primary up; reads require any site up."""

    def __init__(self, num_sites: int, primary: int = 0) -> None:
        super().__init__(num_sites)
        if not 0 <= primary < num_sites:
            raise ConfigurationError(f"primary {primary} out of range")
        self.primary = primary

    def can_read(self, up_sites: set[int]) -> bool:
        return len(up_sites) >= 1

    def can_write(self, up_sites: set[int]) -> bool:
        return self.primary in up_sites

    def write_availability(self, p: float) -> float:
        """The primary's own availability (identity matters, not count)."""
        self._check_p(p)
        return p
