"""Read-one / write-all-available — the paper's protocol.

Transaction processing continues "as long as a single copy is available"
(§1.1): both reads and writes proceed whenever at least one site is up.
The price is the fail-lock machinery to find and refresh stale copies.
"""

from __future__ import annotations

from repro.replication.strategy import ReplicationStrategy


class RowaaStrategy(ReplicationStrategy):
    """Available as long as any copy is reachable."""

    def can_read(self, up_sites: set[int]) -> bool:
        return len(up_sites) >= 1

    def can_write(self, up_sites: set[int]) -> bool:
        return len(up_sites) >= 1
